"""Serving-layer benchmarks: open-loop load, tail latency, SLO attainment.

Measures what ``repro.serve`` delivers on the request/response patterns
the ROADMAP's north star describes (heavy traffic from millions of
users), recorded to ``BENCH_serve.json`` at the repo root:

* **steady state** — Poisson open-loop load on a 2-client/2-server
  cluster per load-balancing policy, with a latency SLO attached.
  Acceptance floors: the SLO attains, nothing is shed, and request
  conservation holds;
* **overload** — arrivals far beyond service capacity with a tiny
  server queue.  The bounded queue must shed (not silently grow), and
  the shed fraction must be substantial;
* **incast** — 16 clients converging on one server, DCTCP+ECN versus
  the static window.  Acceptance floor: DCTCP's p99 is strictly better
  (composed scenario from the congestion subsystem);
* **crash under load** — a server crashes mid-load and restarts; the
  client journal replays its in-flight requests and per-window SLO
  attainment recovers after reconnect;
* **determinism** — the same configuration twice yields byte-identical
  results.

The slow tier adds the **volume** point (>= 100k open-loop requests in
bounded wall-clock, the ISSUE acceptance criterion) and a **failover
during a traffic spike** on a 3:1-oversubscribed leaf-spine fabric.

Invocations:

* smoke —
  ``PYTHONPATH=src python -m pytest benchmarks/bench_serve.py -k smoke``
  (tens of seconds; asserts the acceptance floors);
* full —
  ``PYTHONPATH=src python -m pytest benchmarks/bench_serve.py -m slow``.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.analysis import SloSpec
from repro.bench.serve import run_serve
from repro.fabric import LeafSpineSpec
from repro.serve import POLICIES, ArrivalSpec, ServerSpec

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_serve.json"

_MS = 1_000_000

# Acceptance floors (ISSUE acceptance criteria).
MIN_OVERLOAD_SHED_FRACTION = 0.10  # bounded queues must actually shed
VOLUME_MIN_REQUESTS = 100_000  # open-loop volume point (slow tier)

STEADY_SLO = SloSpec(p50_ms=1.0, p99_ms=5.0, p999_ms=20.0)


def _merge_bench_json(update: dict) -> dict:
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except json.JSONDecodeError:
            data = {}
    data.update(update)
    BENCH_JSON.write_text(json.dumps(data, indent=2) + "\n")
    return data


def _point(r) -> dict:
    """Flatten a ServeResult into the JSON row the report stores."""
    return {
        "config": r.config,
        "policy": r.policy,
        "arrival": r.arrival_kind,
        "clients": r.clients,
        "servers": r.servers,
        "generated": r.generated,
        "completed": r.completed,
        "shed": r.shed + r.shed_client,
        "failed": r.failed,
        "replayed": r.replayed,
        "shed_fraction": round(r.shed_fraction, 4),
        "p50_ms": round(r.p50_ns / _MS, 3),
        "p99_ms": round(r.p99_ns / _MS, 3),
        "p999_ms": round(r.p999_ns / _MS, 3),
        "mean_ms": round(r.mean_ns / _MS, 3),
        "queueing_p99_ms": round(r.queueing_p99_ns / _MS, 3),
        "service_p99_ms": round(r.service_p99_ns / _MS, 3),
        "network_p99_ms": round(r.network_p99_ns / _MS, 3),
        "slo_attained": r.slo_attained,
        "crashes": r.crashes,
        "reconnects": r.reconnects,
        "violations": list(r.violations),
    }


def test_serve_smoke():
    """Policy sweep + overload + incast + crash recovery + determinism."""
    report = {}

    # Steady state, per policy, under an SLO.
    steady = []
    for policy in POLICIES:
        r = run_serve(
            config="1L-10G",
            n_clients=2,
            n_servers=2,
            policy=policy,
            arrival=ArrivalSpec(
                kind="poisson",
                rate_rps=50_000,
                request_bytes=("uniform", 64, 512),
                response_bytes=("uniform", 128, 1024),
                batch=256,
            ),
            server=ServerSpec(queue_cap=128, workers=4,
                              service=("exp", 10_000)),
            duration_ns=20 * _MS,
            slo=STEADY_SLO,
            seed=3,
        )
        assert r.ok, f"{policy}: {r.violations}"
        assert r.generated == r.completed, (
            f"{policy}: {r.generated} generated but only {r.completed} "
            f"completed in steady state"
        )
        assert r.slo_attained, (
            f"{policy}: steady-state SLO missed — clauses {r.slo_clauses}"
        )
        assert r.shed_fraction == 0.0
        steady.append(_point(r))
    report["steady_state_1L_10G"] = steady

    # Overload: arrivals far beyond capacity, tiny bounded queue.
    r = run_serve(
        config="1L-10G",
        n_clients=2,
        n_servers=1,
        policy="least-outstanding",
        arrival=ArrivalSpec(kind="poisson", rate_rps=60_000, batch=256),
        server=ServerSpec(queue_cap=4, workers=1, service=("fixed", 40_000)),
        duration_ns=10 * _MS,
        seed=5,
    )
    assert r.ok, r.violations
    assert r.shed_fraction >= MIN_OVERLOAD_SHED_FRACTION, (
        f"overload shed only {r.shed_fraction:.1%}; the bounded queue is "
        f"not exercising load-shed at all"
    )
    report["overload_1L_10G"] = _point(r)

    # Incast 16:1 — DCTCP versus the static window (acceptance floor).
    def incast(congestion, ecn):
        return run_serve(
            config="1L-1G",
            n_clients=16,
            n_servers=1,
            policy="round-robin",
            arrival=ArrivalSpec(
                kind="bursty",
                rate_rps=9_000,
                request_bytes=("fixed", 8192),
                response_bytes=("fixed", 128),
                batch=128,
            ),
            server=ServerSpec(queue_cap=256, workers=4,
                              service=("fixed", 5_000)),
            duration_ns=12 * _MS,
            seed=7,
            congestion=congestion,
            ecn_threshold_frames=ecn,
        )

    static = incast("static", None)
    dctcp = incast("dctcp", 32)
    assert static.ok and dctcp.ok
    assert dctcp.p99_ns < static.p99_ns, (
        f"DCTCP p99 {dctcp.p99_ns / _MS:.2f} ms is not strictly better "
        f"than static {static.p99_ns / _MS:.2f} ms under 16:1 incast"
    )
    report["incast_16to1_1L_1G"] = {
        "static": _point(static),
        "dctcp_ecn32": _point(dctcp),
        "p99_improvement": round(1 - dctcp.p99_ns / static.p99_ns, 4),
    }

    # Crash mid-load: journal replay + windowed SLO recovery.
    crash = run_serve(
        config="1L-10G",
        n_clients=2,
        n_servers=2,
        policy="least-outstanding",
        arrival=ArrivalSpec(kind="poisson", rate_rps=40_000, batch=256),
        server=ServerSpec(queue_cap=128, workers=4,
                          service=("fixed", 15_000)),
        duration_ns=40 * _MS,
        window_ns=5 * _MS,
        slo=SloSpec(p99_ms=1.0),
        seed=11,
        crash_server=3,
        crash_ns=12 * _MS,
        restart_delay_ns=6 * _MS,
    )
    assert crash.ok, crash.violations
    assert crash.crashes == 1 and crash.reconnects >= 1
    assert crash.replayed > 0, "no in-flight request was ever replayed"
    assert crash.generated == crash.completed, (
        "crash-mid-load run lost requests despite journal replay"
    )
    # SLO attainment recovers after the reconnect: the final window is
    # as good as the pre-crash windows.
    windows = crash.windows
    assert windows, "windowed accounting produced no rows"
    pre_crash = [w for w in windows if w["t0_ms"] < 12.0 and w["completed"]]
    post = [w for w in windows if w["t0_ms"] >= 20.0 and w["completed"]]
    assert pre_crash and post
    assert all(w["attained"] for w in pre_crash)
    assert all(w["attained"] for w in post), (
        f"SLO did not recover after reconnect: {post}"
    )
    report["crash_mid_load_1L_10G"] = {
        **_point(crash),
        "windows": windows,
    }

    # Determinism witness: same parameters, same bytes.
    again = run_serve(
        config="1L-10G",
        n_clients=2,
        n_servers=2,
        policy="least-outstanding",
        arrival=ArrivalSpec(kind="poisson", rate_rps=40_000, batch=256),
        server=ServerSpec(queue_cap=128, workers=4,
                          service=("fixed", 15_000)),
        duration_ns=40 * _MS,
        window_ns=5 * _MS,
        slo=SloSpec(p99_ms=1.0),
        seed=11,
        crash_server=3,
        crash_ns=12 * _MS,
        restart_delay_ns=6 * _MS,
    )
    assert dataclasses.asdict(again) == dataclasses.asdict(crash), (
        "identical serving configurations diverged"
    )

    _merge_bench_json(report)
    print(json.dumps(report, indent=2))


@pytest.mark.slow
def test_serve_volume_full():
    """>= 100k open-loop requests complete in bounded wall-clock."""
    r = run_serve(
        config="1L-10G",
        n_clients=2,
        n_servers=2,
        policy="least-outstanding",
        arrival=ArrivalSpec(
            kind="poisson",
            rate_rps=110_000,
            request_bytes=("fixed", 96),
            response_bytes=("fixed", 128),
            batch=1024,
        ),
        server=ServerSpec(queue_cap=512, workers=8, service=("fixed", 2_000)),
        duration_ns=470 * _MS,
        seed=9,
    )
    assert r.ok, r.violations
    assert r.generated >= VOLUME_MIN_REQUESTS, (
        f"volume point generated only {r.generated} requests "
        f"(floor {VOLUME_MIN_REQUESTS})"
    )
    assert r.completed == r.generated
    _merge_bench_json({"volume_1L_10G": _point(r)})


@pytest.mark.slow
def test_serve_spike_failover_full():
    """Server failover during a traffic spike on a 3:1 leaf-spine fabric."""
    r = run_serve(
        config="1L-1G",
        n_clients=3,
        n_servers=3,
        policy="leaf-affinity",
        arrival=ArrivalSpec(
            kind="bursty",
            rate_rps=8_000,
            burst_rate_rps=40_000,
            request_bytes=("uniform", 256, 2048),
            response_bytes=("uniform", 256, 2048),
            batch=128,
        ),
        server=ServerSpec(queue_cap=64, workers=2, service=("exp", 25_000)),
        duration_ns=40 * _MS,
        window_ns=5 * _MS,
        seed=13,
        # 3 hosts per leaf share 1 spine uplink: 3:1 oversubscription.
        fabric=LeafSpineSpec(leaves=2, spines=1, hosts_per_leaf=3),
        crash_server=4,
        crash_ns=15 * _MS,
        restart_delay_ns=5 * _MS,
    )
    assert r.ok, r.violations
    assert r.crashes == 1 and r.reconnects >= 1
    assert r.failed == 0, "failover lost requests"
    assert r.generated == r.completed + r.shed + r.shed_client
    _merge_bench_json({"spike_failover_leaf_spine_3to1": _point(r)})
