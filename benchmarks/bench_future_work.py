"""Paper §6 future-work experiments: larger fabrics, second domain.

The paper's conclusions name two directions this infrastructure should
explore: (a) "larger system configurations with more nodes and
communication paths that consist of multiple switches" and (b) serving
several application domains on one interconnect.  Both are runnable here:

* leaf-spine fabrics with an oversubscribed spine: same-leaf vs
  cross-leaf latency/throughput, 32-node barriers,
* the message-passing domain: point-to-point latency/bandwidth and
  collective scaling over the exact substrate the DSM uses,
* hybrid core support: incast behaviour with a lossless (PAUSE-style)
  fabric versus the pure edge-based protocol recovering from drops.
"""

import numpy as np

from repro.bench import Table, make_cluster
from repro.bench.micro import run_one_way
from repro.mp import MpWorld, allreduce, barrier


def _p2p_transfer(cluster, i, j, size):
    a, b = cluster.connect(i, j)
    src = a.node.memory.alloc(size)
    dst = b.node.memory.alloc(size)

    def app():
        h = yield from a.rdma_write(src, dst, size)
        yield from h.wait()

    t0 = cluster.sim.now
    proc = cluster.sim.process(app())
    cluster.sim.run_until_done(proc, limit=120_000_000_000)
    return cluster.sim.now - t0


def _mp_latency_bandwidth(nodes=2):
    """NetPIPE-style ping-pong over the message-passing layer."""
    out = []
    for size in (8, 1024, 16384, 262144):
        cluster = make_cluster("1L-1G", nodes=nodes)
        world = MpWorld(cluster)
        iters = 20 if size <= 16384 else 6
        state = {}

        def program(ep, size=size, iters=iters):
            payload = bytes(size)
            if ep.rank == 0:
                t0 = ep.sim.now
                for i in range(iters):
                    yield from ep.send(1, payload, tag=i)
                    yield from ep.recv(source=1, tag=i)
                state["rtt"] = (ep.sim.now - t0) / iters
            else:
                for i in range(iters):
                    msg = yield from ep.recv(source=0, tag=i)
                    yield from ep.send(0, msg.data, tag=i)

        world.run(program)
        half_rtt_us = state["rtt"] / 2 / 1000
        bw = size / (state["rtt"] / 2 / 1e9) / 1e6
        out.append((size, half_rtt_us, bw))
    return out


def _collective_scaling():
    out = []
    for nodes in (2, 4, 8, 16):
        cluster = make_cluster("1L-1G", nodes=nodes)
        world = MpWorld(cluster)
        state = {}

        def program(ep):
            yield from barrier(ep)  # warm
            t0 = ep.sim.now
            for r in range(5):
                yield from barrier(ep, tag_round=r + 1)
            if ep.rank == 0:
                state["barrier"] = (ep.sim.now - t0) / 5
            t0 = ep.sim.now
            yield from allreduce(ep, np.arange(64.0))
            if ep.rank == 0:
                state["allreduce"] = ep.sim.now - t0

        world.run(program)
        out.append((nodes, state["barrier"] / 1000, state["allreduce"] / 1000))
    return out


def run_experiment():
    out = {}

    # (a) leaf-spine fabric characteristics.
    size = 262144
    flat = make_cluster("1L-1G", nodes=8)
    t_flat = _p2p_transfer(flat, 0, 5, size)
    ls = make_cluster("1L-1G", nodes=8, leaf_switches=2)
    t_same = _p2p_transfer(ls, 0, 1, size)
    ls2 = make_cluster("1L-1G", nodes=8, leaf_switches=2)
    t_cross = _p2p_transfer(ls2, 0, 5, size)
    out["fabric"] = [
        ("flat 8-node", size / (t_flat / 1e9) / 1e6),
        ("leaf-spine same-leaf", size / (t_same / 1e9) / 1e6),
        ("leaf-spine cross-leaf", size / (t_cross / 1e9) / 1e6),
    ]

    # Oversubscription: 4 simultaneous cross-leaf flows on 1 uplink.
    over = make_cluster("1L-1G", nodes=8, leaf_switches=2)
    flows = 4
    procs = []
    for i in range(flows):
        a, b = over.connect(i, 4 + i)
        src = a.node.memory.alloc(size)
        dst = b.node.memory.alloc(size)

        def app(a=a, src=src, dst=dst):
            h = yield from a.rdma_write(src, dst, size)
            yield from h.wait()

        procs.append(over.sim.process(app()))
    t0 = over.sim.now
    for p in procs:
        over.sim.run_until_done(p, limit=240_000_000_000)
    agg = flows * size / ((over.sim.now - t0) / 1e9) / 1e6
    out["oversubscription"] = agg

    # 32-node fabric barrier cost (beyond the paper's 16 nodes).
    big = make_cluster("1L-1G", nodes=32, leaf_switches=4)
    world = MpWorld(big)
    state = {}

    def program(ep):
        yield from barrier(ep)
        t0 = ep.sim.now
        for r in range(3):
            yield from barrier(ep, tag_round=r + 1)
        if ep.rank == 0:
            state["barrier"] = (ep.sim.now - t0) / 3

    world.run(program)
    out["barrier32_us"] = state["barrier"] / 1000

    # (b) the message-passing domain.
    out["mp_pingpong"] = _mp_latency_bandwidth()
    out["mp_collectives"] = _collective_scaling()

    # (c) hybrid core support: edge-only vs lossless fabric under incast.
    from repro.ethernet import SwitchParams

    out["hybrid"] = []
    for lossless in (False, True):
        cluster = make_cluster(
            "1L-1G", nodes=5,
            switch=SwitchParams(
                ports=5, output_queue_frames=24, lossless=lossless
            ),
        )
        size = 150_000
        procs = []
        for i in range(4):
            a, b = cluster.connect(i, 4)
            src = a.node.memory.alloc(size)
            dst = b.node.memory.alloc(size)

            def app(a=a, src=src, dst=dst):
                h = yield from a.rdma_write(src, dst, size)
                yield from h.wait()

            procs.append((cluster.sim.process(app()), a))
        t0 = cluster.sim.now
        for p, _ in procs:
            cluster.sim.run_until_done(p, limit=240_000_000_000)
        elapsed = cluster.sim.now - t0
        retrans = sum(a.stats.retransmitted_frames for _, a in procs)
        out["hybrid"].append(
            (
                "lossless core" if lossless else "edge-only",
                4 * size / (elapsed / 1e9) / 1e6,
                cluster.total_frames_dropped(),
                retrans,
            )
        )
    return out


def test_future_work(benchmark):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    t = Table("§6(a) — leaf-spine fabric, 256 KB stream", ["path", "MB/s"])
    for name, thr in out["fabric"]:
        t.add(name, thr)
    t.show()
    t = Table(
        "§6(a) — spine oversubscription (4 cross-leaf flows, 1 uplink)",
        ["aggregate MB/s"],
    )
    t.add(out["oversubscription"])
    t.show()
    t = Table("§6(a) — 32-node dissemination barrier", ["us"])
    t.add(out["barrier32_us"])
    t.show()

    t = Table(
        "§6(b) — message passing ping-pong over MultiEdge",
        ["size (B)", "half-RTT (us)", "bandwidth (MB/s)"],
    )
    for size, lat, bw in out["mp_pingpong"]:
        t.add(size, lat, bw)
    t.show()
    t = Table(
        "§6(b) — collective scaling (1L-1G)",
        ["nodes", "barrier (us)", "allreduce 512B (us)"],
    )
    for nodes, b_us, ar_us in out["mp_collectives"]:
        t.add(nodes, b_us, ar_us)
    t.show()

    # -- assertions ----------------------------------------------------------
    fabric = dict(out["fabric"])
    # Same-leaf equals the flat network; crossing the spine costs little
    # for a single stream (store-and-forward adds latency, not bandwidth).
    assert fabric["leaf-spine same-leaf"] > 0.95 * fabric["flat 8-node"]
    assert fabric["leaf-spine cross-leaf"] > 0.85 * fabric["flat 8-node"]
    # But concurrent cross-leaf flows collapse onto the single uplink.
    assert out["oversubscription"] < 140

    # MP small-message latency is within a few us of the raw RDMA path.
    small = out["mp_pingpong"][0]
    assert small[1] < 80  # us
    big = out["mp_pingpong"][-1]
    assert big[2] > 90  # MB/s, rendezvous reaches most of the link

    # Dissemination barrier grows ~log n.
    coll = {n: b for n, b, _ in out["mp_collectives"]}
    assert coll[16] < 6 * coll[2]

    t = Table(
        "§6(b) — hybrid core support: 4-to-1 incast, tiny switch buffers",
        ["fabric", "aggregate MB/s", "drops", "retransmissions"],
    )
    for row in out["hybrid"]:
        t.add(*row)
    t.show()
    hybrid = {name: (thr, drops, rx) for name, thr, drops, rx in out["hybrid"]}
    assert hybrid["edge-only"][1] > 0, "edge fabric must drop under incast"
    assert hybrid["lossless core"][1] == 0, "lossless fabric must not drop"
    assert hybrid["lossless core"][0] >= 0.9 * hybrid["edge-only"][0]
