"""§4 micro-benchmark network statistics.

Paper: single-link runs see almost no out-of-order delivery; multi-link
runs see at most 45–50 % out-of-order frames (closely spaced); explicit
acks + retransmissions add at most 5.5 % extra frames; dropped frames are
low — about 20 % of the extra traffic.  (Drops need actual loss, so a
bit-error run supplements the clean sweeps.)
"""

from repro.bench import Table, make_cluster, micro_sweep
from repro.bench.micro import run_one_way
from repro.bench.paper_data import MICRO_NET_STATS
from repro.ethernet import LinkParams

SIZES = (16384, 262144, 1048576)


def run_experiment():
    clean = {
        config: micro_sweep(config, "one-way", SIZES)
        for config in ("1L-1G", "2L-1G", "2Lu-1G")
    }
    # Lossy single-link run to exercise NACK/retransmission recovery.
    lossy_cluster = make_cluster(
        "1L-1G", nodes=2, link=LinkParams(speed_bps=1e9, bit_error_rate=3e-7)
    )
    lossy = run_one_way(lossy_cluster, 524288, iterations=10)
    return clean, lossy


def test_micro_network_stats(benchmark):
    clean, lossy = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "§4 micro network statistics (one-way)",
        ["config", "size", "out-of-order", "extra frames", "drops"],
    )
    for config, sweep in clean.items():
        for r in sweep:
            table.add(
                config, r.size, r.out_of_order_fraction,
                r.extra_frame_fraction, r.frames_dropped,
            )
    table.add("1L-1G+BER", lossy.size, lossy.out_of_order_fraction,
              lossy.extra_frame_fraction, lossy.frames_dropped)
    table.show()

    check = Table(
        "§4 — paper vs measured",
        ["metric", "paper", "measured"],
    )
    ooo_1l = max(r.out_of_order_fraction for r in clean["1L-1G"])
    ooo_2l = max(
        max(r.out_of_order_fraction for r in clean[c])
        for c in ("2L-1G", "2Lu-1G")
    )
    extra = max(
        r.extra_frame_fraction for sweep in clean.values() for r in sweep
    )
    check.add("out-of-order 1L (max)", "~0", ooo_1l)
    check.add("out-of-order 2L (max)", "<= 0.45-0.50", ooo_2l)
    check.add("extra frames (max, clean)", "<= 0.055", extra)
    drops_share = (
        lossy.frames_dropped
        / max(
            1,
            lossy.frames_dropped
            + lossy.data_frames * lossy.extra_frame_fraction,
        )
    )
    check.add("drops / extra traffic (lossy)", "~0.20", drops_share)
    check.show()

    assert ooo_1l <= MICRO_NET_STATS["out_of_order_1l"][1]
    lo, hi = MICRO_NET_STATS["out_of_order_2l"]
    assert lo <= ooo_2l <= hi + 0.05
    assert extra <= MICRO_NET_STATS["extra_frames_max"]
    assert lossy.frames_dropped > 0
    assert 0.02 <= drops_share <= 0.6
