"""Figure 3: application statistics over a single 1-GbE link (1L-1G).

Panels reproduced:
  (a) speedup curves at 1..16 nodes — Barnes/Raytrace/Water-Nsquared scale
      well (13–14), LU/Water-Spatial/Water-SpatialFL are medium (6–8),
      FFT/Radix scale poorly;
  (b) execution-time breakdowns (compute / data wait / sync);
  (c) CPU time in the MultiEdge protocol: ≤11 % worst case, ≤4 % typical;
  (d) fraction of frames causing interrupts: 10–40 %;
  (e) extra traffic ≤15 %, dominated by acks; out-of-order ≈ 0.
"""

from repro.bench import Table, app_run, check_band
from repro.bench.paper_data import APP_ORDER, FIG3_NET_STATS, FIG3_SPEEDUP_BANDS

NODE_COUNTS = (1, 2, 4, 8, 16)


def run_experiment():
    runs = {
        (name, n): app_run(name, "1L-1G", n)
        for name in APP_ORDER
        for n in NODE_COUNTS
    }
    return runs


def test_fig3_apps_single_1g_link(benchmark):
    runs = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    speed = Table(
        "Figure 3(a) — speedups over 1L-1G",
        ["app"] + [f"{n} nodes" for n in NODE_COUNTS] + ["paper band @16"],
    )
    speedups = {}
    for name in APP_ORDER:
        base = runs[(name, 1)]
        curve = [runs[(name, n)].speedup_vs(base) for n in NODE_COUNTS]
        speedups[name] = curve[-1]
        lo, hi = FIG3_SPEEDUP_BANDS[name]
        speed.add(name, *curve, f"{lo}-{hi}")
    speed.show()

    bd = Table(
        "Figure 3(b) — execution-time breakdown at 16 nodes",
        ["app", "compute", "data wait", "sync", "dsm ovh", "other"],
    )
    for name in APP_ORDER:
        b = runs[(name, 16)].mean_breakdown
        bd.add(name, b.compute, b.data_wait, b.sync, b.dsm_overhead, b.other)
    bd.show()

    net = Table(
        "Figure 3(c,d,e) — network statistics at 16 nodes",
        ["app", "protocol CPU", "irq fraction", "extra traffic",
         "ack share", "out-of-order"],
    )
    for name in APP_ORDER:
        r = runs[(name, 16)].dsm
        extra = r.network.extra_frame_fraction
        acks = r.network.explicit_acks_sent
        ack_share = acks / max(1, r.network.extra_frames_sent)
        net.add(
            name, r.protocol_cpu_fraction, r.interrupt_fraction,
            extra, ack_share, r.network.out_of_order_fraction,
        )
    net.show()

    # -- assertions --------------------------------------------------------
    for name in APP_ORDER:
        assert runs[(name, 16)].verified, name
        assert check_band(speedups[name], FIG3_SPEEDUP_BANDS[name], slack=0.35), (
            name, speedups[name]
        )
        # Speedup curves are monotone up to noise for the scalable apps.
        if FIG3_SPEEDUP_BANDS[name][0] >= 5.0:
            base = runs[(name, 1)]
            curve = [runs[(name, n)].speedup_vs(base) for n in NODE_COUNTS]
            assert all(b >= a * 0.85 for a, b in zip(curve, curve[1:])), name

    for name in APP_ORDER:
        r = runs[(name, 16)].dsm
        # FFT/Radix run a few points above the paper's 11 % (EXPERIMENTS.md
        # notes our fully-accounted interrupt/copy costs).
        assert r.protocol_cpu_fraction <= FIG3_NET_STATS["protocol_cpu_max"] + 0.08, name
        assert r.network.out_of_order_fraction <= 0.05, name
        assert r.network.extra_frame_fraction <= FIG3_NET_STATS["extra_traffic_max"] + 0.05, name
        # Extra traffic dominated by explicit acks, not retransmissions.
        assert (
            r.network.explicit_acks_sent >= 2 * r.network.retransmitted_frames
        ), name
    # FFT overhead dominated by remote fetches (paper: ~77 % of overhead).
    fft = runs[("fft", 16)].mean_breakdown
    overhead = fft.data_wait + fft.sync + fft.other
    assert fft.data_wait / overhead > 0.5
