"""Failover benchmarks: detection latency and degraded/recovered goodput.

Measures what the edge lifecycle control plane (``repro.control``) costs
and delivers when a rail dies mid-transfer on the paper's two-rail
configurations, recorded to ``BENCH_failover.json`` at the repo root:

* **detection latency** — simulated ns from cable kill to the sender's
  detector declaring the edge DOWN, vs the configured analytic bound
  (:attr:`DetectorParams.detect_bound_ns`);
* **degraded goodput** — steady-state goodput on the surviving rail as a
  fraction of the two-rail baseline (floor: 45%);
* **recovered goodput** — goodput after the rail is repaired and
  re-striped, vs the pre-kill baseline;
* **probe overhead** — heartbeat frames as a fraction of all wire frames
  during a healthy bulk transfer.

Invocations:

* smoke —
  ``PYTHONPATH=src python -m pytest benchmarks/bench_failover.py -k smoke``
  (seconds; asserts the acceptance floors on 2Lu-1G);
* full —
  ``PYTHONPATH=src python -m pytest benchmarks/bench_failover.py -m slow``
  (adds 2L-1G in-order and the adaptive-striping variant).
"""

import json
from pathlib import Path

import pytest

from repro.bench.failover import run_failover
from repro.control import DetectorParams

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_failover.json"

MS = 1_000_000

# Acceptance floors (ISSUE acceptance criteria).
MIN_DEGRADED_FRACTION = 0.45
DETECTOR = DetectorParams()


def _merge_bench_json(update: dict) -> dict:
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except json.JSONDecodeError:
            data = {}
    data.update(update)
    BENCH_JSON.write_text(json.dumps(data, indent=2) + "\n")
    return data


def _point(config: str, striping=None, repair: bool = True) -> dict:
    result = run_failover(
        config=config,
        kill_ns=10 * MS,
        repair_ns=60 * MS if repair else None,
        run_ns=100 * MS,
        detector_params=DETECTOR,
        striping=striping,
    )
    assert result.data_intact, f"{config}: corrupted data after failover"
    assert result.detected_ns is not None, f"{config}: failure never detected"
    return {
        "config": config,
        "striping": striping or "default",
        "chunks_sent": result.chunks_sent,
        "detect_latency_ns": result.detect_latency_ns,
        "detect_bound_ns": DETECTOR.detect_bound_ns,
        "baseline_goodput_mbps": round(result.baseline_goodput_bps / 1e6, 1),
        "degraded_goodput_mbps": round(result.degraded_goodput_bps / 1e6, 1),
        "degraded_fraction": round(result.degraded_fraction, 3),
        "recovered_goodput_mbps": round(result.recovered_goodput_bps / 1e6, 1),
        "transitions": len(result.transitions),
    }


def test_failover_smoke():
    """Acceptance floors on the out-of-order two-rail configuration."""
    point = _point("2Lu-1G")
    report = {"failover_2Lu_1G": point}
    _merge_bench_json(report)
    print(json.dumps(report, indent=2))
    assert point["detect_latency_ns"] <= point["detect_bound_ns"], (
        f"detection took {point['detect_latency_ns']} ns, "
        f"over the {point['detect_bound_ns']} ns bound"
    )
    assert point["degraded_fraction"] >= MIN_DEGRADED_FRACTION, (
        f"degraded goodput {point['degraded_fraction']:.1%} of baseline, "
        f"below the {MIN_DEGRADED_FRACTION:.0%} floor"
    )
    assert point["recovered_goodput_mbps"] >= point["degraded_goodput_mbps"], (
        "re-adding the rail did not improve goodput"
    )


@pytest.mark.slow
def test_failover_full():
    """All two-rail variants, plus probe overhead on a healthy run."""
    report = {}
    for config in ("2Lu-1G", "2L-1G"):
        point = _point(config)
        report[f"failover_{config.replace('-', '_')}"] = point
        assert point["degraded_fraction"] >= MIN_DEGRADED_FRACTION, config
        assert point["detect_latency_ns"] <= point["detect_bound_ns"], config
    report["failover_2Lu_1G_adaptive"] = _point("2Lu-1G", striping="adaptive")

    # Probe overhead: healthy 2-rail run, no faults (kill scheduled after
    # the stream ends, so both rails stay up throughout).
    healthy = run_failover(
        config="2Lu-1G", kill_ns=200 * MS, repair_ns=None, run_ns=50 * MS,
        detector_params=DETECTOR,
    )
    assert healthy.data_intact
    report["probe_overhead"] = {
        "probe_interval_ns": DETECTOR.probe_interval_ns,
        "goodput_mbps": round(healthy.baseline_goodput_bps / 1e6, 1),
        "probe_frames": healthy.probe_frames,
        "wire_frames": healthy.wire_frames,
        "probe_frame_fraction": round(healthy.probe_overhead, 4),
    }
    assert healthy.probe_overhead < 0.10, (
        f"heartbeats are {healthy.probe_overhead:.1%} of wire frames"
    )
    _merge_bench_json(report)
    print(json.dumps(report, indent=2))
