"""Table 1: benchmark applications, problem sizes, sequential times.

Prints the paper's Table 1 verbatim next to our scaled workloads and the
*measured* 1-node execution time of each scaled problem (the simulated
"sequential" baseline every speedup in Figures 3–6 divides by).
"""

from repro.apps import SCALED, TABLE1
from repro.bench import Table, app_run
from repro.bench.paper_data import APP_ORDER


def run_experiment():
    return {name: app_run(name, "1L-1G", 1) for name in APP_ORDER}


def test_table1_workloads(benchmark):
    singles = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    paper = Table(
        "Table 1 (paper) — benchmark applications",
        ["application", "problem size", "seq time (ms)", "footprint (MB)"],
    )
    for row in TABLE1:
        paper.add(
            row.application, row.problem_size,
            row.seq_exec_time_ms, row.footprint_mb,
        )
    paper.show()

    scaled = Table(
        "Scaled workloads (this reproduction)",
        ["app", "paper size", "scaled size", "scale", "measured T1 (ms)"],
    )
    by_app = {w.app: w for w in SCALED}
    for name in APP_ORDER:
        w = by_app[name]
        scaled.add(
            w.app, w.paper_size, w.scaled_size, w.scale_factor,
            singles[name].elapsed_ms,
        )
    scaled.show()

    for name, result in singles.items():
        assert result.verified, name
        assert result.elapsed_ns > 0
    # Ordering sanity mirroring Table 1: Water-Nsquared is by far the
    # longest sequential run; FFT and Radix sit in the bottom half.
    times = {n: r.elapsed_ms for n, r in singles.items()}
    assert times["water-nsq"] == max(times.values())
    median = sorted(times.values())[len(times) // 2]
    assert times["fft"] <= median and times["radix"] <= median
