"""Shared benchmark configuration.

Experiments are deterministic discrete-event simulations: re-running them
adds no statistical information, so every benchmark uses
``benchmark.pedantic(..., rounds=1, iterations=1)`` and the runner module
caches results so related figures share their underlying runs.
"""

# Sweep used by the Figure-2 benchmarks (paper sweeps 64 B .. 1 MB).
FIG2_SIZES = (64, 1024, 16384, 262144, 1048576)
FIG2_CONFIGS = ("1L-1G", "2L-1G", "1L-10G")
