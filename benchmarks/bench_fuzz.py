"""Fuzz smoke grid: seeded protocol fuzzing under the invariant monitor.

Runs the full workload × fault-profile grid from :mod:`repro.verify.fuzz`
with the :class:`~repro.verify.InvariantMonitor` attached and asserts zero
invariant violations, recording totals to ``BENCH_fuzz.json`` at the repo
root.  A second test witnesses bit-determinism: the same seed must yield
an identical frame trace and final-stats fingerprint across runs.

Invocations:

* smoke —
  ``PYTHONPATH=src python -m pytest benchmarks/bench_fuzz.py -k smoke``
  (seconds; 5 workloads x 5 fault profiles x 8 seeds = 200 scenarios);
* full —
  ``PYTHONPATH=src python -m pytest benchmarks/bench_fuzz.py -m slow``
  (1000 unconstrained seeds).
"""

import json
from pathlib import Path

import pytest

from repro.verify.fuzz import (
    FAULT_PROFILES,
    WORKLOADS,
    run_scenario,
    scenario_from_seed,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_fuzz.json"

SEEDS_PER_CELL = 8  # x 5 workloads x 5 fault profiles = 200 scenarios


def test_fuzz_smoke():
    """200 seeded scenarios across the workload x fault grid, 0 violations."""
    scenarios = 0
    checks = 0
    sim_ns = 0
    failures = []
    for workload in WORKLOADS:
        for profile in FAULT_PROFILES:
            for k in range(SEEDS_PER_CELL):
                sc = scenario_from_seed(k, workload, profile)
                res = run_scenario(sc)
                scenarios += 1
                checks += res.checks
                sim_ns += res.elapsed_ns
                if not res.ok:
                    failures.append(
                        f"seed={sc.seed} {workload}/{profile}: {res.failure}"
                    )
    assert scenarios == len(WORKLOADS) * len(FAULT_PROFILES) * SEEDS_PER_CELL
    assert not failures, "\n".join(failures)
    # Each scenario must actually exercise the monitor, not skip it.
    assert checks > 20 * scenarios, f"only {checks} checks in {scenarios} runs"

    BENCH_JSON.write_text(
        json.dumps(
            {
                "scenarios": scenarios,
                "invariant_checks": checks,
                "violations": 0,
                "simulated_ns_total": sim_ns,
                "grid": {
                    "workloads": list(WORKLOADS),
                    "fault_profiles": list(FAULT_PROFILES),
                    "seeds_per_cell": SEEDS_PER_CELL,
                },
            },
            indent=2,
        )
        + "\n"
    )


def test_fuzz_determinism_smoke():
    """Same seed, same bits: trace + final stats fingerprints are identical."""
    for seed in (0, 3, 7):
        sc = scenario_from_seed(seed, "mixed", "chaos")
        first = run_scenario(sc, trace=True)
        second = run_scenario(sc, trace=True)
        assert first.ok, first.failure
        assert first.fingerprint == second.fingerprint, (
            f"seed {seed} nondeterministic: "
            f"{first.fingerprint} != {second.fingerprint}"
        )


@pytest.mark.slow
def test_fuzz_wide():
    """1000 unconstrained seeds (workload and faults drawn from the seed)."""
    failures = []
    for seed in range(1000):
        res = run_scenario(scenario_from_seed(seed))
        if not res.ok:
            failures.append(f"seed={seed}: {res.failure}")
    assert not failures, "\n".join(failures)
