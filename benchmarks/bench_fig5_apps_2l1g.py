"""Figure 5: application statistics over two 1-GbE links, strict ordering.

Paper: execution times are similar to 1L-1G (the applications cannot use
the extra bandwidth); 10–50 % of frames arrive out of order (a reorder
every 2–10 frames) and are buffered for in-order delivery; protocol CPU
stays ≤12 %; extra traffic ≤10 % (Raytrace, Water-Nsquared) and ≤4 % for
the rest; 10–35 % of frames generate interrupts (coalescing factor 3–10).
"""

from repro.bench import Table, app_run
from repro.bench.paper_data import APP_ORDER, FIG5_NET_STATS


def run_experiment():
    runs = {name: app_run(name, "2L-1G", 16) for name in APP_ORDER}
    ref = {name: app_run(name, "1L-1G", 16) for name in APP_ORDER}
    return runs, ref


def test_fig5_apps_two_1g_links_ordered(benchmark):
    runs, ref = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    exec_cmp = Table(
        "Figure 5(a) — execution time vs 1L-1G at 16 nodes",
        ["app", "1L-1G (ms)", "2L-1G (ms)", "ratio"],
    )
    ratios = {}
    for name in APP_ORDER:
        t1, t2 = ref[name].elapsed_ms, runs[name].elapsed_ms
        ratios[name] = t2 / t1
        exec_cmp.add(name, t1, t2, t2 / t1)
    exec_cmp.show()

    net = Table(
        "Figure 5(b-e) — network statistics at 16 nodes",
        ["app", "protocol CPU", "out-of-order", "reorder dist",
         "extra traffic", "irq fraction", "buffered frames"],
    )
    for name in APP_ORDER:
        r = runs[name].dsm
        net.add(
            name,
            r.protocol_cpu_fraction,
            r.network.out_of_order_fraction,
            r.network.mean_reorder_distance,
            r.network.extra_frame_fraction,
            r.interrupt_fraction,
            r.network.buffered_frames,
        )
    net.show()

    for name in APP_ORDER:
        r = runs[name].dsm
        assert runs[name].verified, name
        # Execution time similar to single link for most applications;
        # bandwidth-bound fetch phases (FFT, Radix) may gain from the
        # second rail in our pipelined-fetch model (see EXPERIMENTS.md).
        assert 0.45 <= ratios[name] <= 1.6, (name, ratios[name])
        # Comm-bound apps (FFT) concentrate the same protocol work into a
        # shorter two-rail run, inflating the *fraction* (EXPERIMENTS.md).
        assert r.protocol_cpu_fraction <= FIG5_NET_STATS["protocol_cpu_max"] + 0.15
        # Multi-rail reorder visible, within the paper's 10-50 % band.
        assert 0.03 <= r.network.out_of_order_fraction <= 0.60, name
        # Frames get buffered for in-order delivery.
        assert r.network.buffered_frames > 0, name
        assert r.network.extra_frame_fraction <= 0.22, name
    high = max(
        runs[name].dsm.network.out_of_order_fraction for name in APP_ORDER
    )
    assert high >= 0.10, "at least one app should show heavy reorder"
