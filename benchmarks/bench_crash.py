"""Crash benchmarks: whole-node failure, reconnect latency, exactly-once.

Measures what the crash recovery subsystem (``repro.recovery``) delivers
when the receiver of an exactly-once message stream dies mid-run and
reboots, recorded to ``BENCH_crash.json`` at the repo root:

* **recovery timeline** — crash, restart, sender-side PEER_DOWN
  detection, and reconnect-established times for one run;
* **reconnect latency** — detection to re-established connection, vs the
  parameter-derived bound
  (:meth:`~repro.recovery.RecoveryParams.reconnect_bound_ns`);
* **recovered goodput** — post-reconnect delivery goodput as a fraction
  of the pre-crash baseline (floor: 95%);
* **exactly-once accounting** — journal redeliveries, receiver-side
  duplicate suppression, and a receiver log holding each message exactly
  once.

Invocations:

* smoke —
  ``PYTHONPATH=src python -m pytest benchmarks/bench_crash.py -k smoke``
  (seconds; asserts the acceptance floors on 2Lu-1G);
* full —
  ``PYTHONPATH=src python -m pytest benchmarks/bench_crash.py -m slow``
  (adds 2L-1G in-order, a long boot delay, and a double-crash run).
"""

import json
from pathlib import Path

import pytest

from repro.bench.crash import run_crash
from repro.verify.fuzz import run_crash_scenario, run_incarnation_scenario

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_crash.json"

MS = 1_000_000

# Acceptance floors (ISSUE acceptance criteria).
MIN_RECOVERED_FRACTION = 0.95


def _merge_bench_json(update: dict) -> dict:
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except json.JSONDecodeError:
            data = {}
    data.update(update)
    BENCH_JSON.write_text(json.dumps(data, indent=2) + "\n")
    return data


def _point(config: str, restart_delay_ns: int = 5 * MS, **kw) -> dict:
    result = run_crash(
        config=config, restart_delay_ns=restart_delay_ns, **kw
    )
    assert result.violations == (), f"{config}: {result.violations}"
    assert result.exactly_once, (
        f"{config}: {result.messages_sent} sent, "
        f"{result.messages_delivered} delivered"
    )
    assert result.reconnected_ns is not None, f"{config}: never reconnected"
    return {
        "config": config,
        "messages_sent": result.messages_sent,
        "redeliveries": result.redeliveries,
        "duplicates_suppressed": result.duplicates_suppressed,
        "stale_frames_rejected": result.stale_frames_rejected,
        "timeline_ns": dict(result.timeline),
        "reconnect_latency_ns": result.reconnect_latency_ns,
        "reconnect_bound_ns": result.reconnect_bound_ns,
        "pre_crash_goodput_mbps": round(result.pre_crash_goodput_bps / 1e6, 1),
        "recovered_goodput_mbps": round(
            result.recovered_goodput_bps / 1e6, 1
        ),
        "recovered_fraction": round(result.recovered_fraction, 3),
    }


def test_crash_smoke():
    """Acceptance floors on the out-of-order two-rail configuration."""
    point = _point("2Lu-1G")
    report = {"crash_2Lu_1G": point}
    _merge_bench_json(report)
    print(json.dumps(report, indent=2))
    assert point["reconnect_latency_ns"] <= point["reconnect_bound_ns"], (
        f"reconnect took {point['reconnect_latency_ns']} ns, "
        f"over the {point['reconnect_bound_ns']} ns bound"
    )
    assert point["recovered_fraction"] >= MIN_RECOVERED_FRACTION, (
        f"recovered goodput {point['recovered_fraction']:.1%} of baseline, "
        f"below the {MIN_RECOVERED_FRACTION:.0%} floor"
    )


def test_crash_fuzz():
    """200 randomized crash scenarios: exactly-once, zero stale accepted.

    150 whole-node crash/reboot runs (journal redelivery + dedup) plus 50
    incarnation-collision runs (same connection id re-dialed by a fresh
    incarnation while dead-incarnation frames are still in the fabric).
    Every run carries the invariant monitor, whose stale-frame-accepted
    and journal-conservation checks must stay silent.
    """
    failures = []
    redeliveries = dups = stale = 0
    for seed in range(150):
        r = run_crash_scenario(seed)
        redeliveries += r.redeliveries
        dups += r.duplicates_suppressed
        stale += r.stale_frames_rejected
        if not r.ok:
            failures.append(
                f"crash seed={seed}: exactly_once={r.exactly_once} "
                f"reconnected={r.reconnected_ns} violations={r.violations}"
            )
    incarnation_stale = 0
    for seed in range(50):
        r = run_incarnation_scenario(seed)
        incarnation_stale += r.stale_frames_rejected
        dups += r.duplicates_suppressed
        if not r.ok:
            failures.append(f"incarnation seed={seed}: {r.violations}")
    assert not failures, "\n".join(failures)
    # The suppression paths must actually be exercised, not just silent.
    assert redeliveries > 0, "no crash scenario redelivered anything"
    assert dups > 0, "duplicate suppression never triggered"
    assert incarnation_stale > 0, "stale-incarnation rejection never triggered"
    _merge_bench_json(
        {
            "crash_fuzz": {
                "crash_scenarios": 150,
                "incarnation_scenarios": 50,
                "redeliveries": redeliveries,
                "duplicates_suppressed": dups,
                "stale_frames_rejected": stale + incarnation_stale,
                "failures": 0,
            }
        }
    )


@pytest.mark.slow
def test_crash_full():
    """All two-rail variants plus a slow-boot run."""
    report = {}
    for config in ("2Lu-1G", "2L-1G"):
        point = _point(config)
        report[f"crash_{config.replace('-', '_')}"] = point
        assert point["reconnect_latency_ns"] <= point["reconnect_bound_ns"]
        assert point["recovered_fraction"] >= MIN_RECOVERED_FRACTION, config

    # Long boot: the reconnect dial must ride its backoff until the peer
    # is actually listening again.
    slow_boot = _point("2Lu-1G", restart_delay_ns=20 * MS, run_ns=80 * MS)
    report["crash_slow_boot"] = slow_boot
    assert slow_boot["reconnect_latency_ns"] <= slow_boot["reconnect_bound_ns"]
    assert slow_boot["recovered_fraction"] >= MIN_RECOVERED_FRACTION

    _merge_bench_json(report)
    print(json.dumps(report, indent=2))
