"""Figure 6: two 1-GbE links with out-of-order delivery allowed (2Lu-1G).

The GeNIMA port uses the paper's API extension: ordering (a backward
fence) is requested *only* on DSM control messages; page data and diffs
are applied in whatever order frames arrive.  Paper finding: relaxing
ordering does not significantly change application performance, and the
network-level statistics stay very close to the strictly ordered 2L-1G
runs.
"""

from repro.bench import Table, app_run
from repro.bench.paper_data import APP_ORDER


def run_experiment():
    relaxed = {name: app_run(name, "2Lu-1G", 16) for name in APP_ORDER}
    ordered = {name: app_run(name, "2L-1G", 16) for name in APP_ORDER}
    return relaxed, ordered


def test_fig6_apps_two_links_out_of_order(benchmark):
    relaxed, ordered = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    cmp = Table(
        "Figure 6 — 2Lu-1G (relaxed) vs 2L-1G (ordered) at 16 nodes",
        ["app", "ordered (ms)", "relaxed (ms)", "ratio",
         "ooo ordered", "ooo relaxed", "extra ordered", "extra relaxed"],
    )
    for name in APP_ORDER:
        ro, rr = ordered[name], relaxed[name]
        cmp.add(
            name,
            ro.elapsed_ms,
            rr.elapsed_ms,
            rr.elapsed_ms / ro.elapsed_ms,
            ro.dsm.network.out_of_order_fraction,
            rr.dsm.network.out_of_order_fraction,
            ro.dsm.network.extra_frame_fraction,
            rr.dsm.network.extra_frame_fraction,
        )
    cmp.show()

    for name in APP_ORDER:
        ro, rr = ordered[name], relaxed[name]
        assert rr.verified, name
        # "does not have a significant impact on application performance"
        assert 0.75 <= rr.elapsed_ms / ro.elapsed_ms <= 1.35, (
            name, rr.elapsed_ms / ro.elapsed_ms
        )
        # "network level statistics are very close to those for ordered"
        assert abs(
            rr.dsm.network.out_of_order_fraction
            - ro.dsm.network.out_of_order_fraction
        ) <= 0.25, name
        # Lock-intensive applications run ~19 % here (many 1-frame control
        # messages, each eventually acknowledged); the paper's bound for
        # its worst applications is 10 %.
        assert rr.dsm.network.extra_frame_fraction <= 0.22, name
    # Relaxed mode buffers strictly less than ordered mode overall.
    buffered_relaxed = sum(
        relaxed[name].dsm.network.buffered_frames for name in APP_ORDER
    )
    buffered_ordered = sum(
        ordered[name].dsm.network.buffered_frames for name in APP_ORDER
    )
    assert buffered_relaxed < buffered_ordered
