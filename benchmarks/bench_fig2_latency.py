"""Figure 2(a): micro-benchmark latency versus transfer size.

Paper: minimum latency ≈ 30 µs (1L-10G ping-pong, memory to memory);
host overhead to initiate an operation ≈ 2 µs (one-way / two-way).
"""

from conftest import FIG2_CONFIGS, FIG2_SIZES

from repro.bench import MICRO_BENCHMARKS, Table, micro_sweep
from repro.bench.paper_data import FIG2_HOST_OVERHEAD_US, FIG2_MIN_LATENCY_US


def run_experiment():
    return {
        (config, bench): micro_sweep(config, bench, FIG2_SIZES)
        for config in FIG2_CONFIGS
        for bench in MICRO_BENCHMARKS
    }


def test_fig2a_latency(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "Figure 2(a) — latency (us): ping-pong one-way mem-to-mem; "
        "one/two-way host overhead",
        ["config", "benchmark"] + [str(s) for s in FIG2_SIZES],
    )
    for (config, bench), sweep in results.items():
        table.add(config, bench, *[r.latency_us for r in sweep])
    table.show()

    # Paper-vs-measured for the stated endpoints.
    check = Table(
        "Figure 2(a) — paper vs measured",
        ["metric", "paper", "measured"],
    )
    min_pp_10g = min(r.latency_us for r in results[("1L-10G", "ping-pong")])
    check.add("min latency 1L-10G (us)", FIG2_MIN_LATENCY_US["1L-10G"], min_pp_10g)
    overheads = [
        r.latency_us
        for (c, b), sweep in results.items()
        if b in ("one-way", "two-way")
        for r in sweep
        if r.size <= 1024
    ]
    check.add(
        "host overhead small ops (us)",
        FIG2_HOST_OVERHEAD_US,
        min(overheads),
    )
    check.show()

    # Shape assertions (generous bands around the paper's endpoints).
    assert 15.0 <= min_pp_10g <= 45.0
    assert 1.0 <= min(overheads) <= 6.0
    # Latency grows monotonically-ish with size for ping-pong.
    for config in FIG2_CONFIGS:
        lats = [r.latency_us for r in results[(config, "ping-pong")]]
        assert lats[-1] > lats[0] * 10
