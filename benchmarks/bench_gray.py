"""Gray-failure benchmarks: degraded replicas, tail tolerance, budgets.

Fail-stop faults are the easy case — the detector fires, the balancer
routes around the corpse.  Gray failures (a replica that is merely
*slow*) are where tails are made: nothing crashes, every health check
passes, and the p99 quietly triples.  This suite measures what
``repro.serve.tail`` buys back, recorded to ``BENCH_gray.json`` at the
repo root:

* **mitigation** — 16 servers under Poisson open-loop load with one
  replica running 10x slow (a ``SlowNode`` gray fault).  Three runs:
  clean baseline, degraded with no tail machinery, degraded with
  hedging + outlier ejection.  Acceptance floor: the mitigated run
  recovers >= 80% of the p99 regression the slow replica caused;
* **amplification** — 2x overload against bounded queues with
  shed-retries enabled.  The token-bucket retry budget must cap total
  attempts at <= 1.1x the fresh load (the classic retry-storm bound);
* **detection** — the differential gray scorer marks a throttled NIC's
  edge DEGRADED while the fault is active and clears it after, without
  a single DOWN transition (the rail is degraded, not dead);
* **gray fuzz grid** — randomized gray scenarios (five fault kinds x
  tail on/off x detection on/off x optional clean-node crash) under
  the invariant monitor: request conservation and the tail-accounting
  invariants must hold in every one.

Invocations:

* smoke —
  ``PYTHONPATH=src python -m pytest benchmarks/bench_gray.py -k smoke``
  (tens of seconds; asserts every acceptance floor);
* full grid —
  ``PYTHONPATH=src python -m pytest benchmarks/bench_gray.py -m slow``.
"""

import json
from pathlib import Path

import pytest

from repro.bench.serve import ServeRun, run_serve
from repro.control import SlowNic, SlowNode
from repro.serve import ArrivalSpec, ServerSpec, TailSpec
from repro.verify.fuzz import run_gray_scenario

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_gray.json"

_MS = 1_000_000

# Acceptance floors (ISSUE acceptance criteria).
MIN_P99_RECOVERY = 0.80  # hedging+ejection vs one 10x-slow replica
MAX_RETRY_AMPLIFICATION = 1.10  # attempts / fresh load at 2x overload
FUZZ_SMOKE_SEEDS = 200


def _merge_bench_json(update: dict) -> dict:
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except json.JSONDecodeError:
            data = {}
    data.update(update)
    BENCH_JSON.write_text(json.dumps(data, indent=2) + "\n")
    return data


# ---------------------------------------------------------------------------
# Mitigation: one slow replica out of 16
# ---------------------------------------------------------------------------

_N_CLIENTS = 4
_N_SERVERS = 16
_SLOW_SERVER = _N_CLIENTS  # first server rank
_DURATION_NS = 30 * _MS
_ARRIVAL = ArrivalSpec(
    kind="poisson",
    rate_rps=60_000,
    request_bytes=("fixed", 128),
    response_bytes=("fixed", 512),
    batch=256,
)
_SERVER = ServerSpec(queue_cap=64, workers=4, service=("exp", 40_000))
_SLOW_FAULT = [
    SlowNode(at_ns=2 * _MS, node=_SLOW_SERVER, duration_ns=26 * _MS,
             factor=10.0)
]


def _mitigation_run(faults, tail):
    return run_serve(
        config="1L-10G",
        n_clients=_N_CLIENTS,
        n_servers=_N_SERVERS,
        policy="least-outstanding",
        arrival=_ARRIVAL,
        server=_SERVER,
        duration_ns=_DURATION_NS,
        seed=42,
        faults=faults,
        tail=tail,
    )


def _point(r) -> dict:
    return {
        "generated": r.generated,
        "completed": r.completed,
        "shed": r.shed + r.shed_client,
        "p50_ms": round(r.p50_ns / 1e6, 4),
        "p99_ms": round(r.p99_ns / 1e6, 4),
        "p999_ms": round(r.p999_ns / 1e6, 4),
        "hedges_sent": r.hedges_sent,
        "hedges_won": r.hedges_won,
        "retries_sent": r.retries_sent,
        "ejections": r.ejections,
        "violations": len(r.violations),
    }


def test_gray_mitigation_smoke():
    """Hedging + ejection recover >= 80% of the slow-replica p99 hit."""
    base = _mitigation_run([], None)
    unmit = _mitigation_run(_SLOW_FAULT, None)
    mit = _mitigation_run(_SLOW_FAULT, TailSpec())
    for r in (base, unmit, mit):
        assert not r.violations, r.violations
        assert r.generated == r.completed + r.shed + r.shed_client + r.failed
    regression = unmit.p99_ns - base.p99_ns
    assert regression > 0, "the slow replica must actually hurt the p99"
    recovery = (unmit.p99_ns - mit.p99_ns) / regression
    _merge_bench_json(
        {
            "mitigation": {
                "servers": _N_SERVERS,
                "slow_factor": 10.0,
                "baseline": _point(base),
                "unmitigated": _point(unmit),
                "mitigated": _point(mit),
                "p99_recovery": round(recovery, 4),
            }
        }
    )
    assert recovery >= MIN_P99_RECOVERY, (
        f"hedging+ejection recovered only {recovery:.1%} of the p99 "
        f"regression (floor {MIN_P99_RECOVERY:.0%}): "
        f"base {base.p99_ns} unmit {unmit.p99_ns} mit {mit.p99_ns}"
    )
    assert mit.hedges_sent > 0 and mit.hedges_won > 0
    assert mit.ejections >= 1, "the slow replica should be ejected"


# ---------------------------------------------------------------------------
# Amplification: the retry budget bounds the storm
# ---------------------------------------------------------------------------


def test_gray_retry_amplification_smoke():
    """At 2x overload, total attempts stay <= 1.1x the fresh load."""
    run = ServeRun(
        config="1L-10G",
        n_clients=2,
        n_servers=4,
        policy="least-outstanding",
        arrival=ArrivalSpec(
            kind="poisson",
            rate_rps=160_000,  # capacity is 4 servers x 2 workers / 100us
            request_bytes=("fixed", 128),
            response_bytes=("fixed", 256),
            batch=256,
        ),
        server=ServerSpec(queue_cap=4, workers=2, service=("fixed", 100_000)),
        duration_ns=20 * _MS,
        seed=7,
        tail=TailSpec(retry_budget=0.08, retry_burst=10),
    )
    res = run.finish()
    assert not res.violations, res.violations
    budget = run.runtime.tail.budget
    amplification = 1 + budget.spent / res.generated
    _merge_bench_json(
        {
            "amplification": {
                "generated": res.generated,
                "completed": res.completed,
                "shed": res.shed + res.shed_client,
                "extra_attempts": budget.spent,
                "denied": budget.denied,
                "amplification": round(amplification, 4),
            }
        }
    )
    assert amplification <= MAX_RETRY_AMPLIFICATION, (
        f"retry amplification {amplification:.3f} exceeds the "
        f"{MAX_RETRY_AMPLIFICATION} bound"
    )
    assert budget.denied > 0, "2x overload must actually hit the budget"


# ---------------------------------------------------------------------------
# Detection: the differential scorer flags the sick edge, not the rail
# ---------------------------------------------------------------------------


def test_gray_detection_smoke():
    """A throttled NIC's edge goes DEGRADED and comes back — never DOWN."""
    run = ServeRun(
        config="2L-1G",
        n_clients=2,
        n_servers=3,
        policy="least-outstanding",
        arrival=ArrivalSpec(kind="poisson", rate_rps=20_000, batch=128),
        duration_ns=40 * _MS,
        seed=9,
        faults=[
            SlowNic(at_ns=5 * _MS, node=2, rail=0, duration_ns=25 * _MS,
                    factor=16.0)
        ],
        gray_detection=True,
        use_monitor=True,
    )
    res = run.finish()
    assert not res.violations, res.violations
    scorer = run.cluster.gray_scorer
    assert scorer.degrade_marks >= 1, "the throttled edge was never flagged"
    assert scorer.degrade_clears >= 1, "the flag never cleared after repair"
    assert not scorer.flagged, "no edge should stay DEGRADED at the end"
    history = [
        t
        for mgr in run.cluster.control_planes.values()
        for t in mgr.history
    ]
    assert any(t.new.value == "degraded" for t in history)
    assert not any(t.new.value == "down" for t in history), (
        "a gray fault must not escalate to DOWN"
    )
    _merge_bench_json(
        {
            "detection": {
                "checks": scorer.checks,
                "degrade_marks": scorer.degrade_marks,
                "degrade_clears": scorer.degrade_clears,
            }
        }
    )


# ---------------------------------------------------------------------------
# Gray fuzz grid
# ---------------------------------------------------------------------------


def test_gray_fuzz_smoke():
    """Randomized gray scenarios: zero invariant violations across the grid."""
    failures = []
    kinds: dict = {}
    for seed in range(FUZZ_SMOKE_SEEDS):
        res = run_gray_scenario(seed)
        for k in res.gray_kinds:
            kinds[k] = kinds.get(k, 0) + 1
        if not res.ok:
            failures.append((seed, res.gray_kinds, res.violations[:2]))
    _merge_bench_json(
        {
            "fuzz": {
                "seeds": FUZZ_SMOKE_SEEDS,
                "failures": len(failures),
                "kind_coverage": kinds,
            }
        }
    )
    assert not failures, f"gray fuzz failures: {failures[:5]}"
    assert len(kinds) == 5, f"grid must exercise all five kinds: {kinds}"


@pytest.mark.slow
def test_gray_fuzz_full():
    """The wide grid (1000 seeds)."""
    failures = [
        s for s in range(1000) if not run_gray_scenario(s).ok
    ]
    assert not failures, f"gray fuzz failures at seeds {failures[:10]}"
