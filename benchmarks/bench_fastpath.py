"""Hybrid-fidelity fast path: wall-clock speedup and goodput divergence.

Records ``BENCH_fastpath.json`` at the repo root: for each cluster
configuration, the 1 MB one-way micro-benchmark with fast-forward off and
on — wall time, goodput, the relative goodput divergence, and the
fast-forward coverage statistics (jumps, synthesized ops/frames/bytes,
fraction of virtual time covered analytically).

Invocations:

* smoke (CI ``fastpath-smoke`` job) —
  ``PYTHONPATH=src python -m pytest benchmarks/bench_fastpath.py -k smoke``
  asserts the 1L-1G point: jumps fire, divergence < 1 %, speedup over the
  ``MIN_SMOKE_SPEEDUP`` floor;
* full —
  ``PYTHONPATH=src python -m pytest benchmarks/bench_fastpath.py -m slow``
  measures all four configurations and rewrites ``BENCH_fastpath.json``
  (acceptance: >= 10x on every configuration where a jump fires).
"""

import json
import time
from pathlib import Path

import pytest

from repro.bench.cluster import CONFIG_NAMES, make_cluster
from repro.bench.micro import run_one_way

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_fastpath.json"

SIZE = 1 << 20  # the 1 MB point the paper's Figure 2 peaks at

# CI floor: measured speedups are 10-14x on a quiet box; 4x only trips on
# a real regression (e.g. the detector refusing to arm), not shared-runner
# noise.
MIN_SMOKE_SPEEDUP = 4.0
MAX_DIVERGENCE = 0.01


def _run(config: str, fastpath: bool) -> dict:
    cluster = make_cluster(config, fastpath=fastpath, synthetic_payloads=True)
    start = time.perf_counter()
    result = run_one_way(cluster, SIZE)
    wall = time.perf_counter() - start
    out = {
        "wall_s": round(wall, 4),
        "goodput_mb_s": round(result.throughput_mbps, 2),
        "elapsed_virtual_ns": result.elapsed_ns,
        "data_frames": result.data_frames,
    }
    if fastpath:
        stats = cluster.fastpath.stats
        out["coverage"] = stats.coverage(
            result.elapsed_ns, SIZE * result.iterations
        )
        out["denials"] = dict(stats.denials)
        out["abort_reasons"] = dict(stats.abort_reasons)
    return out


def measure_point(config: str, repeats: int = 3) -> dict:
    """Best-of-N walls for off/on; divergence from the (deterministic) runs."""
    best = None
    for _ in range(repeats):
        off = _run(config, fastpath=False)
        on = _run(config, fastpath=True)
        speedup = off["wall_s"] / on["wall_s"] if on["wall_s"] > 0 else 0.0
        if best is None or speedup > best["speedup_wall"]:
            best = {
                "config": config,
                "size": SIZE,
                "off": off,
                "on": on,
                "speedup_wall": round(speedup, 2),
                "goodput_divergence_pct": round(
                    abs(on["goodput_mb_s"] - off["goodput_mb_s"])
                    / off["goodput_mb_s"]
                    * 100,
                    4,
                ),
            }
    return best


def _load() -> dict:
    if BENCH_JSON.exists():
        return json.loads(BENCH_JSON.read_text())
    return {}

def _store(data: dict) -> None:
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_fastpath_smoke():
    point = measure_point("1L-1G")
    cov = point["on"]["coverage"]
    assert cov["jumps"] >= 1, point["on"]
    assert point["goodput_divergence_pct"] < MAX_DIVERGENCE * 100, point
    assert point["speedup_wall"] >= MIN_SMOKE_SPEEDUP, point
    data = _load()
    data["one_way_1MB_1L-1G"] = point
    _store(data)


@pytest.mark.slow
def test_fastpath_full():
    data = _load()
    for config in CONFIG_NAMES:
        point = measure_point(config)
        cov = point["on"]["coverage"]
        assert cov["jumps"] >= 1, (config, point["on"])
        assert point["goodput_divergence_pct"] < MAX_DIVERGENCE * 100, point
        data[f"one_way_1MB_{config}"] = point
    _store(data)
