"""Figure 2(b): micro-benchmark throughput versus transfer size.

Paper: 1-GbE configurations deliver >95 % of nominal link throughput
(≈120 MB/s on one link, ≈240 MB/s on two); on 10 GbE one-way reaches
≈1100 MB/s (≈88 % of nominal), ping-pong ≈710 MB/s, two-way ≈1500 MB/s.
"""

from conftest import FIG2_CONFIGS, FIG2_SIZES

from repro.bench import MICRO_BENCHMARKS, Table, micro_sweep
from repro.bench.paper_data import FIG2_MAX_THROUGHPUT_MBPS, LINK_NOMINAL_MBPS


def run_experiment():
    return {
        (config, bench): micro_sweep(config, bench, FIG2_SIZES)
        for config in FIG2_CONFIGS
        for bench in MICRO_BENCHMARKS
    }


def test_fig2b_throughput(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "Figure 2(b) — throughput (MBytes/s) vs transfer size",
        ["config", "benchmark"] + [str(s) for s in FIG2_SIZES],
    )
    for (config, bench), sweep in results.items():
        table.add(config, bench, *[r.throughput_mbps for r in sweep])
    table.show()

    check = Table(
        "Figure 2(b) — paper vs measured maxima",
        ["config", "benchmark", "paper MB/s", "measured MB/s", "nominal %"],
    )
    measured_max = {}
    for (config, bench), sweep in results.items():
        peak = max(r.throughput_mbps for r in sweep)
        measured_max[(config, bench)] = peak
        paper = FIG2_MAX_THROUGHPUT_MBPS.get((config, bench))
        nominal = LINK_NOMINAL_MBPS[config] * (2 if bench == "two-way" else 1)
        check.add(config, bench, paper, peak, 100 * peak / nominal)
    check.show()

    # Headline claims.
    one_g = measured_max[("1L-1G", "one-way")]
    assert one_g >= 0.93 * 125.0, "1-GbE should deliver >~95% of nominal"
    two_rails = measured_max[("2L-1G", "one-way")]
    assert two_rails >= 1.85 * one_g, "two rails should nearly double"
    ten_g = measured_max[("1L-10G", "one-way")]
    assert 0.80 * 1250 <= ten_g <= 0.97 * 1250, "10-GbE ~88% of nominal"
    # Ordering on 10 GbE: ping-pong < one-way <= two-way.
    assert (
        measured_max[("1L-10G", "ping-pong")]
        < measured_max[("1L-10G", "one-way")]
    )
    assert (
        measured_max[("1L-10G", "two-way")]
        >= measured_max[("1L-10G", "one-way")]
    )
