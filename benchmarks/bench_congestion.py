"""Congestion-control benchmarks: incast goodput collapse and recovery.

Measures what ``repro.congestion`` delivers on the many-to-one pattern
that motivates it, recorded to ``BENCH_congestion.json`` at the repo
root:

* **incast sweep** — 4/8/16 senders converging on one receiver for each
  controller (static window, AIMD, DCTCP+ECN).  Acceptance floors at
  16-to-1: each adaptive controller must cut switch tail drops by at
  least half *and* beat the static window's goodput;
* **single-flow parity** — with one sender there is no congestion, so
  every controller must produce the identical run (the adaptive cwnd
  starts at the full window and nothing ever shrinks it);
* **determinism** — the same configuration twice yields a byte-identical
  :class:`~repro.bench.incast.IncastResult`.

Invocations:

* smoke —
  ``PYTHONPATH=src python -m pytest benchmarks/bench_congestion.py -k smoke``
  (seconds; asserts the acceptance floors);
* full —
  ``PYTHONPATH=src python -m pytest benchmarks/bench_congestion.py -m slow``
  (adds ECN-assisted AIMD, pacing variants, and a 24-sender point).
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.bench.incast import run_incast
from repro.congestion import CongestionParams

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_congestion.json"

# Acceptance floors (ISSUE acceptance criteria).
MIN_DROP_REDUCTION = 0.50  # adaptive controllers halve tail drops at 16:1
ECN_THRESHOLD = 32  # frames; receiver queue is 160 on 1L-1G

# The sweep's controller variants: (label, controller, ecn threshold).
VARIANTS = (
    ("static", "static", None),
    ("aimd", "aimd", None),
    ("dctcp", "dctcp", ECN_THRESHOLD),
)


def _merge_bench_json(update: dict) -> dict:
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except json.JSONDecodeError:
            data = {}
    data.update(update)
    BENCH_JSON.write_text(json.dumps(data, indent=2) + "\n")
    return data


def _point(
    senders: int, congestion: str, ecn: int | None, **kw
) -> dict:
    r = run_incast(
        senders=senders,
        congestion=congestion,
        ecn_threshold_frames=ecn,
        **kw,
    )
    cwnds = r.final_cwnd_frames
    return {
        "senders": senders,
        "congestion": congestion,
        "ecn_threshold_frames": ecn,
        "goodput_mbps": round(r.goodput_bps / 1e6, 2),
        "elapsed_ns": r.elapsed_ns,
        "dropped_queue_full": r.dropped_queue_full,
        "peak_queue_depth": r.peak_queue_depth,
        "retransmissions": r.retransmissions,
        "timeout_retransmits": r.timeout_retransmits,
        "ce_marked": r.ce_marked,
        "ecn_echoes_received": r.ecn_echoes_received,
        "pacing_stall_ms": round(r.pacing_stall_ns / 1e6, 2),
        "final_cwnd_mean": (
            round(sum(cwnds) / len(cwnds), 1) if cwnds else None
        ),
    }


def test_congestion_smoke():
    """Incast sweep + acceptance floors + parity + determinism."""
    sweep = []
    by_key = {}
    for senders in (4, 8, 16):
        for label, congestion, ecn in VARIANTS:
            point = _point(senders, congestion, ecn)
            sweep.append(point)
            by_key[(senders, label)] = point

    # Acceptance floors at 16-to-1.
    static = by_key[(16, "static")]
    assert static["dropped_queue_full"] > 0, (
        "16:1 incast did not overflow the switch queue; the scenario is "
        "not exercising congestion at all"
    )
    for label in ("aimd", "dctcp"):
        adaptive = by_key[(16, label)]
        reduction = 1 - (
            adaptive["dropped_queue_full"] / static["dropped_queue_full"]
        )
        assert reduction >= MIN_DROP_REDUCTION, (
            f"{label}: only cut tail drops by {reduction:.0%} "
            f"({adaptive['dropped_queue_full']} vs "
            f"{static['dropped_queue_full']}), floor is "
            f"{MIN_DROP_REDUCTION:.0%}"
        )
        assert adaptive["goodput_mbps"] > static["goodput_mbps"], (
            f"{label}: {adaptive['goodput_mbps']} Mbps did not beat the "
            f"static window's {static['goodput_mbps']} Mbps at 16:1"
        )
    assert by_key[(16, "dctcp")]["ce_marked"] > 0, "ECN never marked a frame"
    assert by_key[(16, "dctcp")]["ecn_echoes_received"] > 0, (
        "no ECN echo ever reached a sender"
    )

    # Single-flow parity: one sender sees no congestion, so the adaptive
    # controllers must not perturb the run at all.
    single = {
        label: run_incast(senders=1, congestion=congestion,
                          ecn_threshold_frames=ecn)
        for label, congestion, ecn in VARIANTS
    }
    base = single["static"]
    for label, r in single.items():
        assert r.elapsed_ns == base.elapsed_ns, (
            f"single-flow {label} took {r.elapsed_ns} ns vs static "
            f"{base.elapsed_ns} ns"
        )
        assert r.dropped_queue_full == 0 and r.retransmissions == 0

    # Determinism witness: same parameters, same bytes.
    first = run_incast(senders=8, congestion="dctcp",
                       ecn_threshold_frames=ECN_THRESHOLD)
    second = run_incast(senders=8, congestion="dctcp",
                        ecn_threshold_frames=ECN_THRESHOLD)
    assert dataclasses.asdict(first) == dataclasses.asdict(second), (
        "identical incast configurations diverged"
    )

    report = {
        "incast_sweep_1L_1G": sweep,
        "single_flow_parity": {
            label: r.elapsed_ns for label, r in single.items()
        },
    }
    _merge_bench_json(report)
    print(json.dumps(report, indent=2))


@pytest.mark.slow
def test_congestion_full():
    """ECN-assisted AIMD, pacing, a wider fan-in, and data integrity."""
    report = {}

    # ECN-assisted AIMD and pacing variants at 16:1.
    variants = []
    variants.append(_point(16, "aimd", ECN_THRESHOLD))
    for label, congestion in (("aimd", "aimd"), ("dctcp", "dctcp")):
        variants.append(
            _point(
                16, congestion, ECN_THRESHOLD,
                congestion_params=CongestionParams(pacing=True),
            )
        )
    report["incast_variants_16"] = variants
    for point in variants:
        assert point["dropped_queue_full"] < 11_000  # far below static

    # Pacing actually pushed departures back.
    paced = variants[1]
    assert paced["pacing_stall_ms"] > 0, "pacing never delayed a frame"

    # Wider fan-in still completes and still beats static.
    static24 = _point(24, "static", None)
    dctcp24 = _point(24, "dctcp", ECN_THRESHOLD)
    report["incast_24"] = [static24, dctcp24]
    assert dctcp24["goodput_mbps"] > static24["goodput_mbps"]

    # End-to-end integrity with real payloads under heavy loss.
    r = run_incast(senders=16, congestion="dctcp",
                   ecn_threshold_frames=ECN_THRESHOLD, verify_data=True)
    assert r.data_intact, "receiver memory corrupted under incast"
    report["integrity_16_dctcp"] = {"data_intact": r.data_intact}

    _merge_bench_json(report)
    print(json.dumps(report, indent=2))
