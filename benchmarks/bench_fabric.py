"""Datacenter fabric benchmarks: oversubscribed incast and ECMP balance.

Measures what ``repro.fabric`` delivers on a 3:1-oversubscribed
leaf-spine (3 leaves x 6 hosts over 2 spine uplinks, 1 GbE everywhere),
recorded to ``BENCH_fabric.json`` at the repo root:

* **fabric incast** — the PR 4 controller comparison (static window,
  AIMD, DCTCP+ECN) pushed across the multi-switch fabric: 16 senders on
  leaves 0-2 converge on one receiver behind the last leaf, so queues
  now build at trunk ports as well as the access port.  Acceptance
  floors: each adaptive controller must cut switch tail drops by at
  least half at equal-or-better goodput;
* **ECMP evenness** — a 16-round permutation matrix; the max/min byte
  ratio across the spines must stay within 1.25 (the flow hash spreads
  offered load evenly);
* **fingerprint stability** — the single-switch fuzz fingerprints are
  re-pinned here, byte-identical: adding the fabric subsystem must not
  perturb the default path;
* **fabric fuzz** — randomized topologies/traffic with trunk churn keep
  every routing invariant (acyclicity, ECMP determinism, conservation);
* **determinism** — the same fabric configuration twice yields a
  byte-identical result.

Invocations:

* smoke —
  ``PYTHONPATH=src python -m pytest benchmarks/bench_fabric.py -k smoke``
  (asserts the acceptance floors);
* full —
  ``PYTHONPATH=src python -m pytest benchmarks/bench_fabric.py -m slow``
  (adds fat-tree matrices, trunk-failure rerouting, more fuzz seeds).
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.bench.fabric import run_ecmp_evenness, run_fabric_incast
from repro.fabric import AllToAll, FatTreeSpec, run_traffic
from repro.bench.cluster import make_cluster
from repro.verify.fuzz import (
    run_fabric_scenario,
    run_scenario,
    scenario_from_seed,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_fabric.json"

# Acceptance floors (ISSUE acceptance criteria).
MIN_DROP_REDUCTION = 0.50  # adaptive controllers halve drops at 16:1
MAX_ECMP_RATIO = 1.25  # max/min spine byte ratio on a permutation
ECN_THRESHOLD = 32
EVENNESS_SEED = 5  # deterministic; rounds=16 keeps the ratio tight

# The controller variants, mirroring benchmarks/bench_congestion.py.
VARIANTS = (
    ("static", "static", None),
    ("aimd", "aimd", None),
    ("dctcp", "dctcp", ECN_THRESHOLD),
)

# Single-switch fuzz fingerprints, pinned to the same values as
# tests/verify/test_fuzz.py: the fabric subsystem draws every new knob
# from its own RNG streams, so the default path stays byte-identical.
PINNED_FINGERPRINTS = {
    0: "9602b13563a225033d17f44a8a7f6a000f1b3aead3b7963aa5c0ca5e7e52a5dd",
    1: "7170900315165228ba1ed4ae8da7bb44c21b88c9ee64e60bb7f938c2b8699302",
    7: "a35296563d99515e316e117ef054870dd6e0b7dc34ebec061a8eb1fb1839ac23",
    42: "54c8bf57395628440066e52fa19dc508abb7d9180530e7c1ab85d0bfff4ca7c4",
    123: "8e62a7d62f364e104b71b44a396848168507bac1306179dbe03f2a1a9440fea0",
}


def _merge_bench_json(update: dict) -> dict:
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except json.JSONDecodeError:
            data = {}
    data.update(update)
    BENCH_JSON.write_text(json.dumps(data, indent=2) + "\n")
    return data


def _point(congestion: str, ecn: int | None, **kw) -> dict:
    r = run_fabric_incast(
        congestion=congestion, ecn_threshold_frames=ecn, **kw
    )
    assert r.routing_violations == [], r.routing_violations
    return {
        "congestion": congestion,
        "ecn_threshold_frames": ecn,
        "goodput_mbps": round(r.goodput_bps / 1e6, 2),
        "elapsed_ns": r.elapsed_ns,
        "dropped_queue_full": r.dropped_queue_full,
        "peak_queue_depth": r.peak_queue_depth,
        "retransmissions": r.retransmissions,
        "ce_marked": r.ce_marked,
        "per_switch_drops": r.per_switch_drops,
    }


def test_fabric_smoke():
    """Incast floors + ECMP evenness + fingerprints + fuzz + determinism."""
    points = {}
    for label, congestion, ecn in VARIANTS:
        points[label] = _point(congestion, ecn)

    static = points["static"]
    assert static["dropped_queue_full"] > 0, (
        "16:1 fabric incast did not overflow any switch queue; the "
        "scenario is not exercising congestion at all"
    )
    for label in ("aimd", "dctcp"):
        adaptive = points[label]
        reduction = 1 - (
            adaptive["dropped_queue_full"] / static["dropped_queue_full"]
        )
        assert reduction >= MIN_DROP_REDUCTION, (
            f"{label}: only cut drops by {reduction:.0%} "
            f"({adaptive['dropped_queue_full']} vs "
            f"{static['dropped_queue_full']}), floor is "
            f"{MIN_DROP_REDUCTION:.0%}"
        )
        assert adaptive["goodput_mbps"] >= static["goodput_mbps"], (
            f"{label}: {adaptive['goodput_mbps']} Mbps fell below the "
            f"static window's {static['goodput_mbps']} Mbps at 16:1"
        )
    assert points["dctcp"]["ce_marked"] > 0, "ECN never marked a frame"

    # ECMP evenness on a 16-round permutation matrix.
    evenness = run_ecmp_evenness(seed=EVENNESS_SEED)
    assert evenness.data_intact and evenness.messages_received == evenness.flows
    ratio = evenness.ecmp_evenness
    assert ratio <= MAX_ECMP_RATIO, (
        f"ECMP spine byte ratio {ratio:.3f} exceeds {MAX_ECMP_RATIO}"
    )

    # Single-switch fingerprints must not drift.
    for seed, expected in PINNED_FINGERPRINTS.items():
        res = run_scenario(scenario_from_seed(seed))
        assert res.ok, f"seed {seed}: {res.failure}"
        assert res.fingerprint == expected, (
            f"seed {seed} fingerprint drifted: {res.fingerprint}"
        )

    # Randomized fabrics with trunk churn keep the routing invariants.
    fuzz = [run_fabric_scenario(seed) for seed in range(6)]
    for r in fuzz:
        assert r.ok, (
            f"fabric fuzz seed {r.scenario.seed}: {r.violations or 'data loss'}"
        )

    # Determinism witness: same parameters, same bytes.
    first = run_fabric_incast(senders=8, congestion="dctcp",
                              ecn_threshold_frames=ECN_THRESHOLD)
    second = run_fabric_incast(senders=8, congestion="dctcp",
                               ecn_threshold_frames=ECN_THRESHOLD)
    assert dataclasses.asdict(first) == dataclasses.asdict(second), (
        "identical fabric incast configurations diverged"
    )

    report = {
        "fabric_incast_16_leafspine_3to1": list(points.values()),
        "ecmp_evenness_permutation": {
            "seed": EVENNESS_SEED,
            "rounds": 16,
            "bytes_per_flow": 16_000,
            "spine_byte_ratio": round(ratio, 4),
            "trunk_byte_ratio": round(evenness.trunk_evenness, 4),
            "uplink_bytes": {
                f"{lo}->{hi}": b
                for (lo, hi), b in sorted(evenness.uplink_bytes.items())
            },
        },
        "fabric_fuzz": [
            {
                "seed": r.scenario.seed,
                "topology": r.scenario.topology,
                "traffic": r.scenario.traffic,
                "trunk_events": len(r.scenario.trunk_events),
                "flows": r.flows,
                "repins": r.repins,
                "switch_drops": r.switch_drops,
            }
            for r in fuzz
        ],
        "single_switch_fingerprints_stable": sorted(PINNED_FINGERPRINTS),
    }
    _merge_bench_json(report)
    print(json.dumps(report, indent=2))


@pytest.mark.slow
def test_fabric_full():
    """Fat-tree matrices, trunk-failure rerouting, and more fuzz seeds."""
    report = {}

    # All-to-all over a k=4 fat-tree subset: multi-tier ECMP end to end.
    cluster = make_cluster(
        "1L-1G", nodes=8, seed=0, synthetic_payloads=False,
        fabric=FatTreeSpec(k=4),
    )
    r = run_traffic(cluster, AllToAll(bytes_per_flow=8_192), seed=0)
    assert r.data_intact and r.messages_received == r.flows
    violations = [v for f in cluster.fabrics for v in f.routing_invariants()]
    assert violations == [], violations
    report["fat_tree_all_to_all_8"] = {
        "flows": r.flows,
        "goodput_mbps": round(r.goodput_bps / 1e6, 2),
        "switch_drops": r.switch_drops,
    }

    # A failed trunk mid-incast: flows re-pin and the run still drains.
    from repro.bench.fabric import leaf_spine_3to1

    cluster2 = make_cluster(
        "1L-1G", nodes=18, seed=1, synthetic_payloads=False,
        fabric=leaf_spine_3to1(),
    )
    fabric = cluster2.fabrics[0]
    cluster2.sim.at(200_000, fabric.fail_trunk, "leaf0.0", "spine0.0",
                    2_000_000)
    from repro.fabric import Permutation

    r2 = run_traffic(cluster2, Permutation(16_000, rounds=4), seed=1)
    assert r2.data_intact and r2.messages_received == r2.flows
    violations = [v for f in cluster2.fabrics for v in f.routing_invariants()]
    assert violations == [], violations
    repins = sum(sw.repins for sw in fabric.switches)
    assert repins > 0, "trunk failure never re-pinned a flow"
    report["trunk_failure_repin"] = {
        "flows": r2.flows,
        "repins": repins,
        "retransmissions": r2.retransmissions,
    }

    # Wider fuzz sweep.
    fuzz = [run_fabric_scenario(seed) for seed in range(6, 26)]
    for r3 in fuzz:
        assert r3.ok, (
            f"fabric fuzz seed {r3.scenario.seed}: "
            f"{r3.violations or 'data loss'}"
        )
    report["fabric_fuzz_extended"] = {
        "seeds": [r3.scenario.seed for r3 in fuzz],
        "total_repins": sum(r3.repins for r3 in fuzz),
    }

    _merge_bench_json(report)
    print(json.dumps(report, indent=2))
