"""Figure 2(c): protocol CPU utilization versus transfer size.

Plotted out of 200 % (two CPUs per node), like the paper.  Paper maxima:
1 GbE — ping-pong ≤35 %, one-way ≤30 %, two-way up to 140 % (small ops);
10 GbE — ping-pong ≈75 %, one-way ≈95 %, two-way ≈170 %.

Known deviation (see EXPERIMENTS.md): our simulated driver splits the
send path across both CPUs and fully accounts interrupt time, so the
10-GbE utilization runs higher than the paper's (which "somewhat
underestimates CPU utilization"); orderings and magnitudes per benchmark
are preserved.
"""

from conftest import FIG2_CONFIGS, FIG2_SIZES

from repro.bench import MICRO_BENCHMARKS, Table, micro_sweep
from repro.bench.paper_data import FIG2_MAX_CPU_PCT


def run_experiment():
    return {
        (config, bench): micro_sweep(config, bench, FIG2_SIZES)
        for config in FIG2_CONFIGS
        for bench in MICRO_BENCHMARKS
    }


def test_fig2c_cpu_utilization(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "Figure 2(c) — protocol CPU utilization (% of 200)",
        ["config", "benchmark"] + [str(s) for s in FIG2_SIZES],
    )
    for (config, bench), sweep in results.items():
        table.add(config, bench, *[r.cpu_util_pct for r in sweep])
    table.show()

    check = Table(
        "Figure 2(c) — paper vs measured maxima",
        ["config", "benchmark", "paper %", "measured %"],
    )
    measured = {}
    for (config, bench), sweep in results.items():
        peak = max(r.cpu_util_pct for r in sweep)
        measured[(config, bench)] = peak
        check.add(config, bench, FIG2_MAX_CPU_PCT.get((config, bench)), peak)
    check.show()

    # Shape assertions: 10G costs far more CPU than 1G; large 1G transfers
    # stay cheap; utilization never exceeds the 2-CPU budget.
    for (config, bench), peak in measured.items():
        assert peak <= 200.0
    # Compare at large transfers (small ops saturate the issue path on
    # any link speed, so the sweep peaks converge there).
    big = lambda cfg, bench: max(
        r.cpu_util_pct for r in results[(cfg, bench)] if r.size >= 16384
    )
    assert big("1L-10G", "one-way") > 2.0 * big("1L-1G", "one-way")
    big_1g = [
        r.cpu_util_pct
        for r in results[("1L-1G", "one-way")]
        if r.size >= 16384
    ]
    assert max(big_1g) < 70.0
    # Ping-pong is the least CPU-hungry pattern on 1 GbE.
    assert (
        max(r.cpu_util_pct for r in results[("1L-1G", "ping-pong")])
        < measured[("1L-1G", "two-way")]
    )
