"""Figure 4: application statistics over a single 10-GbE link (1L-10G).

Paper: with only 4 nodes, most applications reach speedups of 3–4 (except
FFT and Radix); synchronization and data-wait time improve by about a
factor of two versus the 1-GbE setup.
"""

from repro.bench import Table, app_run, check_band
from repro.bench.paper_data import APP_ORDER, FIG4_SPEEDUP_BANDS

NODE_COUNTS = (1, 2, 4)


def run_experiment():
    runs = {
        (name, n): app_run(name, "1L-10G", n)
        for name in APP_ORDER
        for n in NODE_COUNTS
    }
    # 1-GbE four-node runs for the factor-of-two comparison.
    ref = {name: app_run(name, "1L-1G", 4) for name in APP_ORDER}
    return runs, ref


def test_fig4_apps_single_10g_link(benchmark):
    runs, ref = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    speed = Table(
        "Figure 4(a) — speedups over 1L-10G",
        ["app"] + [f"{n} nodes" for n in NODE_COUNTS] + ["paper band @4"],
    )
    speedups = {}
    for name in APP_ORDER:
        base = runs[(name, 1)]
        curve = [runs[(name, n)].speedup_vs(base) for n in NODE_COUNTS]
        speedups[name] = curve[-1]
        lo, hi = FIG4_SPEEDUP_BANDS[name]
        speed.add(name, *curve, f"{lo}-{hi}")
    speed.show()

    comp = Table(
        "Figure 4(b) — sync + data-wait vs 1L-1G at 4 nodes (ms)",
        ["app", "1L-1G wait", "1L-10G wait", "improvement x"],
    )
    improvements = []
    for name in APP_ORDER:
        b1 = ref[name].mean_breakdown
        b10 = runs[(name, 4)].mean_breakdown
        wait_1g = (b1.data_wait + b1.sync) * ref[name].elapsed_ms
        wait_10g = (b10.data_wait + b10.sync) * runs[(name, 4)].elapsed_ms
        factor = wait_1g / wait_10g if wait_10g > 0 else float("inf")
        improvements.append(factor)
        comp.add(name, wait_1g, wait_10g, factor)
    comp.show()

    for name in APP_ORDER:
        assert runs[(name, 4)].verified, name
        assert check_band(speedups[name], FIG4_SPEEDUP_BANDS[name], slack=0.4), (
            name, speedups[name]
        )
    # Paper: wait times improve "by about a factor of two on most
    # applications".  Bandwidth-bound waits improve strongly in our model;
    # latency-bound lock/barrier waits less so — require a meaningful
    # improvement on several applications and overall.
    improved = sum(1 for f in improvements if f >= 1.35)
    assert improved >= 3, improvements
    assert sum(improvements) / len(improvements) >= 1.2, improvements
    # FFT and Radix "still spend a significant portion of execution time
    # in communication and barrier synchronization" on 10 GbE.
    for name in ("fft", "radix"):
        b = runs[(name, 4)].mean_breakdown
        assert b.data_wait + b.sync >= 0.20, name
