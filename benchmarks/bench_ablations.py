"""Ablations for the design choices DESIGN.md calls out.

Not figures from the paper — these quantify the mechanisms behind them:

* sliding-window size (flow control headroom vs memory),
* delayed-ack threshold (extra traffic vs ack latency),
* striping policy (round-robin vs shortest-queue vs single rail),
* interrupt coalescing depth (CPU cost vs latency),
* in-order vs fence-mode delivery cost on two rails,
* selective repeat vs go-back-N under loss,
* frame striping vs byte-level striping (the paper's §1 contrast).
"""

from dataclasses import replace

from repro.baselines import install_go_back_n, run_byte_striping
from repro.bench import Table, make_cluster
from repro.bench.micro import run_one_way, run_ping_pong
from repro.core import AckPolicyParams, ProtocolParams
from repro.ethernet import LinkParams


def run_experiment():
    out = {}

    # 1. Window size sweep (one-way, 1L-1G).
    out["window"] = []
    for window in (8, 32, 128, 256):
        proto = ProtocolParams(window_frames=window)
        cluster = make_cluster("1L-1G", nodes=2, protocol=proto)
        r = run_one_way(cluster, 262144, iterations=10)
        out["window"].append((window, r.throughput_mbps))

    # 2. Delayed-ack threshold sweep.
    out["ack"] = []
    for every in (2, 8, 32, 128):
        proto = ProtocolParams(ack=AckPolicyParams(ack_every_frames=every))
        cluster = make_cluster("1L-1G", nodes=2, protocol=proto)
        r = run_one_way(cluster, 262144, iterations=10)
        out["ack"].append((every, r.throughput_mbps, r.extra_frame_fraction))

    # 3. Striping policies on two rails.
    out["striping"] = []
    for policy in ("round_robin", "shortest_queue", "single_rail"):
        proto = ProtocolParams(striping=policy)
        cluster = make_cluster("2Lu-1G", nodes=2, protocol=proto)
        r = run_one_way(cluster, 524288, iterations=10)
        out["striping"].append(
            (policy, r.throughput_mbps, r.out_of_order_fraction)
        )

    # 4. Interrupt coalescing depth (ping-pong latency vs CPU).
    out["coalesce"] = []
    for frames in (1, 4, 8, 32):
        cluster = make_cluster("1L-1G", nodes=2)
        for node in cluster.nodes:
            for nic in node.nics:
                nic.params = replace(nic.params, coalesce_frames=frames)
        lat = run_ping_pong(cluster, 64)
        out["coalesce"].append((frames, lat.latency_us, lat.cpu_util_pct))

    # 5. In-order vs fence-mode delivery on two rails.
    ordered = run_one_way(make_cluster("2L-1G", nodes=2), 524288, iterations=10)
    relaxed = run_one_way(make_cluster("2Lu-1G", nodes=2), 524288, iterations=10)
    out["ordering"] = [
        ("in-order", ordered.throughput_mbps, ordered.cpu_util_pct),
        ("fences", relaxed.throughput_mbps, relaxed.cpu_util_pct),
    ]

    # 6. Selective repeat vs go-back-N under bit errors.
    link = LinkParams(speed_bps=1e9, bit_error_rate=3e-7)
    sel = run_one_way(
        make_cluster("1L-1G", nodes=2, link=link), 262144, iterations=10
    )
    cluster = make_cluster("1L-1G", nodes=2, link=link)
    for s in cluster.stacks:
        install_go_back_n(s.protocol)
    gbn = run_one_way(cluster, 262144, iterations=10)
    out["recovery"] = [
        ("selective", sel.throughput_mbps, sel.extra_frame_fraction),
        ("go-back-N", gbn.throughput_mbps, gbn.extra_frame_fraction),
    ]

    # 7. Frame striping (MultiEdge) vs byte-level striping on 2 rails.
    frame2 = run_one_way(make_cluster("2Lu-1G", nodes=2), 524288, iterations=10)
    byte2 = run_byte_striping(make_cluster("2L-1G", nodes=2), 2_000_000)
    out["spatial"] = [
        ("frame striping", frame2.throughput_mbps),
        ("byte striping", byte2.throughput_mbps),
    ]
    return out


def test_ablations(benchmark):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    t = Table("Ablation: window size (one-way 1L-1G)", ["window", "MB/s"])
    for w, thr in out["window"]:
        t.add(w, thr)
    t.show()

    t = Table(
        "Ablation: delayed-ack threshold", ["ack every", "MB/s", "extra frames"]
    )
    for e, thr, extra in out["ack"]:
        t.add(e, thr, extra)
    t.show()

    t = Table(
        "Ablation: striping policy (2 rails)", ["policy", "MB/s", "out-of-order"]
    )
    for p, thr, ooo in out["striping"]:
        t.add(p, thr, ooo)
    t.show()

    t = Table(
        "Ablation: interrupt coalescing", ["frames/irq", "latency us", "CPU %"]
    )
    for f, lat, cpu in out["coalesce"]:
        t.add(f, lat, cpu)
    t.show()

    t = Table("Ablation: delivery ordering (2 rails)", ["mode", "MB/s", "CPU %"])
    for m, thr, cpu in out["ordering"]:
        t.add(m, thr, cpu)
    t.show()

    t = Table(
        "Ablation: loss recovery at BER 3e-7", ["scheme", "MB/s", "extra frames"]
    )
    for m, thr, extra in out["recovery"]:
        t.add(m, thr, extra)
    t.show()

    t = Table("Ablation: spatial parallelism style", ["scheme", "MB/s"])
    for m, thr in out["spatial"]:
        t.add(m, thr)
    t.show()

    # -- assertions --------------------------------------------------------
    window = dict(out["window"])
    assert window[8] < window[128], "tiny window must throttle throughput"
    assert window[128] >= 0.9 * window[256]

    acks = {e: (thr, extra) for e, thr, extra in out["ack"]}
    assert acks[2][1] > acks[32][1], "frequent acks => more extra traffic"
    assert acks[32][0] >= 0.95 * acks[2][0]

    striping = {p: (thr, ooo) for p, thr, ooo in out["striping"]}
    assert striping["round_robin"][0] > 1.7 * striping["single_rail"][0]
    assert striping["single_rail"][1] < 0.01
    assert striping["round_robin"][1] > 0.05

    coalesce = {f: (lat, cpu) for f, lat, cpu in out["coalesce"]}
    # Depth-1 coalescing interrupts immediately: small-message latency must
    # be no worse than deep coalescing (which waits out the timer).
    assert coalesce[1][0] <= coalesce[32][0] + 2.0

    ordering = dict((m, thr) for m, thr, _ in out["ordering"])
    assert abs(ordering["in-order"] - ordering["fences"]) < 0.1 * ordering["fences"]

    recovery = {m: (thr, extra) for m, thr, extra in out["recovery"]}
    assert recovery["selective"][0] > 1.5 * recovery["go-back-N"][0]
    assert recovery["go-back-N"][1] > recovery["selective"][1]

    spatial = dict(out["spatial"])
    assert spatial["frame striping"] > spatial["byte striping"]
