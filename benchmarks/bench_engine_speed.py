"""Engine and hot-path speed tracking (the perf-regression harness).

Two measurements, recorded to ``BENCH_engine.json`` at the repo root so the
performance trajectory is tracked from PR to PR:

* **engine level** — events/sec of the optimised two-lane engine
  (:class:`repro.sim.core.Simulator`) against the frozen seed engine
  (:class:`repro.sim.reference.SeedSimulator`) on the protocol-shaped event
  mix of the one-way 1L-1G sweep: per simulated frame, four positive-delay
  wire events, two timer-driven CPU-charge resumes, three zero-delay
  wake-ups, and a retransmit-style timer that is armed and then cancelled
  (the census of a real 1 MB run: ~77.6 k heap events, ~71.8 k zero-delay
  events, ~4.2 k timer fires).
* **full stack** — wall time and effective events/sec of the one-way 1L-1G
  micro-benchmark (the 1 MB point the paper's Figure 2 peaks at, plus the
  full Fig-2 sweep in the slow variant), compared against the seed tree:
  the slow test materialises the seed commit in a temporary git worktree
  and times the identical sweep there.  "Effective events/sec" charges both
  trees with the *seed* run's event count, so eliminating events counts as
  speedup rather than hiding it.

Invocations (documented in README):

* ``bench-smoke`` —
  ``PYTHONPATH=src python -m pytest benchmarks/bench_engine_speed.py -k smoke``
  (seconds; asserts sanity floors on events/sec), part of any perf change's
  checklist;
* full —
  ``PYTHONPATH=src python -m pytest benchmarks/bench_engine_speed.py -m slow``
  (re-times the seed tree too and rewrites every ``BENCH_engine.json``
  field).
"""

import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import pytest

from repro.bench.cluster import make_cluster
from repro.bench.micro import run_micro
from repro.sim.core import Simulator
from repro.sim.reference import SeedSimulator

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_engine.json"

# Floors for the smoke test.  They are deliberately well under the measured
# values (engine ratio ~1.5-1.9x, absolute ~1M events/s on the dev box) so
# they only trip on real regressions, not machine noise.
SMOKE_MIN_ENGINE_RATIO = 1.2
SMOKE_MIN_EVENTS_PER_SEC = 150_000

# The stack must beat the seed tree by at least this factor on the 1 MB
# one-way point (measured ~1.5-1.7x; the ISSUE's stretch target is 3x).
MIN_STACK_SPEEDUP = 1.25


# ---------------------------------------------------------------------------
# Engine-level microbenchmark
# ---------------------------------------------------------------------------

def _drive_mix(sim, frames: int) -> tuple[int, float]:
    """Run the protocol-shaped event mix; returns (events, wall_seconds)."""
    start = time.perf_counter()

    def proc():
        for i in range(frames):
            # Zero-delay wake-ups (event trigger chains: IRQ gate, ring
            # hand-off, resource grant).
            ev = sim.event()
            sim.schedule(0, ev.trigger, None)
            yield ev
            # Wire path: DMA, serialisation, switch forward, delivery.
            yield 600
            yield 12336
            yield 1000
            yield 600
            # Retransmit-style timer: armed, then cancelled by the ack.
            t = sim.timer(400_000, _noop)
            t.cancel()
            ev2 = sim.event()
            sim.schedule(0, ev2.trigger, None)
            yield ev2
            # Receive-side CPU charges (per-frame recv + memcpy).
            yield 650
            yield 1200

    p = sim.process(proc())
    sim.run_until_done(p)
    return sim.events_processed, time.perf_counter() - start


def _noop() -> None:
    pass


def measure_engines(frames: int = 50_000, repeats: int = 3) -> dict:
    """Best-of-N events/sec for both engines on the same mix."""
    out = {}
    for name, cls in (("seed_engine", SeedSimulator), ("new_engine", Simulator)):
        best = None
        for _ in range(repeats):
            events, wall = _drive_mix(cls(), frames)
            rate = events / wall
            if best is None or rate > best["events_per_sec"]:
                best = {
                    "events": events,
                    "wall_s": round(wall, 4),
                    "events_per_sec": round(rate),
                }
        out[name] = best
    out["engine_ratio"] = round(
        out["new_engine"]["events_per_sec"] / out["seed_engine"]["events_per_sec"], 3
    )
    return out


# ---------------------------------------------------------------------------
# Full-stack measurements
# ---------------------------------------------------------------------------

def _time_stack_point(
    config: str,
    benchmark: str,
    size: int,
    repeats: int = 3,
    fastpath: bool = False,
) -> dict:
    """Best-of-N wall time for one uncached micro point on this tree.

    Phases are timed separately — ``setup`` (cluster construction and
    wiring) and ``run`` (the actual simulation, with its own events/s) —
    so a hot-path change shows up where it acts instead of being diluted
    by constant setup cost.
    """
    best = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        cluster = make_cluster(
            config, nodes=2, seed=0, synthetic_payloads=True,
            fastpath=fastpath,
        )
        setup_s = time.perf_counter() - t0
        iterations = 10 if size >= 262144 else None
        start = time.perf_counter()
        run_micro(benchmark, cluster, size, iterations=iterations)
        wall = time.perf_counter() - start
        if best is None or wall < best["wall_s"]:
            events = cluster.sim.events_processed
            best = {
                "wall_s": round(wall, 4),  # run phase only (setup excluded)
                "setup_s": round(setup_s, 4),
                "events": events,
                "events_per_sec": round(events / wall) if wall > 0 else 0,
                "heap_pushes": cluster.sim.heap_pushes,
                "fastlane_hits": cluster.sim.fastlane_hits,
                "cancelled_popped": cluster.sim.cancelled_popped,
            }
            if fastpath and cluster.fastpath is not None:
                best["fastpath"] = cluster.fastpath.stats.to_dict()
    return best


_SEED_POINT_SCRIPT = """\
import json, sys, time
sys.path.insert(0, sys.argv[1])
from repro.bench.cluster import make_cluster
from repro.bench.micro import run_micro
best = None
for _ in range(3):
    cluster = make_cluster("{config}", nodes=2, seed=0)
    start = time.perf_counter()
    run_micro("{benchmark}", cluster, {size}, iterations={iterations})
    wall = time.perf_counter() - start
    if best is None or wall < best["wall_s"]:
        best = {{"wall_s": round(wall, 4),
                 "events": cluster.sim.events_processed}}
print(json.dumps(best))
"""


def _time_seed_tree_point(config: str, benchmark: str, size: int) -> dict | None:
    """Time the same point on the seed commit, in a temporary worktree.

    Returns None when the baseline cannot be materialised (no git history,
    shallow clone) — callers then skip the comparison rather than fail.
    """
    try:
        seed_commit = subprocess.run(
            ["git", "-C", str(REPO_ROOT), "rev-list", "--max-parents=0", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (subprocess.CalledProcessError, FileNotFoundError):
        return None
    tmp = tempfile.mkdtemp(prefix="seedtree-")
    worktree = str(Path(tmp) / "seed")
    try:
        subprocess.run(
            ["git", "-C", str(REPO_ROOT), "worktree", "add", "--detach",
             worktree, seed_commit],
            capture_output=True, check=True,
        )
        script = _SEED_POINT_SCRIPT.format(
            config=config, benchmark=benchmark, size=size,
            iterations=10 if size >= 262144 else None,
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, str(Path(worktree) / "src")],
            capture_output=True, text=True, check=True, timeout=600,
        )
        result = json.loads(proc.stdout)
        result["commit"] = seed_commit[:12]
        return result
    except (subprocess.CalledProcessError, subprocess.TimeoutExpired,
            json.JSONDecodeError):
        return None
    finally:
        subprocess.run(
            ["git", "-C", str(REPO_ROOT), "worktree", "remove", "--force",
             worktree],
            capture_output=True,
        )


def _merge_bench_json(update: dict) -> dict:
    """Merge ``update`` into BENCH_engine.json (smoke and full both write)."""
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except json.JSONDecodeError:
            data = {}
    data.update(update)
    BENCH_JSON.write_text(json.dumps(data, indent=2) + "\n")
    return data


# ---------------------------------------------------------------------------
# Tests
# ---------------------------------------------------------------------------

def test_engine_speed_smoke():
    """Sanity floors on engine throughput (the ``bench-smoke`` invocation)."""
    engines = measure_engines()
    point = _time_stack_point("1L-1G", "one-way", 1_048_576, repeats=2)
    point_ff = _time_stack_point(
        "1L-1G", "one-way", 1_048_576, repeats=2, fastpath=True
    )
    report = {
        "engine_mix": engines,
        "stack_one_way_1L_1G_1MB": point,
        "stack_one_way_1L_1G_1MB_fastpath": point_ff,
        "fastpath_speedup_one_way_1MB": round(
            point["wall_s"] / point_ff["wall_s"], 3
        ) if point_ff["wall_s"] > 0 else None,
    }
    _merge_bench_json(report)
    print(json.dumps(report, indent=2))
    assert (
        engines["new_engine"]["events_per_sec"] >= SMOKE_MIN_EVENTS_PER_SEC
    ), "engine throughput collapsed below the sanity floor"
    assert engines["engine_ratio"] >= SMOKE_MIN_ENGINE_RATIO, (
        "two-lane engine no longer meaningfully faster than the seed engine"
    )


@pytest.mark.slow
def test_engine_speed_full():
    """Full harness: seed-tree baseline, Fig-2 sweep walls, speedup ratios."""
    engines = measure_engines(frames=100_000)
    report = {"engine_mix": engines}

    # Per-figure wall times: the three micro benchmarks at their 1 MB peak
    # (the points every Figure-2 panel is bottlenecked on), each with a
    # fastpath-enabled twin so the comparison shows where fast-forward
    # helps (one-way arms; ping-pong and two-way stay frame-level).
    for benchmark in ("one-way", "ping-pong", "two-way"):
        report[f"stack_{benchmark}_1L_1G_1MB"] = _time_stack_point(
            "1L-1G", benchmark, 1_048_576
        )
        report[f"stack_{benchmark}_1L_1G_1MB_fastpath"] = _time_stack_point(
            "1L-1G", benchmark, 1_048_576, fastpath=True
        )

    # Seed-tree comparison on the headline point.
    current = report["stack_one-way_1L_1G_1MB"]
    seed = _time_seed_tree_point("1L-1G", "one-way", 1_048_576)
    if seed is not None:
        speedup = seed["wall_s"] / current["wall_s"]
        report["seed_tree_one_way_1L_1G_1MB"] = seed
        report["stack_speedup_vs_seed"] = round(speedup, 3)
        # Effective events/sec: both trees charged with the seed event count.
        report["effective_events_per_sec"] = {
            "seed_tree": round(seed["events"] / seed["wall_s"]),
            "current": round(seed["events"] / current["wall_s"]),
        }
    _merge_bench_json(report)
    print(json.dumps(report, indent=2))

    if seed is None:
        pytest.skip("seed tree unavailable (no git history); recorded current only")
    assert report["stack_speedup_vs_seed"] >= MIN_STACK_SPEEDUP, (
        f"hot-path speedup regressed: {report['stack_speedup_vs_seed']}x "
        f"< {MIN_STACK_SPEEDUP}x vs the seed tree"
    )
