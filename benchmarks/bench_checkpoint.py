"""Checkpoint benchmarks: snapshot cost, warm sweeps, fast shrinking.

Measures what the checkpoint/restore subsystem (``repro.checkpoint``)
costs and what its fork-based payoffs save, recorded to
``BENCH_checkpoint.json`` at the repo root:

* **snapshot/restore cost** — wall-clock to capture the full simulator
  state (flattened paths + SHA-256 fingerprint) mid-run, and to restore
  (verified replay) the same checkpoint;
* **warm-start speedup** — a one-way sweep up to 1 MB where the shared
  prefix (cluster build, connect, warmup stream) is simulated once and
  each size forks from it, vs the cold twin that rebuilds the prefix per
  size.  The two must be bit-identical; the fork path is just faster;
* **shrinker savings** — minimizing a prefix-heavy failing scenario with
  fork-from-checkpoint probes vs cold re-execution from t=0.  Both must
  reach the same minimal scenario.

Invocations:

* smoke —
  ``PYTHONPATH=src python -m pytest benchmarks/bench_checkpoint.py -k smoke``
  (seconds; asserts bit-identity and the speedup floors).
"""

import json
import time
from dataclasses import replace
from pathlib import Path

import pytest

from repro.bench.parallel import warm_micro_sweep
from repro.checkpoint import restore, take_checkpoint
from repro.checkpoint.fork import HAVE_FORK
from repro.checkpoint.shrink import shrink_scenario_checkpointed
from repro.control import Outage, PermanentFailure
from repro.verify.fuzz import (
    OpSpec,
    ScenarioRun,
    run_scenario,
    scenario_from_seed,
    shrink_scenario,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_checkpoint.json"

MS = 1_000_000

# Acceptance floors.  Bit-identity is the hard requirement; the speedup
# floors are deliberately modest (CI machines are noisy) — the recorded
# numbers carry the real magnitude.
MIN_WARM_SPEEDUP = 1.05
MIN_SHRINK_SPEEDUP = 1.5

WARM_SIZES = (1024, 4096, 16384, 65536, 262144, 1048576)


def _merge_bench_json(update: dict) -> dict:
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except json.JSONDecodeError:
            data = {}
    data.update(update)
    BENCH_JSON.write_text(json.dumps(data, indent=2) + "\n")
    return data


def _prefix_heavy_failing_scenario():
    """A failing case whose healthy prefix dominates the run: a 1 MB
    write streams for 30 ms (of ~44 ms to complete) before a permanent
    single-rail failure kills it, trailed by sixteen red-herring outages
    the shrinker probes (and drops) one by one.  Cold, every fault probe
    re-simulates the 30 ms prefix; parked, it forks past it.  Halving
    the op passes (512 KB completes before the kill), so the park is
    built once and serves the whole session."""
    decoys = tuple(
        Outage(
            at_ns=(31 + k) * MS,
            node=k % 2,
            rail=0,
            duration_ns=MS // 2,
        )
        for k in range(16)
    )
    # Knobs pinned to their simplest values: the stream runs at full
    # line rate (an event-dense, expensive-to-resimulate prefix) and the
    # shrinker's knob pass has nothing left to simplify.
    return replace(
        scenario_from_seed(5, "small", "none"),
        config="1L-1G",
        nodes=2,
        striping=None,
        control_plane=False,
        congestion="static",
        pacing=False,
        tx_ring_frames=None,
        ecn_threshold=None,
        ops=(
            OpSpec(src=0, dst=1, kind="write", size=1_048_576, wait=True),
        ),
        faults=(PermanentFailure(at_ns=30 * MS, node=0, rail=0),) + decoys,
        limit_ns=200 * MS,
    )


def test_snapshot_restore_cost_smoke():
    """Capture + verified-restore cost on a mid-flight fuzz scenario."""
    sc = scenario_from_seed(9, "mixed", "outage")
    run = ScenarioRun(sc)
    run.run_to(1_500_000)

    t0 = time.perf_counter()
    ck = take_checkpoint(run)
    capture_ms = (time.perf_counter() - t0) * 1e3

    t0 = time.perf_counter()
    restored = restore(ck)  # rebuild, replay, re-capture, verify
    restore_ms = (time.perf_counter() - t0) * 1e3

    # The checkpointed run and its restore finish bit-identically to an
    # uninterrupted run (the witness protocol).
    ref = run_scenario(sc)
    assert run.finish() == ref
    assert restored.finish() == ref

    report = {
        "snapshot_restore": {
            "scenario": "seed 9 mixed/outage @ 1.5 ms",
            "state_paths": len(ck.state),
            "capture_ms": round(capture_ms, 2),
            "verified_restore_ms": round(restore_ms, 2),
        }
    }
    _merge_bench_json(report)
    print(json.dumps(report, indent=2))


@pytest.mark.skipif(not HAVE_FORK, reason="requires os.fork")
def test_warm_sweep_smoke():
    """Forked warm sweep == cold sweep, at a measured wall-clock saving."""
    # A substantial warmup stream (128 x 16 KiB) makes the shared prefix
    # worth sharing; the fork path pays it once, the cold path per size.
    t0 = time.perf_counter()
    warm = warm_micro_sweep(
        "1L-1G", sizes=WARM_SIZES, warmup=128, warmup_size=16384,
        use_fork=True,
    )
    warm_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    cold = warm_micro_sweep(
        "1L-1G", sizes=WARM_SIZES, warmup=128, warmup_size=16384,
        use_fork=False,
    )
    cold_s = time.perf_counter() - t0

    assert warm == cold, "forked warm sweep diverged from cold rebuild"
    speedup = cold_s / warm_s
    report = {
        "warm_sweep": {
            "config": "1L-1G",
            "sizes": list(WARM_SIZES),
            "warm_s": round(warm_s, 3),
            "cold_s": round(cold_s, 3),
            "speedup": round(speedup, 2),
            "bit_identical": True,
        }
    }
    _merge_bench_json(report)
    print(json.dumps(report, indent=2))
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm sweep {warm_s:.3f}s vs cold {cold_s:.3f}s "
        f"({speedup:.2f}x, floor {MIN_WARM_SPEEDUP}x)"
    )


@pytest.mark.skipif(not HAVE_FORK, reason="requires os.fork")
def test_shrinker_savings_smoke():
    """Fork-from-checkpoint probes reach the cold shrinker's answer faster."""
    sc = _prefix_heavy_failing_scenario()
    assert not run_scenario(sc).ok, "scenario must fail for shrinking"

    t0 = time.perf_counter()
    cold_min = shrink_scenario(sc)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    fast_min, stats = shrink_scenario_checkpointed(sc)
    fast_s = time.perf_counter() - t0

    assert fast_min == cold_min, "checkpointed shrink found a different minimum"
    assert stats.fast_probes > 0, "fork point never answered a probe"
    speedup = cold_s / fast_s
    report = {
        "shrinker": {
            "scenario": "1 MB write, rail killed at 30 ms, 16 decoy outages",
            "minimal_faults": len(fast_min.faults),
            "fast_probes": stats.fast_probes,
            "cold_probes": stats.cold_probes,
            "reparks": stats.reparks,
            "fast_s": round(fast_s, 3),
            "cold_s": round(cold_s, 3),
            "speedup": round(speedup, 2),
        }
    }
    _merge_bench_json(report)
    print(json.dumps(report, indent=2))
    assert speedup >= MIN_SHRINK_SPEEDUP, (
        f"checkpointed shrink {fast_s:.3f}s vs cold {cold_s:.3f}s "
        f"({speedup:.2f}x, floor {MIN_SHRINK_SPEEDUP}x)"
    )
