#!/usr/bin/env python
"""A gray replica drags the p99; tail tolerance buys it back.

Fail-stop crashes are the easy case — the detector fires and the
balancer routes around the corpse (see ``examples/serving.py``).  This
example shows the harder one: a replica that stays *alive* but runs 10x
slow.  Every heartbeat still answers, so no failure detector ever
fires; only the tail latency knows something is wrong.

The same open-loop load runs three times:

* **baseline** — every replica healthy;
* **gray, unmitigated** — one replica slowed 10x mid-run.  The p99
  explodes even though 7 of 8 replicas are perfectly fine, because an
  open-loop client keeps hitting the sick one;
* **gray, mitigated** — hedged requests, a token-bucket retry budget,
  circuit breakers and differential outlier ejection
  (``repro.serve.tail``).  Hedges race a second copy against the slow
  replica and the ejector kicks it out of the pool, recovering most of
  the p99 regression.

A final run turns on the *differential gray scorer* against a throttled
NIC: the sick edge is marked DEGRADED while the fault is active and
cleared after — without a single DOWN transition, because gray faults
degrade hardware, they don't kill it.

Run:  python examples/gray_failure.py
"""

from repro.bench.serve import ServeRun, run_serve
from repro.control import SlowNic, SlowNode
from repro.serve import ArrivalSpec, ServerSpec, TailSpec

MS = 1_000_000

# Shrunk by the smoke test; the defaults here match the benchmark scale.
RATE_RPS = 30_000
DURATION_NS = 20 * MS
SLOW_FACTOR = 10.0
N_SERVERS = 8


def serve(faults, tail):
    return run_serve(
        config="1L-10G",
        n_clients=2,
        n_servers=N_SERVERS,
        policy="least-outstanding",
        arrival=ArrivalSpec(
            kind="poisson",
            rate_rps=RATE_RPS,
            request_bytes=("fixed", 128),
            response_bytes=("fixed", 512),
            batch=128,
        ),
        server=ServerSpec(queue_cap=64, workers=4, service=("exp", 40_000)),
        duration_ns=DURATION_NS,
        seed=11,
        faults=faults,
        tail=tail,
    )


def gray_fault():
    # The replica goes gray shortly after warmup and stays gray until
    # just before the end of the run.
    return [
        SlowNode(
            at_ns=2 * MS,
            node=2,  # first server rank
            duration_ns=DURATION_NS - 3 * MS,
            factor=SLOW_FACTOR,
        )
    ]


def report(label, result):
    conserved = result.generated == (
        result.completed + result.shed + result.shed_client + result.failed
    )
    print(f"--- {label} ---")
    print(
        f"latency : p50={result.p50_ns / MS:.3f}ms  "
        f"p99={result.p99_ns / MS:.3f}ms"
    )
    print(
        f"tail    : hedges sent={result.hedges_sent} "
        f"won={result.hedges_won}  ejected={result.ejections}  "
        f"retries denied={result.retries_denied}"
    )
    print(
        f"books   : generated={result.generated} "
        f"completed={result.completed}  conserved={conserved}  "
        f"invariant violations={len(result.violations)}"
    )


def detection():
    print("--- gray detection: a throttled NIC, scored against its peers ---")
    run = ServeRun(
        config="2L-1G",
        n_clients=2,
        n_servers=3,
        policy="least-outstanding",
        arrival=ArrivalSpec(kind="poisson", rate_rps=20_000, batch=128),
        duration_ns=40 * MS,
        seed=9,
        faults=[
            SlowNic(at_ns=5 * MS, node=2, rail=0, duration_ns=25 * MS,
                    factor=16.0)
        ],
        gray_detection=True,
        use_monitor=True,
    )
    res = run.finish()
    scorer = run.cluster.gray_scorer
    transitions = [
        t
        for mgr in run.cluster.control_planes.values()
        for t in mgr.history
    ]
    degraded = sum(1 for t in transitions if t.new.value == "degraded")
    down = sum(1 for t in transitions if t.new.value == "down")
    print(
        f"scorer  : checks={scorer.checks}  marks={scorer.degrade_marks}  "
        f"clears={scorer.degrade_clears}  still flagged={len(scorer.flagged)}"
    )
    print(
        f"edges   : DEGRADED transitions={degraded}  DOWN transitions={down}"
        f"  invariant violations={len(res.violations)}"
    )


def main():
    print(
        f"open-loop poisson load, {RATE_RPS} rps, {N_SERVERS} servers, "
        f"one replica {SLOW_FACTOR:.0f}x slow mid-run"
    )
    base = serve([], None)
    report("baseline: all replicas healthy", base)
    print()
    unmit = serve(gray_fault(), None)
    report("gray, unmitigated: the slow replica owns the p99", unmit)
    print()
    mit = serve(gray_fault(), TailSpec())
    report("gray, mitigated: hedging + ejection + retry budget", mit)
    print()
    regression = unmit.p99_ns - base.p99_ns
    recovery = (unmit.p99_ns - mit.p99_ns) / regression if regression else 0.0
    print(
        f"p99 regression {regression / MS:.3f}ms, "
        f"recovered {recovery:.0%} of it"
    )
    print()
    detection()


if __name__ == "__main__":
    main()
