#!/usr/bin/env python
"""Shared-memory programming on the GeNIMA DSM: parallel matrix power sum.

Four simulated nodes share a matrix through the page-based DSM and
cooperatively compute ``sum(A @ A)`` by row blocks, synchronising with
barriers — the programming model the paper's application study uses,
on top of MultiEdge RDMA.

Run:  python examples/dsm_matrix.py
"""

import numpy as np

from repro.bench import make_cluster
from repro.dsm import DsmRuntime

N = 128  # matrix dimension
NODES = 4


def main() -> None:
    cluster = make_cluster("1L-1G", nodes=NODES)
    runtime = DsmRuntime(cluster)

    a = runtime.alloc_region("A", N * N * 8, home="block")
    b = runtime.alloc_region("B", N * N * 8, home="block")

    # Node 0 initialises A (untimed init phase).
    rng = np.random.default_rng(0)
    matrix = rng.standard_normal((N, N))
    from repro.apps.base import init_region_data

    init_region_data(runtime, a, matrix)

    rows_per = N // NODES

    def program(node):
        lo = node.rank * rows_per
        yield from node.barrier(0)
        node.start_measurement()

        # Read the whole of A (faults in remote pages), compute our rows
        # of B = A @ A, write them (home-local pages).
        src = yield from node.access(a, 0, N * N * 8, "r")
        amat = src.view(np.float64).reshape(N, N)
        dst = yield from node.access(
            b, lo * N * 8, rows_per * N * 8, "rw"
        )
        bmat = dst.view(np.float64).reshape(rows_per, N)
        bmat[:, :] = amat[lo : lo + rows_per] @ amat
        yield from node.compute(2 * rows_per * N * N * 2)  # ~2 flops/cell

        yield from node.barrier(0)
        # Everyone reads the finished B and reduces locally.
        out = yield from node.access(b, 0, N * N * 8, "r")
        total = float(out.view(np.float64).sum())
        return total

    result = runtime.run(program)

    expected = float((matrix @ matrix).sum())
    print(f"expected sum(A@A) = {expected:.6f}")
    for rank, got in enumerate(result.returns):
        status = "✓" if abs(got - expected) < 1e-6 * N * N else "✗"
        print(f"node {rank}: {got:.6f} {status}")

    print(f"\nparallel time: {result.elapsed_ns / 1e6:.2f} ms  "
          f"({result.nodes} nodes)")
    for rank, (bd, st) in enumerate(zip(result.breakdowns, result.per_node)):
        print(f"node {rank}: compute {bd.compute:5.1%}  "
              f"data-wait {bd.data_wait:5.1%}  sync {bd.sync:5.1%}  "
              f"page fetches {st.page_fetches}")
    net = result.network
    print(f"\nnetwork: {net.data_frames_sent} data frames, "
          f"{net.explicit_acks_sent} explicit acks, "
          f"{net.retransmitted_frames} retransmissions")


if __name__ == "__main__":
    main()
