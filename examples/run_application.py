#!/usr/bin/env python
"""Run any benchmark application on any cluster configuration.

Usage:
    python examples/run_application.py <app> [config] [nodes]

    app     one of: barnes fft lu radix raytrace water-nsq
            water-spatial water-spatial-fl
    config  one of: 1L-1G 2L-1G 2Lu-1G 1L-10G   (default 1L-1G)
    nodes   node count                            (default 8)

Prints the execution-time breakdown and network statistics the paper's
Figures 3–6 are built from, for a single run.
"""

import sys

from repro.apps import APP_CLASSES, run_app
from repro.bench import Table


def main() -> None:
    if len(sys.argv) < 2 or sys.argv[1] not in APP_CLASSES:
        print(__doc__)
        raise SystemExit(1)
    app_name = sys.argv[1]
    config = sys.argv[2] if len(sys.argv) > 2 else "1L-1G"
    nodes = int(sys.argv[3]) if len(sys.argv) > 3 else 8

    print(f"running {app_name} on {config} with {nodes} node(s) ...")
    result = run_app(APP_CLASSES[app_name](), config=config, nodes=nodes)

    print(f"\nverified: {result.verified}")
    print(f"parallel execution time: {result.elapsed_ms:.2f} ms (simulated)")

    b = result.mean_breakdown
    t = Table("execution-time breakdown (mean over nodes)",
              ["compute", "data wait", "sync", "dsm overhead", "other"])
    t.add(b.compute, b.data_wait, b.sync, b.dsm_overhead, b.other)
    t.show()

    net = result.dsm.network
    t = Table("network statistics", ["metric", "value"])
    t.add("data frames", net.data_frames_sent)
    t.add("payload MB", net.data_bytes_sent / 1e6)
    t.add("explicit acks", net.explicit_acks_sent)
    t.add("retransmissions", net.retransmitted_frames)
    t.add("extra-frame fraction", net.extra_frame_fraction)
    t.add("out-of-order fraction", net.out_of_order_fraction)
    t.add("frames dropped", result.dsm.frames_dropped)
    t.add("protocol CPU fraction", result.dsm.protocol_cpu_fraction)
    t.add("page fetches", sum(n.page_fetches for n in result.dsm.per_node))
    t.add("diffs flushed", sum(n.diffs_flushed for n in result.dsm.per_node))
    t.add("lock acquires", sum(n.lock_acquires for n in result.dsm.per_node))
    t.show()


if __name__ == "__main__":
    main()
