#!/usr/bin/env python
"""A leaf-spine datacenter fabric: ECMP spreading and trunk failover.

Builds a 3:1-oversubscribed leaf-spine (3 leaves x 6 hosts, 2 spines,
1 GbE everywhere) with ``repro.fabric``, then:

1. runs a multi-round **permutation traffic matrix** — every host sends
   to exactly one other host — and reports how evenly the deterministic
   ECMP flow hash spread the bytes over the two spines;
2. **fails a leaf-to-spine trunk mid-run** and shows the flows re-pin
   onto the surviving uplink, with every byte still delivered intact.

Run:  python examples/leaf_spine.py
"""

from repro.bench.cluster import make_cluster
from repro.fabric import LeafSpineSpec, Permutation, run_traffic

LEAVES = 3
SPINES = 2
HOSTS_PER_LEAF = 6
ROUNDS = 8
BYTES_PER_FLOW = 16_000


def build():
    spec = LeafSpineSpec(
        leaves=LEAVES, spines=SPINES, hosts_per_leaf=HOSTS_PER_LEAF
    )
    cluster = make_cluster(
        "1L-1G",
        nodes=spec.capacity,
        seed=7,
        synthetic_payloads=False,
        fabric=spec,
    )
    return cluster, cluster.fabrics[0]


def main() -> None:
    cluster, fabric = build()
    tiers = {t: len(sw) for t, sw in fabric.tiers().items()}
    print(f"== leaf-spine fabric: {tiers['leaf']} leaves x "
          f"{HOSTS_PER_LEAF} hosts, {tiers['spine']} spines, "
          f"{fabric.spec.oversubscription(10**9):.0f}:1 oversubscribed ==")

    r = run_traffic(cluster, Permutation(BYTES_PER_FLOW, rounds=ROUNDS),
                    seed=7)
    print(f"permutation matrix: {r.flows} flows, "
          f"{r.total_bytes // 1024} KB total, "
          f"data intact={r.data_intact}")
    for (lo, hi), nbytes in sorted(r.uplink_bytes.items()):
        print(f"  {lo} -> {hi}: {nbytes:>8d} bytes")
    print(f"spine byte ratio (max/min, 1.0 = perfect): "
          f"{r.ecmp_evenness:.3f}")

    # Fail one trunk mid-run: ECMP re-pins around it, traffic survives.
    cluster2, fabric2 = build()
    cluster2.sim.at(200_000, fabric2.fail_trunk, "leaf0.0", "spine0.0",
                    2_000_000)
    r2 = run_traffic(cluster2, Permutation(BYTES_PER_FLOW, rounds=ROUNDS),
                     seed=7)
    repins = sum(sw.repins for sw in fabric2.switches)
    violations = fabric2.routing_invariants()
    print(f"\nwith leaf0.0->spine0.0 failed for 2 ms: "
          f"data intact={r2.data_intact}, {repins} flow re-pins, "
          f"{r2.retransmissions} retransmissions")
    print(f"routing invariants clean={not violations}")


if __name__ == "__main__":
    main()
