#!/usr/bin/env python
"""Quickstart: two nodes, one RDMA write, one notification.

Builds the paper's 1L-1G setup with two nodes, writes a buffer from node 0
into node 1's virtual address space, and waits for the completion
notification at the target — the basic MultiEdge programming model.

Run:  python examples/quickstart.py
"""

from repro.bench import make_cluster
from repro.ethernet import OpFlags


def main() -> None:
    # A two-node cluster on a single 1-GbE switch.
    cluster = make_cluster("1L-1G", nodes=2)
    alice, bob = cluster.connect(0, 1)

    # Allocate virtual memory on both nodes; no registration needed —
    # MultiEdge writes straight into the target's address space.
    message = b"hello from node 0 over raw Ethernet frames!"
    src = alice.node.memory.alloc(len(message))
    dst = bob.node.memory.alloc(len(message))
    alice.node.memory.write(src, message)

    def sender():
        handle = yield from alice.rdma_write(
            src, dst, len(message), flags=OpFlags.NOTIFY
        )
        yield from handle.wait()
        print(f"[{cluster.sim.now / 1000:8.1f} us] sender: operation acked "
              f"(latency {handle.latency_ns / 1000:.1f} us)")

    def receiver():
        note = yield from bob.wait_notification()
        data = bob.node.memory.read(dst, note.length)
        print(f"[{cluster.sim.now / 1000:8.1f} us] receiver: got {note.length} "
              f"bytes from node {note.src_node}: {data.decode()!r}")

    sproc = cluster.sim.process(sender())
    rproc = cluster.sim.process(receiver())
    cluster.sim.run_until_done(rproc, limit=10_000_000)
    cluster.sim.run_until_done(sproc, limit=10_000_000)

    stats = alice.stats
    print(f"\nframes sent: {stats.data_frames_sent}, "
          f"acks received: {stats.explicit_acks_received}, "
          f"retransmissions: {stats.retransmitted_frames}")


if __name__ == "__main__":
    main()
