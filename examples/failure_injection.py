#!/usr/bin/env python
"""Reliability demo: bit errors, transient outages, and congestion drops.

MultiEdge guarantees delivery across transient faults (paper §2.4).  This
example injects three kinds of trouble and shows the transfer completing
with correct bytes every time, plus what the recovery cost was:

1. a noisy cable (bit-error rate) — CRC drops recovered by NACKs,
2. a 5 ms link outage mid-transfer — recovered by the coarse timeout,
3. an incast storm overflowing a tiny switch queue — congestion drops
   recovered by selective retransmission.

Run:  python examples/failure_injection.py
"""

from repro.bench import make_cluster
from repro.ethernet import Frame, LinkParams, MultiEdgeHeader, SwitchParams


def transfer(cluster, size=300_000, limit_ms=5000):
    a, b = cluster.connect(0, 1)
    src = a.node.memory.alloc(size)
    dst = b.node.memory.alloc(size)
    payload = bytes(i % 251 for i in range(size))
    a.node.memory.write(src, payload)

    def app():
        handle = yield from a.rdma_write(src, dst, size)
        yield from handle.wait()

    proc = cluster.sim.process(app())
    cluster.sim.run_until_done(proc, limit=limit_ms * 1_000_000)
    ok = b.node.memory.read(dst, size) == payload
    return ok, a.stats, cluster


def scenario_bit_errors() -> None:
    cluster = make_cluster(
        "1L-1G", nodes=2,
        link=LinkParams(speed_bps=1e9, bit_error_rate=1e-6),
    )
    ok, stats, cl = transfer(cluster)
    crc = sum(n.counters.rx_dropped_crc for node in cl.nodes for n in node.nics)
    print(f"bit errors   : data intact={ok}  CRC drops={crc}  "
          f"retransmits={stats.retransmitted_frames}  "
          f"nacks rx={stats.nacks_received}")


def scenario_outage() -> None:
    cluster = make_cluster("1L-1G", nodes=2)
    # Fail node 0's uplink for 5 ms shortly after the transfer starts.
    link = cluster.nodes[0].nics[0].tx_link
    cluster.sim.schedule(2_000_000, link.fail_for, 5_000_000)
    ok, stats, cl = transfer(cluster)
    print(f"5ms outage   : data intact={ok}  "
          f"lost to outage={link.frames_lost_outage}  "
          f"timeout retransmits={stats.timeout_retransmits}  "
          f"retransmits={stats.retransmitted_frames}")


def scenario_congestion() -> None:
    # Tiny switch buffers + three senders blasting one receiver.
    cluster = make_cluster(
        "1L-1G", nodes=4,
        switch=SwitchParams(ports=4, output_queue_frames=24),
    )
    conns = [cluster.connect(i, 3)[0] for i in range(3)]
    size = 150_000
    payload = bytes(i % 249 for i in range(size))
    dsts = []
    procs = []
    for i, conn in enumerate(conns):
        src = conn.node.memory.alloc(size)
        dst = cluster.stacks[3].node.memory.alloc(size)
        conn.node.memory.write(src, payload)
        dsts.append(dst)

        def app(conn=conn, src=src, dst=dst):
            handle = yield from conn.rdma_write(src, dst, size)
            yield from handle.wait()

        procs.append(cluster.sim.process(app()))
    for p in procs:
        cluster.sim.run_until_done(p, limit=10_000_000_000)
    ok = all(
        cluster.stacks[3].node.memory.read(dst, size) == payload
        for dst in dsts
    )
    dropped = sum(sw.dropped_total for sw in cluster.switches)
    retrans = sum(
        c.stats.retransmitted_frames + 0 for c in conns
    )
    print(f"incast storm : data intact={ok}  switch drops={dropped}  "
          f"retransmits={retrans}")


def main() -> None:
    scenario_bit_errors()
    scenario_outage()
    scenario_congestion()


if __name__ == "__main__":
    main()
