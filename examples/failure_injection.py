#!/usr/bin/env python
"""Reliability demo: declarative fault schedules and live edge failover.

MultiEdge guarantees delivery across faults (paper §2.4).  Every scenario
here scripts its trouble with ``repro.control.faults`` — a declarative
:class:`FaultSchedule` applied to the cluster — and shows the transfer
completing with correct bytes, plus what the recovery cost was:

1. a bit-error ramp on one edge — CRC drops recovered by NACKs,
2. a 5 ms outage mid-transfer — recovered by the coarse timeout,
3. a flapping edge — repeated short outages, absorbed by retransmission,
4. an incast storm overflowing a tiny switch queue — congestion drops
   recovered by selective retransmission,
5. rail death with the edge lifecycle control plane on — the failure is
   *detected*, in-flight frames are migrated to the surviving rail, and
   the repaired rail is re-striped automatically.

Run:  python examples/failure_injection.py
"""

from repro.bench import make_cluster, run_failover
from repro.control import BitErrorRamp, FaultSchedule, Flap, Outage, Repair
from repro.ethernet import SwitchParams

MS = 1_000_000


def transfer(cluster, size=300_000, limit_ms=5000):
    a, b = cluster.connect(0, 1)
    src = a.node.memory.alloc(size)
    dst = b.node.memory.alloc(size)
    payload = bytes(i % 251 for i in range(size))
    a.node.memory.write(src, payload)

    def app():
        handle = yield from a.rdma_write(src, dst, size)
        yield from handle.wait()

    proc = cluster.sim.process(app())
    cluster.sim.run_until_done(proc, limit=limit_ms * MS)
    ok = b.node.memory.read(dst, size) == payload
    return ok, a.stats, cluster


def scenario_bit_errors() -> None:
    cluster = make_cluster("1L-1G", nodes=2)
    # Ramp node 0's edge to a noisy 1e-6 BER just after the transfer starts,
    # then swap the cable back to clean mid-way.
    FaultSchedule([
        BitErrorRamp(at_ns=0, node=0, rail=0, bit_error_rate=1e-6),
        Repair(at_ns=10 * MS, node=0, rail=0),
    ]).apply(cluster)
    ok, stats, cl = transfer(cluster)
    crc = sum(n.counters.rx_dropped_crc for node in cl.nodes for n in node.nics)
    print(f"bit errors   : data intact={ok}  CRC drops={crc}  "
          f"retransmits={stats.retransmitted_frames}  "
          f"nacks rx={stats.nacks_received}")


def scenario_outage() -> None:
    cluster = make_cluster("1L-1G", nodes=2)
    # Fail node 0's edge for 5 ms shortly after the transfer starts.
    FaultSchedule([
        Outage(at_ns=2 * MS, node=0, rail=0, duration_ns=5 * MS),
    ]).apply(cluster)
    link = cluster.nodes[0].nics[0].tx_link
    ok, stats, cl = transfer(cluster)
    print(f"5ms outage   : data intact={ok}  "
          f"lost to outage={link.frames_lost_outage}  "
          f"timeout retransmits={stats.timeout_retransmits}  "
          f"retransmits={stats.retransmitted_frames}")


def scenario_flapping() -> None:
    cluster = make_cluster("1L-1G", nodes=2)
    # Edge goes down for 1 ms out of every 4 ms, five times in a row.
    FaultSchedule([
        Flap(at_ns=1 * MS, node=0, rail=0, period_ns=4 * MS,
             down_ns=1 * MS, count=5),
    ]).apply(cluster)
    link = cluster.nodes[0].nics[0].tx_link
    ok, stats, cl = transfer(cluster)
    print(f"flapping edge: data intact={ok}  "
          f"lost to outage={link.frames_lost_outage}  "
          f"retransmits={stats.retransmitted_frames}")


def scenario_congestion() -> None:
    # Tiny switch buffers + three senders blasting one receiver.
    cluster = make_cluster(
        "1L-1G", nodes=4,
        switch=SwitchParams(ports=4, output_queue_frames=24),
    )
    conns = [cluster.connect(i, 3)[0] for i in range(3)]
    size = 150_000
    payload = bytes(i % 249 for i in range(size))
    dsts = []
    procs = []
    for i, conn in enumerate(conns):
        src = conn.node.memory.alloc(size)
        dst = cluster.stacks[3].node.memory.alloc(size)
        conn.node.memory.write(src, payload)
        dsts.append(dst)

        def app(conn=conn, src=src, dst=dst):
            handle = yield from conn.rdma_write(src, dst, size)
            yield from handle.wait()

        procs.append(cluster.sim.process(app()))
    for p in procs:
        cluster.sim.run_until_done(p, limit=10_000_000_000)
    ok = all(
        cluster.stacks[3].node.memory.read(dst, size) == payload
        for dst in dsts
    )
    dropped = sum(sw.dropped_total for sw in cluster.switches)
    retrans = sum(c.stats.retransmitted_frames for c in conns)
    print(f"incast storm : data intact={ok}  switch drops={dropped}  "
          f"retransmits={retrans}")


def scenario_failover() -> None:
    # Two-rail cluster, control plane on: kill rail 0 at 10 ms, repair at
    # 60 ms.  The detector notices, migrates the stranded frames, keeps the
    # stream flowing on rail 1, and re-stripes when the rail returns.
    result = run_failover(
        config="2Lu-1G", kill_ns=10 * MS, repair_ns=60 * MS, run_ns=100 * MS
    )
    detect_ms = (result.detect_latency_ns or 0) / MS
    print(f"rail failover: data intact={result.data_intact}  "
          f"detected in {detect_ms:.1f}ms  "
          f"degraded={result.degraded_fraction:.0%} of baseline  "
          f"recovered={result.recovered_goodput_bps / 1e6:.0f}Mb/s")
    for t in result.transitions:
        print(f"    {t.time_ns / MS:7.2f}ms  rail {t.rail}: "
              f"{t.old} -> {t.new}  ({t.reason})")


def main() -> None:
    scenario_bit_errors()
    scenario_outage()
    scenario_flapping()
    scenario_congestion()
    scenario_failover()


if __name__ == "__main__":
    main()
