#!/usr/bin/env python
"""Whole-node crash and recovery under an exactly-once message stream.

A sender on node 0 streams journaled messages to node 1 over a two-rail
cluster.  At 10 ms node 1 *dies* — connections, journals, and NIC rings
evaporate — and reboots 5 ms later under a new incarnation number.  The
sender's edge lifecycle control plane escalates to PEER_DOWN, the
recovery layer re-dials with backoff, and the message journal replays
every unacked message; the receiver's dedup log suppresses the ones that
had already landed.  The printed timeline shows detect -> reconnect ->
replay, and the accounting shows each message delivered exactly once.

Run:  python examples/node_crash.py
"""

from repro.bench.crash import run_crash

MS = 1_000_000

# Shrunk by the smoke test; the defaults here match the benchmark.
CRASH_NS = 10 * MS
RESTART_DELAY_NS = 5 * MS
RUN_NS = 60 * MS


def main() -> None:
    result = run_crash(
        config="2Lu-1G",
        crash_ns=CRASH_NS,
        restart_delay_ns=RESTART_DELAY_NS,
        run_ns=RUN_NS,
    )

    print("recovery timeline:")
    for label, at_ns in result.timeline:
        print(f"    {at_ns / MS:7.3f}ms  {label}")
    latency = result.reconnect_latency_ns or 0
    print(
        f"reconnect    : {latency / MS:.3f}ms after detection "
        f"(bound {result.reconnect_bound_ns / MS:.0f}ms)"
    )
    print(
        f"goodput      : {result.pre_crash_goodput_bps / 1e6:.0f}Mb/s before "
        f"the crash, {result.recovered_goodput_bps / 1e6:.0f}Mb/s recovered "
        f"({result.recovered_fraction:.0%})"
    )
    print(
        f"exactly-once : delivered exactly once={result.exactly_once}  "
        f"sent={result.messages_sent}  redelivered={result.redeliveries}  "
        f"duplicates suppressed={result.duplicates_suppressed}"
    )
    print(
        f"incarnations : stale frames rejected={result.stale_frames_rejected}  "
        f"invariant violations={len(result.violations)}"
    )


if __name__ == "__main__":
    main()
