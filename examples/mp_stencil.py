#!/usr/bin/env python
"""Message passing on MultiEdge: a 1-D heat-diffusion stencil.

The paper's thesis is that one edge-based interconnect can serve several
application domains.  ``examples/dsm_matrix.py`` shows the shared-memory
domain; this shows the message-passing one: each rank owns a slab of a
1-D rod, exchanges halo cells with its neighbours every step, and the
result is checked against a sequential solve.

Run:  python examples/mp_stencil.py
"""

import numpy as np

from repro.bench import make_cluster
from repro.mp import MpWorld, allreduce

N = 512          # rod cells
NODES = 4
STEPS = 20
ALPHA = 0.1


def sequential(u0: np.ndarray) -> np.ndarray:
    u = u0.copy()
    for _ in range(STEPS):
        nxt = u.copy()
        nxt[1:-1] = u[1:-1] + ALPHA * (u[2:] - 2 * u[1:-1] + u[:-2])
        u = nxt
    return u


def main() -> None:
    cluster = make_cluster("1L-1G", nodes=NODES)
    world = MpWorld(cluster)

    u0 = np.zeros(N)
    u0[N // 2 - 8 : N // 2 + 8] = 100.0  # hot spot in the middle
    per = N // NODES

    def program(ep):
        lo = ep.rank * per
        # Slab with one ghost cell on each side.
        slab = np.zeros(per + 2)
        slab[1:-1] = u0[lo : lo + per]
        left, right = ep.rank - 1, ep.rank + 1

        for step in range(STEPS):
            # Halo exchange (even/odd phasing avoids send-send deadlock —
            # though sends here are buffered/eager anyway).
            if left >= 0:
                yield from ep.send(left, slab[1:2].tobytes(), tag=step * 2)
                msg = yield from ep.recv(source=left, tag=step * 2 + 1)
                slab[0] = np.frombuffer(msg.data)[0]
            if right < ep.size:
                yield from ep.send(right, slab[-2:-1].tobytes(), tag=step * 2 + 1)
                msg = yield from ep.recv(source=right, tag=step * 2)
                slab[-1] = np.frombuffer(msg.data)[0]
            interior = slab[1:-1] + ALPHA * (
                slab[2:] - 2 * slab[1:-1] + slab[:-2]
            )
            # Physical rod ends are fixed at zero.
            if ep.rank == 0:
                interior[0] = slab[1] + ALPHA * (slab[2] - 2 * slab[1])
            if ep.rank == ep.size - 1:
                interior[-1] = slab[-2] + ALPHA * (slab[-3] - 2 * slab[-2])
            slab[1:-1] = interior

        total = yield from allreduce(ep, np.array([slab[1:-1].sum()]))
        return slab[1:-1].copy(), float(total[0])

    results = world.run(program)
    parallel = np.concatenate([slabs for slabs, _ in results])
    expected = sequential(u0)

    err = np.abs(parallel - expected).max()
    print(f"max |parallel - sequential| = {err:.2e}  "
          f"({'OK' if err < 1e-9 else 'MISMATCH'})")
    print(f"total heat (allreduce): {results[0][1]:.3f}  "
          f"expected {expected.sum():.3f}")
    print(f"simulated time: {cluster.sim.now / 1e6:.2f} ms, "
          f"{world.endpoints[0].stats_sent * NODES} messages exchanged")


if __name__ == "__main__":
    main()
