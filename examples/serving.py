#!/usr/bin/env python
"""An RPC serving cluster under open-loop load, with a crash mid-run.

Clients drive seeded Poisson arrivals (open-loop: the generators never
slow down because the servers are busy) at bounded-queue servers behind
a least-outstanding load balancer, and a server crashes mid-run.  The
example runs the same load twice:

* **replicated** — two servers.  The crash notification re-dispatches
  every in-flight request to the survivor synchronously, so every SLO
  window stays attained: failover hides the outage from the tail;
* **single replica** — nowhere to fail over.  Requests park in the
  client's holding queue until the server restarts and reconnects, with
  latency still measured from the *original* arrival, so the outage
  shows up as missed windows — and the windows after reconnect recover.

Both runs conserve every request (generated == completed + shed): the
client-side journal replays whatever the crash swallowed.

Run:  python examples/serving.py
"""

from repro.analysis import SloSpec
from repro.bench.serve import run_serve
from repro.serve import ArrivalSpec, ServerSpec

MS = 1_000_000

# Shrunk by the smoke test; the defaults here match the benchmark.
RATE_RPS = 30_000
DURATION_NS = 40 * MS
CRASH_NS = 12 * MS
RESTART_DELAY_NS = 8 * MS


def serve(n_servers: int):
    return run_serve(
        config="1L-10G",
        n_clients=2,
        n_servers=n_servers,
        policy="least-outstanding",
        arrival=ArrivalSpec(
            kind="poisson",
            rate_rps=RATE_RPS,
            request_bytes=("uniform", 64, 512),
            response_bytes=("uniform", 128, 1024),
            batch=256,
        ),
        server=ServerSpec(queue_cap=256, workers=4, service=("fixed", 15_000)),
        duration_ns=DURATION_NS,
        window_ns=5 * MS,
        slo=SloSpec(p99_ms=1.0),
        seed=11,
        crash_server=2,  # first server rank in both configurations
        crash_ns=CRASH_NS,
        restart_delay_ns=RESTART_DELAY_NS,
    )


def report(label: str, result) -> None:
    print(f"--- {label} ---")
    print(
        f"latency      : p50={result.p50_ns / MS:.3f}ms  "
        f"p99={result.p99_ns / MS:.3f}ms  p999={result.p999_ns / MS:.3f}ms"
    )
    print(
        f"phases (p99) : queueing={result.queueing_p99_ns / MS:.3f}ms  "
        f"service={result.service_p99_ns / MS:.3f}ms  "
        f"network={result.network_p99_ns / MS:.3f}ms"
    )
    print("per-window SLO (p99 < 1ms):")
    for w in result.windows:
        mark = "ok " if w.get("attained") else "MISS"
        print(
            f"    {w['t0_ms']:6.1f}ms  {mark}  p99={w['p99_ms']:.3f}ms  "
            f"completed={w['completed']}"
        )
    print(
        f"fault        : crashes={result.crashes}  "
        f"reconnects={result.reconnects}  replayed={result.replayed}"
    )
    conserved = result.generated == (
        result.completed + result.shed + result.shed_client + result.failed
    )
    print(
        f"conservation : generated={result.generated}  "
        f"completed={result.completed}  shed={result.shed}  "
        f"conserved={conserved}"
    )
    print(f"invariant violations={len(result.violations)}")


def main() -> None:
    print(
        f"open-loop poisson load, {RATE_RPS} rps, crash at "
        f"{CRASH_NS / MS:.0f}ms, restart after {RESTART_DELAY_NS / MS:.0f}ms"
    )
    report("replicated (2 servers): failover hides the crash", serve(2))
    print()
    report("single replica: the outage reaches the tail", serve(1))


if __name__ == "__main__":
    main()
