#!/usr/bin/env python
"""Spatial parallelism: one connection transparently striped over two rails.

Streams 1 MB over one and then two 1-GbE links and shows the throughput
doubling, the out-of-order arrival fraction round-robin striping creates,
and what fences cost — the paper's §2.5 mechanics in ~60 lines.

Run:  python examples/multi_link_striping.py
"""

from repro.bench import make_cluster
from repro.bench.micro import run_one_way
from repro.ethernet import OpFlags


def stream(config: str, size: int = 1 << 20) -> None:
    cluster = make_cluster(config, nodes=2)
    result = run_one_way(cluster, size, iterations=8)
    rails = cluster.config.rails
    print(f"{config:7s} ({rails} rail{'s' if rails > 1 else ' '}): "
          f"{result.throughput_mbps:7.1f} MB/s   "
          f"out-of-order {100 * result.out_of_order_fraction:5.1f} %   "
          f"extra frames {100 * result.extra_frame_fraction:4.1f} %")


def fenced_writes() -> None:
    """Backward fence: the fenced op is applied only after predecessors."""
    cluster = make_cluster("2Lu-1G", nodes=2)
    a, b = cluster.connect(0, 1)
    size = 1464 * 4
    src1, src2 = a.node.memory.alloc(size), a.node.memory.alloc(size)
    dst = b.node.memory.alloc(size)
    a.node.memory.write(src1, b"1" * size)
    a.node.memory.write(src2, b"2" * size)

    def app():
        # Two writes to the same target; frames interleave across rails.
        yield from a.rdma_write(src1, dst, size)
        h2 = yield from a.rdma_write(
            src2, dst, size, flags=OpFlags.FENCE_BACKWARD | OpFlags.NOTIFY
        )
        yield from h2.wait()

    def check():
        yield from b.wait_notification()
        final = b.node.memory.read(dst, size)
        assert final == b"2" * size, "backward fence must order the writes"
        print("fenced write applied last despite two-rail reordering  ✓")

    cluster.sim.process(app())
    proc = cluster.sim.process(check())
    cluster.sim.run_until_done(proc, limit=100_000_000)


def main() -> None:
    print("== one-way throughput, 1 MB transfers ==")
    for config in ("1L-1G", "2L-1G", "2Lu-1G"):
        stream(config)
    print("\n== ordering semantics on two unordered rails ==")
    fenced_writes()


if __name__ == "__main__":
    main()
