#!/usr/bin/env python
"""Reproduce the paper's Figure 2 sweep from the command line.

Runs ping-pong / one-way / two-way across transfer sizes on a chosen
configuration and prints latency, throughput, and protocol CPU — the
same series the paper plots.

Run:  python examples/microbench_suite.py [1L-1G|2L-1G|2Lu-1G|1L-10G]
"""

import sys

from repro.bench import MICRO_BENCHMARKS, Table, make_cluster, run_micro

SIZES = (64, 256, 1024, 4096, 16384, 65536, 262144, 1048576)


def main() -> None:
    config = sys.argv[1] if len(sys.argv) > 1 else "1L-1G"
    print(f"configuration: {config}  (sizes {SIZES[0]} B .. {SIZES[-1]} B)\n")
    for bench in MICRO_BENCHMARKS:
        table = Table(
            f"{bench} on {config}",
            ["size (B)", "latency (us)", "throughput (MB/s)", "CPU (% of 200)"],
        )
        for size in SIZES:
            cluster = make_cluster(config, nodes=2)
            r = run_micro(
                bench, cluster, size,
                iterations=10 if size >= 262144 else None,
            )
            table.add(size, r.latency_us, r.throughput_mbps, r.cpu_util_pct)
        table.show()


if __name__ == "__main__":
    main()
