#!/usr/bin/env python
"""Incast congestion collapse, and what congestion control buys back.

Converges SENDERS bulk streams on a single receiver — the many-to-one
pattern behind TCP incast — and compares three congestion policies on
the same fabric:

* ``static``  — the fixed send window (the paper's baseline protocol),
* ``aimd``    — loss-driven additive-increase / multiplicative-decrease,
* ``dctcp``   — ECN-driven DCTCP-style marking with proportional cuts.

Every run uses real payloads and verifies receiver memory end to end:
congestion control changes *when* frames move, never *what* arrives.

Run:  python examples/incast.py
"""

from repro.bench.incast import run_incast

SENDERS = 12
CHUNK = 64 * 1024
CHUNKS = 8

POLICIES = (
    ("static", "static", None),
    ("aimd", "aimd", None),
    ("dctcp", "dctcp", 32),  # ECN marks above 32 queued frames
)


def main() -> None:
    print(f"== {SENDERS}-to-1 incast, {CHUNKS} x {CHUNK // 1024} KB per "
          f"sender, 1-GbE fabric ==")
    print(f"{'policy':8s} {'goodput':>12s} {'queue drops':>12s} "
          f"{'retrans':>8s} {'CE marks':>9s} {'intact':>7s}")
    results = {}
    for label, congestion, ecn in POLICIES:
        r = run_incast(
            senders=SENDERS,
            chunk_bytes=CHUNK,
            chunks_per_sender=CHUNKS,
            congestion=congestion,
            ecn_threshold_frames=ecn,
            verify_data=True,
        )
        results[label] = r
        print(f"{label:8s} {r.goodput_bps / 1e6:8.1f} Mbps {r.dropped_queue_full:12d} "
              f"{r.retransmissions:8d} {r.ce_marked:9d} "
              f"{'True' if r.data_intact else 'FALSE':>7s}  "
              f"data intact={r.data_intact}")

    static, dctcp = results["static"], results["dctcp"]
    if static.dropped_queue_full:
        saved = 1 - dctcp.dropped_queue_full / static.dropped_queue_full
        print(f"\ndctcp cut switch tail drops by {saved:.0%} and the final "
              f"congestion windows settled at {dctcp.final_cwnd_frames} "
              f"frames (window size stays the protocol's upper bound).")


if __name__ == "__main__":
    main()
