"""Congestion-controller interface and the static (paper) policy.

The paper's sliding-window protocol has *flow control* (a fixed window
bounds in-flight frames against receiver buffering) but no *congestion
control*: under many-to-one traffic the switch output queue overflows and
frames drop with nothing above reacting.  A
:class:`CongestionController` closes that loop per connection: it owns a
congestion window (cwnd, in frames) layered under the flow-control window
(``SendWindow.size`` stays the hard cap), reacts to acknowledgements,
ECN echoes, NACK-driven losses, and coarse timeouts, and optionally
exposes a pacing rate the NIC token bucket enforces.

Controllers are deliberately decoupled from :mod:`repro.core`: they see a
duck-typed window object (``size``, ``cwnd``) and receive events from the
connection, so this package has no import cycle with the protocol core.

Three implementations ship:

* :class:`StaticWindow` — the paper's behaviour: cwnd pinned to the flow
  window, no reactions.  ``active`` is False, so the connection skips
  every hot-path hook and the event trace is bit-identical to a build
  without this subsystem.  This is the default.
* :class:`~repro.congestion.aimd.AimdController` — TCP-Reno-style
  additive increase / multiplicative decrease on loss.
* :class:`~repro.congestion.dctcp.DctcpController` — DCTCP: an EWMA of
  the ECN-marked fraction scales the decrease.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Type

from ..ethernet.frame import ETH_MTU, ETH_OVERHEAD_BYTES

__all__ = [
    "CongestionParams",
    "CongestionController",
    "StaticWindow",
    "make_congestion_controller",
    "register_congestion_controller",
    "CONTROLLER_NAMES",
]

# Wire bytes of a full-MTU frame; pacing converts cwnd (frames) to bits/s.
FULL_FRAME_WIRE_BYTES = ETH_MTU + ETH_OVERHEAD_BYTES


@dataclass
class CongestionParams:
    """Tunables shared by every controller (see docs/API.md for defaults)."""

    # Floor for the congestion window; cwnd never drops below this.
    min_cwnd_frames: int = 2
    # Frames the cwnd opens at (None: start fully open at the flow window).
    initial_cwnd_frames: Optional[int] = None
    # Additive increase: frames added to cwnd per round trip of acks.
    additive_increase_frames: float = 1.0
    # AIMD multiplicative decrease factor applied on loss.
    md_factor: float = 0.5
    # DCTCP: gain of the marked-fraction EWMA (the paper's g = 1/16).
    dctcp_g: float = 1.0 / 16.0
    # SRTT EWMA gain for the pacing-rate estimate.
    rtt_gain: float = 0.125
    # Seed RTT before the first sample (pacing only).
    rtt_init_ns: int = 200_000
    # Token-bucket pacing: enabled, rate headroom, and burst allowance.
    pacing: bool = False
    pacing_headroom: float = 1.25
    pacing_burst_frames: int = 8

    def __post_init__(self) -> None:
        if self.min_cwnd_frames < 1:
            raise ValueError("min_cwnd_frames must be >= 1")
        if not 0.0 < self.md_factor < 1.0:
            raise ValueError("md_factor must be in (0, 1)")
        if not 0.0 < self.dctcp_g <= 1.0:
            raise ValueError("dctcp_g must be in (0, 1]")
        if self.additive_increase_frames <= 0:
            raise ValueError("additive_increase_frames must be positive")
        if self.pacing_burst_frames < 1:
            raise ValueError("pacing_burst_frames must be >= 1")
        if self.initial_cwnd_frames is not None and self.initial_cwnd_frames < 1:
            raise ValueError("initial_cwnd_frames must be >= 1 (or None)")
        if not 0.0 < self.rtt_gain <= 1.0:
            raise ValueError("rtt_gain must be in (0, 1]")
        if self.rtt_init_ns < 1:
            raise ValueError("rtt_init_ns must be >= 1")
        if self.pacing_headroom < 1.0:
            raise ValueError("pacing_headroom must be >= 1 (no underpacing)")


class CongestionController:
    """Per-connection congestion policy.

    The connection calls :meth:`on_ack` / :meth:`on_loss` /
    :meth:`on_timeout` from its protocol state machine and applies
    :meth:`pacing_rate_bps` to its NICs after each event.  Controllers
    write their window through ``window.cwnd`` (frames); ``None`` means
    "no congestion limit", which is what the static policy leaves in
    place so the flow-control arithmetic is untouched.
    """

    name = "static"
    # When False the connection skips every hot-path hook (single
    # attribute test at attach time, zero per-event cost).
    active = False

    def __init__(self, window, params: Optional[CongestionParams] = None) -> None:
        self.window = window
        self.params = params or CongestionParams()

    # -- observability ---------------------------------------------------

    @property
    def cwnd_frames(self) -> int:
        """Current congestion window in frames (static: the flow window)."""
        cwnd = self.window.cwnd
        return self.window.size if cwnd is None else cwnd

    @property
    def marked_fraction(self) -> float:
        """Controller's running estimate of the ECN-marked fraction."""
        return 0.0

    # -- events (no-ops for the static policy) ---------------------------

    def on_ack(
        self,
        freed: int,
        ece: bool,
        now: int,
        rtt_sample_ns: Optional[int] = None,
    ) -> None:
        """``freed`` frames were cumulatively acknowledged.

        ``ece`` is the ECN-echo bit of the acknowledgement: with delayed
        acks one echo covers the whole freed batch (the standard DCTCP
        coarsening).  ``rtt_sample_ns`` is a Karn-filtered RTT sample or
        None when the newest freed frame had been retransmitted.
        """

    def on_loss(self, now: int) -> None:
        """A NACK-driven retransmission was enqueued (frame loss signal)."""

    def on_timeout(self, now: int) -> None:
        """The coarse retransmission timer fired (severe congestion)."""

    def pacing_rate_bps(self) -> Optional[float]:
        """Rate for the NIC token bucket, or None to transmit unpaced."""
        return None

    def cwnd_stable(self, now: int) -> bool:
        """Is the congestion window in analytic steady state?

        The fast-forward detector (:mod:`repro.fastpath`) only arms while
        this holds: the closed-form transfer model assumes the window
        neither grows nor gets cut mid-jump.  The static policy imposes
        no congestion limit, so it is always stable.
        """
        return True


class StaticWindow(CongestionController):
    """Today's behaviour: the flow-control window is the only limit.

    Selected by default.  Leaves ``window.cwnd`` at None and reacts to
    nothing, so every frame trace is bit-identical to the pre-congestion
    protocol.
    """

    name = "static"
    active = False


_CONTROLLERS: dict[str, Type[CongestionController]] = {
    "static": StaticWindow,
}


def register_congestion_controller(
    name: str, cls: Type[CongestionController]
) -> None:
    """Register a controller class under ``name`` (idempotent per class)."""
    existing = _CONTROLLERS.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(f"congestion controller {name!r} already registered")
    _CONTROLLERS[name] = cls


def make_congestion_controller(
    name: str, window, params: Optional[CongestionParams] = None
) -> CongestionController:
    """Factory by controller name (used by :class:`ProtocolParams`)."""
    try:
        cls = _CONTROLLERS[name]
    except KeyError:
        raise ValueError(
            f"unknown congestion controller {name!r}; "
            f"choose from {sorted(_CONTROLLERS)}"
        ) from None
    return cls(window, params)


def CONTROLLER_NAMES() -> tuple[str, ...]:
    """Currently registered controller names (import order matters)."""
    return tuple(sorted(_CONTROLLERS))
