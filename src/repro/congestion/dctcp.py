"""DCTCP: window scaling by the EWMA of the ECN-marked fraction.

Per the DCTCP rule (Alizadeh et al., SIGCOMM 2010):

* The receiver echoes CE marks back on acks (``ECN_ECHO``); with
  delayed acks one echo covers the whole acked batch.
* Once per congestion window of acknowledged frames the sender computes
  the marked fraction ``F`` and updates ``alpha += g * (F - alpha)``
  with gain ``g = dctcp_g`` (default 1/16).
* If any frame in that window was marked, ``cwnd *= (1 - alpha/2)`` —
  a gentle cut proportional to how congested the path really is,
  instead of Reno's blind halving.

``alpha`` starts at 1.0 (the Linux ``dctcp_alpha_on_init`` default) so
the very first marked window reacts as strongly as Reno; without marks
alpha decays toward 0 and the controller reduces to pure additive
increase.  Losses and timeouts keep their Reno-style reactions as a
safety net for non-ECN drops.
"""

from __future__ import annotations

from typing import Optional

from .adaptive import AdaptiveController
from .base import CongestionParams, register_congestion_controller


class DctcpController(AdaptiveController):
    name = "dctcp"

    def __init__(self, window, params: Optional[CongestionParams] = None) -> None:
        super().__init__(window, params)
        self.alpha = 1.0
        self._win_acked = 0
        self._win_marked = 0
        self._win_size = max(int(self._cwnd), 1)

    @property
    def marked_fraction(self) -> float:
        return self.alpha

    def on_ack(
        self,
        freed: int,
        ece: bool,
        now: int,
        rtt_sample_ns: Optional[int] = None,
    ) -> None:
        self._note_rtt(rtt_sample_ns)
        self._win_acked += freed
        if ece:
            # Delayed-ack coarsening: the echo covers the whole batch.
            self._win_marked += freed
        self._additive_increase(freed)
        if self._win_acked >= self._win_size:
            fraction = self._win_marked / self._win_acked
            self.alpha += self.params.dctcp_g * (fraction - self.alpha)
            if self._win_marked:
                self._cwnd *= 1.0 - self.alpha / 2.0
            self._win_acked = 0
            self._win_marked = 0
            self._apply_cwnd()
            self._win_size = max(int(self._cwnd), 1)
        else:
            self._apply_cwnd()

    def on_loss(self, now: int) -> None:
        if self._cut(self.params.md_factor, now):
            self._apply_cwnd()

    def on_timeout(self, now: int) -> None:
        if now - self._last_cut_ns < self._srtt_ns:
            return
        self._last_cut_ns = now
        self._cwnd = float(self.params.min_cwnd_frames)
        self._apply_cwnd()


register_congestion_controller("dctcp", DctcpController)
