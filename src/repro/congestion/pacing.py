"""Token-bucket pacing in virtual time.

The bucket holds ``burst_bytes`` worth of tokens refilled at
``rate_bps``.  :meth:`TokenBucket.reserve` answers "given a frame of
``nbytes`` ready at ``now``, when may it start on the wire?" and charges
the bucket for it.  All state is integer nanoseconds, so paced schedules
are bit-deterministic.

The implementation tracks a single virtual deadline ``_debt_until``: the
instant at which the bucket is full again.  Tokens available at time
``t`` are ``clamp((t - (_debt_until - burst_ns)) * rate, 0, burst)``,
which turns the reserve computation into two max() operations.
"""

from __future__ import annotations

__all__ = ["TokenBucket"]


class TokenBucket:
    __slots__ = ("rate_bps", "burst_bytes", "_debt_until")

    def __init__(self, rate_bps: float, burst_bytes: int) -> None:
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        if burst_bytes <= 0:
            raise ValueError("burst_bytes must be positive")
        self.rate_bps = float(rate_bps)
        self.burst_bytes = int(burst_bytes)
        # Virtual instant when the bucket is full; anything in the past
        # means "full now".  Starts full at t=0.
        self._debt_until = 0

    def set_rate(self, rate_bps: float, burst_bytes: int | None = None) -> None:
        """Retarget the refill rate (existing debt keeps its deadline)."""
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        self.rate_bps = float(rate_bps)
        if burst_bytes is not None:
            if burst_bytes <= 0:
                raise ValueError("burst_bytes must be positive")
            self.burst_bytes = int(burst_bytes)

    def _cost_ns(self, nbytes: int) -> int:
        return int(round(nbytes * 8 * 1e9 / self.rate_bps))

    def reserve(self, nbytes: int, now: int) -> int:
        """Charge ``nbytes`` and return the earliest departure time >= now.

        A frame may depart once the bucket holds ``nbytes`` tokens; a
        frame larger than the configured burst is allowed through at one
        full-bucket's wait (the burst is widened for that reservation
        rather than blocking forever).
        """
        cost = self._cost_ns(nbytes)
        burst_ns = self._cost_ns(self.burst_bytes)
        if cost > burst_ns:
            burst_ns = cost
        depart = self._debt_until - burst_ns + cost
        if depart < now:
            depart = now
        # Consume the tokens: if the bucket had refilled past `depart`
        # the surplus is forfeited (bucket caps at burst_bytes).
        base = self._debt_until
        if depart > base:
            base = depart
        self._debt_until = base + cost
        return depart
