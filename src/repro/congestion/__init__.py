"""repro.congestion — ECN-aware congestion control and NIC pacing.

See :mod:`repro.congestion.base` for the controller contract and
docs/PROTOCOL.md ("Congestion management") for the protocol-level story.
"""

from .base import (
    CONTROLLER_NAMES,
    CongestionController,
    CongestionParams,
    StaticWindow,
    make_congestion_controller,
    register_congestion_controller,
)
from .adaptive import AdaptiveController
from .aimd import AimdController
from .dctcp import DctcpController
from .pacing import TokenBucket

__all__ = [
    "CONTROLLER_NAMES",
    "CongestionController",
    "CongestionParams",
    "StaticWindow",
    "AdaptiveController",
    "AimdController",
    "DctcpController",
    "TokenBucket",
    "make_congestion_controller",
    "register_congestion_controller",
]
