"""Shared machinery for window-adapting controllers (AIMD, DCTCP).

Keeps the congestion window as a float (so sub-frame additive increase
accumulates) and mirrors it into ``window.cwnd`` as an integer clamped to
``[min_cwnd_frames, window.size]``.  Also maintains a smoothed RTT from
Karn-filtered ack samples, which feeds the optional pacing rate
``cwnd_bytes / srtt * headroom``.
"""

from __future__ import annotations

from typing import Optional

from .base import FULL_FRAME_WIRE_BYTES, CongestionController, CongestionParams


class AdaptiveController(CongestionController):
    """Base for controllers that actually move the window."""

    active = True

    def __init__(self, window, params: Optional[CongestionParams] = None) -> None:
        super().__init__(window, params)
        p = self.params
        initial = p.initial_cwnd_frames
        if initial is None:
            initial = window.size
        self._cwnd = float(min(max(initial, p.min_cwnd_frames), window.size))
        self._srtt_ns = float(p.rtt_init_ns)
        # Loss/timeout reactions are rate-limited to once per smoothed
        # RTT: every drop in one overfull-queue episode is the same
        # congestion event and must cut the window only once.
        self._last_cut_ns = -(1 << 62)
        self._apply_cwnd()

    # -- window bookkeeping ----------------------------------------------

    def _apply_cwnd(self) -> None:
        p = self.params
        lo = float(p.min_cwnd_frames)
        hi = float(self.window.size)
        if self._cwnd < lo:
            self._cwnd = lo
        elif self._cwnd > hi:
            self._cwnd = hi
        self.window.cwnd = int(self._cwnd)

    def _additive_increase(self, freed: int) -> None:
        # Classic congestion avoidance: +ai/cwnd per acked frame adds
        # ~ai frames per round trip regardless of ack coalescing.
        self._cwnd += self.params.additive_increase_frames * freed / self._cwnd

    def _cut(self, factor: float, now: int) -> bool:
        if now - self._last_cut_ns < self._srtt_ns:
            return False
        self._last_cut_ns = now
        self._cwnd *= factor
        return True

    def cwnd_stable(self, now: int) -> bool:
        """Stable once the window sits at the flow-control cap and no cut
        happened within the last few round trips (a recent cut means the
        controller is still probing back up, so frame-level dynamics
        matter)."""
        return (
            int(self._cwnd) >= self.window.size
            and now - self._last_cut_ns >= 4 * self._srtt_ns
        )

    def _note_rtt(self, rtt_sample_ns: Optional[int]) -> None:
        if rtt_sample_ns is None or rtt_sample_ns <= 0:
            return
        g = self.params.rtt_gain
        self._srtt_ns += g * (rtt_sample_ns - self._srtt_ns)

    # -- pacing -----------------------------------------------------------

    def pacing_rate_bps(self) -> Optional[float]:
        p = self.params
        if not p.pacing:
            return None
        return (
            self._cwnd
            * FULL_FRAME_WIRE_BYTES
            * 8
            * 1e9
            / self._srtt_ns
            * p.pacing_headroom
        )
