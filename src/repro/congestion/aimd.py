"""TCP-Reno-style AIMD congestion control.

* Additive increase: ``additive_increase_frames`` per round trip,
  accumulated as ``ai * freed / cwnd`` on every cumulative ack.
* Multiplicative decrease: ``cwnd *= md_factor`` (default 0.5) on a
  NACK-driven loss, at most once per smoothed RTT.
* Coarse timeout: collapse to ``min_cwnd_frames`` — the retransmission
  timer only fires after NACK recovery has already failed, which signals
  the fabric is severely oversubscribed.

ECN echoes are treated like losses (a conservative fallback when the
fabric marks but the operator chose plain AIMD).
"""

from __future__ import annotations

from typing import Optional

from .adaptive import AdaptiveController
from .base import register_congestion_controller


class AimdController(AdaptiveController):
    name = "aimd"

    def on_ack(
        self,
        freed: int,
        ece: bool,
        now: int,
        rtt_sample_ns: Optional[int] = None,
    ) -> None:
        self._note_rtt(rtt_sample_ns)
        if ece:
            self._cut(self.params.md_factor, now)
        else:
            self._additive_increase(freed)
        self._apply_cwnd()

    def on_loss(self, now: int) -> None:
        if self._cut(self.params.md_factor, now):
            self._apply_cwnd()

    def on_timeout(self, now: int) -> None:
        if now - self._last_cut_ns < self._srtt_ns:
            return
        self._last_cut_ns = now
        self._cwnd = float(self.params.min_cwnd_frames)
        self._apply_cwnd()


register_congestion_controller("aimd", AimdController)
