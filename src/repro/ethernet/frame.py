"""Ethernet frame model.

Frames carry a real 14-byte Ethernet header plus a typed MultiEdge payload
header.  The simulator passes :class:`Frame` objects around (cheap), but the
headers have byte-exact ``encode``/``decode`` methods so the wire format is
concrete and testable — the protocol header layout below is what a kernel
implementation would put after the Ethernet header.

Wire-time accounting includes the parts of the Ethernet physical layer that
consume link time but carry no payload: preamble + SFD (8 B), frame check
sequence (4 B), and the inter-frame gap (12 B).  The paper's testbed switches
do not support jumbo frames, so the MTU is the classic 1500 bytes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum
from typing import Optional

__all__ = [
    "ETH_HEADER_BYTES",
    "ETH_CRC_BYTES",
    "ETH_PREAMBLE_BYTES",
    "ETH_IFG_BYTES",
    "ETH_MTU",
    "ETH_MIN_PAYLOAD",
    "ETH_OVERHEAD_BYTES",
    "MULTIEDGE_ETHERTYPE",
    "MULTIEDGE_HEADER_BYTES",
    "FrameType",
    "OpFlags",
    "ECN_CE",
    "ECN_ECHO",
    "MultiEdgeHeader",
    "Frame",
    "wire_time_ns",
    "max_payload_per_frame",
    "frame_sizes",
]

ETH_HEADER_BYTES = 14
ETH_CRC_BYTES = 4
ETH_PREAMBLE_BYTES = 8
ETH_IFG_BYTES = 12
ETH_MTU = 1500  # no jumbo frames (switch firmware limitation in the paper)
ETH_MIN_PAYLOAD = 46
# Per-frame wire bytes that are pure overhead (never payload).
ETH_OVERHEAD_BYTES = (
    ETH_HEADER_BYTES + ETH_CRC_BYTES + ETH_PREAMBLE_BYTES + ETH_IFG_BYTES
)

# Experimental ethertype range; MultiEdge frames are raw Ethernet.
MULTIEDGE_ETHERTYPE = 0x88B5


class FrameType(IntEnum):
    """MultiEdge frame kinds."""

    DATA = 0  # RDMA write payload / RDMA read response payload
    ACK = 1  # explicit positive acknowledgement
    NACK = 2  # negative acknowledgement listing missing sequences
    READ_REQ = 3  # remote read request
    SYN = 4  # connection setup request
    SYN_ACK = 5  # connection setup acknowledgement
    FIN = 6  # connection teardown
    READ_RESP = 7  # remote read response payload (sequenced like DATA)
    PROBE = 8  # edge-health heartbeat probe (control plane, unsequenced)
    PROBE_ACK = 9  # heartbeat echo, returned on the probed rail


class OpFlags(IntEnum):
    """Bit-field flags for RDMA operations (paper §2.2, §2.5)."""

    NONE = 0
    NOTIFY = 1 << 0  # deliver a notification at the target on completion
    FENCE_BACKWARD = 1 << 1  # perform only after all previously issued ops
    FENCE_FORWARD = 1 << 2  # subsequent ops wait until this one is performed
    SCATTER = 1 << 3  # payload is a list of (address, length, data) records
    JOURNALED = 1 << 4  # message rides a journaled channel: dedup on delivery


# ECN bits in the header flags byte (raw Ethernet has no IP ToS field, so
# MultiEdge carries congestion signalling in its own header).  Bits 0-3
# belong to OpFlags; ECN uses the top of the byte.
ECN_CE = 1 << 6  # Congestion Experienced: set by a switch egress queue
ECN_ECHO = 1 << 7  # receiver -> sender echo of CE on acknowledgements


# MultiEdge protocol header, directly after the Ethernet header:
#   u8  type            frame kind (FrameType)
#   u8  flags           OpFlags for the carried operation
#   u16 connection_id
#   u32 seq             frame sequence number (per connection, per direction)
#   u32 ack             piggy-backed cumulative acknowledgement
#   u32 op_id           operation this frame belongs to
#   u32 op_seq          operation issue sequence (fence ordering)
#   u64 remote_address  target virtual address for this frame's payload
#   u32 op_length       total operation length in bytes
#   u16 payload_length  payload bytes in this frame
#   u16 _pad
_HEADER_STRUCT = struct.Struct("!BBHIIIIQIHH")
MULTIEDGE_HEADER_BYTES = _HEADER_STRUCT.size  # 36 bytes


@dataclass(slots=True)
class MultiEdgeHeader:
    """Typed view of the MultiEdge wire header.

    ``payload_length`` must not change once the header is attached to a
    :class:`Frame` — the frame caches its wire size at construction.
    """

    frame_type: FrameType = FrameType.DATA
    flags: int = 0
    connection_id: int = 0
    seq: int = 0
    ack: int = 0
    op_id: int = 0
    op_seq: int = 0
    remote_address: int = 0
    op_length: int = 0
    payload_length: int = 0

    def encode(self) -> bytes:
        """Serialise to the 36-byte wire representation."""
        return _HEADER_STRUCT.pack(
            int(self.frame_type),
            self.flags,
            self.connection_id,
            self.seq,
            self.ack,
            self.op_id,
            self.op_seq,
            self.remote_address,
            self.op_length,
            self.payload_length,
            0,
        )

    @classmethod
    def decode(cls, data: bytes) -> "MultiEdgeHeader":
        """Parse the 36-byte wire representation."""
        (
            frame_type,
            flags,
            connection_id,
            seq,
            ack,
            op_id,
            op_seq,
            remote_address,
            op_length,
            payload_length,
            _pad,
        ) = _HEADER_STRUCT.unpack(data[:MULTIEDGE_HEADER_BYTES])
        return cls(
            frame_type=FrameType(frame_type),
            flags=flags,
            connection_id=connection_id,
            seq=seq,
            ack=ack,
            op_id=op_id,
            op_seq=op_seq,
            remote_address=remote_address,
            op_length=op_length,
            payload_length=payload_length,
        )


# Data bytes a single frame can carry under the 1500-byte MTU.
_MAX_PAYLOAD = ETH_MTU - MULTIEDGE_HEADER_BYTES


def max_payload_per_frame() -> int:
    """Data bytes a single frame can carry under the 1500-byte MTU."""
    return _MAX_PAYLOAD


# payload_length -> (mac_payload_bytes, wire_bytes).  Only ~2-3 distinct
# payload lengths occur per run (full MTU fragments plus one tail size per
# transfer size), so the dict stays tiny while the hot Frame constructor
# skips the header-size arithmetic and min-payload branch per frame.
_SIZE_CACHE: dict[int, tuple[int, int]] = {}


def frame_sizes(payload_length: int) -> tuple[int, int]:
    """``(mac_payload_bytes, wire_bytes)`` for a MultiEdge frame.

    ``mac_payload_bytes`` is everything between the Ethernet header and the
    CRC (MultiEdge header + payload, padded up to the 46-byte minimum);
    ``wire_bytes`` adds the fixed physical-layer overhead.
    """
    cached = _SIZE_CACHE.get(payload_length)
    if cached is not None:
        return cached
    mac_payload = MULTIEDGE_HEADER_BYTES + payload_length
    if mac_payload < ETH_MIN_PAYLOAD:
        mac_payload = ETH_MIN_PAYLOAD
    sizes = (mac_payload, mac_payload + ETH_OVERHEAD_BYTES)
    _SIZE_CACHE[payload_length] = sizes
    return sizes


class Frame:
    """A frame in flight.

    ``payload`` optionally carries the real bytes being moved (RDMA data);
    control frames carry ``None`` and a synthetic ``payload_length`` through
    the header.  ``uid`` identifies the physical frame instance (a
    retransmission is a new Frame with the same header ``seq``); it is 0
    until the transmitting NIC stamps it from the simulator's per-instance
    counter, so two simulators in one process never share uid state.

    ``mac_payload_bytes`` and ``wire_bytes`` are computed once at
    construction — the header's ``payload_length`` is immutable from then
    on (factories in :mod:`repro.core.messages` set it before building the
    frame).
    """

    __slots__ = (
        "src_mac",
        "dst_mac",
        "header",
        "payload",
        "corrupted",
        "uid",
        "control",
        "incarnation",
        "hops",
        "mac_payload_bytes",
        "wire_bytes",
    )

    def __init__(
        self,
        src_mac: int,
        dst_mac: int,
        header: MultiEdgeHeader,
        payload: Optional[bytes] = None,
        corrupted: bool = False,
        uid: int = 0,
        # Extra control payload (e.g. NACK missing-sequence list); accounted
        # in wire size via header.payload_length, kept typed for the
        # simulator.
        control: Optional[object] = None,
    ) -> None:
        self.src_mac = src_mac
        self.dst_mac = dst_mac
        self.header = header
        self.payload = payload
        self.corrupted = corrupted
        self.uid = uid
        self.control = control
        # Sender-node incarnation number (crash recovery).  0 until the
        # recovery subsystem stamps it; on the wire it would ride in a
        # reserved header field, so frame sizes are unchanged.
        self.incarnation = 0
        # Switch hops taken so far; bumped only by fabric (multi-switch)
        # switches, where it backs the no-forwarding-loop invariant.
        self.hops = 0
        payload_length = header.payload_length
        if payload is not None and len(payload) != payload_length:
            raise ValueError(
                f"payload length {len(payload)} != header "
                f"payload_length {payload_length}"
            )
        if payload_length > _MAX_PAYLOAD:
            raise ValueError(
                f"payload {payload_length} exceeds MTU budget {_MAX_PAYLOAD}"
            )
        # Bytes between Ethernet header and CRC (padded to the minimum),
        # and total link-time bytes including physical-layer overhead.
        sizes = _SIZE_CACHE.get(payload_length)
        if sizes is None:
            sizes = frame_sizes(payload_length)
        self.mac_payload_bytes, self.wire_bytes = sizes

    @property
    def is_data(self) -> bool:
        return self.header.frame_type == FrameType.DATA

    def wire_copy(self) -> "Frame":
        """An independent physical copy for retransmission.

        The copy carries its own header object and transit state
        (``corrupted``/``hops`` reset, CE mark cleared), so mutating it —
        new piggy-backed ack, ECN echo, rail MACs — can never reach back
        into an earlier copy of the same sequence number still in flight
        on another rail.  ``payload``/``control`` are shared by reference:
        both are treated as immutable once attached.
        """
        h = self.header
        copy = Frame.__new__(Frame)
        copy.src_mac = self.src_mac
        copy.dst_mac = self.dst_mac
        copy.header = MultiEdgeHeader(
            frame_type=h.frame_type,
            flags=h.flags & ~ECN_CE,
            connection_id=h.connection_id,
            seq=h.seq,
            ack=h.ack,
            op_id=h.op_id,
            op_seq=h.op_seq,
            remote_address=h.remote_address,
            op_length=h.op_length,
            payload_length=h.payload_length,
        )
        copy.payload = self.payload
        copy.corrupted = False
        copy.uid = 0
        copy.control = self.control
        copy.incarnation = self.incarnation
        copy.hops = 0
        copy.mac_payload_bytes = self.mac_payload_bytes
        copy.wire_bytes = self.wire_bytes
        return copy

    def __repr__(self) -> str:  # compact, for traces
        h = self.header
        return (
            f"Frame({h.frame_type.name} conn={h.connection_id} seq={h.seq} "
            f"ack={h.ack} op={h.op_id} len={h.payload_length})"
        )


def wire_time_ns(wire_bytes: int, speed_bps: float) -> int:
    """Serialisation time of ``wire_bytes`` on a ``speed_bps`` link."""
    return int(round(wire_bytes * 8 * 1e9 / speed_bps))
