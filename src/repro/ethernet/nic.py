"""Network interface controller model.

The NIC sits between the host protocol layer and a link.  It models the
behaviour that shapes the paper's results:

* bounded TX/RX descriptor rings (back-pressure and overflow drops),
* per-frame DMA latency,
* hardware interrupt coalescing (an interrupt fires after
  ``coalesce_frames`` arrivals or ``coalesce_timeout_ns``, whichever first),
* a host-controlled interrupt-enable flag, used by the MultiEdge polling
  scheme (paper §2.6),
* optionally *unmaskable* send-completion interrupts — the paper reports the
  Myricom 10-GbE NIC "does not allow us to disable the interrupts on the
  send path", which is part of why one-way tops out at ~88 % of line rate,
* a small uniform TX scheduling jitter, which is what makes two independent
  1-GbE rails deliver 45–50 % of frames out of order under round-robin
  striping.

The protocol layer talks to the NIC through :meth:`transmit`, :meth:`poll`,
and the ``interrupts_enabled`` flag; the NIC calls the driver's ``on_irq``
when an interrupt fires.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

from ..sim import RngRegistry, Simulator, Timer
from .frame import ETH_MTU, ETH_OVERHEAD_BYTES, Frame, wire_time_ns
from .link import Link

__all__ = ["NicParams", "Nic", "NicCounters"]

# Slack required before an RX admission decision may be taken at link-deliver
# time instead of arrival time (see Nic.deliver_fold).  Far larger than the
# number of frames one propagation window can add to the ring.
_RX_FOLD_MARGIN = 64


@dataclass
class NicParams:
    """Hardware characteristics of a NIC."""

    speed_bps: float = 1e9
    tx_ring_frames: int = 256
    rx_ring_frames: int = 256
    dma_ns: int = 600  # per-frame DMA engine latency
    tx_jitter_ns: int = 800  # uniform [0, jitter) scheduling noise per frame
    coalesce_frames: int = 8  # RX interrupt after this many frames ...
    coalesce_timeout_ns: int = 5_000  # ... or this much time, whichever first
    tx_completion_batch: int = 8  # completions per send-side interrupt
    unmaskable_tx_irq: bool = False  # Myricom 10-GbE behaviour

    def __post_init__(self) -> None:
        if self.speed_bps <= 0:
            raise ValueError("speed_bps must be positive")
        if self.tx_ring_frames < 1 or self.rx_ring_frames < 1:
            raise ValueError("ring sizes must be >= 1")
        if self.coalesce_frames < 1:
            raise ValueError("coalesce_frames must be >= 1")


@dataclass(slots=True)
class NicCounters:
    """Observable NIC statistics."""

    tx_frames: int = 0
    tx_bytes: int = 0
    rx_frames: int = 0
    rx_dropped_ring_full: int = 0
    rx_dropped_crc: int = 0
    # Frames that arrived while the NIC was powered off (node crashed).
    rx_dropped_powered_off: int = 0
    irqs_raised: int = 0
    tx_irqs_raised: int = 0
    # Nanoseconds frames spent waiting on the pacing token bucket.
    pacing_stall_ns: int = 0


class Nic:
    """A simulated Ethernet NIC attached to one link."""

    def __init__(
        self,
        sim: Simulator,
        params: NicParams,
        mac: int,
        rng: Optional[RngRegistry] = None,
        name: str = "nic",
    ) -> None:
        self.sim = sim
        self.params = params
        self.mac = mac
        self.rng = rng or RngRegistry(0)
        self.name = name
        self.counters = NicCounters()
        # Pre-bound jitter stream: streams are seeded by name, not creation
        # order, so binding early draws the identical sequence.  Draws are
        # buffered in batches — numpy's bounded-integer sampling consumes
        # the bit stream element-for-element identically in batch and
        # single-draw form, so the sequence is unchanged.
        self._txjitter = self.rng.stream(f"{name}.txjitter")
        self._jitter_buf: list[int] = []
        self._jitter_bound = 0
        # Serialisation times memoised per wire size (speed is fixed).
        self._wt_cache: dict[int, int] = {}

        self.tx_link: Optional[Link] = None
        # Driver hooks: on_irq runs in "hardware interrupt" context.
        self.on_irq: Optional[Callable[["Nic"], None]] = None
        # Optional trace sink (repro.sim.trace.Tracer).  When attached and
        # the category is enabled, frame tx/rx land on the timeline the
        # Chrome exporter renders; otherwise the cost is one None check.
        self.tracer = None
        # Optional invariant monitor wire tap (repro.verify); same guarded
        # single-attribute-test pattern as the tracer.
        self.monitor = None
        # Fast-forward discontinuity guard (repro.fastpath); power events
        # on this NIC abort any in-progress flow-level jump.
        self.fastpath_guard = None

        self.interrupts_enabled = True
        # Optional token-bucket pacer (repro.congestion.pacing.TokenBucket);
        # None (the default) keeps the transmit path byte-identical to the
        # unpaced NIC.  Installed via set_pacing_rate().
        self.pacer = None
        # Gray-fault TX drain throttle (repro.control.SlowNic): serialisation
        # time is multiplied by this; 1.0 keeps the pristine path.
        self.gray_tx_throttle = 1.0

        # Power state (whole-node crash model).  The epoch invalidates
        # in-flight DMA/serialisation callbacks scheduled before a crash:
        # sim.at entries cannot be cancelled, so each carries the epoch it
        # was scheduled under and no-ops if the NIC power-cycled since.
        self.powered = True
        self._power_epoch = 0

        self._tx_ring_used = 0
        self._line_free_at = 0

        # Host-visible pending events.
        self._rx_pending: Deque[Frame] = deque()
        self._rx_inflight = 0  # admitted frames still in the DMA window
        self._tx_completions = 0

        # RX coalescing state.
        self._rx_since_irq = 0
        self._coalesce_timer: Optional[Timer] = None
        # TX completion interrupt state.
        self._tx_since_irq = 0

    # -- wiring ----------------------------------------------------------

    def attach_link(self, link: Link) -> None:
        """Set the outgoing link (the incoming one calls :meth:`on_frame`)."""
        self.tx_link = link

    def set_pacing_rate(
        self, rate_bps: Optional[float], burst_bytes: Optional[int] = None
    ) -> None:
        """Install, retune, or remove (``rate_bps=None``) the TX pacer.

        Rates above line rate are clamped: pacing spaces frames *below*
        what serialisation would enforce anyway, never above it.
        """
        if rate_bps is None:
            self.pacer = None
            return
        if rate_bps > self.params.speed_bps:
            rate_bps = self.params.speed_bps
        if burst_bytes is None:
            burst_bytes = 8 * (ETH_MTU + ETH_OVERHEAD_BYTES)
        if self.pacer is None:
            from ..congestion.pacing import TokenBucket

            self.pacer = TokenBucket(rate_bps, burst_bytes)
        else:
            self.pacer.set_rate(rate_bps, burst_bytes)

    def set_tx_throttle(self, factor: float) -> None:
        """Stretch (or restore, ``factor=1.0``) TX serialisation time.

        Models a gray NIC that drains its ring slowly — the backlog
        builds and RTTs inflate with zero losses.  A throttle change is
        a timing discontinuity for the flow-level fast path.
        """
        if factor < 1.0:
            raise ValueError("throttle factor must be >= 1")
        if factor == self.gray_tx_throttle:
            return
        self.gray_tx_throttle = factor
        if self.fastpath_guard is not None:
            self.fastpath_guard.bump("nic-tx-throttle")

    # -- transmit path ---------------------------------------------------

    @property
    def tx_ring_free(self) -> int:
        return self.params.tx_ring_frames - self._tx_ring_used

    @property
    def tx_backlog_fraction(self) -> float:
        """TX ring occupancy in [0, 1] (health-monitor backlog signal)."""
        return self._tx_ring_used / self.params.tx_ring_frames

    def transmit(self, frame: Frame) -> bool:
        """Queue a frame for transmission; False if the TX ring is full.

        The TX path pipelines DMA with serialisation: per-frame DMA latency
        (plus scheduling jitter) delays a frame only while the line is idle
        (pipeline fill); under back-to-back load the line runs at full rate.
        """
        if not self.powered:
            return False
        if self._tx_ring_used >= self.params.tx_ring_frames:
            return False
        # Every transmission is an independent physical frame (senders build
        # a fresh Frame, retransmissions via Frame.wire_copy); stamp its
        # instance id here, at the moment it becomes a wire object.
        frame.uid = self.sim.next_frame_uid()
        self._tx_ring_used += 1
        params = self.params
        ready_at = self.sim.now + params.dma_ns
        jitter = params.tx_jitter_ns
        if jitter > 0:
            buf = self._jitter_buf
            if not buf or jitter != self._jitter_bound:
                # Refill; stored reversed so pop() yields draw order.
                buf = self._txjitter.integers(0, jitter, size=512).tolist()
                buf.reverse()
                self._jitter_buf = buf
                self._jitter_bound = jitter
            ready_at += buf.pop()
        wb = frame.wire_bytes
        pacer = self.pacer
        if pacer is not None:
            depart = pacer.reserve(wb, ready_at)
            if depart > ready_at:
                self.counters.pacing_stall_ns += depart - ready_at
                ready_at = depart
        begin = max(ready_at, self._line_free_at)
        tx_time = self._wt_cache.get(wb)
        if tx_time is None:
            tx_time = wire_time_ns(wb, params.speed_bps)
            self._wt_cache[wb] = tx_time
        if self.gray_tx_throttle != 1.0:
            tx_time = int(tx_time * self.gray_tx_throttle)
        self._line_free_at = begin + tx_time
        self.sim.at(self._line_free_at, self._tx_done, frame, self._power_epoch)
        if self.monitor is not None:
            self.monitor.on_nic_tx(self, frame)
        return True

    def _tx_done(self, frame: Frame, epoch: int = 0) -> None:
        if epoch != self._power_epoch:
            return  # scheduled before a crash: the frame died in the NIC
        if self.tx_link is None:
            raise RuntimeError(f"{self.name}: transmit with no link attached")
        self.tx_link.deliver(frame)
        self._tx_ring_used -= 1
        counters = self.counters
        counters.tx_frames += 1
        counters.tx_bytes += frame.wire_bytes
        tracer = self.tracer
        if tracer is not None and tracer.is_enabled("frame.tx"):
            h = frame.header
            tracer.record(
                "frame.tx",
                {"nic": self.name, "type": int(h.frame_type), "seq": h.seq,
                 "bytes": frame.wire_bytes},
            )
        self._tx_completions += 1
        self._tx_since_irq += 1
        if self._tx_since_irq >= self.params.tx_completion_batch:
            self._tx_since_irq = 0
            if self.params.unmaskable_tx_irq:
                # Fires regardless of the interrupt-enable flag.
                self._raise_irq(tx=True)
            elif self.interrupts_enabled:
                self._raise_irq(tx=True)
        # TX queue drained with completions still unharvested: raise the
        # queue-empty interrupt so the host reclaims descriptors promptly.
        if (
            self._tx_ring_used == 0
            and self._tx_completions > 0
            and self._tx_since_irq > 0
            and (self.interrupts_enabled or self.params.unmaskable_tx_irq)
        ):
            self._tx_since_irq = 0
            self._raise_irq(tx=True)

    # -- receive path ----------------------------------------------------

    def on_frame(self, frame: Frame) -> None:
        """Link delivery callback: last bit of ``frame`` has arrived."""
        if not self.powered:
            self.counters.rx_dropped_powered_off += 1
            return
        if frame.corrupted:
            self.counters.rx_dropped_crc += 1
            return
        if len(self._rx_pending) >= self.params.rx_ring_frames:
            self.counters.rx_dropped_ring_full += 1
            return
        # DMA the frame into host memory, then make it host-visible.
        self._rx_inflight += 1
        self.sim.schedule(self.params.dma_ns, self._rx_visible, frame,
                          self._power_epoch)

    def deliver_fold(self, frame: Frame, arrival: int) -> bool:
        """Fold link arrival + RX admission into one scheduled event.

        Only taken when the RX ring is far from full: the ring can gain at
        most a handful of frames during one propagation window, so with
        ``_RX_FOLD_MARGIN`` slack the arrival-time admission check is
        guaranteed to pass and deciding it early is timing-identical.
        Corrupted frames and near-full rings use the exact two-step path.
        """
        if not self.powered:
            return False  # fall back to on_frame, which counts the drop
        if frame.corrupted:
            return False
        if (
            len(self._rx_pending) + self._rx_inflight + _RX_FOLD_MARGIN
            >= self.params.rx_ring_frames
        ):
            return False
        self._rx_inflight += 1
        self.sim.at(arrival + self.params.dma_ns, self._rx_visible, frame,
                    self._power_epoch)
        return True

    def _rx_visible(self, frame: Frame, epoch: int = 0) -> None:
        if epoch != self._power_epoch:
            return  # DMA'd into a ring that no longer exists
        self._rx_inflight -= 1
        self._rx_pending.append(frame)
        self.counters.rx_frames += 1
        self._rx_since_irq += 1
        tracer = self.tracer
        if tracer is not None and tracer.is_enabled("frame.rx"):
            h = frame.header
            tracer.record(
                "frame.rx",
                {"nic": self.name, "type": int(h.frame_type), "seq": h.seq,
                 "bytes": frame.wire_bytes},
            )
        if not self.interrupts_enabled:
            return
        if self._rx_since_irq >= self.params.coalesce_frames:
            self._fire_rx_irq()
        elif self._coalesce_timer is None or not self._coalesce_timer.active:
            self._coalesce_timer = self.sim.timer(
                self.params.coalesce_timeout_ns, self._coalesce_expired
            )

    def _coalesce_expired(self) -> None:
        if self._rx_since_irq > 0 and self.interrupts_enabled:
            self._fire_rx_irq()

    def _fire_rx_irq(self) -> None:
        self._rx_since_irq = 0
        if self._coalesce_timer is not None:
            self._coalesce_timer.cancel()
            self._coalesce_timer = None
        self._raise_irq(tx=False)

    def _raise_irq(self, tx: bool) -> None:
        self.counters.irqs_raised += 1
        if tx:
            self.counters.tx_irqs_raised += 1
        if self.on_irq is not None:
            self.on_irq(self)

    # -- power (whole-node crash model) -----------------------------------

    def power_off(self) -> None:
        """Crash: drop every frame in the TX/RX rings and DMA windows.

        Bumping the power epoch orphans every already-scheduled
        ``_tx_done`` / ``_rx_visible`` callback (``sim.at`` entries cannot
        be cancelled), so in-flight frames silently vanish — exactly what
        losing NIC ring memory means.  Idempotent.
        """
        if not self.powered:
            return
        if self.fastpath_guard is not None:
            self.fastpath_guard.bump("nic-power-off")
        self.powered = False
        self._power_epoch += 1
        self._rx_pending.clear()
        self._tx_ring_used = 0
        self._rx_inflight = 0
        self._tx_completions = 0
        self._rx_since_irq = 0
        self._tx_since_irq = 0
        self._line_free_at = 0
        if self._coalesce_timer is not None:
            self._coalesce_timer.cancel()
            self._coalesce_timer = None
        self.pacer = None

    def power_on(self) -> None:
        """Restart: rings were already cleared at power-off."""
        if self.powered:
            return
        if self.fastpath_guard is not None:
            self.fastpath_guard.bump("nic-power-on")
        self.powered = True
        self.interrupts_enabled = True

    # -- host interface ---------------------------------------------------

    def disable_interrupts(self) -> None:
        self.interrupts_enabled = False

    def enable_interrupts(self) -> None:
        """Re-enable interrupts; pending events re-arm coalescing."""
        self.interrupts_enabled = True
        if self._rx_since_irq >= self.params.coalesce_frames or (
            self._rx_since_irq > 0 and self._rx_pending
        ):
            # Events arrived while polling was active but before the host
            # went idle; fire promptly rather than waiting a full timeout.
            self._fire_rx_irq()

    def poll(self, max_frames: Optional[int] = None) -> tuple[list[Frame], int]:
        """Harvest pending RX frames and TX completions (host polling)."""
        pending = self._rx_pending
        if max_frames is None or max_frames >= len(pending):
            frames = list(pending)
            pending.clear()
        else:
            frames = [pending.popleft() for _ in range(max_frames)]
        completions = self._tx_completions
        self._tx_completions = 0
        if not self._rx_pending:
            self._rx_since_irq = 0
        return frames, completions

    def has_pending(self) -> bool:
        return bool(self._rx_pending) or self._tx_completions > 0
