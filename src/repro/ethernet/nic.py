"""Network interface controller model.

The NIC sits between the host protocol layer and a link.  It models the
behaviour that shapes the paper's results:

* bounded TX/RX descriptor rings (back-pressure and overflow drops),
* per-frame DMA latency,
* hardware interrupt coalescing (an interrupt fires after
  ``coalesce_frames`` arrivals or ``coalesce_timeout_ns``, whichever first),
* a host-controlled interrupt-enable flag, used by the MultiEdge polling
  scheme (paper §2.6),
* optionally *unmaskable* send-completion interrupts — the paper reports the
  Myricom 10-GbE NIC "does not allow us to disable the interrupts on the
  send path", which is part of why one-way tops out at ~88 % of line rate,
* a small uniform TX scheduling jitter, which is what makes two independent
  1-GbE rails deliver 45–50 % of frames out of order under round-robin
  striping.

The protocol layer talks to the NIC through :meth:`transmit`, :meth:`poll`,
and the ``interrupts_enabled`` flag; the NIC calls the driver's ``on_irq``
when an interrupt fires.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

from ..sim import RngRegistry, Simulator, Timer
from .frame import Frame, wire_time_ns
from .link import Link

__all__ = ["NicParams", "Nic", "NicCounters"]


@dataclass
class NicParams:
    """Hardware characteristics of a NIC."""

    speed_bps: float = 1e9
    tx_ring_frames: int = 256
    rx_ring_frames: int = 256
    dma_ns: int = 600  # per-frame DMA engine latency
    tx_jitter_ns: int = 800  # uniform [0, jitter) scheduling noise per frame
    coalesce_frames: int = 8  # RX interrupt after this many frames ...
    coalesce_timeout_ns: int = 5_000  # ... or this much time, whichever first
    tx_completion_batch: int = 8  # completions per send-side interrupt
    unmaskable_tx_irq: bool = False  # Myricom 10-GbE behaviour

    def __post_init__(self) -> None:
        if self.speed_bps <= 0:
            raise ValueError("speed_bps must be positive")
        if self.tx_ring_frames < 1 or self.rx_ring_frames < 1:
            raise ValueError("ring sizes must be >= 1")
        if self.coalesce_frames < 1:
            raise ValueError("coalesce_frames must be >= 1")


@dataclass
class NicCounters:
    """Observable NIC statistics."""

    tx_frames: int = 0
    tx_bytes: int = 0
    rx_frames: int = 0
    rx_dropped_ring_full: int = 0
    rx_dropped_crc: int = 0
    irqs_raised: int = 0
    tx_irqs_raised: int = 0


class Nic:
    """A simulated Ethernet NIC attached to one link."""

    def __init__(
        self,
        sim: Simulator,
        params: NicParams,
        mac: int,
        rng: Optional[RngRegistry] = None,
        name: str = "nic",
    ) -> None:
        self.sim = sim
        self.params = params
        self.mac = mac
        self.rng = rng or RngRegistry(0)
        self.name = name
        self.counters = NicCounters()

        self.tx_link: Optional[Link] = None
        # Driver hooks: on_irq runs in "hardware interrupt" context.
        self.on_irq: Optional[Callable[["Nic"], None]] = None

        self.interrupts_enabled = True

        self._tx_ring_used = 0
        self._line_free_at = 0

        # Host-visible pending events.
        self._rx_pending: Deque[Frame] = deque()
        self._tx_completions = 0

        # RX coalescing state.
        self._rx_since_irq = 0
        self._coalesce_timer: Optional[Timer] = None
        # TX completion interrupt state.
        self._tx_since_irq = 0

    # -- wiring ----------------------------------------------------------

    def attach_link(self, link: Link) -> None:
        """Set the outgoing link (the incoming one calls :meth:`on_frame`)."""
        self.tx_link = link

    # -- transmit path ---------------------------------------------------

    @property
    def tx_ring_free(self) -> int:
        return self.params.tx_ring_frames - self._tx_ring_used

    def transmit(self, frame: Frame) -> bool:
        """Queue a frame for transmission; False if the TX ring is full.

        The TX path pipelines DMA with serialisation: per-frame DMA latency
        (plus scheduling jitter) delays a frame only while the line is idle
        (pipeline fill); under back-to-back load the line runs at full rate.
        """
        if self._tx_ring_used >= self.params.tx_ring_frames:
            return False
        # A (re)transmission is a fresh physical frame: any corruption that
        # hit a previous copy on the wire does not persist.
        frame.corrupted = False
        self._tx_ring_used += 1
        ready_at = self.sim.now + self.params.dma_ns
        if self.params.tx_jitter_ns > 0:
            ready_at += self.rng.uniform_int(
                f"{self.name}.txjitter", 0, self.params.tx_jitter_ns
            )
        begin = max(ready_at, self._line_free_at)
        tx_time = wire_time_ns(frame.wire_bytes, self.params.speed_bps)
        self._line_free_at = begin + tx_time
        self.sim.at(self._line_free_at, self._tx_done, frame)
        return True

    def _tx_done(self, frame: Frame) -> None:
        if self.tx_link is None:
            raise RuntimeError(f"{self.name}: transmit with no link attached")
        self.tx_link.deliver(frame)
        self._tx_ring_used -= 1
        self.counters.tx_frames += 1
        self.counters.tx_bytes += frame.wire_bytes
        self._tx_completions += 1
        self._tx_since_irq += 1
        if self._tx_since_irq >= self.params.tx_completion_batch:
            self._tx_since_irq = 0
            if self.params.unmaskable_tx_irq:
                # Fires regardless of the interrupt-enable flag.
                self._raise_irq(tx=True)
            elif self.interrupts_enabled:
                self._raise_irq(tx=True)
        # TX queue drained with completions still unharvested: raise the
        # queue-empty interrupt so the host reclaims descriptors promptly.
        if (
            self._tx_ring_used == 0
            and self._tx_completions > 0
            and self._tx_since_irq > 0
            and (self.interrupts_enabled or self.params.unmaskable_tx_irq)
        ):
            self._tx_since_irq = 0
            self._raise_irq(tx=True)

    # -- receive path ----------------------------------------------------

    def on_frame(self, frame: Frame) -> None:
        """Link delivery callback: last bit of ``frame`` has arrived."""
        if frame.corrupted:
            self.counters.rx_dropped_crc += 1
            return
        if len(self._rx_pending) >= self.params.rx_ring_frames:
            self.counters.rx_dropped_ring_full += 1
            return
        # DMA the frame into host memory, then make it host-visible.
        self.sim.schedule(self.params.dma_ns, self._rx_visible, frame)

    def _rx_visible(self, frame: Frame) -> None:
        self._rx_pending.append(frame)
        self.counters.rx_frames += 1
        self._rx_since_irq += 1
        if not self.interrupts_enabled:
            return
        if self._rx_since_irq >= self.params.coalesce_frames:
            self._fire_rx_irq()
        elif self._coalesce_timer is None or not self._coalesce_timer.active:
            self._coalesce_timer = self.sim.timer(
                self.params.coalesce_timeout_ns, self._coalesce_expired
            )

    def _coalesce_expired(self) -> None:
        if self._rx_since_irq > 0 and self.interrupts_enabled:
            self._fire_rx_irq()

    def _fire_rx_irq(self) -> None:
        self._rx_since_irq = 0
        if self._coalesce_timer is not None:
            self._coalesce_timer.cancel()
            self._coalesce_timer = None
        self._raise_irq(tx=False)

    def _raise_irq(self, tx: bool) -> None:
        self.counters.irqs_raised += 1
        if tx:
            self.counters.tx_irqs_raised += 1
        if self.on_irq is not None:
            self.on_irq(self)

    # -- host interface ---------------------------------------------------

    def disable_interrupts(self) -> None:
        self.interrupts_enabled = False

    def enable_interrupts(self) -> None:
        """Re-enable interrupts; pending events re-arm coalescing."""
        self.interrupts_enabled = True
        if self._rx_since_irq >= self.params.coalesce_frames or (
            self._rx_since_irq > 0 and self._rx_pending
        ):
            # Events arrived while polling was active but before the host
            # went idle; fire promptly rather than waiting a full timeout.
            self._fire_rx_irq()

    def poll(self, max_frames: Optional[int] = None) -> tuple[list[Frame], int]:
        """Harvest pending RX frames and TX completions (host polling)."""
        n = len(self._rx_pending) if max_frames is None else min(
            max_frames, len(self._rx_pending)
        )
        frames = [self._rx_pending.popleft() for _ in range(n)]
        completions = self._tx_completions
        self._tx_completions = 0
        if not self._rx_pending:
            self._rx_since_irq = 0
        return frames, completions

    def has_pending(self) -> bool:
        return bool(self._rx_pending) or self._tx_completions > 0
