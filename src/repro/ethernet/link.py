"""Physical link model.

A :class:`Link` is one *direction* of a cable.  The transmitting device owns
serialisation timing (it holds the line while clocking a frame out); the link
models what the cable itself contributes:

* propagation delay,
* bit errors (per-bit error rate; a corrupted frame is delivered with its
  ``corrupted`` flag set so the receiving NIC can drop it on CRC check),
* transient failures (scheduled outage windows during which frames are lost),
* strict FIFO delivery (Ethernet links never reorder).

:class:`Cable` bundles the two directions and attaches them to two devices.
Devices implement the tiny :class:`LinkEndpoint` protocol: an ``on_frame``
callback and a ``mac`` address.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol

from ..sim import RngRegistry, Simulator
from .frame import Frame

__all__ = ["LinkParams", "Link", "Cable", "LinkEndpoint"]


class LinkEndpoint(Protocol):
    """Anything a link can deliver frames to (a NIC or a switch port)."""

    mac: int

    def on_frame(self, frame: Frame) -> None:
        """Called when a frame's last bit arrives."""


@dataclass
class LinkParams:
    """Cable characteristics."""

    speed_bps: float = 1e9
    propagation_ns: int = 500  # a few hundred ns of cable + PHY
    bit_error_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.speed_bps <= 0:
            raise ValueError("speed_bps must be positive")
        if self.propagation_ns < 0:
            raise ValueError("propagation_ns must be >= 0")
        if not 0.0 <= self.bit_error_rate < 1.0:
            raise ValueError("bit_error_rate must be in [0, 1)")


class Link:
    """One direction of a cable.

    ``deliver(frame)`` is called by the transmitting device at the moment the
    frame's last bit leaves the device; the link schedules ``on_frame`` at the
    receiver after the propagation delay, enforcing FIFO arrival.
    """

    def __init__(
        self,
        sim: Simulator,
        params: LinkParams,
        rng: Optional[RngRegistry] = None,
        name: str = "link",
    ) -> None:
        self.sim = sim
        self.params = params
        self.rng = rng or RngRegistry(0)
        self.name = name
        self.receiver: Optional[LinkEndpoint] = None
        self._fold = None
        self._last_arrival = 0
        self._failed_until = -1
        # Gray impairment (repro.control gray faults): None keeps deliver()
        # on the pristine path; when set, burst loss and latency jitter draw
        # from dedicated ``.graydrop`` / ``.grayjitter`` RNG streams that
        # are created lazily, so un-degraded runs never touch them.
        self._gray: Optional[_GrayImpairment] = None
        # Fast-forward discontinuity guard (repro.fastpath); a fault or
        # repair on this link aborts any in-progress flow-level jump.
        self.fastpath_guard: Optional[object] = None
        # Counters.
        self.frames_delivered = 0
        self.frames_corrupted = 0
        self.frames_lost_outage = 0
        self.frames_lost_gray = 0
        self.bytes_delivered = 0

    def attach_receiver(self, endpoint: LinkEndpoint) -> None:
        self.receiver = endpoint
        # Optional fast-path hook: lets the receiver absorb a delivery with
        # fewer scheduler events when doing so is provably timing-identical
        # (see SwitchPort.deliver_fold / Nic.deliver_fold).  Bound once here
        # to keep the per-frame path free of getattr.
        self._fold = getattr(endpoint, "deliver_fold", None)

    def fail_for(self, duration_ns: int) -> None:
        """Start a transient outage: frames sent before ``now + duration`` die."""
        self._failed_until = max(self._failed_until, self.sim.now + duration_ns)
        self._bump_fastpath("link-outage")

    def fail_forever(self) -> None:
        """Permanent failure: every frame dies until :meth:`repair`."""
        self._failed_until = 1 << 62
        self._bump_fastpath("link-outage")

    def repair(self) -> None:
        """End any outage immediately (cable replaced / port re-enabled)."""
        self._failed_until = -1
        self._bump_fastpath("link-repair")

    def degrade(
        self, jitter_ns: int = 0, drop_p: float = 0.0, burst_len: float = 4.0
    ) -> None:
        """Enter gray-degraded mode: burst loss and/or latency jitter.

        ``drop_p`` is the long-run loss fraction of a two-state Gilbert
        model with mean burst length ``burst_len``; ``jitter_ns`` adds a
        uniform ``[0, jitter_ns)`` delay per frame.  Replaces any prior
        impairment on this link.
        """
        self._gray = _GrayImpairment(jitter_ns, drop_p, burst_len)
        self._bump_fastpath("link-degrade")

    def clear_degraded(self) -> None:
        """Leave gray-degraded mode (no-op when not degraded)."""
        if self._gray is not None:
            self._gray = None
            self._bump_fastpath("link-degrade-clear")

    @property
    def degraded(self) -> bool:
        return self._gray is not None

    def _bump_fastpath(self, reason: str) -> None:
        guard = self.fastpath_guard
        if guard is not None:
            guard.bump(reason)

    @property
    def failed(self) -> bool:
        return self.sim.now < self._failed_until

    def deliver(self, frame: Frame) -> None:
        """Accept a fully serialised frame and deliver it after propagation."""
        if self.receiver is None:
            raise RuntimeError(f"{self.name}: no receiver attached")
        if self.sim.now < self._failed_until:
            self.frames_lost_outage += 1
            return
        gray = self._gray
        if gray is not None and gray.drop_p > 0.0 and gray.drops_frame(self):
            self.frames_lost_gray += 1
            return
        if self.params.bit_error_rate > 0.0:
            p_corrupt = 1.0 - (1.0 - self.params.bit_error_rate) ** (
                frame.wire_bytes * 8
            )
            if self.rng.bernoulli(f"{self.name}.ber", p_corrupt):
                frame.corrupted = True
                self.frames_corrupted += 1
        arrival = self.sim.now + self.params.propagation_ns
        if gray is not None and gray.jitter_ns > 0:
            arrival += int(
                self.rng.stream(f"{self.name}.grayjitter").integers(
                    0, gray.jitter_ns
                )
            )
        # FIFO: a link can never reorder.  (Guards against misuse where a
        # device forgets serialisation ordering.)
        arrival = max(arrival, self._last_arrival)
        self._last_arrival = arrival
        self.frames_delivered += 1
        self.bytes_delivered += frame.wire_bytes
        fold = self._fold
        if fold is not None and fold(frame, arrival):
            return
        self.sim.at(arrival, self.receiver.on_frame, frame)


class _GrayImpairment:
    """Per-link gray-degradation state (two-state Gilbert burst loss).

    In the good state each frame enters a loss burst with probability
    ``p_enter``; in the bad state each frame is dropped and the burst
    ends with probability ``1 / burst_len``.  ``p_enter`` is solved so
    the stationary loss fraction equals ``drop_p``.
    """

    __slots__ = ("jitter_ns", "drop_p", "burst_len", "p_enter", "in_burst")

    def __init__(self, jitter_ns: int, drop_p: float, burst_len: float) -> None:
        self.jitter_ns = jitter_ns
        self.drop_p = drop_p
        self.burst_len = max(1.0, burst_len)
        # Stationary bad-state probability drop_p with mean burst length L
        # needs p_enter = drop_p / (L * (1 - drop_p)).
        self.p_enter = (
            drop_p / (self.burst_len * (1.0 - drop_p)) if drop_p > 0 else 0.0
        )
        self.in_burst = False

    def drops_frame(self, link: "Link") -> bool:
        stream_name = f"{link.name}.graydrop"
        if self.in_burst:
            if link.rng.bernoulli(stream_name, 1.0 / self.burst_len):
                self.in_burst = False
            return True
        if link.rng.bernoulli(stream_name, min(1.0, self.p_enter)):
            self.in_burst = True
            return True
        return False


class Cable:
    """A full-duplex cable between two endpoints.

    After construction, ``cable.link_from(a)`` is the direction whose
    transmitter is ``a``.  Devices normally keep the reference handed to them
    by the topology builder instead of calling this.
    """

    def __init__(
        self,
        sim: Simulator,
        a: LinkEndpoint,
        b: LinkEndpoint,
        params: LinkParams,
        rng: Optional[RngRegistry] = None,
        name: str = "cable",
    ) -> None:
        self.a = a
        self.b = b
        self.ab = Link(sim, params, rng, name=f"{name}.ab")
        self.ba = Link(sim, params, rng, name=f"{name}.ba")
        self.ab.attach_receiver(b)
        self.ba.attach_receiver(a)

    def link_from(self, endpoint: LinkEndpoint) -> Link:
        if endpoint is self.a:
            return self.ab
        if endpoint is self.b:
            return self.ba
        raise ValueError("endpoint is not attached to this cable")

    def fail_for(self, duration_ns: int) -> None:
        """Fail both directions (transient cable outage)."""
        self.ab.fail_for(duration_ns)
        self.ba.fail_for(duration_ns)

    def fail_forever(self) -> None:
        """Fail both directions permanently (until :meth:`repair`)."""
        self.ab.fail_forever()
        self.ba.fail_forever()

    def repair(self) -> None:
        """Repair both directions."""
        self.ab.repair()
        self.ba.repair()
