"""Topology wiring helpers.

Connects NICs to switch ports (or NICs back-to-back) with full-duplex
cables, assigns MAC addresses, and pre-populates switch MAC tables so that
experiments do not start with a flood storm.
"""

from __future__ import annotations

from typing import Optional

from ..sim import RngRegistry, Simulator
from .link import Cable, LinkParams
from .nic import Nic
from .switch import Switch, SwitchPort

__all__ = [
    "connect_nic_to_switch",
    "connect_back_to_back",
    "connect_trunk",
    "mac_address",
    "trunk_mac",
    "NIC_MAC_PREFIX",
    "TRUNK_MAC_PREFIX",
]

# Both prefixes have the locally-administered bit (0x02) set in the first
# octet; they differ in bit 2 of that octet, so the NIC and trunk MAC
# namespaces are disjoint by construction — no (node, rail) can ever
# produce the MAC of a (switch, trunk port) and vice versa.
NIC_MAC_PREFIX = 0x02
TRUNK_MAC_PREFIX = 0x06


def mac_address(node_id: int, nic_index: int) -> int:
    """Deterministic, locally administered MAC for (node, rail).

    Layout: ``02:xx:xx:xx:yy:yy`` — 24 bits of rail index, 16 bits of
    node id.  The fields are range-checked so they cannot bleed into one
    another (``mac_address(1 << 16, 0)`` used to equal
    ``mac_address(0, 1)``).
    """
    if not 0 <= node_id < (1 << 16):
        raise ValueError(f"node_id {node_id} outside the 16-bit MAC field")
    if not 0 <= nic_index < (1 << 24):
        raise ValueError(f"nic_index {nic_index} outside the 24-bit MAC field")
    return (NIC_MAC_PREFIX << 40) | (nic_index << 16) | node_id


def trunk_mac(switch_id: int, port_index: int) -> int:
    """Deterministic MAC for a switch-facing trunk port.

    Namespaced under :data:`TRUNK_MAC_PREFIX` (``06:…``) so trunk ports in
    a multi-switch fabric can never collide with any NIC MAC.  Layout
    mirrors :func:`mac_address`: 24 bits of switch id, 16 bits of port.
    """
    if not 0 <= switch_id < (1 << 24):
        raise ValueError(f"switch_id {switch_id} outside the 24-bit MAC field")
    if not 0 <= port_index < (1 << 16):
        raise ValueError(f"port_index {port_index} outside the 16-bit MAC field")
    return (TRUNK_MAC_PREFIX << 40) | (switch_id << 16) | port_index


def connect_nic_to_switch(
    sim: Simulator,
    nic: Nic,
    switch: Switch,
    port_index: int,
    link_params: Optional[LinkParams] = None,
    rng: Optional[RngRegistry] = None,
) -> Cable:
    """Cable a NIC to a switch port and teach the switch the NIC's MAC."""
    params = link_params or LinkParams(speed_bps=nic.params.speed_bps)
    port: SwitchPort = switch.port(port_index)
    cable = Cable(
        sim,
        nic,
        port,
        params,
        rng,
        name=f"{nic.name}<->{switch.name}.p{port_index}",
    )
    nic.attach_link(cable.link_from(nic))
    port.attach_link(cable.link_from(port), params.speed_bps)
    switch.learn(nic.mac, port_index)
    return cable


def connect_trunk(
    sim: Simulator,
    switch_a: Switch,
    port_a: int,
    switch_b: Switch,
    port_b: int,
    link_params: LinkParams,
    rng: Optional[RngRegistry] = None,
    mac_a: int = -1,
    mac_b: int = -1,
) -> Cable:
    """Cable two switch ports together (an inter-switch trunk).

    ``mac_a`` / ``mac_b`` optionally give the trunk endpoints identities
    from the :func:`trunk_mac` namespace (tracing and invariant checks);
    frames are never addressed to them, so ``-1`` (the transparent-port
    default) is also fine.
    """
    pa: SwitchPort = switch_a.port(port_a)
    pb: SwitchPort = switch_b.port(port_b)
    pa.mac = mac_a
    pb.mac = mac_b
    cable = Cable(
        sim,
        pa,
        pb,
        link_params,
        rng,
        name=f"{switch_a.name}.p{port_a}<->{switch_b.name}.p{port_b}",
    )
    pa.attach_link(cable.link_from(pa), link_params.speed_bps)
    pb.attach_link(cable.link_from(pb), link_params.speed_bps)
    return cable


def connect_back_to_back(
    sim: Simulator,
    nic_a: Nic,
    nic_b: Nic,
    link_params: Optional[LinkParams] = None,
    rng: Optional[RngRegistry] = None,
) -> Cable:
    """Directly cable two NICs (no switch), as in a two-node testbed."""
    params = link_params or LinkParams(speed_bps=nic_a.params.speed_bps)
    cable = Cable(sim, nic_a, nic_b, params, rng, name=f"{nic_a.name}<->{nic_b.name}")
    nic_a.attach_link(cable.link_from(nic_a))
    nic_b.attach_link(cable.link_from(nic_b))
    return cable
