"""Topology wiring helpers.

Connects NICs to switch ports (or NICs back-to-back) with full-duplex
cables, assigns MAC addresses, and pre-populates switch MAC tables so that
experiments do not start with a flood storm.
"""

from __future__ import annotations

from typing import Optional

from ..sim import RngRegistry, Simulator
from .link import Cable, LinkParams
from .nic import Nic
from .switch import Switch, SwitchPort

__all__ = ["connect_nic_to_switch", "connect_back_to_back", "mac_address"]


def mac_address(node_id: int, nic_index: int) -> int:
    """Deterministic, locally administered MAC for (node, rail)."""
    # 0x02 prefix = locally administered unicast.
    return (0x02 << 40) | (nic_index << 16) | node_id


def connect_nic_to_switch(
    sim: Simulator,
    nic: Nic,
    switch: Switch,
    port_index: int,
    link_params: Optional[LinkParams] = None,
    rng: Optional[RngRegistry] = None,
) -> Cable:
    """Cable a NIC to a switch port and teach the switch the NIC's MAC."""
    params = link_params or LinkParams(speed_bps=nic.params.speed_bps)
    port: SwitchPort = switch.port(port_index)
    cable = Cable(
        sim,
        nic,
        port,
        params,
        rng,
        name=f"{nic.name}<->{switch.name}.p{port_index}",
    )
    nic.attach_link(cable.link_from(nic))
    port.attach_link(cable.link_from(port), params.speed_bps)
    switch.learn(nic.mac, port_index)
    return cable


def connect_back_to_back(
    sim: Simulator,
    nic_a: Nic,
    nic_b: Nic,
    link_params: Optional[LinkParams] = None,
    rng: Optional[RngRegistry] = None,
) -> Cable:
    """Directly cable two NICs (no switch), as in a two-node testbed."""
    params = link_params or LinkParams(speed_bps=nic_a.params.speed_bps)
    cable = Cable(sim, nic_a, nic_b, params, rng, name=f"{nic_a.name}<->{nic_b.name}")
    nic_a.attach_link(cable.link_from(nic_a))
    nic_b.attach_link(cable.link_from(nic_b))
    return cable
