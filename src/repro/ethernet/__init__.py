"""Ethernet substrate: frames, links, NICs, and switches."""

from .frame import (
    ECN_CE,
    ECN_ECHO,
    ETH_CRC_BYTES,
    ETH_HEADER_BYTES,
    ETH_IFG_BYTES,
    ETH_MIN_PAYLOAD,
    ETH_MTU,
    ETH_OVERHEAD_BYTES,
    ETH_PREAMBLE_BYTES,
    MULTIEDGE_ETHERTYPE,
    MULTIEDGE_HEADER_BYTES,
    Frame,
    FrameType,
    MultiEdgeHeader,
    OpFlags,
    max_payload_per_frame,
    wire_time_ns,
)
from .link import Cable, Link, LinkParams
from .nic import Nic, NicCounters, NicParams
from .switch import Switch, SwitchParams, SwitchPort
from .topology import connect_back_to_back, connect_nic_to_switch, mac_address

__all__ = [
    "Frame",
    "FrameType",
    "MultiEdgeHeader",
    "OpFlags",
    "ECN_CE",
    "ECN_ECHO",
    "max_payload_per_frame",
    "wire_time_ns",
    "Link",
    "Cable",
    "LinkParams",
    "Nic",
    "NicParams",
    "NicCounters",
    "Switch",
    "SwitchParams",
    "SwitchPort",
    "connect_nic_to_switch",
    "connect_back_to_back",
    "mac_address",
    "ETH_MTU",
    "ETH_MIN_PAYLOAD",
    "ETH_HEADER_BYTES",
    "ETH_CRC_BYTES",
    "ETH_PREAMBLE_BYTES",
    "ETH_IFG_BYTES",
    "ETH_OVERHEAD_BYTES",
    "MULTIEDGE_HEADER_BYTES",
    "MULTIEDGE_ETHERTYPE",
]
