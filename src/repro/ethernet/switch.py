"""Store-and-forward Ethernet switch model.

The paper's testbed uses D-Link DGS-1024T (1 GbE) and HP ProCurve 6400cl
(10 GbE) switches — plain learning switches with finite output buffers.  The
model captures what matters for an *edge-based* protocol study:

* store-and-forward: a frame is forwarded only after full reception,
* a forwarding-decision latency,
* MAC learning with flooding for unknown destinations,
* finite per-output-port queues: congestion (e.g. many-to-one traffic from
  DSM barriers) overflows them and silently drops frames, which the
  MultiEdge edge protocol must detect and retransmit,
* per-port output serialisation at port speed.

The switch core provides *no* ordering, flow control, or reliability — that
is the whole point of the edge-based design under study.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from ..sim import Simulator
from .frame import ECN_CE, Frame, wire_time_ns
from .link import Link

__all__ = ["SwitchParams", "Switch", "SwitchPort"]

BROADCAST_MAC = 0xFFFFFFFFFFFF


@dataclass
class SwitchParams:
    """Switch fabric characteristics.

    ``lossless=True`` models core-assisted flow control (the paper's §6
    "hybrid approaches that include support from the core"): instead of
    dropping on output-queue overflow, the fabric backpressures — excess
    frames wait in an overflow stage (approximating Ethernet PAUSE /
    credit-based link-level flow control without modelling the PAUSE
    frames themselves).  The edge protocol then never sees congestion
    drops; the cost is unbounded fabric buffering and head-of-line
    queueing, which the statistics expose.

    ``ecn_threshold_frames`` enables ECN: when an output queue already
    holds at least this many frames, newly enqueued frames are marked
    Congestion Experienced (the DCTCP-style single-threshold marking,
    applied at enqueue).  ``None`` disables marking entirely — the
    default, and byte-identical to the pre-ECN fabric.
    """

    ports: int = 24
    forwarding_latency_ns: int = 1_000
    output_queue_frames: int = 128
    lossless: bool = False
    ecn_threshold_frames: Optional[int] = None

    def __post_init__(self) -> None:
        if self.ports < 2:
            raise ValueError("a switch needs at least 2 ports")
        if self.output_queue_frames < 1:
            raise ValueError("output_queue_frames must be >= 1")
        if self.ecn_threshold_frames is not None and self.ecn_threshold_frames < 1:
            raise ValueError("ecn_threshold_frames must be >= 1 (or None)")


class SwitchPort:
    """One switch port; implements the link-endpoint protocol."""

    # Ports have no MAC of their own; they are transparent.
    mac = -1

    def __init__(self, switch: "Switch", index: int) -> None:
        self.switch = switch
        self.index = index
        self.tx_link: Optional[Link] = None
        self.speed_bps: float = 1e9
        self._wt_cache: dict[int, int] = {}  # wire_bytes -> serialisation ns
        self._queue: Deque[Frame] = deque()
        self._paused: Deque[Frame] = deque()  # lossless overflow stage
        self._tx_running = False
        self.dropped_queue_full = 0
        self.paused_frames = 0
        self.peak_queue_depth = 0
        self.tx_frames = 0
        self.ce_marked = 0
        # Fast-forward discontinuity guard (repro.fastpath); a CE mark, a
        # queue drop, or a pause on this port aborts any flow-level jump.
        self.fastpath_guard = None

    def attach_link(self, link: Link, speed_bps: float) -> None:
        self.tx_link = link
        self.speed_bps = speed_bps
        self._wt_cache.clear()

    def _wire_time(self, wire_bytes: int) -> int:
        t = self._wt_cache.get(wire_bytes)
        if t is None:
            t = wire_time_ns(wire_bytes, self.speed_bps)
            self._wt_cache[wire_bytes] = t
        return t

    def on_frame(self, frame: Frame) -> None:
        self.switch._ingress(self.index, frame)

    def deliver_fold(self, frame: Frame, arrival: int) -> bool:
        """Fold link arrival + ingress into one scheduled forward.

        Only taken when MAC learning would be a no-op (source already mapped
        to this port), so skipping the intermediate ``on_frame`` event changes
        no observable state and no timestamp.
        """
        sw = self.switch
        if sw._mac_table.get(frame.src_mac) != self.index:
            return False
        sw.sim.at(
            arrival + sw.params.forwarding_latency_ns, sw._forward, self.index, frame
        )
        return True

    # -- egress ----------------------------------------------------------

    def _mark_ce(self, frame: Frame) -> None:
        frame.header.flags |= ECN_CE
        self.ce_marked += 1
        self.switch.ce_marked_total += 1
        if self.fastpath_guard is not None:
            self.fastpath_guard.bump("ecn-mark")

    def enqueue(self, frame: Frame) -> bool:
        params = self.switch.params
        ecn = params.ecn_threshold_frames
        # Instantaneous-threshold CE marking at enqueue (DCTCP-style);
        # only admitted frames carry a mark — drops leave none.
        mark = (
            ecn is not None
            and len(self._queue) + len(self._paused) >= ecn
        )
        if len(self._queue) >= params.output_queue_frames:
            if params.lossless:
                # Core-assisted flow control: hold instead of dropping.
                if mark:
                    self._mark_ce(frame)
                self._paused.append(frame)
                self.paused_frames += 1
                self._note_depth()
                if self.fastpath_guard is not None:
                    self.fastpath_guard.bump("switch-pause")
                return True
            self.dropped_queue_full += 1
            self.switch.dropped_total += 1
            if self.fastpath_guard is not None:
                self.fastpath_guard.bump("switch-drop")
            return False
        if mark:
            self._mark_ce(frame)
        self._queue.append(frame)
        self._note_depth()
        if not self._tx_running:
            # Idle port: the queue was empty, so the zero-delay _tx_step hop
            # would pop this same frame at this timestamp — serialise now.
            self._tx_running = True
            self._queue.popleft()
            self.switch.sim.schedule(
                self._wire_time(frame.wire_bytes), self._tx_done, frame
            )
        return True

    def _note_depth(self) -> None:
        depth = len(self._queue) + len(self._paused)
        if depth > self.peak_queue_depth:
            self.peak_queue_depth = depth

    def _tx_step(self) -> None:
        if not self._queue:
            self._tx_running = False
            return
        frame = self._queue.popleft()
        self.switch.sim.schedule(
            self._wire_time(frame.wire_bytes), self._tx_done, frame
        )

    def _tx_done(self, frame: Frame) -> None:
        if self.tx_link is None:
            raise RuntimeError(
                f"switch {self.switch.name} port {self.index}: no link attached"
            )
        self.tx_link.deliver(frame)
        self.tx_frames += 1
        # Lossless mode: admit a paused frame into the freed slot.
        if self._paused and (
            len(self._queue) < self.switch.params.output_queue_frames
        ):
            self._queue.append(self._paused.popleft())
        self._tx_step()

    @property
    def queue_depth(self) -> int:
        return len(self._queue) + len(self._paused)


class Switch:
    """A learning, store-and-forward switch."""

    def __init__(
        self, sim: Simulator, params: SwitchParams, name: str = "switch"
    ) -> None:
        self.sim = sim
        self.params = params
        self.name = name
        self.ports = [SwitchPort(self, i) for i in range(params.ports)]
        self._mac_table: dict[int, int] = {}
        self.forwarded = 0
        self.flooded = 0
        self.dropped_total = 0
        self.ce_marked_total = 0

    def port(self, index: int) -> SwitchPort:
        return self.ports[index]

    def learn(self, mac: int, port_index: int) -> None:
        """Pre-populate the MAC table (topology builders use this)."""
        self._mac_table[mac] = port_index

    def _ingress(self, port_index: int, frame: Frame) -> None:
        # Learn the source, then forward after the decision latency.
        self._mac_table[frame.src_mac] = port_index
        self.sim.schedule(
            self.params.forwarding_latency_ns, self._forward, port_index, frame
        )

    def _forward(self, in_port: int, frame: Frame) -> None:
        dst_port = self._mac_table.get(frame.dst_mac)
        if dst_port is not None and frame.dst_mac != BROADCAST_MAC:
            if dst_port != in_port:
                self.forwarded += 1
                self.ports[dst_port].enqueue(frame)
            # Frames "to" the ingress port are dropped silently, as real
            # switches do for hairpin traffic without reflection enabled.
            return
        # Unknown destination (or broadcast): flood.
        self.flooded += 1
        for port in self.ports:
            if port.index != in_port and port.tx_link is not None:
                port.enqueue(frame)

    @property
    def total_queue_depth(self) -> int:
        return sum(p.queue_depth for p in self.ports)
