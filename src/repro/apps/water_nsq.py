"""Water-Nsquared: O(n²) pairwise molecular dynamics.

Every molecule interacts with every other (half-matrix, symmetric
forces).  Nodes own interleaved row blocks of the pair matrix; force
contributions to *other* nodes' molecules are accumulated into a shared
force array under per-block locks, exactly the SPLASH-2 WATER-NSQUARED
synchronization structure.  The O(n²) compute makes this the most
scalable application in the paper (speedup ≈ 14 at 16 nodes).
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..dsm import DsmNode, DsmRuntime, SharedRegion
from .base import DsmApplication, gather_region_data, init_region_data

__all__ = ["WaterNsqApp"]

MOL_BYTES = 4 * 8  # x, y, z, pad
FORCE_LOCK_BASE = 100


class WaterNsqApp(DsmApplication):
    """Parallel O(n²) water simulation over the DSM."""

    name = "water-nsq"

    def __init__(
        self,
        n_molecules: int = 2048,
        iterations: int = 2,
        pair_ns: int = 640,
        dt: float = 1e-4,
        seed: int = 6,
    ) -> None:
        self.n = n_molecules
        self.iterations = iterations
        self.pair_ns = pair_ns
        self.dt = dt
        self.seed = seed
        self.positions: SharedRegion | None = None
        self.forces: SharedRegion | None = None
        self.initial: np.ndarray | None = None

    def setup(self, runtime: DsmRuntime) -> None:
        self.positions = runtime.alloc_region(
            "wnsq.pos", self.n * MOL_BYTES, home="block"
        )
        self.forces = runtime.alloc_region(
            "wnsq.force", self.n * MOL_BYTES, home="block"
        )
        rng = np.random.default_rng(self.seed)
        pos = np.zeros((self.n, 4))
        pos[:, :3] = rng.random((self.n, 3))
        self.initial = pos.copy()
        init_region_data(runtime, self.positions, pos)
        init_region_data(runtime, self.forces, np.zeros((self.n, 4)))

    def _block_of(self, rank: int, size: int) -> tuple[int, int]:
        per = self.n // size
        start = rank * per
        count = per if rank < size - 1 else self.n - start
        return start, count

    def program(self, node: DsmNode) -> Generator:
        rank, size = node.rank, node.size
        start, count = self._block_of(rank, size)
        yield from node.barrier(0)
        node.start_measurement()

        for _ in range(self.iterations):
            view = yield from node.access(
                self.positions, 0, self.n * MOL_BYTES, "r"
            )
            pos = view.view(np.float64).reshape(self.n, 4)[:, :3].copy()

            # Half-matrix pair forces, interleaved rows for balance
            # (row i has n-i-1 pairs; contiguous blocks would skew 30x).
            local_force = np.zeros((self.n, 3))
            pairs = 0
            for i in range(rank, self.n, size):
                delta = pos[i + 1 :] - pos[i]
                dist2 = (delta**2).sum(axis=1) + 1e-6
                f = delta / dist2[:, None] ** 1.5
                local_force[i] -= f.sum(axis=0)
                local_force[i + 1 :] += f
                pairs += self.n - i - 1
            yield from node.compute(pairs * self.pair_ns)

            # Accumulate into the shared force array, block by block,
            # under per-block locks.  Starting from our own block and
            # rotating avoids a convoy where every node queues on lock 0.
            for step in range(size):
                owner = (rank + step) % size
                bstart, bcount = self._block_of(owner, size)
                contrib = local_force[bstart : bstart + bcount]
                if not contrib.any():
                    continue
                yield from node.lock(FORCE_LOCK_BASE + owner)
                fview = yield from node.access(
                    self.forces, bstart * MOL_BYTES, bcount * MOL_BYTES, "rw"
                )
                fmat = fview.view(np.float64).reshape(bcount, 4)
                fmat[:, :3] += contrib
                yield from node.unlock(FORCE_LOCK_BASE + owner)
            yield from node.barrier(0)

            # Update own molecules from accumulated forces, then clear.
            pview = yield from node.access(
                self.positions, start * MOL_BYTES, count * MOL_BYTES, "rw"
            )
            pmat = pview.view(np.float64).reshape(count, 4)
            fview = yield from node.access(
                self.forces, start * MOL_BYTES, count * MOL_BYTES, "rw"
            )
            fmat = fview.view(np.float64).reshape(count, 4)
            pmat[:, :3] = np.clip(
                pmat[:, :3] + self.dt * fmat[:, :3], 0.0, 0.999999
            )
            fmat[:, :3] = 0.0
            yield from node.compute(count * 30)
            yield from node.barrier(0)

    def verify(self, runtime: DsmRuntime, result) -> bool:
        out = gather_region_data(
            runtime, self.positions, dtype=np.float64, count=self.n * 4
        ).reshape(self.n, 4)
        inside = (out[:, :3] >= 0.0).all() and (out[:, :3] < 1.0).all()
        moved = not np.allclose(out[:, :3], self.initial[:, :3])
        return bool(inside and moved)
