"""Water-Spatial: cell-based molecular dynamics with halo reads.

Molecules are statically binned into a 3D cell grid; cells (and their
molecules) are block-distributed.  Each step a node reads only the
*halo* — cells adjacent to its own — computes cutoff forces for its
molecules, and updates them in place.  Compute is O(n · neighbours), much
lower than Water-Nsquared's O(n²), so communication weighs more and the
paper places it in the *medium* speedup band (6–8 at 16 nodes).
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..dsm import DsmNode, DsmRuntime, SharedRegion
from .base import DsmApplication, gather_region_data, init_region_data

__all__ = ["WaterSpatialApp"]

MOL_BYTES = 4 * 8


class WaterSpatialApp(DsmApplication):
    """Parallel spatial water simulation (owner-computes halo exchange)."""

    name = "water-spatial"

    def __init__(
        self,
        n_molecules: int = 4096,
        grid: int = 8,
        iterations: int = 2,
        pair_ns: int = 55,
        dt: float = 1e-4,
        seed: int = 7,
    ) -> None:
        self.n = n_molecules
        self.grid = grid
        self.iterations = iterations
        self.pair_ns = pair_ns
        self.dt = dt
        self.seed = seed
        self.positions: SharedRegion | None = None
        self.initial: np.ndarray | None = None
        # Molecules are sorted by cell at setup; cell c owns slice
        # [cell_start[c], cell_start[c+1]).
        self.cell_start: np.ndarray | None = None

    # -- setup ------------------------------------------------------------

    def setup(self, runtime: DsmRuntime) -> None:
        g = self.grid
        rng = np.random.default_rng(self.seed)
        pos = np.zeros((self.n, 4))
        pos[:, :3] = rng.random((self.n, 3))
        cell = np.minimum((pos[:, :3] * g).astype(np.int64), g - 1)
        cell_id = cell[:, 0] * g * g + cell[:, 1] * g + cell[:, 2]
        order = np.argsort(cell_id, kind="stable")
        pos = pos[order]
        sorted_ids = cell_id[order]
        self.cell_start = np.searchsorted(
            sorted_ids, np.arange(g**3 + 1)
        ).astype(np.int64)
        self.initial = pos.copy()
        self.positions = runtime.alloc_region(
            "wsp.pos", self.n * MOL_BYTES, home="block"
        )
        init_region_data(runtime, self.positions, pos)

    # -- partitioning -------------------------------------------------------

    def _cells_of(self, rank: int, size: int) -> tuple[int, int]:
        n_cells = self.grid**3
        per = n_cells // size
        start = rank * per
        count = per if rank < size - 1 else n_cells - start
        return start, count

    def _mol_range(self, cell_lo: int, cell_hi: int) -> tuple[int, int]:
        return int(self.cell_start[cell_lo]), int(self.cell_start[cell_hi])

    def _neighbour_cells(self, cells: range) -> np.ndarray:
        g = self.grid
        wanted = set()
        for cid in cells:
            cx, cy, cz = cid // (g * g), (cid // g) % g, cid % g
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    for dz in (-1, 0, 1):
                        x, y, z = cx + dx, cy + dy, cz + dz
                        if 0 <= x < g and 0 <= y < g and 0 <= z < g:
                            wanted.add(x * g * g + y * g + z)
        return np.array(sorted(wanted), dtype=np.int64)

    # -- physics -----------------------------------------------------------

    def _forces(
        self, pos: np.ndarray, my_lo: int, my_hi: int, valid: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """Cutoff forces on owned molecules against *fetched* halo
        molecules only (``valid`` marks indices whose positions are real)."""
        g = self.grid
        cutoff2 = (1.5 / g) ** 2
        count = my_hi - my_lo
        cand = np.flatnonzero(valid)
        cpos = pos[cand, :3]
        forces = np.zeros((count, 3))
        interactions = 0
        for i in range(my_lo, my_hi):
            delta = cpos - pos[i, :3]
            dist2 = (delta**2).sum(axis=1)
            mask = (dist2 < cutoff2) & (dist2 > 0)
            if not mask.any():
                continue
            d = delta[mask]
            r2 = dist2[mask] + 1e-6
            forces[i - my_lo] = (d / r2[:, None] ** 1.5).sum(axis=0)
            interactions += int(mask.sum())
        return forces, interactions

    # -- program -------------------------------------------------------------

    def program(self, node: DsmNode) -> Generator:
        rank, size = node.rank, node.size
        cell_lo, cell_count = self._cells_of(rank, size)
        my_lo, my_hi = self._mol_range(cell_lo, cell_lo + cell_count)
        halo_cells = self._neighbour_cells(range(cell_lo, cell_lo + cell_count))

        yield from node.barrier(0)
        node.start_measurement()

        for _ in range(self.iterations):
            # Fetch halo molecules (contiguous cell runs).
            runs = _contiguous_runs(halo_cells)
            halo_pos = np.zeros((self.n, 4))
            valid = np.zeros(self.n, dtype=bool)
            for c_lo, c_hi in runs:
                m_lo, m_hi = self._mol_range(c_lo, c_hi)
                if m_hi <= m_lo:
                    continue
                view = yield from node.access(
                    self.positions,
                    m_lo * MOL_BYTES,
                    (m_hi - m_lo) * MOL_BYTES,
                    "r",
                )
                halo_pos[m_lo:m_hi] = view.view(np.float64).reshape(-1, 4)
                valid[m_lo:m_hi] = True

            if my_hi > my_lo:
                forces, interactions = self._forces(
                    halo_pos, my_lo, my_hi, valid
                )
                yield from node.compute(interactions * self.pair_ns)
                own = yield from node.access(
                    self.positions,
                    my_lo * MOL_BYTES,
                    (my_hi - my_lo) * MOL_BYTES,
                    "rw",
                )
                mat = own.view(np.float64).reshape(-1, 4)
                mat[:, :3] = np.clip(
                    mat[:, :3] + self.dt * forces, 0.0, 0.999999
                )
            yield from node.barrier(0)

    def verify(self, runtime: DsmRuntime, result) -> bool:
        out = gather_region_data(
            runtime, self.positions, dtype=np.float64, count=self.n * 4
        ).reshape(self.n, 4)
        inside = (out[:, :3] >= 0.0).all() and (out[:, :3] < 1.0).all()
        moved = not np.allclose(out[:, :3], self.initial[:, :3])
        return bool(inside and moved)


def _contiguous_runs(sorted_ids: np.ndarray) -> list[tuple[int, int]]:
    """Group sorted cell ids into [lo, hi) runs for batched fetches."""
    if len(sorted_ids) == 0:
        return []
    breaks = np.flatnonzero(np.diff(sorted_ids) > 1)
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks, [len(sorted_ids) - 1]))
    return [
        (int(sorted_ids[s]), int(sorted_ids[e]) + 1) for s, e in zip(starts, ends)
    ]
