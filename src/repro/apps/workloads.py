"""Workload registry: the paper's Table 1 plus our scaled problem sizes.

The paper runs full SPLASH-2 problem sizes on real hardware; simulating
those sizes frame-by-frame would take days, so every application runs a
proportionally scaled problem (documented per-app below) with a
compute-cost model calibrated so the communication-to-computation ratio —
and therefore the speedup *shape* — matches the paper's full-size runs.

``TABLE1`` reproduces the paper's Table 1 verbatim for the benchmark
harness to print alongside our scaled equivalents.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Table1Row", "TABLE1", "SCALED", "ScaledWorkload"]


@dataclass(frozen=True)
class Table1Row:
    """One row of the paper's Table 1."""

    application: str
    problem_size: str
    seq_exec_time_ms: int
    footprint_mb: str


TABLE1 = [
    Table1Row("Barnes-Spatial", "128K/64K particles", 2_877_713, "120/45"),
    Table1Row("FFT", "2^22 complex values", 4_752, "200"),
    Table1Row("LU", "8Kx8K matrix", 412_096, "500"),
    Table1Row("Radix", "32M integers", 4_179, "120"),
    Table1Row("Raytrace", "Balls scene 1Kx1K", 376_096, "210"),
    Table1Row("Water-Nsquared", "128K molecules", 11_678_974, "90"),
    Table1Row("Water-Spatial", "128K molecules", 231_889, "80"),
    Table1Row("Water-SpatialFL", "128K mols", 229_586, "80"),
]


@dataclass(frozen=True)
class ScaledWorkload:
    """Our scaled problem description for one application."""

    app: str
    paper_size: str
    scaled_size: str
    scale_factor: str
    notes: str


SCALED = [
    ScaledWorkload(
        "barnes", "128K/64K particles", "4K particles",
        "32x", "uniform-grid spatial N-body; positions read-shared",
    ),
    ScaledWorkload(
        "fft", "2^22 complex values", "2^16 complex values",
        "64x", "six-step FFT; all-to-all transposes dominate",
    ),
    ScaledWorkload(
        "lu", "8Kx8K matrix", "512x512 matrix, 32x32 blocks",
        "256x (elements)", "blocked right-looking LU, 2D block owners",
    ),
    ScaledWorkload(
        "radix", "32M integers", "64K integers (16-bit keys)",
        "512x", "radix-256 LSD sort; scattered permutation writes",
    ),
    ScaledWorkload(
        "raytrace", "balls 1Kx1K", "24 spheres 256x256",
        "16x (pixels)", "tile task queue through a global lock",
    ),
    ScaledWorkload(
        "water-nsq", "128K molecules", "2K molecules",
        "64x", "O(n^2) pairwise forces, per-block accumulation locks",
    ),
    ScaledWorkload(
        "water-spatial", "128K molecules", "4K molecules",
        "32x", "cell-based forces; halo-exchange reads only",
    ),
    ScaledWorkload(
        "water-spatial-fl", "128K molecules", "4K molecules",
        "32x", "spatial variant with symmetric pair forces + cell locks",
    ),
]
