"""SPLASH-2-style benchmark applications on the DSM."""

from .barnes import BarnesApp
from .base import AppResult, DsmApplication, gather_region_data, init_region_data, run_app
from .fft import FftApp
from .lu import LuApp
from .radix import RadixApp
from .raytrace import RaytraceApp
from .water_nsq import WaterNsqApp
from .water_spatial import WaterSpatialApp
from .water_spatial_fl import WaterSpatialFlApp
from .workloads import SCALED, TABLE1, ScaledWorkload, Table1Row

APP_CLASSES = {
    "barnes": BarnesApp,
    "fft": FftApp,
    "lu": LuApp,
    "radix": RadixApp,
    "raytrace": RaytraceApp,
    "water-nsq": WaterNsqApp,
    "water-spatial": WaterSpatialApp,
    "water-spatial-fl": WaterSpatialFlApp,
}

__all__ = [
    "DsmApplication",
    "AppResult",
    "run_app",
    "init_region_data",
    "gather_region_data",
    "BarnesApp",
    "FftApp",
    "LuApp",
    "RadixApp",
    "RaytraceApp",
    "WaterNsqApp",
    "WaterSpatialApp",
    "WaterSpatialFlApp",
    "APP_CLASSES",
    "TABLE1",
    "SCALED",
    "Table1Row",
    "ScaledWorkload",
]
