"""Radix sort (SPLASH-2 RADIX kernel).

LSD radix-256 sort of uniformly random keys.  Each pass: local histogram
of the owned block, global prefix computation through a shared histogram
region, then permutation — every node writes its keys to their destination
positions, which scatters small writes across the whole output array.
The scattered permutation is what gives Radix its notoriously poor
spatial locality, heavy false sharing, and bursty all-to-all traffic
(paper: poor scalability on every configuration).
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..dsm import PAGE_SIZE, DsmNode, DsmRuntime, SharedRegion
from .base import DsmApplication, gather_region_data, init_region_data

__all__ = ["RadixApp"]

KEY_BYTES = 8  # int64 keys
RADIX = 256


class RadixApp(DsmApplication):
    """Parallel LSD radix sort over the DSM."""

    name = "radix"

    def __init__(
        self,
        n_keys: int = 1 << 16,
        key_bits: int = 16,
        sort_ns_per_key: int = 300,
        seed: int = 2,
    ) -> None:
        if key_bits % 8:
            raise ValueError("key_bits must be a multiple of 8")
        self.n_keys = n_keys
        self.key_bits = key_bits
        self.passes = key_bits // 8
        self.sort_ns_per_key = sort_ns_per_key
        self.seed = seed
        self.keys_a: SharedRegion | None = None
        self.keys_b: SharedRegion | None = None
        self.hist: SharedRegion | None = None
        self.input: np.ndarray | None = None

    def setup(self, runtime: DsmRuntime) -> None:
        size = self.n_keys * KEY_BYTES
        self.keys_a = runtime.alloc_region("radix.a", size, home="block")
        self.keys_b = runtime.alloc_region("radix.b", size, home="block")
        # One page-aligned histogram row (RADIX counts) per node.
        self.hist = runtime.alloc_region(
            "radix.hist", runtime.n * PAGE_SIZE, home="block"
        )
        rng = np.random.default_rng(self.seed)
        self.input = rng.integers(
            0, 1 << self.key_bits, self.n_keys, dtype=np.int64
        )
        init_region_data(runtime, self.keys_a, self.input)

    def _block_of(self, rank: int, size: int) -> tuple[int, int]:
        per = self.n_keys // size
        return rank * per, per if rank < size - 1 else self.n_keys - rank * per

    def program(self, node: DsmNode) -> Generator:
        rank, size = node.rank, node.size
        start, count = self._block_of(rank, size)
        src, dst = self.keys_a, self.keys_b

        yield from node.barrier(0)
        node.start_measurement()

        for pass_no in range(self.passes):
            shift = pass_no * 8
            # 1. Local histogram of the owned block.
            view = yield from node.access(
                src, start * KEY_BYTES, count * KEY_BYTES, "r"
            )
            keys = view.view(np.int64)
            digits = (keys >> shift) & (RADIX - 1)
            local_hist = np.bincount(digits, minlength=RADIX).astype(np.int64)
            yield from node.compute(count * self.sort_ns_per_key)
            # Publish to our page of the shared histogram (home page).
            hview = yield from node.access(
                self.hist, rank * PAGE_SIZE, RADIX * 8, "rw"
            )
            hview.view(np.int64)[:RADIX] = local_hist
            yield from node.barrier(0)

            # 2. Global ranks: read every node's histogram row.
            all_hist = np.zeros((size, RADIX), dtype=np.int64)
            for peer in range(size):
                pview = yield from node.access(
                    self.hist, peer * PAGE_SIZE, RADIX * 8, "r"
                )
                all_hist[peer] = pview.view(np.int64)[:RADIX]
            # rank_base[d] = keys with smaller digit + same digit on
            # earlier nodes.
            digit_starts = np.concatenate(
                ([0], np.cumsum(all_hist.sum(axis=0))[:-1])
            )
            earlier = all_hist[:rank].sum(axis=0) if rank else np.zeros(
                RADIX, dtype=np.int64
            )
            rank_base = digit_starts + earlier
            yield from node.compute(RADIX * size * 2)

            # 3. Permutation: scatter keys to their destinations.
            order = np.argsort(digits, kind="stable")
            sorted_keys = keys[order]
            sorted_digits = digits[order]
            offsets_within = np.arange(count) - np.searchsorted(
                sorted_digits, sorted_digits
            )
            dest = rank_base[sorted_digits] + offsets_within
            yield from node.compute(count * self.sort_ns_per_key)
            # Group destination indices into page-contiguous chunks so each
            # page is faulted once.
            dest_bytes = dest * KEY_BYTES
            page_ids = dest_bytes // PAGE_SIZE
            boundaries = np.flatnonzero(np.diff(page_ids)) + 1
            chunk_starts = np.concatenate(([0], boundaries))
            chunk_ends = np.concatenate((boundaries, [count]))
            for cs, ce in zip(chunk_starts, chunk_ends):
                lo = int(dest_bytes[cs])
                hi = int(dest_bytes[ce - 1]) + KEY_BYTES
                dview = yield from node.access(dst, lo, hi - lo, "rw")
                darr = dview.view(np.int64)
                darr[(dest_bytes[cs:ce] - lo) // KEY_BYTES] = sorted_keys[cs:ce]
            yield from node.barrier(0)
            src, dst = dst, src

        yield from node.barrier(0)

    def verify(self, runtime: DsmRuntime, result) -> bool:
        final = self.keys_a if self.passes % 2 == 0 else self.keys_b
        out = gather_region_data(runtime, final, dtype=np.int64, count=self.n_keys)
        return bool(np.array_equal(out, np.sort(self.input)))
