"""Blocked dense LU factorization (SPLASH-2 LU kernel).

Right-looking LU without pivoting on a block-contiguous matrix.  Blocks
are 32x32 doubles (8 KB = two pages, so no inter-block false sharing) and
are owned in a 2D-scattered fashion; each step factors the diagonal
block, solves the perimeter blocks against it, then updates the interior.
Owners fetch the diagonal/perimeter blocks they need — bounded, regular
communication, which is why LU lands in the paper's *medium* speedup
band (6–8 at 16 nodes).
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..dsm import DsmNode, DsmRuntime, SharedRegion
from .base import DsmApplication, gather_region_data, init_region_data

__all__ = ["LuApp"]

DOUBLE = 8


class LuApp(DsmApplication):
    """Parallel blocked LU over the DSM."""

    name = "lu"

    def __init__(
        self,
        n: int = 512,
        block: int = 32,
        flop_ns: int = 4,
        seed: int = 3,
    ) -> None:
        if n % block:
            raise ValueError("matrix size must be a multiple of the block size")
        self.n = n
        self.block = block
        self.nb = n // block
        self.flop_ns = flop_ns
        self.seed = seed
        self.matrix: SharedRegion | None = None
        self.input: np.ndarray | None = None

    def setup(self, runtime: DsmRuntime) -> None:
        # Block-contiguous layout: block (I, J) occupies one contiguous
        # `block*block` stretch, so block transfers are page-local, and
        # pages are homed at the block's *owner* (owner-computes blocks
        # write locally; only read blocks travel).
        size = self.n * self.n * DOUBLE
        pages_per_block = max(1, self.block * self.block * DOUBLE // 4096)
        nprocs = runtime.n

        def lu_home(page: int) -> int:
            blk = page // pages_per_block
            bi, bj = divmod(blk, self.nb)
            return self._owner(bi, bj, nprocs)

        self.matrix = runtime.alloc_region("lu.m", size, home=lu_home)
        rng = np.random.default_rng(self.seed)
        mat = rng.standard_normal((self.n, self.n))
        # Diagonal dominance keeps no-pivot LU stable.
        mat += np.eye(self.n) * self.n
        self.input = mat
        init_region_data(runtime, self.matrix, self._to_blocked(mat))

    # -- block layout helpers ----------------------------------------------

    def _to_blocked(self, mat: np.ndarray) -> np.ndarray:
        b, nb = self.block, self.nb
        out = np.empty(self.n * self.n, dtype=np.float64)
        for bi in range(nb):
            for bj in range(nb):
                blockdata = mat[bi * b : (bi + 1) * b, bj * b : (bj + 1) * b]
                off = (bi * nb + bj) * b * b
                out[off : off + b * b] = blockdata.reshape(-1)
        return out

    def _from_blocked(self, flat: np.ndarray) -> np.ndarray:
        b, nb = self.block, self.nb
        mat = np.empty((self.n, self.n), dtype=np.float64)
        for bi in range(nb):
            for bj in range(nb):
                off = (bi * nb + bj) * b * b
                mat[bi * b : (bi + 1) * b, bj * b : (bj + 1) * b] = flat[
                    off : off + b * b
                ].reshape(b, b)
        return mat

    def _block_offset(self, bi: int, bj: int) -> int:
        return (bi * self.nb + bj) * self.block * self.block * DOUBLE

    def _owner(self, bi: int, bj: int, size: int) -> int:
        # 2D scatter over a near-square processor grid.
        rows = int(np.sqrt(size))
        while size % rows:
            rows -= 1
        cols = size // rows
        return (bi % rows) * cols + (bj % cols)

    def _get_block(
        self, node: DsmNode, bi: int, bj: int, mode: str
    ) -> Generator:
        nbytes = self.block * self.block * DOUBLE
        view = yield from node.access(
            self.matrix, self._block_offset(bi, bj), nbytes, mode
        )
        return view.view(np.float64).reshape(self.block, self.block)

    # -- program --------------------------------------------------------------

    def program(self, node: DsmNode) -> Generator:
        b, nb = self.block, self.nb
        rank, size = node.rank, node.size
        yield from node.barrier(0)
        node.start_measurement()

        for k in range(nb):
            # 1. Factor the diagonal block (owner only).
            if self._owner(k, k, size) == rank:
                diag = yield from self._get_block(node, k, k, "rw")
                for col in range(b):
                    diag[col + 1 :, col] /= diag[col, col]
                    diag[col + 1 :, col + 1 :] -= np.outer(
                        diag[col + 1 :, col], diag[col, col + 1 :]
                    )
                yield from node.compute(int(2 / 3 * b**3 * self.flop_ns))
            yield from node.barrier(0)

            # 2. Perimeter: row blocks (k, j) and column blocks (i, k).
            bb = b * b * DOUBLE
            mine = [
                (self._block_offset(k, j), bb)
                for j in range(k + 1, nb)
                if self._owner(k, j, size) == rank
            ] + [
                (self._block_offset(i, k), bb)
                for i in range(k + 1, nb)
                if self._owner(i, k, size) == rank
            ]
            if mine:
                yield from node.prefetch(
                    self.matrix, mine + [(self._block_offset(k, k), bb)]
                )
            did_perimeter = False
            for j in range(k + 1, nb):
                if self._owner(k, j, size) == rank:
                    diag = yield from self._get_block(node, k, k, "r")
                    blk = yield from self._get_block(node, k, j, "rw")
                    # Solve L * X = A_kj (unit lower triangular from diag).
                    lower = np.tril(diag, -1) + np.eye(b)
                    blk[:, :] = np.linalg.solve(lower, blk)
                    yield from node.compute(int(b**3 * self.flop_ns))
                    did_perimeter = True
            for i in range(k + 1, nb):
                if self._owner(i, k, size) == rank:
                    diag = yield from self._get_block(node, k, k, "r")
                    blk = yield from self._get_block(node, i, k, "rw")
                    upper = np.triu(diag)
                    blk[:, :] = np.linalg.solve(upper.T, blk.T).T
                    yield from node.compute(int(b**3 * self.flop_ns))
                    did_perimeter = True
            del did_perimeter
            yield from node.barrier(0)

            # 3. Interior updates A_ij -= A_ik @ A_kj.
            needed: list[tuple[int, int]] = []
            for i in range(k + 1, nb):
                for j in range(k + 1, nb):
                    if self._owner(i, j, size) == rank:
                        needed.append((self._block_offset(i, k), bb))
                        needed.append((self._block_offset(k, j), bb))
            if needed:
                yield from node.prefetch(self.matrix, needed)
            for i in range(k + 1, nb):
                for j in range(k + 1, nb):
                    if self._owner(i, j, size) != rank:
                        continue
                    a_ik = yield from self._get_block(node, i, k, "r")
                    a_kj = yield from self._get_block(node, k, j, "r")
                    a_ij = yield from self._get_block(node, i, j, "rw")
                    a_ij -= a_ik @ a_kj
                    yield from node.compute(int(2 * b**3 * self.flop_ns))
            yield from node.barrier(0)

    # -- verification -----------------------------------------------------------

    def verify(self, runtime: DsmRuntime, result) -> bool:
        flat = gather_region_data(
            runtime, self.matrix, dtype=np.float64, count=self.n * self.n
        )
        lu = self._from_blocked(np.asarray(flat))
        lower = np.tril(lu, -1) + np.eye(self.n)
        upper = np.triu(lu)
        return bool(np.allclose(lower @ upper, self.input, atol=1e-6 * self.n))
