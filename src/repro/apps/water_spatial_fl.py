"""Water-SpatialFL: spatial water with symmetric pair forces and locks.

The paper's third Water variant.  Like Water-Spatial it uses a cell grid
with cutoff interactions, but pair forces are computed *symmetrically*
(each pair once, Newton's third law) so a node produces force
contributions for molecules owned by neighbouring nodes; those are
accumulated into a shared force region under per-owner locks.  Half the
pair arithmetic of Water-Spatial, more synchronization — the same
*medium* speedup band, with a visibly different lock/traffic mix.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..dsm import DsmNode, DsmRuntime, SharedRegion
from .base import DsmApplication, gather_region_data, init_region_data
from .water_spatial import WaterSpatialApp, _contiguous_runs

__all__ = ["WaterSpatialFlApp"]

MOL_BYTES = 4 * 8
FL_LOCK_BASE = 300


class WaterSpatialFlApp(WaterSpatialApp):
    """Spatial water with symmetric forces + per-owner accumulation locks."""

    name = "water-spatial-fl"

    def __init__(self, **kwargs) -> None:
        kwargs.setdefault("pair_ns", 350)
        super().__init__(**kwargs)
        self.forces: SharedRegion | None = None

    def setup(self, runtime: DsmRuntime) -> None:
        super().setup(runtime)
        self.forces = runtime.alloc_region(
            "wspfl.force", self.n * MOL_BYTES, home="block"
        )
        init_region_data(runtime, self.forces, np.zeros((self.n, 4)))
        self._mol_owner = self._compute_mol_owner(runtime.n)

    def _compute_mol_owner(self, size: int) -> np.ndarray:
        owner = np.zeros(self.n, dtype=np.int64)
        for rank in range(size):
            cell_lo, cell_count = self._cells_of(rank, size)
            m_lo, m_hi = self._mol_range(cell_lo, cell_lo + cell_count)
            owner[m_lo:m_hi] = rank
        return owner

    def _symmetric_forces(
        self, pos: np.ndarray, my_lo: int, my_hi: int, valid: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """Each pair (i, j) with i owned and j > i computed once, against
        fetched halo molecules only."""
        g = self.grid
        cutoff2 = (1.5 / g) ** 2
        cand = np.flatnonzero(valid)
        cpos = pos[cand, :3]
        forces = np.zeros((self.n, 3))
        interactions = 0
        for i in range(my_lo, my_hi):
            sel = cand > i
            delta = cpos[sel] - pos[i, :3]
            dist2 = (delta**2).sum(axis=1)
            mask = dist2 < cutoff2
            if not mask.any():
                continue
            idx = cand[sel][mask]
            d = delta[mask]
            r2 = dist2[mask] + 1e-6
            f = d / r2[:, None] ** 1.5
            forces[i] += f.sum(axis=0)
            np.add.at(forces, idx, -f)
            interactions += len(idx)
        return forces, interactions

    def program(self, node: DsmNode) -> Generator:
        rank, size = node.rank, node.size
        cell_lo, cell_count = self._cells_of(rank, size)
        my_lo, my_hi = self._mol_range(cell_lo, cell_lo + cell_count)
        halo_cells = self._neighbour_cells(range(cell_lo, cell_lo + cell_count))
        owner = self._mol_owner

        yield from node.barrier(0)
        node.start_measurement()

        for _ in range(self.iterations):
            runs = _contiguous_runs(halo_cells)
            halo_pos = np.zeros((self.n, 4))
            valid = np.zeros(self.n, dtype=bool)
            for c_lo, c_hi in runs:
                m_lo, m_hi = self._mol_range(c_lo, c_hi)
                if m_hi <= m_lo:
                    continue
                view = yield from node.access(
                    self.positions,
                    m_lo * MOL_BYTES,
                    (m_hi - m_lo) * MOL_BYTES,
                    "r",
                )
                halo_pos[m_lo:m_hi] = view.view(np.float64).reshape(-1, 4)
                valid[m_lo:m_hi] = True

            if my_hi > my_lo:
                forces, interactions = self._symmetric_forces(
                    halo_pos, my_lo, my_hi, valid
                )
                # Half the pair count of Water-Spatial (each pair once).
                yield from node.compute(interactions * self.pair_ns)

                # Scatter contributions to each owner's force block.
                touched = np.flatnonzero(np.abs(forces).sum(axis=1) > 0)
                for step in range(size):
                    target = (rank + step) % size
                    mols = touched[owner[touched] == target]
                    if len(mols) == 0:
                        continue
                    lo, hi = int(mols.min()), int(mols.max()) + 1
                    yield from node.lock(FL_LOCK_BASE + target)
                    fview = yield from node.access(
                        self.forces,
                        lo * MOL_BYTES,
                        (hi - lo) * MOL_BYTES,
                        "rw",
                    )
                    fmat = fview.view(np.float64).reshape(-1, 4)
                    fmat[mols - lo, :3] += forces[mols]
                    yield from node.unlock(FL_LOCK_BASE + target)
            yield from node.barrier(0)

            # Integrate own molecules and clear their accumulators.
            if my_hi > my_lo:
                own = yield from node.access(
                    self.positions,
                    my_lo * MOL_BYTES,
                    (my_hi - my_lo) * MOL_BYTES,
                    "rw",
                )
                pmat = own.view(np.float64).reshape(-1, 4)
                facc = yield from node.access(
                    self.forces,
                    my_lo * MOL_BYTES,
                    (my_hi - my_lo) * MOL_BYTES,
                    "rw",
                )
                fmat = facc.view(np.float64).reshape(-1, 4)
                pmat[:, :3] = np.clip(
                    pmat[:, :3] + self.dt * fmat[:, :3], 0.0, 0.999999
                )
                fmat[:, :3] = 0.0
                yield from node.compute((my_hi - my_lo) * 30)
            yield from node.barrier(0)
