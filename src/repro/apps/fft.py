"""Six-step FFT (SPLASH-2 FFT kernel).

The n-point complex FFT is computed on an m x m matrix (n = m^2):

1. transpose, 2. m-point FFT on each row, 3. twiddle multiplication,
4. transpose, 5. m-point FFT on each row, 6. transpose.

Rows are block-distributed; each transpose makes every node read the
entire matrix (all-to-all), which is why FFT is communication-bound and
scales poorly in the paper (remote fetches ≈ 77 % of its parallel
overhead).  The matrix is sized so one row is exactly one page.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..dsm import DsmNode, DsmRuntime, SharedRegion
from .base import DsmApplication, gather_region_data, init_region_data

__all__ = ["FftApp"]

COMPLEX_BYTES = 16  # complex128


class FftApp(DsmApplication):
    """Parallel six-step FFT over the DSM."""

    name = "fft"

    def __init__(
        self,
        m: int = 256,
        fft_ns_per_point: int = 110,
        seed: int = 1,
    ) -> None:
        if m & (m - 1):
            raise ValueError("m must be a power of two")
        self.m = m
        self.n = m * m
        self.fft_ns_per_point = fft_ns_per_point
        self.seed = seed
        self.a: SharedRegion | None = None
        self.b: SharedRegion | None = None
        self.input: np.ndarray | None = None

    # -- setup -------------------------------------------------------------

    def setup(self, runtime: DsmRuntime) -> None:
        size = self.n * COMPLEX_BYTES
        self.a = runtime.alloc_region("fft.a", size, home="block")
        self.b = runtime.alloc_region("fft.b", size, home="block")
        rng = np.random.default_rng(self.seed)
        self.input = (
            rng.standard_normal(self.n) + 1j * rng.standard_normal(self.n)
        ).astype(np.complex128)
        init_region_data(runtime, self.a, self.input)

    # -- helpers -------------------------------------------------------------

    def _rows_of(self, rank: int, size: int) -> tuple[int, int]:
        per = self.m // size
        if per == 0:
            raise ValueError(f"FFT needs m >= nodes ({self.m} < {size})")
        return rank * per, per

    def _row_fft_cost(self, rows: int) -> int:
        # m log2 m butterflies per row.
        return int(
            rows * self.m * np.log2(self.m) * self.fft_ns_per_point
        )

    def _transpose(
        self, node: DsmNode, src: SharedRegion, dst: SharedRegion
    ) -> Generator:
        """dst[i, j] = src[j, i] for this node's rows i of dst."""
        m = self.m
        start, count = self._rows_of(node.rank, node.size)
        # Reading a column block touches every row of src: full fetch.
        src_view = yield from node.access(src, 0, self.n * COMPLEX_BYTES, "r")
        src_mat = src_view.view(np.complex128).reshape(m, m)
        dst_view = yield from node.access(
            dst, start * m * COMPLEX_BYTES, count * m * COMPLEX_BYTES, "rw"
        )
        dst_mat = dst_view.view(np.complex128).reshape(count, m)
        dst_mat[:, :] = src_mat[:, start : start + count].T
        yield from node.compute(
            int(count * m * self.fft_ns_per_point * 0.25)
        )

    def _row_ffts(
        self, node: DsmNode, region: SharedRegion, twiddle: bool
    ) -> Generator:
        m = self.m
        start, count = self._rows_of(node.rank, node.size)
        view = yield from node.access(
            region, start * m * COMPLEX_BYTES, count * m * COMPLEX_BYTES, "rw"
        )
        mat = view.view(np.complex128).reshape(count, m)
        mat[:, :] = np.fft.fft(mat, axis=1)
        if twiddle:
            rows = np.arange(start, start + count).reshape(-1, 1)
            cols = np.arange(m).reshape(1, -1)
            mat *= np.exp(-2j * np.pi * rows * cols / self.n)
        yield from node.compute(self._row_fft_cost(count))

    # -- program ---------------------------------------------------------------

    def program(self, node: DsmNode) -> Generator:
        a, b = self.a, self.b
        # Warm own rows (first-touch), then start the timed section.
        yield from node.barrier(0)
        node.start_measurement()

        yield from self._transpose(node, a, b)  # step 1
        yield from node.barrier(0)
        yield from self._row_ffts(node, b, twiddle=True)  # steps 2+3
        yield from node.barrier(0)
        yield from self._transpose(node, b, a)  # step 4
        yield from node.barrier(0)
        yield from self._row_ffts(node, a, twiddle=False)  # step 5
        yield from node.barrier(0)
        yield from self._transpose(node, a, b)  # step 6
        yield from node.barrier(0)

    # -- verification ---------------------------------------------------------

    def verify(self, runtime: DsmRuntime, result) -> bool:
        out = gather_region_data(
            runtime, self.b, dtype=np.complex128, count=self.n
        )
        expected = np.fft.fft(self.input)
        return bool(np.allclose(out, expected, rtol=1e-8, atol=1e-6))
