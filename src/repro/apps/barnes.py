"""Barnes-Spatial: uniform-grid N-body force computation.

The paper runs the SPLASH-2 "Barnes-Spatial" variant.  We implement the
spatial decomposition directly: particles hash into a uniform grid and
interact only with the 27 neighbouring cells (a short-range force with a
cutoff).  Particle positions are read-shared each step; every node owns a
block of particles and writes only its own block.  Computation is
O(n · neighbours) with a large constant, so communication stays a small
fraction of execution time — Barnes is in the paper's *good* speedup band
(13–14 at 16 nodes).
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..dsm import DsmNode, DsmRuntime, SharedRegion
from .base import DsmApplication, gather_region_data, init_region_data

__all__ = ["BarnesApp"]

POS_BYTES = 4 * 8  # x, y, z, mass per particle


class BarnesApp(DsmApplication):
    """Grid-based N-body over the DSM."""

    name = "barnes"

    def __init__(
        self,
        n_particles: int = 4096,
        grid: int = 8,
        iterations: int = 2,
        interaction_ns: int = 480,
        dt: float = 1e-3,
        seed: int = 4,
    ) -> None:
        self.n = n_particles
        self.grid = grid
        self.iterations = iterations
        self.interaction_ns = interaction_ns
        self.dt = dt
        self.seed = seed
        self.positions: SharedRegion | None = None
        self.initial: np.ndarray | None = None

    def setup(self, runtime: DsmRuntime) -> None:
        self.positions = runtime.alloc_region(
            "barnes.pos", self.n * POS_BYTES, home="block"
        )
        rng = np.random.default_rng(self.seed)
        data = np.empty((self.n, 4))
        data[:, :3] = rng.random((self.n, 3))
        data[:, 3] = rng.random(self.n) + 0.5  # mass
        self.initial = data.copy()
        init_region_data(runtime, self.positions, data)

    def _block_of(self, rank: int, size: int) -> tuple[int, int]:
        per = self.n // size
        start = rank * per
        count = per if rank < size - 1 else self.n - start
        return start, count

    def _forces(self, pos: np.ndarray, start: int, count: int) -> tuple[np.ndarray, int]:
        """Cutoff forces on particles [start, start+count); returns
        (force array, interaction count) — real math, vectorised per cell
        neighbourhood."""
        g = self.grid
        cell = np.minimum((pos[:, :3] * g).astype(np.int64), g - 1)
        cell_id = cell[:, 0] * g * g + cell[:, 1] * g + cell[:, 2]
        order = np.argsort(cell_id, kind="stable")
        sorted_ids = cell_id[order]
        cell_start = np.searchsorted(sorted_ids, np.arange(g**3))
        cell_end = np.searchsorted(sorted_ids, np.arange(g**3), side="right")

        forces = np.zeros((count, 3))
        interactions = 0
        cutoff2 = (1.5 / g) ** 2
        for local_i in range(count):
            i = start + local_i
            ci = cell[i]
            neighbours = []
            for dx in (-1, 0, 1):
                x = ci[0] + dx
                if not 0 <= x < g:
                    continue
                for dy in (-1, 0, 1):
                    y = ci[1] + dy
                    if not 0 <= y < g:
                        continue
                    for dz in (-1, 0, 1):
                        z = ci[2] + dz
                        if not 0 <= z < g:
                            continue
                        cid = x * g * g + y * g + z
                        s, e = cell_start[cid], cell_end[cid]
                        if e > s:
                            neighbours.append(order[s:e])
            idx = np.concatenate(neighbours)
            idx = idx[idx != i]
            if len(idx) == 0:
                continue
            delta = pos[idx, :3] - pos[i, :3]
            dist2 = (delta**2).sum(axis=1)
            mask = dist2 < cutoff2
            idx, delta, dist2 = idx[mask], delta[mask], dist2[mask]
            if len(idx) == 0:
                continue
            inv = pos[idx, 3] / (dist2 + 1e-6) ** 1.5
            forces[local_i] = (delta * inv[:, None]).sum(axis=0)
            interactions += len(idx)
        return forces, interactions

    def program(self, node: DsmNode) -> Generator:
        start, count = self._block_of(node.rank, node.size)
        yield from node.barrier(0)
        node.start_measurement()

        for _ in range(self.iterations):
            # Read all particle positions (fetches remote blocks).
            view = yield from node.access(
                self.positions, 0, self.n * POS_BYTES, "r"
            )
            pos = view.view(np.float64).reshape(self.n, 4).copy()
            forces, interactions = self._forces(pos, start, count)
            yield from node.compute(interactions * self.interaction_ns)

            # Update own block only (home pages).
            own = yield from node.access(
                self.positions, start * POS_BYTES, count * POS_BYTES, "rw"
            )
            own_mat = own.view(np.float64).reshape(count, 4)
            own_mat[:, :3] = np.clip(
                own_mat[:, :3] + self.dt * forces, 0.0, 0.999999
            )
            yield from node.compute(count * 20)
            yield from node.barrier(0)

    def verify(self, runtime: DsmRuntime, result) -> bool:
        out = gather_region_data(
            runtime, self.positions, dtype=np.float64, count=self.n * 4
        ).reshape(self.n, 4)
        # Masses unchanged, positions inside the unit box and not all equal
        # to the initial state (forces actually applied somewhere).
        if not np.allclose(out[:, 3], self.initial[:, 3]):
            return False
        if not ((out[:, :3] >= 0.0).all() and (out[:, :3] < 1.0).all()):
            return False
        return not np.allclose(out[:, :3], self.initial[:, :3])
