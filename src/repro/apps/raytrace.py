"""Raytrace: sphere-scene ray casting with a global tile task queue.

Mirrors SPLASH-2 RAYTRACE's structure: a read-only scene, an image
written tile by tile, and dynamic load balancing through a shared work
counter protected by a lock.  Per-pixel work (ray/sphere intersection and
shading) dwarfs the page traffic for scene and image, putting Raytrace in
the paper's *good* speedup band.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..dsm import PAGE_SIZE, DsmNode, DsmRuntime, SharedRegion
from .base import DsmApplication, gather_region_data, init_region_data

__all__ = ["RaytraceApp"]

SPHERE_BYTES = 8 * 8  # cx, cy, cz, radius, r, g, b, pad
PIXEL_BYTES = 8  # float64 intensity
WORK_LOCK = 911


class RaytraceApp(DsmApplication):
    """Parallel ray caster over the DSM."""

    name = "raytrace"

    def __init__(
        self,
        image: int = 256,
        tile: int = 32,
        n_spheres: int = 24,
        ray_ns: int = 5000,
        seed: int = 5,
    ) -> None:
        if image % tile:
            raise ValueError("image must be a multiple of the tile size")
        self.image = image
        self.tile = tile
        self.n_spheres = n_spheres
        self.ray_ns = ray_ns
        self.seed = seed
        self.tiles_per_row = image // tile
        self.n_tiles = self.tiles_per_row**2
        self.scene: SharedRegion | None = None
        self.frame: SharedRegion | None = None
        self.counter: SharedRegion | None = None
        self.spheres: np.ndarray | None = None

    def setup(self, runtime: DsmRuntime) -> None:
        self.scene = runtime.alloc_region(
            "ray.scene", self.n_spheres * SPHERE_BYTES, home="fixed:0"
        )
        self.frame = runtime.alloc_region(
            "ray.frame", self.image * self.image * PIXEL_BYTES, home="block"
        )
        self.counter = runtime.alloc_region("ray.queue", PAGE_SIZE, home="fixed:0")
        rng = np.random.default_rng(self.seed)
        spheres = np.zeros((self.n_spheres, 8))
        spheres[:, 0:2] = rng.random((self.n_spheres, 2)) * 2 - 1  # cx, cy
        spheres[:, 2] = rng.random(self.n_spheres) * 3 + 2  # cz (in front)
        spheres[:, 3] = rng.random(self.n_spheres) * 0.35 + 0.1  # radius
        spheres[:, 4:7] = rng.random((self.n_spheres, 3))  # colour
        self.spheres = spheres
        init_region_data(runtime, self.scene, spheres)

    def _render_tile(self, spheres: np.ndarray, tile_idx: int) -> np.ndarray:
        """Real ray-sphere intersection for one tile (vectorised)."""
        t = self.tile
        ty, tx = divmod(tile_idx, self.tiles_per_row)
        ys = (np.arange(ty * t, (ty + 1) * t) / self.image) * 2 - 1
        xs = (np.arange(tx * t, (tx + 1) * t) / self.image) * 2 - 1
        # Rays from origin through z=1 plane: direction (x, y, 1).
        dirs = np.stack(
            np.broadcast_arrays(
                xs[None, :, None], ys[:, None, None], np.float64(1.0)
            ),
            axis=-1,
        ).reshape(-1, 3)
        dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
        centers = spheres[:, 0:3]
        radii = spheres[:, 3]
        shade = spheres[:, 4:7].mean(axis=1)
        # |o + s d - c|^2 = r^2 with o = 0.
        b = dirs @ centers.T  # (pixels, spheres)
        c = (centers**2).sum(axis=1) - radii**2
        disc = b**2 - c[None, :]
        hit = disc >= 0
        s = np.where(hit, b - np.sqrt(np.maximum(disc, 0.0)), np.inf)
        s[s < 0] = np.inf
        nearest = np.argmin(s, axis=1)
        dist = s[np.arange(len(dirs)), nearest]
        intensity = np.where(
            np.isfinite(dist), shade[nearest] / (1 + 0.1 * dist), 0.0
        )
        return intensity.reshape(t, t)

    def program(self, node: DsmNode) -> Generator:
        t = self.tile
        yield from node.barrier(0)
        node.start_measurement()

        # Fetch the (read-only) scene once.
        sview = yield from node.access(
            self.scene, 0, self.n_spheres * SPHERE_BYTES, "r"
        )
        spheres = sview.view(np.float64).reshape(self.n_spheres, 8).copy()

        rendered = 0
        while True:
            # Grab the next tile from the shared work queue.
            yield from node.lock(WORK_LOCK)
            cview = yield from node.access(self.counter, 0, 8, "rw")
            counter = cview.view(np.int64)
            tile_idx = int(counter[0])
            counter[0] = tile_idx + 1
            yield from node.unlock(WORK_LOCK)
            if tile_idx >= self.n_tiles:
                break

            pixels = self._render_tile(spheres, tile_idx)
            yield from node.compute(t * t * self.n_spheres * self.ray_ns // 8)
            rendered += 1

            # Write the tile into the shared frame, row by row.
            ty, tx = divmod(tile_idx, self.tiles_per_row)
            for row in range(t):
                y = ty * t + row
                offset = (y * self.image + tx * t) * PIXEL_BYTES
                fview = yield from node.access(
                    self.frame, offset, t * PIXEL_BYTES, "rw"
                )
                fview.view(np.float64)[:t] = pixels[row]
        yield from node.barrier(0)
        return rendered

    def verify(self, runtime: DsmRuntime, result) -> bool:
        out = gather_region_data(
            runtime, self.frame, dtype=np.float64, count=self.image**2
        ).reshape(self.image, self.image)
        expected = np.empty_like(out)
        for tile_idx in range(self.n_tiles):
            ty, tx = divmod(tile_idx, self.tiles_per_row)
            t = self.tile
            expected[ty * t : (ty + 1) * t, tx * t : (tx + 1) * t] = (
                self._render_tile(self.spheres, tile_idx)
            )
        return bool(np.allclose(out, expected))
