"""Application harness for DSM workloads.

A :class:`DsmApplication` bundles:

* region allocation and (untimed) data initialisation,
* the per-node program — a generator following the SPLASH-2 convention:
  initialise → barrier → ``start_measurement()`` → timed parallel phases,
* a compute-cost model: applications perform *real* computation on real
  data (so the DSM moves real bytes and correctness is checkable) while
  the simulated clock is charged via per-operation coefficients calibrated
  against the paper's Table 1 workloads.

``run_app`` builds the cluster + DSM, runs the program on every node, and
returns both the DSM result and derived application metrics.  Speedup
curves are produced by comparing against a 1-node run of the same
program, as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

import numpy as np

from ..bench.cluster import make_cluster
from ..dsm import DsmNode, DsmRunResult, DsmRuntime, SharedRegion
from ..dsm.region import PAGE_SIZE

__all__ = ["DsmApplication", "AppResult", "run_app", "init_region_data"]


def init_region_data(runtime: DsmRuntime, region: SharedRegion, data: np.ndarray) -> None:
    """Install initial contents into every page's *home* copy (untimed).

    This models the untimed initialisation phase: data starts resident at
    its home, and other nodes' first accesses fault it in.
    """
    flat = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
    if len(flat) > region.size:
        raise ValueError(
            f"init data ({len(flat)} B) larger than region ({region.size} B)"
        )
    for page_start in range(0, len(flat), PAGE_SIZE):
        page = page_start // PAGE_SIZE
        home = region.home_of(page)
        chunk = flat[page_start : page_start + PAGE_SIZE]
        runtime.nodes[home].stack.node.memory.write(
            region.page_addr(home, page), chunk
        )


def gather_region_data(
    runtime: DsmRuntime, region: SharedRegion, dtype=np.uint8, count: Optional[int] = None
) -> np.ndarray:
    """Collect the authoritative (home) copy of a region, for verification."""
    out = np.empty(region.n_pages * PAGE_SIZE, dtype=np.uint8)
    for page in range(region.n_pages):
        home = region.home_of(page)
        data = runtime.nodes[home].stack.node.memory.read(
            region.page_addr(home, page), PAGE_SIZE
        )
        out[page * PAGE_SIZE : (page + 1) * PAGE_SIZE] = np.frombuffer(
            data, dtype=np.uint8
        )
    typed = out.view(dtype)
    return typed[:count] if count is not None else typed


class DsmApplication:
    """Base class for DSM benchmark applications."""

    #: short identifier used by the benchmark harness (e.g. "fft")
    name: str = "app"

    def setup(self, runtime: DsmRuntime) -> None:
        """Allocate regions and install initial data (untimed)."""
        raise NotImplementedError

    def program(self, node: DsmNode) -> Generator:
        """The per-node program (a simulation-process generator)."""
        raise NotImplementedError

    def verify(self, runtime: DsmRuntime, result: "DsmRunResult") -> bool:
        """Optional correctness check on final shared state."""
        return True


@dataclass
class AppResult:
    """Application metrics derived from a DSM run."""

    app: str
    config: str
    nodes: int
    elapsed_ns: int
    dsm: DsmRunResult
    verified: bool

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed_ns / 1e6

    def speedup_vs(self, single: "AppResult") -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return single.elapsed_ns / self.elapsed_ns

    @property
    def mean_breakdown(self):
        """Average execution-time breakdown across nodes."""
        bds = self.dsm.breakdowns
        n = len(bds)
        if n == 0:
            return None
        from ..dsm.stats import Breakdown

        return Breakdown(
            elapsed_ns=self.elapsed_ns,
            compute=sum(b.compute for b in bds) / n,
            data_wait=sum(b.data_wait for b in bds) / n,
            sync=sum(b.sync for b in bds) / n,
            dsm_overhead=sum(b.dsm_overhead for b in bds) / n,
            protocol=sum(b.protocol for b in bds) / n,
            other=sum(b.other for b in bds) / n,
        )


def run_app(
    app: DsmApplication,
    config: str = "1L-1G",
    nodes: int = 16,
    seed: int = 0,
    limit_ms: int = 600_000,
    **cluster_overrides: Any,
) -> AppResult:
    """Run one application on one cluster configuration."""
    cluster = make_cluster(config, nodes=nodes, seed=seed, **cluster_overrides)
    runtime = DsmRuntime(cluster)
    app.setup(runtime)
    dsm_result = runtime.run(app.program, limit_ms=limit_ms)
    verified = app.verify(runtime, dsm_result)
    return AppResult(
        app=app.name,
        config=cluster.config.name,
        nodes=nodes,
        elapsed_ns=dsm_result.elapsed_ns,
        dsm=dsm_result,
        verified=verified,
    )
