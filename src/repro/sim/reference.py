"""Frozen copy of the seed discrete-event engine (differential oracle).

This module preserves the original ``heapq``-only engine exactly as it
shipped in the seed tree, renamed with a ``Seed`` prefix.  It exists for two
reasons:

* the property tests assert that the optimised engine in
  :mod:`repro.sim.core` (same-timestamp FIFO fast lane, lazy-deleted timer
  entries) orders simultaneous events *identically* to this one, and
* ``benchmarks/bench_engine_speed.py`` measures the optimised engine's
  events/sec against this engine on the same workload, so the perf
  trajectory is tracked against a fixed reference rather than a moving one.

Do not "improve" this file: its value is that it never changes.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Optional

__all__ = ["SeedSimulator", "SeedEvent", "SeedProcess", "SeedTimer"]


class SeedSimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class SeedEvent:
    """Seed one-shot event (see :class:`repro.sim.core.Event`)."""

    __slots__ = ("_sim", "_waiters", "triggered", "value")

    def __init__(self, sim: "SeedSimulator") -> None:
        self._sim = sim
        self._waiters: list[Callable[[Any], None]] = []
        self.triggered = False
        self.value: Any = None

    def trigger(self, value: Any = None) -> None:
        if self.triggered:
            raise SeedSimulationError("event triggered twice")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for resume in waiters:
            self._sim.schedule(0, resume, value)

    succeed = trigger

    def add_callback(self, resume: Callable[[Any], None]) -> None:
        if self.triggered:
            self._sim.schedule(0, resume, self.value)
        else:
            self._waiters.append(resume)


class SeedTimer:
    """Seed cancellable timer: the heap entry rots until its deadline."""

    __slots__ = ("_sim", "_callback", "_args", "deadline", "_fired", "_cancelled")

    def __init__(
        self,
        sim: "SeedSimulator",
        delay: int,
        callback: Callable[..., None],
        *args: Any,
    ) -> None:
        if delay < 0:
            raise ValueError(f"timer delay must be >= 0, got {delay}")
        self._sim = sim
        self._callback = callback
        self._args = args
        self.deadline = sim.now + int(delay)
        self._fired = False
        self._cancelled = False
        sim.schedule(delay, self._fire)

    def _fire(self) -> None:
        if self._cancelled:
            return
        self._fired = True
        self._callback(*self._args)

    def cancel(self) -> None:
        self._cancelled = True

    @property
    def active(self) -> bool:
        return not self._fired and not self._cancelled


class SeedProcess:
    """Seed generator-driven process (see :class:`repro.sim.core.Process`)."""

    __slots__ = ("_sim", "_gen", "done", "name", "_finished")

    def __init__(
        self,
        sim: "SeedSimulator",
        gen: Generator[Any, Any, Any],
        name: str = "",
    ) -> None:
        self._sim = sim
        self._gen = gen
        self.done = SeedEvent(sim)
        self.name = name or getattr(gen, "__name__", "process")
        self._finished = False
        sim.schedule(0, self._resume, None)

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def result(self) -> Any:
        if not self._finished:
            raise SeedSimulationError(f"process {self.name!r} has not finished")
        return self.done.value

    def _resume(self, value: Any) -> None:
        try:
            target = self._gen.send(value)
        except StopIteration as stop:
            self._finished = True
            self.done.trigger(stop.value)
            return
        except Exception as exc:
            raise SeedSimulationError(
                f"process {self.name!r} raised {type(exc).__name__}: {exc}"
            ) from exc
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if isinstance(target, int):
            self._sim.schedule(target, self._resume, None)
        elif isinstance(target, SeedEvent):
            target.add_callback(self._resume)
        elif isinstance(target, SeedProcess):
            target.done.add_callback(self._resume)
        elif isinstance(target, float):
            self._sim.schedule(int(round(target)), self._resume, None)
        else:
            raise SeedSimulationError(
                f"process {self.name!r} yielded unsupported {type(target).__name__}"
            )


class SeedSimulator:
    """The seed event loop: a clock plus one ``heapq`` priority queue."""

    __slots__ = ("now", "_queue", "_seq", "_events_processed")

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: list[tuple[int, int, Callable[..., None], tuple]] = []
        self._seq = 0
        self._events_processed = 0

    def schedule(self, delay: int, callback: Callable[..., None], *args: Any) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self.now + int(delay), self._seq, callback, args))

    def at(self, time: int, callback: Callable[..., None], *args: Any) -> None:
        self.schedule(time - self.now, callback, *args)

    def event(self) -> SeedEvent:
        return SeedEvent(self)

    def timer(self, delay: int, callback: Callable[..., None], *args: Any) -> SeedTimer:
        return SeedTimer(self, delay, callback, *args)

    def process(self, gen: Generator[Any, Any, Any], name: str = "") -> SeedProcess:
        return SeedProcess(self, gen, name)

    def run(self, until: Optional[int] = None) -> int:
        queue = self._queue
        processed = 0
        while queue:
            time, _seq, callback, args = queue[0]
            if until is not None and time > until:
                self.now = until
                break
            heapq.heappop(queue)
            self.now = time
            callback(*args)
            processed += 1
        else:
            if until is not None:
                self.now = max(self.now, until)
        self._events_processed += processed
        return processed

    def run_until_done(self, process: SeedProcess, limit: Optional[int] = None) -> Any:
        while not process.finished:
            if not self._queue:
                raise SeedSimulationError(
                    f"deadlock: process {process.name!r} is waiting but "
                    "the event queue is empty"
                )
            if limit is not None and self._queue[0][0] > limit:
                raise SeedSimulationError(
                    f"time limit {limit} exceeded waiting for {process.name!r}"
                )
            time, _seq, callback, args = heapq.heappop(self._queue)
            self.now = time
            callback(*args)
            self._events_processed += 1
        return process.result

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return len(self._queue)
