"""Shared-resource primitives built on the event core.

Two primitives cover everything the MultiEdge stack needs:

* :class:`Resource` — a counted resource with FIFO queuing; CPUs are modelled
  as capacity-1 resources, and busy-time accounting lives here so that CPU
  utilization figures (paper Figure 2c, 3c) fall out for free.
* :class:`Store` — an unbounded (or bounded) FIFO of items with blocking
  ``get``; NIC rings and kernel work queues are Stores.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from .core import Event, SimulationError, Simulator

__all__ = ["Resource", "Store", "Gate"]


class Resource:
    """A counted resource with FIFO hand-off.

    Usage from a process::

        yield cpu.acquire()
        ... hold the resource ...
        cpu.release()

    :meth:`acquire` returns an :class:`Event` that triggers when a unit is
    granted.  Units are granted strictly in request order.
    """

    __slots__ = ("_sim", "capacity", "in_use", "_waiters", "busy_time", "_busy_since")

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Event] = deque()
        # Accumulated unit-nanoseconds of busy time (integral of in_use dt).
        self.busy_time = 0
        self._busy_since = sim.now

    def _account(self) -> None:
        now = self._sim.now
        self.busy_time += self.in_use * (now - self._busy_since)
        self._busy_since = now

    def acquire(self) -> Event:
        """Request one unit; the returned event triggers when granted."""
        ev = Event(self._sim)
        if self.in_use < self.capacity and not self._waiters:
            self._account()
            self.in_use += 1
            ev.trigger(self)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Return one unit, handing it to the oldest waiter if any."""
        if self.in_use <= 0:
            raise SimulationError("release() without matching acquire()")
        if self._waiters:
            # Hand the unit over directly: in_use stays constant.
            ev = self._waiters.popleft()
            ev.trigger(self)
        else:
            self._account()
            self.in_use -= 1

    def utilization(self, elapsed: Optional[int] = None) -> float:
        """Mean busy fraction (0..capacity) since construction.

        ``elapsed`` overrides the denominator, which is useful when the
        resource was created before the measured interval began.
        """
        self._account()
        total = elapsed if elapsed is not None else self._sim.now
        if total <= 0:
            return 0.0
        return self.busy_time / total

    def reset_accounting(self) -> None:
        """Zero the busy-time integral (start of a measured interval)."""
        self.busy_time = 0
        self._busy_since = self._sim.now

    @property
    def queue_length(self) -> int:
        return len(self._waiters)


class Store:
    """FIFO store of items with blocking ``get`` and optional capacity.

    ``put`` is non-blocking; when the store is bounded and full, ``put``
    returns ``False`` and drops the item (matching finite NIC/switch queues,
    where the caller decides whether a drop is an error).  ``get`` returns an
    :class:`Event` that triggers with the next item.
    """

    __slots__ = ("_sim", "capacity", "_items", "_getters", "drops", "puts")

    def __init__(self, sim: Simulator, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self._sim = sim
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self.drops = 0
        self.puts = 0

    def put(self, item: Any) -> bool:
        """Append ``item``; returns False (and counts a drop) if full."""
        if self._getters:
            self.puts += 1
            self._getters.popleft().trigger(item)
            return True
        if self.capacity is not None and len(self._items) >= self.capacity:
            self.drops += 1
            return False
        self.puts += 1
        self._items.append(item)
        return True

    def get(self) -> Event:
        """Return an event that triggers with the next item (FIFO)."""
        ev = Event(self._sim)
        if self._items:
            ev.trigger(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            return True, self._items.popleft()
        return False, None

    def __len__(self) -> int:
        return len(self._items)

    @property
    def waiting_getters(self) -> int:
        return len(self._getters)


class Gate:
    """A level-triggered signal: processes wait until the gate is open.

    Unlike :class:`~repro.sim.core.Event` (one-shot), a Gate can open and
    close repeatedly.  Used for "work available" signalling between interrupt
    handlers and the protocol kernel thread.
    """

    __slots__ = ("_sim", "_open", "_waiters")

    def __init__(self, sim: Simulator, open: bool = False) -> None:
        self._sim = sim
        self._open = open
        self._waiters: Deque[Event] = deque()

    @property
    def is_open(self) -> bool:
        return self._open

    def open(self) -> None:
        """Open the gate, releasing all current waiters."""
        self._open = True
        while self._waiters:
            self._waiters.popleft().trigger(None)

    def close(self) -> None:
        """Close the gate; subsequent waits block until reopened."""
        self._open = False

    def wait(self) -> Event:
        """Return an event that triggers as soon as the gate is open."""
        ev = Event(self._sim)
        if self._open:
            ev.trigger(None)
        else:
            self._waiters.append(ev)
        return ev


def hold(resource: Resource, duration: int) -> Generator[Any, Any, None]:
    """Convenience process body: acquire, hold for ``duration``, release."""
    yield resource.acquire()
    yield duration
    resource.release()
