"""Discrete-event simulation core.

This module implements a small, fast discrete-event engine in the style of
SimPy, specialised for the needs of the MultiEdge reproduction:

* integer nanosecond clock (no floating-point time drift),
* generator-based *processes* that ``yield`` timeouts, events, or other
  processes,
* cancellable :class:`Timer` objects (used for retransmission and
  delayed-acknowledgement timers),
* deterministic FIFO ordering for simultaneous events (events scheduled at
  the same timestamp fire in scheduling order).

Hot-path design (the engine executes hundreds of thousands of events per
wall-second, so structure follows cost):

* **Same-timestamp fast lane.**  Roughly a third of all scheduling in a
  protocol run is ``delay == 0`` — event triggers, process wake-ups, resource
  hand-offs.  Those bypass the heap entirely and ride a FIFO ``deque`` of
  bare ``(callback, args)`` pairs.  Correct merge order with the heap follows
  from an invariant rather than per-event comparisons: heap entries are only
  ever pushed with ``delay > 0``, so every heap entry due at time ``T`` was
  scheduled *before* the clock reached ``T`` and therefore precedes (in
  seed-engine sequence order) every fast-lane entry created at ``T``.  The
  run loop drains same-``now`` heap entries first, then the fast lane, and
  only then advances time — an order *bit-identical* to the single-heap seed
  engine (property-tested against :mod:`repro.sim.reference`).
* **Lazy-deleted timers.**  Retransmission and delayed-ack timers are almost
  always cancelled before firing.  Cancellation marks the queue entry dead in
  O(1); dead entries are skipped on pop without invoking anything, and when
  they outnumber live heap entries the heap is compacted in one in-place
  pass.  Counters (:attr:`Simulator.heap_pushes`,
  :attr:`Simulator.fastlane_hits`, :attr:`Simulator.cancelled_popped`)
  expose the event-loop behaviour to
  :func:`repro.analysis.summary.summarize_cluster`.
* Heap entries are ``[time, seq, callback, args]`` *lists* (mutable so a
  cancel can null the callback in place); fast-lane entries are
  ``(callback, args)`` tuples, or 2-element lists for the rare cancellable
  zero-delay timer.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "Event",
    "Process",
    "Timer",
    "SimulationError",
    "NS",
    "US",
    "MS",
    "SEC",
]

# Time unit constants.  The simulator clock counts integer nanoseconds.
NS = 1
US = 1_000
MS = 1_000_000
SEC = 1_000_000_000

# Compact the heap once this many dead entries accumulate *and* they
# outnumber the live ones (amortised O(1) per cancellation).
_COMPACT_MIN_DEAD = 64

_heappush = heapq.heappush
_heappop = heapq.heappop

# Shared argument tuple for the extremely common "resume with None" wake-up.
_NONE_ARGS = (None,)


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Event:
    """A one-shot event that processes can wait on.

    An event starts *untriggered*.  Calling :meth:`trigger` (or its alias
    :meth:`succeed`) records a value and resumes every waiting process at the
    current simulation time.  Triggering twice is an error; waiting on an
    already-triggered event resumes the waiter immediately (same timestamp).
    """

    __slots__ = ("_sim", "_waiters", "triggered", "value")

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim
        self._waiters: list[Callable[[Any], None]] = []
        self.triggered = False
        self.value: Any = None

    def trigger(self, value: Any = None) -> None:
        """Trigger the event, waking all waiters at the current time."""
        if self.triggered:
            raise SimulationError("event triggered twice")
        self.triggered = True
        self.value = value
        waiters = self._waiters
        if waiters:
            # Inlined Simulator.schedule(0, ...) for the hot wake-up path.
            sim = self._sim
            fast = sim._fast
            args = (value,)
            for resume in waiters:
                fast.append((resume, args))
            sim.fastlane_hits += len(waiters)
            self._waiters = []

    # Alias used by code that reads more naturally with success semantics.
    succeed = trigger

    def add_callback(self, resume: Callable[[Any], None]) -> None:
        """Register ``resume(value)`` to run when the event triggers."""
        if self.triggered:
            sim = self._sim
            sim._fast.append((resume, (self.value,)))
            sim.fastlane_hits += 1
        else:
            self._waiters.append(resume)


class Timer:
    """A cancellable one-shot timer.

    ``Timer(sim, delay, callback)`` arms the timer; :meth:`cancel` disarms it
    if it has not fired yet.  Cancellation is O(1): the queue entry is nulled
    in place and reclaimed either when popped or by the next heap compaction,
    so cancelled timers do not rot in the queue.
    """

    __slots__ = ("_sim", "_callback", "_args", "deadline", "_fired", "_cancelled", "_entry")

    def __init__(
        self,
        sim: "Simulator",
        delay: int,
        callback: Callable[..., None],
        *args: Any,
    ) -> None:
        if delay < 0:
            raise ValueError(f"timer delay must be >= 0, got {delay}")
        self._sim = sim
        self._callback = callback
        self._args = args
        self.deadline = sim.now + int(delay)
        self._fired = False
        self._cancelled = False
        self._entry = sim.schedule_cancellable(delay, self._fire)

    def _fire(self) -> None:
        self._fired = True
        self._callback(*self._args)

    def cancel(self) -> None:
        """Disarm the timer.  Cancelling a fired or cancelled timer is a no-op."""
        if self._fired or self._cancelled:
            return
        self._cancelled = True
        self._sim.cancel_scheduled(self._entry)
        self._entry = None

    @property
    def active(self) -> bool:
        """True while the timer is armed and has neither fired nor been cancelled."""
        return not self._fired and not self._cancelled


class Process:
    """A simulation process wrapping a Python generator.

    The generator may ``yield``:

    * an ``int`` — sleep for that many nanoseconds,
    * an :class:`Event` — wait until it triggers; the trigger value becomes
      the result of the ``yield`` expression,
    * another :class:`Process` — wait for it to finish; its return value
      becomes the result of the ``yield`` expression.

    When the generator returns, the process's :attr:`done` event triggers
    with the generator's return value.
    """

    __slots__ = ("_sim", "_gen", "_send", "_resume_cb", "done", "name", "_finished")

    def __init__(
        self,
        sim: "Simulator",
        gen: Generator[Any, Any, Any],
        name: str = "",
    ) -> None:
        self._sim = sim
        self._gen = gen
        self._send = gen.send  # bound once; called on every resume
        self.done = Event(sim)
        self.name = name or getattr(gen, "__name__", "process")
        self._finished = False
        resume = self._resume
        self._resume_cb = resume  # one bound method, reused for every wait
        sim._fast.append((resume, _NONE_ARGS))
        sim.fastlane_hits += 1

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def result(self) -> Any:
        if not self._finished:
            raise SimulationError(f"process {self.name!r} has not finished")
        return self.done.value

    def _resume(self, value: Any) -> None:
        try:
            target = self._send(value)
        except StopIteration as stop:
            self._finished = True
            self.done.trigger(stop.value)
            return
        except Exception as exc:  # surface with process context
            raise SimulationError(
                f"process {self.name!r} raised {type(exc).__name__}: {exc}"
            ) from exc
        # Inline dispatch, most frequent target types first.  Exact type
        # checks keep the common cases off the isinstance slow path.
        cls = target.__class__
        if cls is int:
            sim = self._sim
            if target > 0:
                sim._seq += 1
                sim.heap_pushes += 1
                _heappush(
                    sim._queue,
                    [sim.now + target, sim._seq, self._resume_cb, _NONE_ARGS],
                )
            elif target == 0:
                sim._fast.append((self._resume_cb, _NONE_ARGS))
                sim.fastlane_hits += 1
            else:
                raise ValueError(f"cannot schedule into the past (delay={target})")
        elif cls is Event:
            target.add_callback(self._resume_cb)
        elif cls is Process:
            target.done.add_callback(self._resume_cb)
        elif cls is float:
            # Accept floats from arithmetic but keep the clock integral.
            self._sim.schedule(int(round(target)), self._resume_cb, None)
        elif isinstance(target, int):
            self._sim.schedule(int(target), self._resume_cb, None)
        elif isinstance(target, Event):
            target.add_callback(self._resume_cb)
        elif isinstance(target, Process):
            target.done.add_callback(self._resume_cb)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported {type(target).__name__}"
            )


class Simulator:
    """The event loop: a clock plus a two-lane queue of callbacks.

    Events scheduled for the same timestamp run in the order they were
    scheduled, which makes simulations fully deterministic.  ``delay == 0``
    events ride a FIFO fast lane; everything else goes through the heap.
    Because heap entries always carry a strictly positive delay, same-``now``
    heap entries are older than any fast-lane entry, so running "due heap
    entries, then the fast lane, then advance time" reproduces the seed
    engine's global scheduling order exactly.
    """

    __slots__ = (
        "now",
        "_queue",
        "_fast",
        "_seq",
        "_events_processed",
        "_dead",
        "heap_pushes",
        "fastlane_hits",
        "cancelled_popped",
        "heap_compactions",
        "_frame_uids",
        "_conn_ids",
    )

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: list[list] = []  # [time, seq, callback, args] entries
        self._fast = deque()  # (callback, args) entries, FIFO, all due "now"
        self._seq = 0
        self._events_processed = 0
        self._dead = 0  # cancelled entries still sitting in the heap
        # Observability counters (see repro.analysis.summary).
        self.heap_pushes = 0
        self.fastlane_hits = 0
        self.cancelled_popped = 0
        self.heap_compactions = 0
        # Allocation counters that used to live at module level.  Keeping
        # them per-simulator means two simulators in one process cannot
        # interfere, and a checkpoint captures them with everything else.
        self._frame_uids = 0
        self._conn_ids = 0

    def next_frame_uid(self) -> int:
        """Allocate a physical-frame instance id (stamped at NIC TX)."""
        self._frame_uids += 1
        return self._frame_uids

    def next_conn_id(self) -> int:
        """Allocate a connection id (1-based, unique within this sim)."""
        self._conn_ids += 1
        return self._conn_ids

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: int, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` nanoseconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        delay = int(delay)
        if delay:
            self._seq += 1
            self.heap_pushes += 1
            _heappush(self._queue, [self.now + delay, self._seq, callback, args])
        else:
            self._fast.append((callback, args))
            self.fastlane_hits += 1

    def schedule_cancellable(
        self, delay: int, callback: Callable[..., None], *args: Any
    ) -> list:
        """Schedule ``callback`` and return a handle for :meth:`cancel_scheduled`.

        The handle is a mutable queue entry; cancelling nulls it in place.
        Positive delays go through the heap, zero delays ride the fast lane
        (as a 2-element ``[callback, args]`` list so they stay cancellable).
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        delay = int(delay)
        if delay:
            self._seq += 1
            entry = [self.now + delay, self._seq, callback, args]
            self.heap_pushes += 1
            _heappush(self._queue, entry)
        else:
            entry = [callback, args]
            self._fast.append(entry)
            self.fastlane_hits += 1
        return entry

    def cancel_scheduled(self, entry: list) -> None:
        """Lazy-delete a :meth:`schedule_cancellable` entry (O(1) amortised).

        The entry is nulled in place; the run loop discards it when popped.
        When dead entries outnumber live ones the heap is compacted.  Must
        not be called for an entry that has already executed.
        """
        if len(entry) == 2:  # zero-delay entry riding the fast lane
            if entry[0] is not None:
                entry[0] = None
                entry[1] = ()
            return
        if entry[2] is None:
            return
        entry[2] = None
        entry[3] = ()  # drop argument references early
        self._dead += 1
        queue = self._queue
        if self._dead > _COMPACT_MIN_DEAD and self._dead * 2 > len(queue):
            # In-place: the run loops hold an alias to this list, so the
            # object identity must survive compaction.
            queue[:] = [e for e in queue if e[2] is not None]
            heapq.heapify(queue)
            self.cancelled_popped += self._dead
            self._dead = 0
            self.heap_compactions += 1

    def next_event_time(self) -> Optional[int]:
        """Timestamp of the next live event, or None when idle.

        The fast-forward horizon hook: a flow-level forwarder plans a jump
        ending at some future instant and needs to know what the engine
        would otherwise run next.  Fast-lane entries are by construction
        due at ``now``; lazily-cancelled heap tops are popped here (they
        carry no information) so the answer is exact, not an upper bound.
        Pure with respect to live events — nothing runs, the clock does
        not move.
        """
        for entry in self._fast:
            if entry[0] is not None:
                return self.now
        queue = self._queue
        while queue:
            head = queue[0]
            if head[2] is None:
                _heappop(queue)
                self._dead -= 1
                self.cancelled_popped += 1
                continue
            return head[0]
        return None

    def at(self, time: int, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` at absolute simulation time ``time``."""
        if time > self.now:
            self._seq += 1
            self.heap_pushes += 1
            _heappush(self._queue, [time, self._seq, callback, args])
        else:
            self.schedule(time - self.now, callback, *args)

    def event(self) -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self)

    def timer(self, delay: int, callback: Callable[..., None], *args: Any) -> Timer:
        """Arm a cancellable :class:`Timer`."""
        return Timer(self, delay, callback, *args)

    def process(self, gen: Generator[Any, Any, Any], name: str = "") -> Process:
        """Start a new :class:`Process` from a generator."""
        return Process(self, gen, name)

    # -- execution -------------------------------------------------------

    def run(self, until: Optional[int] = None) -> int:
        """Run until the queues drain or the clock passes ``until``.

        Returns the number of events processed during this call (skipped
        cancelled-timer entries do not count).
        """
        queue = self._queue
        fast = self._fast
        if until is not None and until < self.now:
            # Seed semantics: nothing can run (all pending work is due at or
            # after `now`), but a non-empty queue still snaps the clock back.
            if queue or fast:
                self.now = until
            return 0
        bound = float("inf") if until is None else until
        processed = 0
        while True:
            if queue and (not fast or queue[0][0] == self.now):
                entry = queue[0]
                if entry[2] is None:  # lazily-cancelled timer
                    _heappop(queue)
                    self._dead -= 1
                    self.cancelled_popped += 1
                    continue
                if entry[0] > bound:
                    self.now = until
                    break
                _heappop(queue)
                self.now = entry[0]
                entry[2](*entry[3])
                processed += 1
            elif fast:
                # Drain the fast lane completely: every entry is due at the
                # current time, and no heap entry can become due until the
                # clock advances (heap pushes carry strictly positive delay).
                while fast:
                    cb, args = fast.popleft()
                    if cb is None:  # cancelled zero-delay timer
                        self.cancelled_popped += 1
                        continue
                    cb(*args)
                    processed += 1
            else:
                if until is not None and self.now < until:
                    self.now = until
                break
        self._events_processed += processed
        return processed

    def run_until_time(
        self, until: int, stop: Optional[Callable[[], bool]] = None
    ) -> int:
        """Process every event due at or before ``until`` — and stop.

        Unlike :meth:`run`, the clock is **not** snapped to ``until`` when
        the queue drains early or the next entry lies beyond the bound:
        ``now`` stays at the last executed event.  An interrupted run
        (``run_until_time(T)`` followed by more running) is therefore
        scheduling-identical to an uninterrupted one — the property the
        checkpoint subsystem's witness protocol depends on.  Returns the
        number of events processed.

        ``stop``, if given, is consulted after every executed event; the
        run pauses as soon as it returns true — the same per-event
        granularity at which :meth:`run_until_done` stops when its
        process finishes, so a caller can halt exactly where an
        uninterrupted ``run_until_done`` sequence would have.
        """
        queue = self._queue
        fast = self._fast
        processed = 0
        while True:
            if stop is not None and stop():
                break
            if queue and (not fast or queue[0][0] == self.now):
                entry = queue[0]
                if entry[2] is None:  # lazily-cancelled timer
                    _heappop(queue)
                    self._dead -= 1
                    self.cancelled_popped += 1
                    continue
                if entry[0] > until:
                    break
                _heappop(queue)
                self.now = entry[0]
                entry[2](*entry[3])
                processed += 1
            elif fast:
                while fast:
                    cb, args = fast.popleft()
                    if cb is None:  # cancelled zero-delay timer
                        self.cancelled_popped += 1
                        continue
                    cb(*args)
                    processed += 1
                    if stop is not None and stop():
                        break
            else:
                break
        self._events_processed += processed
        return processed

    def snapshot_state(self) -> dict:
        """Engine state for :mod:`repro.checkpoint` capture.

        Queue entries appear in raw heap order (deterministic for
        identical executions) including lazily-deleted timers; callbacks
        are walked structurally by the capture walker.
        """
        return {
            "now": self.now,
            "seq": self._seq,
            "events_processed": self._events_processed,
            "dead": self._dead,
            "heap_pushes": self.heap_pushes,
            "fastlane_hits": self.fastlane_hits,
            "cancelled_popped": self.cancelled_popped,
            "heap_compactions": self.heap_compactions,
            "frame_uids": self._frame_uids,
            "conn_ids": self._conn_ids,
            "queue": list(self._queue),
            "fast": list(self._fast),
        }

    def run_until_done(self, process: Process, limit: Optional[int] = None) -> Any:
        """Run until ``process`` finishes and return its result.

        ``limit`` bounds the simulated time; exceeding it raises
        :class:`SimulationError` (used by tests to catch livelock).
        """
        queue = self._queue
        fast = self._fast
        if limit is not None and self.now > limit and not process._finished:
            while queue and queue[0][2] is None:
                _heappop(queue)
                self._dead -= 1
                self.cancelled_popped += 1
            if not (queue or fast):
                raise SimulationError(
                    f"deadlock: process {process.name!r} is waiting but "
                    "the event queue is empty"
                )
            raise SimulationError(
                f"time limit {limit} exceeded waiting for {process.name!r}"
            )
        bound = float("inf") if limit is None else limit
        processed = 0
        try:
            while not process._finished:
                if queue and (not fast or queue[0][0] == self.now):
                    entry = queue[0]
                    if entry[2] is None:
                        _heappop(queue)
                        self._dead -= 1
                        self.cancelled_popped += 1
                        continue
                    if entry[0] > bound:
                        raise SimulationError(
                            f"time limit {limit} exceeded waiting for {process.name!r}"
                        )
                    _heappop(queue)
                    self.now = entry[0]
                    entry[2](*entry[3])
                    processed += 1
                elif fast:
                    while fast:
                        cb, args = fast.popleft()
                        if cb is None:
                            self.cancelled_popped += 1
                            continue
                        cb(*args)
                        processed += 1
                        if process._finished:
                            break
                else:
                    raise SimulationError(
                        f"deadlock: process {process.name!r} is waiting but "
                        "the event queue is empty"
                    )
        finally:
            self._events_processed += processed
        return process.result

    @property
    def events_processed(self) -> int:
        """Total number of events executed since construction."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Events currently queued (including not-yet-reclaimed cancelled timers)."""
        return len(self._queue) + len(self._fast)


def all_of(sim: Simulator, events: Iterable[Event]) -> Event:
    """Return an event that triggers once every event in ``events`` has.

    The combined event's value is the list of individual values in input
    order.
    """
    events = list(events)
    combined = Event(sim)
    if not events:
        combined.trigger([])
        return combined
    remaining = len(events)
    values: list[Any] = [None] * len(events)

    def make_callback(index: int) -> Callable[[Any], None]:
        def on_trigger(value: Any) -> None:
            nonlocal remaining
            values[index] = value
            remaining -= 1
            if remaining == 0:
                combined.trigger(values)

        return on_trigger

    for i, ev in enumerate(events):
        ev.add_callback(make_callback(i))
    return combined


def any_of(sim: Simulator, events: Iterable[Event]) -> Event:
    """Return an event that triggers when the first of ``events`` does.

    Its value is ``(index, value)`` of the first event to fire.  Later
    triggers are ignored.
    """
    combined = Event(sim)

    def make_callback(index: int) -> Callable[[Any], None]:
        def on_trigger(value: Any) -> None:
            if not combined.triggered:
                combined.trigger((index, value))

        return on_trigger

    for i, ev in enumerate(events):
        ev.add_callback(make_callback(i))
    return combined
