"""Discrete-event simulation core.

This module implements a small, fast discrete-event engine in the style of
SimPy, specialised for the needs of the MultiEdge reproduction:

* integer nanosecond clock (no floating-point time drift),
* generator-based *processes* that ``yield`` timeouts, events, or other
  processes,
* cancellable :class:`Timer` objects (used for retransmission and
  delayed-acknowledgement timers),
* deterministic FIFO ordering for simultaneous events (events scheduled at
  the same timestamp fire in scheduling order).

The engine is deliberately minimal: the hot loop is a ``heapq`` pop plus a
callback invocation, which keeps per-event overhead around a microsecond of
wall time so that multi-million-event experiments finish in seconds.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "Event",
    "Process",
    "Timer",
    "SimulationError",
    "NS",
    "US",
    "MS",
    "SEC",
]

# Time unit constants.  The simulator clock counts integer nanoseconds.
NS = 1
US = 1_000
MS = 1_000_000
SEC = 1_000_000_000


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Event:
    """A one-shot event that processes can wait on.

    An event starts *untriggered*.  Calling :meth:`trigger` (or its alias
    :meth:`succeed`) records a value and resumes every waiting process at the
    current simulation time.  Triggering twice is an error; waiting on an
    already-triggered event resumes the waiter immediately (same timestamp).
    """

    __slots__ = ("_sim", "_waiters", "triggered", "value")

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim
        self._waiters: list[Callable[[Any], None]] = []
        self.triggered = False
        self.value: Any = None

    def trigger(self, value: Any = None) -> None:
        """Trigger the event, waking all waiters at the current time."""
        if self.triggered:
            raise SimulationError("event triggered twice")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for resume in waiters:
            self._sim.schedule(0, resume, value)

    # Alias used by code that reads more naturally with success semantics.
    succeed = trigger

    def add_callback(self, resume: Callable[[Any], None]) -> None:
        """Register ``resume(value)`` to run when the event triggers."""
        if self.triggered:
            self._sim.schedule(0, resume, self.value)
        else:
            self._waiters.append(resume)


class Timer:
    """A cancellable one-shot timer.

    ``Timer(sim, delay, callback)`` arms the timer; :meth:`cancel` disarms it
    if it has not fired yet.  Cancellation is O(1): the heap entry is flagged
    dead and skipped when popped.
    """

    __slots__ = ("_sim", "_callback", "_args", "deadline", "_fired", "_cancelled")

    def __init__(
        self,
        sim: "Simulator",
        delay: int,
        callback: Callable[..., None],
        *args: Any,
    ) -> None:
        if delay < 0:
            raise ValueError(f"timer delay must be >= 0, got {delay}")
        self._sim = sim
        self._callback = callback
        self._args = args
        self.deadline = sim.now + int(delay)
        self._fired = False
        self._cancelled = False
        sim.schedule(delay, self._fire)

    def _fire(self) -> None:
        if self._cancelled:
            return
        self._fired = True
        self._callback(*self._args)

    def cancel(self) -> None:
        """Disarm the timer.  Cancelling a fired or cancelled timer is a no-op."""
        self._cancelled = True

    @property
    def active(self) -> bool:
        """True while the timer is armed and has neither fired nor been cancelled."""
        return not self._fired and not self._cancelled


class Process:
    """A simulation process wrapping a Python generator.

    The generator may ``yield``:

    * an ``int`` — sleep for that many nanoseconds,
    * an :class:`Event` — wait until it triggers; the trigger value becomes
      the result of the ``yield`` expression,
    * another :class:`Process` — wait for it to finish; its return value
      becomes the result of the ``yield`` expression.

    When the generator returns, the process's :attr:`done` event triggers
    with the generator's return value.
    """

    __slots__ = ("_sim", "_gen", "done", "name", "_finished")

    def __init__(
        self,
        sim: "Simulator",
        gen: Generator[Any, Any, Any],
        name: str = "",
    ) -> None:
        self._sim = sim
        self._gen = gen
        self.done = Event(sim)
        self.name = name or getattr(gen, "__name__", "process")
        self._finished = False
        sim.schedule(0, self._resume, None)

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def result(self) -> Any:
        if not self._finished:
            raise SimulationError(f"process {self.name!r} has not finished")
        return self.done.value

    def _resume(self, value: Any) -> None:
        try:
            target = self._gen.send(value)
        except StopIteration as stop:
            self._finished = True
            self.done.trigger(stop.value)
            return
        except Exception as exc:  # surface with process context
            raise SimulationError(
                f"process {self.name!r} raised {type(exc).__name__}: {exc}"
            ) from exc
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if isinstance(target, int):
            self._sim.schedule(target, self._resume, None)
        elif isinstance(target, Event):
            target.add_callback(self._resume)
        elif isinstance(target, Process):
            target.done.add_callback(self._resume)
        elif isinstance(target, float):
            # Accept floats from arithmetic but keep the clock integral.
            self._sim.schedule(int(round(target)), self._resume, None)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported {type(target).__name__}"
            )


class Simulator:
    """The event loop: a clock plus a priority queue of callbacks.

    Events scheduled for the same timestamp run in the order they were
    scheduled, which makes simulations fully deterministic.
    """

    __slots__ = ("now", "_queue", "_seq", "_events_processed")

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: list[tuple[int, int, Callable[..., None], tuple]] = []
        self._seq = 0
        self._events_processed = 0

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: int, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` nanoseconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self.now + int(delay), self._seq, callback, args))

    def at(self, time: int, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` at absolute simulation time ``time``."""
        self.schedule(time - self.now, callback, *args)

    def event(self) -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self)

    def timer(self, delay: int, callback: Callable[..., None], *args: Any) -> Timer:
        """Arm a cancellable :class:`Timer`."""
        return Timer(self, delay, callback, *args)

    def process(self, gen: Generator[Any, Any, Any], name: str = "") -> Process:
        """Start a new :class:`Process` from a generator."""
        return Process(self, gen, name)

    # -- execution -------------------------------------------------------

    def run(self, until: Optional[int] = None) -> int:
        """Run until the queue drains or the clock passes ``until``.

        Returns the number of events processed during this call.
        """
        queue = self._queue
        processed = 0
        while queue:
            time, _seq, callback, args = queue[0]
            if until is not None and time > until:
                self.now = until
                break
            heapq.heappop(queue)
            self.now = time
            callback(*args)
            processed += 1
        else:
            if until is not None:
                self.now = max(self.now, until)
        self._events_processed += processed
        return processed

    def run_until_done(self, process: Process, limit: Optional[int] = None) -> Any:
        """Run until ``process`` finishes and return its result.

        ``limit`` bounds the simulated time; exceeding it raises
        :class:`SimulationError` (used by tests to catch livelock).
        """
        while not process.finished:
            if not self._queue:
                raise SimulationError(
                    f"deadlock: process {process.name!r} is waiting but "
                    "the event queue is empty"
                )
            if limit is not None and self._queue[0][0] > limit:
                raise SimulationError(
                    f"time limit {limit} exceeded waiting for {process.name!r}"
                )
            time, _seq, callback, args = heapq.heappop(self._queue)
            self.now = time
            callback(*args)
            self._events_processed += 1
        return process.result

    @property
    def events_processed(self) -> int:
        """Total number of events executed since construction."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events currently queued (including cancelled timers)."""
        return len(self._queue)


def all_of(sim: Simulator, events: Iterable[Event]) -> Event:
    """Return an event that triggers once every event in ``events`` has.

    The combined event's value is the list of individual values in input
    order.
    """
    events = list(events)
    combined = Event(sim)
    if not events:
        combined.trigger([])
        return combined
    remaining = len(events)
    values: list[Any] = [None] * len(events)

    def make_callback(index: int) -> Callable[[Any], None]:
        def on_trigger(value: Any) -> None:
            nonlocal remaining
            values[index] = value
            remaining -= 1
            if remaining == 0:
                combined.trigger(values)

        return on_trigger

    for i, ev in enumerate(events):
        ev.add_callback(make_callback(i))
    return combined


def any_of(sim: Simulator, events: Iterable[Event]) -> Event:
    """Return an event that triggers when the first of ``events`` does.

    Its value is ``(index, value)`` of the first event to fire.  Later
    triggers are ignored.
    """
    combined = Event(sim)

    def make_callback(index: int) -> Callable[[Any], None]:
        def on_trigger(value: Any) -> None:
            if not combined.triggered:
                combined.trigger((index, value))

        return on_trigger

    for i, ev in enumerate(events):
        ev.add_callback(make_callback(i))
    return combined
