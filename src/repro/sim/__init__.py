"""Discrete-event simulation substrate for the MultiEdge reproduction."""

from .core import (
    MS,
    NS,
    SEC,
    US,
    Event,
    Process,
    SimulationError,
    Simulator,
    Timer,
    all_of,
    any_of,
)
from .resources import Gate, Resource, Store
from .rng import RngRegistry
from .trace import TraceRecord, Tracer, export_chrome_trace

__all__ = [
    "Simulator",
    "Event",
    "Process",
    "Timer",
    "SimulationError",
    "Resource",
    "Store",
    "Gate",
    "RngRegistry",
    "Tracer",
    "export_chrome_trace",
    "TraceRecord",
    "all_of",
    "any_of",
    "NS",
    "US",
    "MS",
    "SEC",
]
