"""Lightweight event tracing.

A :class:`Tracer` records ``(time, category, payload)`` tuples.  Tracing is
opt-in per category so the hot path costs a dictionary lookup and a branch
when disabled.  Benchmarks run with tracing off; debugging and some tests
run with it on.
"""

from __future__ import annotations

from typing import Any, Iterable, NamedTuple

from .core import Simulator

__all__ = ["Tracer", "TraceRecord"]


class TraceRecord(NamedTuple):
    time: int
    category: str
    payload: Any


class Tracer:
    """Selective trace recorder.

    ``enable("frame.tx")`` turns on a category; :meth:`record` is a no-op for
    disabled categories.  ``enable_all()`` is available for debugging.
    """

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._enabled: set[str] = set()
        self._all = False
        self.records: list[TraceRecord] = []

    def enable(self, *categories: str) -> None:
        self._enabled.update(categories)

    def disable(self, *categories: str) -> None:
        self._enabled.difference_update(categories)

    def enable_all(self) -> None:
        self._all = True

    def is_enabled(self, category: str) -> bool:
        return self._all or category in self._enabled

    def record(self, category: str, payload: Any = None) -> None:
        if self._all or category in self._enabled:
            self.records.append(TraceRecord(self._sim.now, category, payload))

    def by_category(self, category: str) -> list[TraceRecord]:
        return [r for r in self.records if r.category == category]

    def clear(self) -> None:
        self.records.clear()

    def categories(self) -> Iterable[str]:
        return sorted({r.category for r in self.records})
