"""Lightweight event tracing.

A :class:`Tracer` records ``(time, category, payload)`` tuples.  Tracing is
opt-in per category so the hot path costs a dictionary lookup and a branch
when disabled.  Benchmarks run with tracing off; debugging and some tests
run with it on.

Long runs can cap memory with ``max_records``: the tracer becomes a ring
buffer keeping the most recent records and counting what it dropped.

:func:`export_chrome_trace` converts a tracer's records into the Chrome
trace-event JSON format (load in ``chrome://tracing`` or Perfetto):
``edge.state`` records become per-edge lifecycle spans, everything else
becomes instant events on a per-category track.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Iterable, NamedTuple, Optional, Union

from .core import Simulator

__all__ = ["Tracer", "TraceRecord", "export_chrome_trace"]


class TraceRecord(NamedTuple):
    time: int
    category: str
    payload: Any


class Tracer:
    """Selective trace recorder.

    ``enable("frame.tx")`` turns on a category; :meth:`record` is a no-op for
    disabled categories.  ``enable_all()`` is available for debugging.
    ``max_records`` bounds memory: older records are discarded (FIFO) once
    the cap is hit, with :attr:`dropped_records` counting the casualties.
    """

    def __init__(self, sim: Simulator, max_records: Optional[int] = None) -> None:
        if max_records is not None and max_records < 1:
            raise ValueError("max_records must be >= 1 (or None for unbounded)")
        self._sim = sim
        self._enabled: set[str] = set()
        self._all = False
        self.max_records = max_records
        self.records: Union[list[TraceRecord], deque[TraceRecord]]
        if max_records is None:
            self.records = []
        else:
            self.records = deque(maxlen=max_records)
        self.dropped_records = 0

    def enable(self, *categories: str) -> None:
        self._enabled.update(categories)

    def disable(self, *categories: str) -> None:
        self._enabled.difference_update(categories)

    def enable_all(self) -> None:
        self._all = True

    def is_enabled(self, category: str) -> bool:
        return self._all or category in self._enabled

    def record(self, category: str, payload: Any = None) -> None:
        if self._all or category in self._enabled:
            records = self.records
            if (
                self.max_records is not None
                and len(records) == self.max_records
            ):
                self.dropped_records += 1
            records.append(TraceRecord(self._sim.now, category, payload))

    def by_category(self, category: str) -> list[TraceRecord]:
        return [r for r in self.records if r.category == category]

    def clear(self) -> None:
        self.records.clear()
        self.dropped_records = 0

    def categories(self) -> Iterable[str]:
        return sorted({r.category for r in self.records})


def export_chrome_trace(
    tracer: Tracer,
    path: Optional[str] = None,
    end_time_ns: Optional[int] = None,
) -> dict:
    """Convert a tracer's records to Chrome trace-event JSON.

    ``edge.state`` records (payload keys ``conn``, ``rail``, ``new``,
    ``reason``) are stitched into complete-span ("X") events — one track
    per ``(connection, rail)`` — so each edge's UP/SUSPECT/DOWN/RECOVERING
    history renders as colored bars.  All other categories become instant
    ("i") events on a per-category track.  Timestamps are microseconds, as
    the format requires.

    ``end_time_ns`` closes any still-open lifecycle span (defaults to the
    last record's timestamp).  When ``path`` is given the JSON is also
    written there.  Returns the trace dict.
    """
    events: list[dict] = []
    # (conn, rail) -> (span start ns, state name)
    open_spans: dict[tuple[Any, Any], tuple[int, str]] = {}
    last_ts = 0

    def close_span(key: tuple[Any, Any], until_ns: int) -> None:
        started, state = open_spans.pop(key)
        conn, rail = key
        events.append(
            {
                "name": state,
                "cat": "edge.state",
                "ph": "X",
                "ts": started / 1e3,
                "dur": max(until_ns - started, 0) / 1e3,
                "pid": 1,
                "tid": f"conn{conn}.rail{rail}",
            }
        )

    for rec in tracer.records:
        last_ts = max(last_ts, rec.time)
        if rec.category == "edge.state" and isinstance(rec.payload, dict):
            payload = rec.payload
            key = (payload.get("conn"), payload.get("rail"))
            if key in open_spans:
                close_span(key, rec.time)
            open_spans[key] = (rec.time, str(payload.get("new", "?")))
            events.append(
                {
                    "name": f"-> {payload.get('new', '?')}",
                    "cat": "edge.state",
                    "ph": "i",
                    "s": "t",
                    "ts": rec.time / 1e3,
                    "pid": 1,
                    "tid": f"conn{key[0]}.rail{key[1]}",
                    "args": {"reason": payload.get("reason", "")},
                }
            )
        else:
            args = rec.payload if isinstance(rec.payload, dict) else {
                "payload": repr(rec.payload)
            }
            events.append(
                {
                    "name": rec.category,
                    "cat": rec.category,
                    "ph": "i",
                    "s": "t",
                    "ts": rec.time / 1e3,
                    "pid": 1,
                    "tid": rec.category,
                    "args": args,
                }
            )

    horizon = end_time_ns if end_time_ns is not None else last_ts
    for key in list(open_spans):
        close_span(key, horizon)

    trace = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {"dropped_records": tracer.dropped_records},
    }
    if path is not None:
        with open(path, "w") as fh:
            json.dump(trace, fh)
    return trace
