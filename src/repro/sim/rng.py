"""Deterministic, named random-number streams.

Every stochastic element of the simulation (link jitter, bit errors,
switch arbitration ties, application initialisation) draws from its own
named stream derived from a single experiment seed.  Two properties follow:

* experiments are exactly reproducible from their seed, and
* adding randomness to one component never perturbs another component's
  stream (no "seed coupling"), which keeps A/B comparisons honest.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory of independent :class:`numpy.random.Generator` streams.

    Streams are keyed by name; the same ``(seed, name)`` pair always yields
    an identical stream.  Names are hashed with CRC32 into the SeedSequence
    spawn key, so stream independence follows from SeedSequence guarantees.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the stream for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(key,))
            gen = np.random.Generator(np.random.PCG64(seq))
            self._streams[name] = gen
        return gen

    def snapshot_state(self) -> dict:
        """Exact mid-sequence state of every named stream.

        Captures the PCG64 ``bit_generator.state`` dict per stream — not
        the creation seed — so a restored stream continues byte-identically
        from where it was, even half-way through its sequence.
        """
        return {
            "seed": self.seed,
            "streams": {
                name: gen.bit_generator.state
                for name, gen in self._streams.items()
            },
        }

    def restore_state(self, state: dict) -> None:
        """Restore every stream captured by :meth:`snapshot_state`.

        Streams not present in ``state`` are dropped (they did not exist at
        capture time); streams present are recreated and fast-forwarded by
        installing the captured bit-generator state directly.
        """
        self.seed = int(state["seed"])
        self._streams = {}
        for name, bg_state in state["streams"].items():
            gen = self.stream(name)
            gen.bit_generator.state = bg_state

    def uniform_int(self, name: str, low: int, high: int) -> int:
        """One draw from U{low, ..., high-1} on the named stream."""
        return int(self.stream(name).integers(low, high))

    def uniform(self, name: str, low: float = 0.0, high: float = 1.0) -> float:
        """One draw from U[low, high) on the named stream."""
        return float(self.stream(name).uniform(low, high))

    def bernoulli(self, name: str, p: float) -> bool:
        """One biased coin flip on the named stream."""
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        return bool(self.stream(name).random() < p)
