"""Opt-in runtime invariant checker for the MultiEdge protocol.

An :class:`InvariantMonitor` attaches to a cluster (or to individual
connections) through the guarded hook points the core exposes
(``Connection.monitor``, ``Nic.monitor``,
``EdgeLifecycleManager.invariant_monitor``).  When no monitor is attached
every hook is a single ``is not None`` test, so the disabled overhead is
unmeasurable; when attached, the full invariant set below is re-checked
after every protocol event and the first violation raises (or is
collected, in ``collect`` mode) with enough context to debug.

Checked invariants (see docs/PROTOCOL.md "Protocol invariants"):

**Send side**
  * in-flight frames never exceed the window size,
  * every in-flight seq is below ``next_seq`` and at or above the highest
    cumulative ack processed (no freed seq reappears in flight),
  * seq conservation: ``next_seq == frames freed by acks + in flight``,
  * the retransmit queue holds no duplicates, and every entry is either
    still in flight or below the ack watermark (lazily freed),
  * ``data_frames_sent`` equals the sequence numbers consumed,
  * pump CPU conservation: ``pump_charged_ns`` equals frames actually sent
    times ``per_frame_send_ns`` (the TX-ring stall surplus is reclassified,
    never silently kept),
  * the seq → operation map matches the in-flight set exactly,
  * per operation: ``frames_acked <= frames_total``; frame conservation
    over all submitted operations vs. unsent descriptors + consumed seqs.

**Receive side**
  * the cumulative ack (``tracker.expected``) is monotone,
  * every buffered out-of-order seq is beyond ``expected``,
  * the ordering manager's watermark is monotone; in-order delivery stays
    in lockstep with the tracker; fence-blocked frames are genuinely
    fence-blocked,
  * per receive operation: ``bytes_applied <= length``; completion implies
    all bytes applied; byte conservation: applied + still-buffered payload
    bytes equals ``data_bytes_received``.

**Striping**
  * byte-deficit counters are non-negative and renormalised (bounded),
  * masked rails are in range.

**Congestion (repro.congestion)**
  * when a controller grants a cwnd, it stays within
    ``[min_cwnd_frames, window.size]``; the static policy leaves
    ``window.cwnd`` as ``None``,
  * ECN conservation (final): a sender never receives more echoes than
    its peer sent, and the cluster never receives more CE-marked frames
    than its switches marked.

**Wire (NIC tap)**
  * sequenced frames transmitted equals ``data_frames_sent +
    retransmitted_frames``; explicit ACK/NACK counts match stats; no
    unregistered seq ever hits the wire.

**Crash recovery (repro.recovery)**
  * no stale frame accepted: every frame that passes the receive path's
    incarnation guard carries the negotiated peer incarnation,
  * journal conservation (final): every journaled message is in exactly
    one of {pending, delivered}; jseqs are contiguous from 0; every
    delivered entry appears in the receiver's durable delivery log.

**Final (quiesced end-of-run)**
  * CPU conservation: each node's summed resource busy time equals the
    sum of per-tag accounting charges,
  * NIC rings and RX pipelines are empty,
  * cross-endpoint: a receiver never acks beyond what its peer sent,
  * edge lifecycle transitions follow the detector state machine
    (checked online as they happen).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from ..control.detector import EdgeState
from ..ethernet import FrameType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..bench.cluster import Cluster
    from ..core.connection import Connection, Operation
    from ..ethernet import Frame, Nic

__all__ = ["InvariantViolation", "ConnectionMonitor", "InvariantMonitor"]

_DEFICIT_BOUND = 1 << 30  # striping renormalisation threshold

_SEQUENCED = (FrameType.DATA, FrameType.READ_REQ, FrameType.READ_RESP)


class InvariantViolation(AssertionError):
    """A protocol invariant failed.  Carries the invariant name + context."""

    def __init__(self, name: str, detail: str, where: str = "") -> None:
        self.invariant = name
        self.detail = detail
        self.where = where
        # Stamped by InvariantMonitor._violation with the simulated time
        # the check fired; rewind-to-violation seeks back to this instant.
        self.time_ns = 0
        super().__init__(f"[{name}] {detail}" + (f" ({where})" if where else ""))


class ConnectionMonitor:
    """Per-connection-endpoint invariant state and checks."""

    def __init__(self, mon: "InvariantMonitor", conn: "Connection") -> None:
        self.mon = mon
        self.conn = conn
        self.where = f"conn={conn.conn_id} node={conn.node.node_id}"
        self.checks = 0
        # Ack bookkeeping fed by the on_ack hook.
        self.freed_total = 0
        self.ack_watermark = 0
        self.ops: list[Operation] = []  # every op submitted since attach
        # Frame conservation over tracked ops is only sound if no unsent
        # descriptors from *untracked* (pre-attach) ops remain queued.
        self._ops_check = not conn.unsent
        self._seq0 = conn.window.next_seq
        self._inflight0 = len(conn.window.inflight)
        # Wire-tap counters (fed by the NIC hook, routed by connection id).
        self.wire_data = 0
        self.wire_acks = 0
        self.wire_nacks = 0
        self.wire_probes = 0
        # Monotonicity state.
        self._expected_max = conn.tracker.expected
        self._watermark_max = conn.ordering.watermark
        # Stats counters may be re-zeroed mid-run (measurement resets swap
        # the stats object); rebase every stats-relative check when the
        # object identity changes.
        self._stats_ref: Any = None
        self._rebase()

    # -- rebasing against stats resets ----------------------------------

    def _rebase(self) -> None:
        s = self.conn.stats
        self._stats_ref = s
        self._seq_base = self.conn.window.next_seq - s.data_frames_sent
        self._wire_data_base = self.wire_data - (
            s.data_frames_sent + s.retransmitted_frames
        )
        self._wire_ack_base = self.wire_acks - s.explicit_acks_sent
        self._wire_nack_base = self.wire_nacks - s.nacks_sent
        self._rx_bytes_base = (
            self._applied_plus_buffered() - s.data_bytes_received
        )

    def _applied_plus_buffered(self) -> int:
        ordering = self.conn.ordering
        applied = sum(op.bytes_applied for op in ordering.ops.values())
        buffered = 0
        buf = getattr(ordering, "_buffer", None)
        if buf is not None:  # InOrderDelivery
            buffered += sum(f.header.payload_length for f in buf.values())
        blocked = getattr(ordering, "_blocked", None)
        if blocked is not None:  # FenceDelivery
            for frames in blocked.values():
                buffered += sum(f.header.payload_length for f in frames)
        return applied + buffered

    # -- hook entry points ------------------------------------------------

    def on_ack(self, cum_ack: int, freed: list) -> None:
        self.freed_total += len(freed)
        for rec in freed:
            if rec.frame.header.seq >= cum_ack:
                self._fail(
                    "ack-freed-beyond-cumack",
                    f"freed seq {rec.frame.header.seq} >= cum_ack {cum_ack}",
                )
        if cum_ack > self.ack_watermark:
            self.ack_watermark = cum_ack

    def on_op_submitted(self, op: "Operation") -> None:
        self.ops.append(op)

    def on_wire_tx(self, frame: "Frame") -> None:
        ftype = frame.header.frame_type
        if ftype in _SEQUENCED:
            self.wire_data += 1
            if frame.header.seq >= self.conn.window.next_seq:
                self._fail(
                    "wire-unregistered-seq",
                    f"seq {frame.header.seq} transmitted but next_seq is "
                    f"{self.conn.window.next_seq}",
                )
        elif ftype == FrameType.ACK:
            self.wire_acks += 1
        elif ftype == FrameType.NACK:
            self.wire_nacks += 1
        else:
            self.wire_probes += 1

    # -- the invariant set ------------------------------------------------

    def _fail(self, name: str, detail: str) -> None:
        self.mon._violation(name, detail, self.where)

    def check(self) -> None:
        """Re-verify every invariant against current connection state."""
        self.checks += 1
        conn = self.conn
        window = conn.window
        inflight = window.inflight
        fail = self._fail
        if conn.stats is not self._stats_ref:
            self._rebase()
        s = conn.stats

        # -- window / sequence space --
        if len(inflight) > window.size:
            fail(
                "window-overflow",
                f"{len(inflight)} in flight > window size {window.size}",
            )
        if inflight:
            mn, mx = min(inflight), max(inflight)
            if mx >= window.next_seq:
                fail(
                    "inflight-beyond-next-seq",
                    f"in-flight seq {mx} >= next_seq {window.next_seq}",
                )
            if mn < self.ack_watermark:
                fail(
                    "freed-seq-reappeared",
                    f"in-flight seq {mn} below ack watermark "
                    f"{self.ack_watermark}",
                )
        # Every seq consumed since attach is either freed by an ack or
        # still in flight.
        expect_next = (
            self._seq0 + self.freed_total + len(inflight) - self._inflight0
        )
        if window.next_seq != expect_next:
            fail(
                "seq-conservation",
                f"next_seq {window.next_seq} != base {self._seq0} + freed "
                f"{self.freed_total} + inflight {len(inflight)} - "
                f"inflight-at-attach {self._inflight0}",
            )

        # -- retransmit queue --
        q = conn._retransmit_q
        if len(set(q)) != len(q):
            fail("retransmit-dup", f"duplicate seqs in retransmit queue {list(q)}")
        for seq in q:
            if seq not in inflight and seq >= self.ack_watermark:
                fail(
                    "retransmit-orphan",
                    f"queued seq {seq} neither in flight nor below ack "
                    f"watermark {self.ack_watermark}",
                )

        # -- seq -> op map --
        if set(inflight) != set(conn._frame_op):
            extra = set(conn._frame_op) ^ set(inflight)
            fail("frame-op-leak", f"inflight/frame_op mismatch on seqs {extra}")

        # -- stats vs sequence space --
        if s.data_frames_sent != window.next_seq - self._seq_base:
            fail(
                "sent-vs-seq",
                f"data_frames_sent {s.data_frames_sent} != seqs consumed "
                f"{window.next_seq - self._seq_base}",
            )

        # -- pump CPU conservation --
        per_frame = conn.node.params.per_frame_send_ns
        expect = (s.data_frames_sent + s.retransmitted_frames) * per_frame
        if s.pump_charged_ns != expect:
            fail(
                "pump-cpu-conservation",
                f"pump_charged_ns {s.pump_charged_ns} != "
                f"(sent {s.data_frames_sent} + retrans "
                f"{s.retransmitted_frames}) * {per_frame} = {expect}",
            )
        if s.pump_stalled_ns < 0:
            fail("pump-stall-negative", f"pump_stalled_ns {s.pump_stalled_ns}")

        # -- per-operation bounds + frame conservation --
        frames_total = 0
        for op in self.ops:
            frames_total += op.frames_total
            if op.frames_acked > op.frames_total:
                fail(
                    "op-ack-overrun",
                    f"op {op.op_id}: frames_acked {op.frames_acked} > "
                    f"frames_total {op.frames_total}",
                )
            if op.kind == "read" and op.bytes_received > op.length:
                fail(
                    "read-byte-overrun",
                    f"op {op.op_id}: bytes_received {op.bytes_received} > "
                    f"length {op.length}",
                )
        if self._ops_check:
            consumed = window.next_seq - self._seq0
            if frames_total != consumed + len(conn.unsent):
                fail(
                    "op-frame-conservation",
                    f"sum(frames_total) {frames_total} != seqs consumed "
                    f"{consumed} + unsent {len(conn.unsent)}",
                )

        # -- receive side --
        tracker = conn.tracker
        if tracker.expected < self._expected_max:
            fail(
                "cumack-monotone",
                f"tracker.expected moved back: {tracker.expected} < "
                f"{self._expected_max}",
            )
        self._expected_max = tracker.expected
        if tracker._beyond and min(tracker._beyond) <= tracker.expected:
            fail(
                "beyond-stale",
                f"buffered seq {min(tracker._beyond)} <= expected "
                f"{tracker.expected}",
            )

        ordering = conn.ordering
        if ordering.watermark < self._watermark_max:
            fail(
                "watermark-monotone",
                f"ordering watermark moved back: {ordering.watermark} < "
                f"{self._watermark_max}",
            )
        self._watermark_max = ordering.watermark
        buf = getattr(ordering, "_buffer", None)
        if buf is not None:  # strict in-order mode
            if ordering._next_apply != tracker.expected:
                fail(
                    "inorder-desync",
                    f"next_apply {ordering._next_apply} != tracker.expected "
                    f"{tracker.expected}",
                )
            if set(buf) != tracker._beyond:
                fail(
                    "inorder-buffer-desync",
                    f"ordering buffer {sorted(buf)} != tracker beyond "
                    f"{sorted(tracker._beyond)}",
                )
        blocked = getattr(ordering, "_blocked", None)
        if blocked is not None:  # fence mode
            for op_seq, frames in blocked.items():
                if not frames:
                    fail("fence-empty-block", f"empty block list for op {op_seq}")
                elif op_seq <= ordering.watermark:
                    fail(
                        "fence-stale-block",
                        f"op {op_seq} still blocked at watermark "
                        f"{ordering.watermark}",
                    )
        for op_seq, rx_op in ordering.ops.items():
            if rx_op.bytes_applied > rx_op.length:
                fail(
                    "rx-byte-overrun",
                    f"rx op {op_seq}: applied {rx_op.bytes_applied} > "
                    f"length {rx_op.length}",
                )
            if rx_op.complete and not rx_op.is_read_request and (
                rx_op.bytes_applied != rx_op.length
            ):
                fail(
                    "rx-early-complete",
                    f"rx op {op_seq} complete with {rx_op.bytes_applied}/"
                    f"{rx_op.length} bytes",
                )
        got = self._applied_plus_buffered() - self._rx_bytes_base
        if got != s.data_bytes_received:
            fail(
                "rx-byte-conservation",
                f"applied+buffered {got} != data_bytes_received "
                f"{s.data_bytes_received}",
            )

        # -- congestion window bounds --
        cc = conn.congestion
        if cc.active:
            lo = cc.params.min_cwnd_frames
            cwnd = window.cwnd
            if cwnd is None:
                fail(
                    "cwnd-unset",
                    f"{cc.name} controller active but window.cwnd is None",
                )
            elif not lo <= cwnd <= window.size:
                fail(
                    "cwnd-out-of-bounds",
                    f"cwnd {cwnd} outside [{lo}, {window.size}] "
                    f"({cc.name})",
                )
        elif window.cwnd is not None:
            fail(
                "cwnd-static-clamped",
                f"static policy but window.cwnd is {window.cwnd}",
            )

        # -- striping --
        striping = conn.striping
        n = len(striping.nics)
        for rail in striping.masked:
            if not 0 <= rail < n:
                fail("mask-range", f"masked rail {rail} out of range 0..{n - 1}")
        for attr in ("_assigned_bytes", "_charged"):
            deficits = getattr(striping, attr, None)
            if deficits:
                if min(deficits) < 0:
                    fail(
                        "deficit-negative",
                        f"{attr} has negative entry: {deficits}",
                    )
                if min(deficits) > _DEFICIT_BOUND:
                    fail(
                        "deficit-unbounded",
                        f"{attr} not renormalised: min {min(deficits)}",
                    )

        # -- wire conservation --
        wire_data = self.wire_data - self._wire_data_base
        if wire_data != s.data_frames_sent + s.retransmitted_frames:
            fail(
                "wire-data-conservation",
                f"wire sequenced frames {wire_data} != sent "
                f"{s.data_frames_sent} + retrans {s.retransmitted_frames}",
            )
        if self.wire_acks - self._wire_ack_base != s.explicit_acks_sent:
            fail(
                "wire-ack-conservation",
                f"wire ACKs {self.wire_acks - self._wire_ack_base} != "
                f"explicit_acks_sent {s.explicit_acks_sent}",
            )
        if self.wire_nacks - self._wire_nack_base != s.nacks_sent:
            fail(
                "wire-nack-conservation",
                f"wire NACKs {self.wire_nacks - self._wire_nack_base} != "
                f"nacks_sent {s.nacks_sent}",
            )


class InvariantMonitor:
    """Cluster-wide monitor: one :class:`ConnectionMonitor` per endpoint.

    ``collect=True`` records violations in :attr:`violations` instead of
    raising on the first one (used by tests that plant corruptions).
    """

    def __init__(self, collect: bool = False) -> None:
        self.collect = collect
        self.violations: list[InvariantViolation] = []
        self.conn_monitors: dict[tuple[int, int], ConnectionMonitor] = {}
        self._mac_to_node: dict[int, int] = {}
        self.cluster: Optional["Cluster"] = None
        # Called with each InvariantViolation as it is recorded (before any
        # raise), so external machinery — e.g. a rewind-to-violation
        # harness — can learn the stamped instant in either collect mode.
        self.on_violation = None

    # -- attachment -------------------------------------------------------

    @classmethod
    def attach(cls, cluster: "Cluster", collect: bool = False) -> "InvariantMonitor":
        """Hook every existing connection, NIC, and control plane.

        Call after the experiment's connections are established;
        connections created later need :meth:`attach_connection`.
        """
        mon = cls(collect=collect)
        mon.cluster = cluster
        for node in cluster.nodes:
            for nic in node.nics:
                mon._mac_to_node[nic.mac] = node.node_id
                nic.monitor = mon
        for stack in cluster.stacks:
            for conn in stack.protocol.connections.values():
                mon.attach_connection(conn)
        for mgr in cluster.control_planes.values():
            mgr.invariant_monitor = mon
        recovery = getattr(cluster, "recovery", None)
        if recovery is not None:
            # Connections created mid-run by the reconnect loop must be
            # monitored too; the recovery layer attaches them on creation.
            recovery.monitor = mon
        return mon

    def attach_connection(self, conn: "Connection") -> ConnectionMonitor:
        key = (conn.conn_id, conn.node.node_id)
        cm = self.conn_monitors.get(key)
        if cm is None:
            cm = ConnectionMonitor(self, conn)
            self.conn_monitors[key] = cm
            conn.monitor = self
        return cm

    def detach_connection(self, conn: "Connection") -> None:
        """Stop monitoring one endpoint (it is about to be destroyed).

        A crashed or torn-down connection legitimately violates the
        steady-state invariants (cleared window, failed ops); the
        recovery layer detaches it before destruction.
        """
        self.conn_monitors.pop((conn.conn_id, conn.node.node_id), None)
        if conn.monitor is self:
            conn.monitor = None

    def detach(self) -> None:
        """Remove every hook installed by :meth:`attach`."""
        for cm in self.conn_monitors.values():
            if cm.conn.monitor is self:
                cm.conn.monitor = None
        if self.cluster is not None:
            for node in self.cluster.nodes:
                for nic in node.nics:
                    if nic.monitor is self:
                        nic.monitor = None
            for mgr in self.cluster.control_planes.values():
                if mgr.invariant_monitor is self:
                    mgr.invariant_monitor = None

    # -- hook entry points (called from core through guarded hooks) -------

    def on_event(self, conn: "Connection") -> None:
        cm = self.conn_monitors.get((conn.conn_id, conn.node.node_id))
        if cm is not None:
            cm.check()

    def on_rx_frame(self, conn: "Connection", frame: "Frame") -> None:
        """No-stale-frame-accepted: runs *after* the incarnation guard."""
        if (
            conn.recovery is not None
            and frame.incarnation != conn.peer_incarnation
        ):
            self._violation(
                "stale-frame-accepted",
                f"frame incarnation {frame.incarnation} != negotiated peer "
                f"incarnation {conn.peer_incarnation}",
                f"conn={conn.conn_id} node={conn.node.node_id}",
            )

    def on_ack(self, conn: "Connection", cum_ack: int, freed: list) -> None:
        cm = self.conn_monitors.get((conn.conn_id, conn.node.node_id))
        if cm is not None:
            cm.on_ack(cum_ack, freed)

    def on_op_submitted(self, conn: "Connection", op: "Operation") -> None:
        cm = self.conn_monitors.get((conn.conn_id, conn.node.node_id))
        if cm is not None:
            cm.on_op_submitted(op)

    def on_nic_tx(self, nic: "Nic", frame: "Frame") -> None:
        node_id = self._mac_to_node.get(nic.mac)
        if node_id is None:
            return
        cm = self.conn_monitors.get((frame.header.connection_id, node_id))
        if cm is not None:
            cm.on_wire_tx(frame)

    def on_edge_transition(
        self, mgr: Any, rail: int, old: EdgeState, new: EdgeState, reason: str
    ) -> None:
        """Validate a lifecycle transition against the state machine."""
        where = f"conn={mgr.conn.conn_id} rail={rail}"
        if old is new:
            self._violation(
                "edge-self-transition", f"{old} -> {new} ({reason})", where
            )
        elif new is EdgeState.SUSPECT and old not in (
            EdgeState.UP, EdgeState.DEGRADED
        ):
            self._violation(
                "edge-illegal-transition", f"{old} -> SUSPECT ({reason})", where
            )
        elif new is EdgeState.DEGRADED and old is not EdgeState.UP:
            # Only the differential scorer enters DEGRADED, and only
            # from a healthy edge; any other origin is a machine bug.
            self._violation(
                "edge-illegal-transition", f"{old} -> DEGRADED ({reason})", where
            )
        elif new is EdgeState.RECOVERING and old is not EdgeState.DOWN:
            self._violation(
                "edge-illegal-transition",
                f"{old} -> RECOVERING ({reason})",
                where,
            )

    # -- end-of-run checks ------------------------------------------------

    def final_check(self) -> None:
        """Quiesced end-of-run checks: run after the simulator drains."""
        for cm in self.conn_monitors.values():
            cm.check()
        # Cross-endpoint: the receiver can never ack what was not sent.
        for (conn_id, node_id), cm in self.conn_monitors.items():
            peer_id = cm.conn.peer_node_id
            peer = self.conn_monitors.get((conn_id, peer_id))
            if peer is None:
                continue
            if cm.conn.tracker.expected > peer.conn.window.next_seq:
                self._violation(
                    "rx-beyond-tx",
                    f"receiver expected {cm.conn.tracker.expected} > peer "
                    f"next_seq {peer.conn.window.next_seq}",
                    cm.where,
                )
            # ECN echoes are only ever reflections of marks the peer saw.
            if cm.conn.ecn_echoes_received > peer.conn.ecn_echoes_sent:
                self._violation(
                    "ecn-echo-conservation",
                    f"echoes received {cm.conn.ecn_echoes_received} > peer "
                    f"echoes sent {peer.conn.ecn_echoes_sent}",
                    cm.where,
                )
        if self.cluster is not None:
            ce_marked = sum(
                sw.ce_marked_total for sw in self.cluster.all_switches
            )
            ce_received = sum(
                s.protocol.connections[c].ce_frames_received
                for s in self.cluster.stacks
                for c in s.protocol.connections
            )
            if ce_received > ce_marked:
                self._violation(
                    "ecn-mark-conservation",
                    f"CE frames received {ce_received} > CE marks applied "
                    f"by switches {ce_marked}",
                )
        if self.cluster is not None:
            for node in self.cluster.nodes:
                self._check_node_quiesced(node)
        recovery = getattr(self.cluster, "recovery", None)
        if recovery is not None:
            self._check_journals(recovery)
        serve = getattr(self.cluster, "serve", None)
        if serve is not None:
            for problem in serve.check_invariants():
                self._violation("serve-invariant", problem, "serve runtime")

    def _check_journals(self, recovery: Any) -> None:
        """Journal conservation + delivered-implies-logged, per channel."""
        for ch in recovery.channels:
            where = f"channel {ch.src}->{ch.dst}"
            entries = ch.journal.entries
            for i, e in enumerate(entries):
                if e.jseq != i:
                    self._violation(
                        "journal-jseq-gap",
                        f"entry {i} carries jseq {e.jseq}",
                        where,
                    )
            delivered = sum(1 for e in entries if e.delivered)
            if delivered != ch.journal.delivered_count:
                self._violation(
                    "journal-conservation",
                    f"delivered_count {ch.journal.delivered_count} != "
                    f"{delivered} delivered entries (of {len(entries)})",
                    where,
                )
            if ch.dead is not None:
                continue  # sender crashed: its journal is fail-stop garbage
            sender_inc = recovery.nodes[ch.src].incarnation
            log = recovery.nodes[ch.dst].delivered
            for e in entries:
                if e.delivered and (ch.src, sender_inc, e.jseq) not in log:
                    self._violation(
                        "journal-delivered-unlogged",
                        f"entry {e.jseq} acked but absent from the "
                        f"receiver's delivery log",
                        where,
                    )

    def _check_node_quiesced(self, node: Any) -> None:
        where = f"node={node.node_id}"
        busy = 0
        for cpu in node.cpus:
            res = cpu.resource
            res._account()  # flush lazily accumulated busy time
            if res.in_use != 0:
                self._violation(
                    "cpu-not-quiesced",
                    f"{cpu.name} still in use at end of run",
                    where,
                )
                return
            busy += res.busy_time
        charged = node.accounting.total("", since_epoch=True)
        if busy != charged:
            self._violation(
                "cpu-charge-conservation",
                f"summed busy time {busy} != summed tag charges {charged}",
                where,
            )
        for nic in node.nics:
            if nic._tx_ring_used != 0:
                self._violation(
                    "nic-tx-not-drained",
                    f"{nic.name}: {nic._tx_ring_used} frames in TX ring",
                    where,
                )
            if nic._rx_inflight != 0:
                self._violation(
                    "nic-rx-not-drained",
                    f"{nic.name}: {nic._rx_inflight} frames in RX pipeline",
                    where,
                )

    # -- reporting --------------------------------------------------------

    @property
    def checks_run(self) -> int:
        return sum(cm.checks for cm in self.conn_monitors.values())

    @property
    def ok(self) -> bool:
        return not self.violations

    def _violation(self, name: str, detail: str, where: str = "") -> None:
        v = InvariantViolation(name, detail, where)
        if self.cluster is not None:
            v.time_ns = self.cluster.sim.now
        self.violations.append(v)
        if self.on_violation is not None:
            self.on_violation(v)
        if not self.collect:
            raise v
