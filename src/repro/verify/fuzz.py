"""Deterministic protocol fuzzing under the invariant monitor.

A :class:`Scenario` is a fully declarative description of one randomized
run: cluster configuration, protocol knobs (window, pump batch, TX ring
depth, striping policy), a workload (a sequence of :class:`OpSpec` remote
operations), and a :class:`~repro.control.faults.FaultSchedule`.  Scenarios
are derived from a seed by :func:`scenario_from_seed`, executed by
:func:`run_scenario` with an :class:`~repro.verify.InvariantMonitor`
attached, and — when one fails — reduced by :func:`shrink_scenario` to a
minimal reproducer.

Everything is deterministic: the scenario is a pure function of
``(seed, workload, fault_profile)``, and the simulation itself is seeded,
so the same seed always produces the identical event trace, final stats,
and :func:`fingerprint`.  That determinism is itself asserted by the CI
smoke suite (``benchmarks/bench_fuzz.py``).

Command line::

    PYTHONPATH=src python -m repro.verify.fuzz --count 50
    PYTHONPATH=src python -m repro.verify.fuzz --seed 1234 --trace
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, fields as dataclass_fields, replace
from typing import Callable, Optional

from ..bench.cluster import Cluster, make_cluster
from ..control import (
    BitErrorRamp,
    FaultSchedule,
    Flap,
    Outage,
    PermanentFailure,
    Repair,
)
from ..congestion import CongestionParams
from ..core import ProtocolParams
from ..ethernet import OpFlags
from ..host import myri10g_params, tigon3_params
from ..sim import SimulationError
from .monitor import InvariantMonitor, InvariantViolation

__all__ = [
    "OpSpec",
    "Scenario",
    "FuzzResult",
    "WORKLOADS",
    "FAULT_PROFILES",
    "scenario_from_seed",
    "run_scenario",
    "shrink_scenario",
    "fingerprint",
    "run_crash_scenario",
    "run_incarnation_scenario",
    "IncarnationFuzzResult",
    "FabricScenario",
    "FabricFuzzResult",
    "fabric_scenario_from_seed",
    "run_fabric_scenario",
    "ServeFuzzResult",
    "GrayFuzzResult",
    "run_gray_scenario",
    "run_serve_scenario",
]

WORKLOADS = ("bulk", "small", "scatter", "read", "mixed")
FAULT_PROFILES = ("none", "outage", "flap", "ber", "chaos")
_CONFIGS = ("1L-1G", "1L-10G", "2L-1G", "2Lu-1G")

_US = 1_000
_MS = 1_000_000


@dataclass(frozen=True)
class OpSpec:
    """One remote operation in a scenario's workload."""

    src: int
    dst: int
    kind: str  # "write" | "scatter" | "read"
    size: int  # total payload bytes (scatter: per segment)
    segments: int = 0  # scatter only
    flags: int = 0
    wait: bool = False  # wait for completion before issuing the next op


@dataclass(frozen=True)
class Scenario:
    """A fully declarative, replayable fuzz case."""

    seed: int
    config: str
    nodes: int
    workload: str
    fault_profile: str
    striping: Optional[str]
    window_frames: int
    pump_batch: int
    tx_ring_frames: Optional[int]
    control_plane: bool
    ops: tuple[OpSpec, ...]
    faults: tuple[object, ...]
    limit_ns: int = 2_000_000_000
    # Congestion knobs (repro.congestion).  ECN marking is exercised even
    # with the static policy: receivers still echo, senders still count,
    # and the conservation invariants still apply.
    congestion: str = "static"
    ecn_threshold: Optional[int] = None
    pacing: bool = False

    @property
    def rails(self) -> int:
        return 2 if self.config.startswith("2") else 1


@dataclass
class FuzzResult:
    """Outcome of one scenario run."""

    scenario: Scenario
    failure: Optional[str]  # None on success
    fingerprint: str
    elapsed_ns: int
    checks: int
    violations: tuple[str, ...] = ()
    # Fast-forward jumps taken when the run had fastpath enabled (0 when
    # disabled or never armed); parity harnesses use it to split seeds
    # into exact-identity vs timing-divergence expectations.
    fastpath_jumps: int = 0

    @property
    def ok(self) -> bool:
        return self.failure is None


# ---------------------------------------------------------------------------
# Scenario generation
# ---------------------------------------------------------------------------


def _gen_ops(rng: random.Random, workload: str, pairs: list[tuple[int, int]]):
    def flags_for(p_notify=0.3, p_fence_fwd=0.15, p_fence_bwd=0.15) -> int:
        f = 0
        if rng.random() < p_notify:
            f |= OpFlags.NOTIFY
        if rng.random() < p_fence_fwd:
            f |= OpFlags.FENCE_FORWARD
        if rng.random() < p_fence_bwd:
            f |= OpFlags.FENCE_BACKWARD
        return f

    def pair() -> tuple[int, int]:
        return rng.choice(pairs)

    ops: list[OpSpec] = []
    if workload == "bulk":
        for _ in range(rng.randint(2, 5)):
            src, dst = pair()
            ops.append(
                OpSpec(src, dst, "write", rng.randint(16_384, 131_072),
                       flags=flags_for(), wait=rng.random() < 0.25)
            )
    elif workload == "small":
        for _ in range(rng.randint(10, 40)):
            src, dst = pair()
            ops.append(
                OpSpec(src, dst, "write", rng.randint(16, 1024),
                       flags=flags_for(), wait=rng.random() < 0.25)
            )
    elif workload == "scatter":
        for _ in range(rng.randint(3, 10)):
            src, dst = pair()
            ops.append(
                OpSpec(src, dst, "scatter", rng.randint(16, 256),
                       segments=rng.randint(2, 8), flags=flags_for(),
                       wait=rng.random() < 0.25)
            )
    elif workload == "read":
        for _ in range(rng.randint(3, 8)):
            src, dst = pair()
            ops.append(
                OpSpec(src, dst, "read", rng.randint(512, 16_384),
                       flags=flags_for(p_notify=0.0), wait=rng.random() < 0.4)
            )
    elif workload == "mixed":
        for _ in range(rng.randint(6, 20)):
            src, dst = pair()
            kind = rng.choice(("write", "write", "scatter", "read"))
            if kind == "write":
                spec = OpSpec(src, dst, "write", rng.randint(64, 32_768),
                              flags=flags_for(), wait=rng.random() < 0.25)
            elif kind == "scatter":
                spec = OpSpec(src, dst, "scatter", rng.randint(16, 256),
                              segments=rng.randint(2, 6), flags=flags_for(),
                              wait=rng.random() < 0.25)
            else:
                spec = OpSpec(src, dst, "read", rng.randint(512, 8_192),
                              flags=flags_for(p_notify=0.0),
                              wait=rng.random() < 0.4)
            ops.append(spec)
    else:
        raise ValueError(f"unknown workload {workload!r}")
    return tuple(ops)


def _gen_faults(
    rng: random.Random, profile: str, nodes: int, rails: int
) -> tuple[object, ...]:
    """Bounded fault events: runs must always complete within the limit."""

    def edge() -> tuple[int, int]:
        return rng.randrange(nodes), rng.randrange(rails)

    events: list[object] = []
    if profile == "none":
        pass
    elif profile == "outage":
        for _ in range(rng.randint(1, 2)):
            node, rail = edge()
            events.append(
                Outage(at_ns=rng.randint(200 * _US, 5 * _MS), node=node,
                       rail=rail, duration_ns=rng.randint(100 * _US, 2 * _MS))
            )
    elif profile == "flap":
        node, rail = edge()
        period = rng.randint(400 * _US, 1500 * _US)
        events.append(
            Flap(at_ns=rng.randint(200 * _US, 2 * _MS), node=node, rail=rail,
                 period_ns=period, down_ns=rng.randint(100 * _US,
                                                       min(400 * _US, period)),
                 count=rng.randint(2, 4))
        )
    elif profile == "ber":
        node, rail = edge()
        at = rng.randint(100 * _US, 2 * _MS)
        events.append(
            BitErrorRamp(at_ns=at, node=node, rail=rail,
                         bit_error_rate=10 ** rng.uniform(-7.0, -4.5))
        )
        events.append(
            Repair(at_ns=at + rng.randint(1 * _MS, 4 * _MS), node=node,
                   rail=rail)
        )
    elif profile == "chaos":
        for _ in range(rng.randint(2, 4)):
            node, rail = edge()
            kind = rng.choice(("outage", "ber", "perm"))
            at = rng.randint(200 * _US, 4 * _MS)
            if kind == "outage":
                events.append(
                    Outage(at_ns=at, node=node, rail=rail,
                           duration_ns=rng.randint(100 * _US, 1500 * _US))
                )
            elif kind == "ber":
                events.append(
                    BitErrorRamp(at_ns=at, node=node, rail=rail,
                                 bit_error_rate=10 ** rng.uniform(-7.0, -5.0))
                )
                events.append(
                    Repair(at_ns=at + rng.randint(1 * _MS, 3 * _MS),
                           node=node, rail=rail)
                )
            else:
                # Permanent failure is always paired with a repair so the
                # run can drain even on a single-rail configuration.
                events.append(PermanentFailure(at_ns=at, node=node, rail=rail))
                events.append(
                    Repair(at_ns=at + rng.randint(1 * _MS, 3 * _MS),
                           node=node, rail=rail)
                )
    else:
        raise ValueError(f"unknown fault profile {profile!r}")
    return tuple(events)


def scenario_from_seed(
    seed: int,
    workload: Optional[str] = None,
    fault_profile: Optional[str] = None,
) -> Scenario:
    """Derive a scenario deterministically from ``(seed, workload, faults)``.

    ``random.Random`` with a string seed hashes it stably (SHA-512), so the
    derivation is identical across processes and Python invocations.
    """
    rng = random.Random(f"multiedge-fuzz:{seed}:{workload}:{fault_profile}")
    if workload is None:
        workload = rng.choice(WORKLOADS)
    if fault_profile is None:
        fault_profile = rng.choice(FAULT_PROFILES)
    config = rng.choice(_CONFIGS)
    rails = 2 if config.startswith("2") else 1
    nodes = rng.choice((2, 2, 2, 3))

    pairs = [(0, 1)]
    if rng.random() < 0.4:
        pairs.append((1, 0))  # reverse traffic on the same connection
    if nodes == 3:
        pairs.append(rng.choice(((2, 1), (0, 2), (2, 0))))

    striping = None
    if rails > 1:
        striping = rng.choice(
            (None, "round_robin", "shortest_queue", "single_rail", "adaptive")
        )
    # Congestion knobs come from their own stream so every draw above is
    # byte-for-byte identical to what the pre-congestion fuzzer produced.
    crng = random.Random(
        f"multiedge-fuzz-congestion:{seed}:{workload}:{fault_profile}"
    )
    congestion = crng.choice(("static", "static", "aimd", "dctcp"))
    ecn_threshold = crng.choice((None, 8, 16, 32))
    pacing = congestion != "static" and crng.random() < 0.25
    return Scenario(
        seed=seed,
        config=config,
        nodes=nodes,
        workload=workload,
        fault_profile=fault_profile,
        striping=striping,
        window_frames=rng.choice((8, 16, 64, 256)),
        pump_batch=rng.choice((1, 4, 8)),
        tx_ring_frames=rng.choice((None, None, 4, 8, 32)),
        control_plane=rails > 1 and rng.random() < 0.5,
        ops=_gen_ops(rng, workload, pairs),
        faults=_gen_faults(rng, fault_profile, nodes, rails),
        congestion=congestion,
        ecn_threshold=ecn_threshold,
        pacing=pacing,
    )


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def _build_cluster(sc: Scenario, trace: bool, fastpath: bool = False) -> Cluster:
    congestion_params = None
    if sc.pacing:
        congestion_params = CongestionParams(pacing=True)
    protocol = ProtocolParams(
        window_frames=sc.window_frames,
        pump_batch=sc.pump_batch,
        in_order_delivery=(sc.config == "2L-1G"),
        striping=sc.striping or "round_robin",
        congestion=sc.congestion,
        congestion_params=congestion_params,
    )
    overrides: dict = {"protocol": protocol}
    if sc.tx_ring_frames is not None:
        base = myri10g_params if sc.config == "1L-10G" else tigon3_params
        ring = sc.tx_ring_frames
        overrides["nic_factory"] = lambda: base(tx_ring_frames=ring)
    if fastpath:
        overrides["fastpath"] = True
    cluster = make_cluster(sc.config, nodes=sc.nodes, seed=sc.seed, **overrides)
    if sc.ecn_threshold is not None:
        cluster.set_ecn_threshold(sc.ecn_threshold)
    if trace:
        cluster.enable_frame_tracing()
    return cluster


def fingerprint(cluster: Cluster, include_trace: bool = False) -> str:
    """SHA-256 over final simulation time, per-connection stats, and
    (optionally) the captured frame trace — the bit-determinism witness."""
    h = hashlib.sha256()
    h.update(str(cluster.sim.now).encode())
    for stack in cluster.stacks:
        for conn_id in sorted(stack.protocol.connections):
            conn = stack.protocol.connections[conn_id]
            h.update(f"|{conn_id}@{stack.node_id}".encode())
            s = conn.stats
            for f in dataclass_fields(s):
                h.update(f"{f.name}={getattr(s, f.name)};".encode())
            h.update(
                f"next_seq={conn.window.next_seq};"
                f"expected={conn.tracker.expected};".encode()
            )
    if include_trace:
        for rec in cluster.tracer.records:
            h.update(repr(rec).encode())
    return h.hexdigest()


class ScenarioRun:
    """One scenario execution, pausable mid-flight for checkpointing.

    ``run_scenario`` remains the one-shot front door; this class exposes
    the same execution split into phases so :mod:`repro.checkpoint` can
    stop the simulation at an exact instant, capture state, and continue:

    * construction wires the cluster, faults, and sender processes (no
      simulated time passes),
    * :meth:`run_to` executes every event due at or before a time,
    * :meth:`finish` runs to completion and returns the
      :class:`FuzzResult`.

    The split is scheduling-neutral: ``run_to(T)`` + ``finish()`` executes
    the exact event sequence of a bare ``finish()``.
    """

    def __init__(
        self,
        sc: Scenario,
        use_monitor: bool = True,
        collect: bool = False,
        trace: bool = False,
        fastpath: bool = False,
    ) -> None:
        self.sc = sc
        self.trace = trace
        # Rebuild recipe for repro.checkpoint (sc rides separately).
        self.opts = {
            "use_monitor": use_monitor,
            "collect": collect,
            "trace": trace,
            "fastpath": fastpath,
        }
        self._failure: Optional[str] = None
        cluster = self.cluster = _build_cluster(sc, trace, fastpath)
        pairs = sorted({(op.src, op.dst) for op in sc.ops})
        conn_pairs = sorted({(min(i, j), max(i, j)) for i, j in pairs})
        handles = {}
        for i, j in conn_pairs:
            a, b = cluster.connect(i, j)
            handles[(i, j)] = a
            handles[(j, i)] = b

        self.managers = []
        if sc.control_plane:
            for i, j in conn_pairs:
                m1, m2 = cluster.enable_edge_control(i, j)
                self.managers += [m1, m2]

        self.monitor = (
            InvariantMonitor.attach(cluster, collect=collect)
            if use_monitor
            else None
        )
        self.faults = FaultSchedule(list(sc.faults))
        self.faults.apply(cluster)

        # One send/receive buffer per (src, dst) direction; ops reuse them.
        max_size = max(
            (op.size * max(op.segments, 1) for op in sc.ops), default=0
        ) or 64
        bufs = {}
        for i, j in pairs:
            src_node = cluster.nodes[i]
            dst_node = cluster.nodes[j]
            bufs[(i, j)] = (
                src_node.memory.alloc(max_size),
                dst_node.memory.alloc(max_size),
            )

        by_src: dict[int, list[OpSpec]] = {}
        for op in sc.ops:
            by_src.setdefault(op.src, []).append(op)

        def sender(src: int, specs: list[OpSpec]):
            pending = []
            for spec in specs:
                handle = handles[(spec.src, spec.dst)]
                local, remote = bufs[(spec.src, spec.dst)]
                if spec.kind == "write":
                    oh = yield from handle.rdma_write(
                        local, remote, spec.size, flags=spec.flags
                    )
                elif spec.kind == "scatter":
                    segments = [
                        (remote + k * spec.size, bytes(spec.size))
                        for k in range(spec.segments)
                    ]
                    oh = yield from handle.rdma_write_scatter(
                        segments, flags=spec.flags
                    )
                elif spec.kind == "read":
                    oh = yield from handle.rdma_read(
                        local, remote, spec.size, flags=spec.flags
                    )
                else:
                    raise ValueError(f"unknown op kind {spec.kind!r}")
                pending.append(oh)
                if spec.wait:
                    yield from oh.wait()
            for oh in pending:
                yield from oh.wait()

        self.procs = [
            cluster.sim.process(sender(src, specs))
            for src, specs in sorted(by_src.items())
        ]

    def state(self) -> dict:
        """Capture root for the checkpoint walker: everything live."""
        return {
            "cluster": self.cluster,
            "procs": self.procs,
            "managers": self.managers,
            "monitor": self.monitor,
            "faults": self.faults,
        }

    @property
    def traffic_done(self) -> bool:
        """True once every workload process has finished.

        Past this instant an uninterrupted :meth:`finish` stops the
        managers (killing periodic activity like edge monitors) before
        any later event runs, so a paused run must not advance beyond it.
        """
        return all(p._finished for p in self.procs)

    def run_to(self, time_ns: int) -> None:
        """Execute every event due at or before ``time_ns``, then pause.

        The pause clamps at the instant the last workload process
        finishes — exactly where an uninterrupted run's
        ``run_until_done`` sequence stops before ``finish()`` shuts the
        managers down.  Running any further would execute periodic
        events (keepalives, edge monitors) that the uninterrupted run
        suppresses, breaking ``run-to-end == pause+finish`` composition.
        """
        if self._failure is not None or self.traffic_done:
            return
        try:
            self.cluster.sim.run_until_time(
                time_ns, stop=lambda: self.traffic_done
            )
        except InvariantViolation as v:
            self._failure = f"invariant: {v}"
        except SimulationError as e:
            self._failure = f"simulation: {e}"

    def finish(self) -> FuzzResult:
        """Run to completion and report; never raises."""
        cluster = self.cluster
        monitor = self.monitor
        failure = self._failure
        if failure is None:
            try:
                for proc in self.procs:
                    cluster.sim.run_until_done(proc, limit=self.sc.limit_ns)
                for mgr in self.managers:
                    mgr.stop()
                cluster.sim.run()  # drain retransmits, acks, fault timers
                for stack in cluster.stacks:
                    for conn in stack.protocol.connections.values():
                        for op in list(conn._frame_op.values()) + [
                            o for o in conn._pending_reads.values()
                        ]:
                            if not op.completed:
                                raise SimulationError(
                                    f"op {op!r} incomplete after drain"
                                )
                if monitor is not None:
                    monitor.final_check()
            except InvariantViolation as v:
                failure = f"invariant: {v}"
            except SimulationError as e:
                failure = f"simulation: {e}"
        if failure is None and monitor is not None and monitor.violations:
            failure = f"invariant: {monitor.violations[0]}"
        return FuzzResult(
            scenario=self.sc,
            failure=failure,
            fingerprint=fingerprint(cluster, include_trace=self.trace),
            elapsed_ns=cluster.sim.now,
            checks=monitor.checks_run if monitor is not None else 0,
            violations=tuple(str(v) for v in monitor.violations)
            if monitor is not None
            else (),
            fastpath_jumps=(
                cluster.fastpath.stats.jumps
                if cluster.fastpath is not None
                else 0
            ),
        )


def run_scenario(
    sc: Scenario,
    use_monitor: bool = True,
    collect: bool = False,
    trace: bool = False,
    fastpath: bool = False,
) -> FuzzResult:
    """Execute one scenario; never raises — failures land in the result."""
    return ScenarioRun(
        sc,
        use_monitor=use_monitor,
        collect=collect,
        trace=trace,
        fastpath=fastpath,
    ).finish()


# ---------------------------------------------------------------------------
# Crash fuzzing
# ---------------------------------------------------------------------------


def run_crash_scenario(seed: int):
    """One randomized whole-node crash/recovery run (repro.recovery).

    Parameters are drawn from their own RNG stream
    (``multiedge-fuzz-crash:<seed>``) so the pre-existing scenario
    derivation — and therefore every existing fingerprint — stays
    byte-identical.  The run streams journaled messages at a receiver
    that crashes and reboots mid-stream, with the invariant monitor
    attached; the returned :class:`~repro.bench.crash.CrashResult` must
    satisfy ``ok`` (exactly-once, reconnected, zero violations — which
    includes the no-stale-frame-accepted and journal-conservation
    checks).
    """
    from ..bench.crash import run_crash

    rng = random.Random(f"multiedge-fuzz-crash:{seed}")
    crash_ns = rng.randint(1 * _MS, 6 * _MS)
    restart_delay_ns = rng.randint(200 * _US, 12 * _MS)
    return run_crash(
        config=rng.choice(_CONFIGS),
        message_bytes=rng.choice((256, 1024, 2048, 4096)),
        message_interval_ns=rng.randint(30 * _US, 200 * _US),
        crash_ns=crash_ns,
        restart_delay_ns=restart_delay_ns,
        run_ns=crash_ns + restart_delay_ns + rng.randint(10 * _MS, 20 * _MS),
        seed=seed,
        use_monitor=True,
    )


@dataclass(frozen=True)
class IncarnationFuzzResult:
    """Outcome of one :func:`run_incarnation_scenario` run."""

    seed: int
    config: str
    stale_frames_rejected: int
    duplicates_suppressed: int
    violations: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.violations


def run_incarnation_scenario(seed: int) -> IncarnationFuzzResult:
    """One randomized incarnation-collision run.

    Node 1 dials node 0 and streams writes; mid-flight it crashes,
    restarts (bumping its incarnation), and — with its dial counter reset
    by the crash — re-dials the *same* connection id.  Frames from the
    dead incarnation still in the fabric then land on the successor
    endpoint and must be rejected by the incarnation guard (witnessed by
    the monitor's ``stale-frame-accepted`` invariant staying silent while
    ``stale_frames_rejected`` counts the drops).  Parameters come from
    their own RNG stream (``multiedge-fuzz-incarnation:<seed>``) so
    existing fingerprints stay byte-identical.
    """
    from ..bench.cluster import make_cluster as _make
    from ..core.handshake import dial, enable_listener

    rng = random.Random(f"multiedge-fuzz-incarnation:{seed}")
    config = rng.choice(("2L-1G", "2Lu-1G"))
    cluster = _make(config, nodes=2, seed=seed, synthetic_payloads=True)
    recovery = cluster.enable_crash_recovery()
    monitor = InvariantMonitor.attach(cluster, collect=True)
    enable_listener(cluster.stacks[0])
    sim = cluster.sim
    n_before = rng.randint(8, 30)
    n_after = rng.randint(2, 10)
    size = rng.choice((2048, 4096, 8192))

    def driver():
        handle = yield from dial(cluster.stacks[1], 0, cluster.config.protocol)
        for k in range(n_before):
            yield from handle.rdma_write(k * size, k * size, size)
        yield rng.randint(0, 30_000)
        recovery.crash(1)
        recovery.restart(1)
        yield rng.randint(0, 10_000)
        handle2 = yield from dial(cluster.stacks[1], 0, cluster.config.protocol)
        ops = []
        for k in range(n_after):
            oh = yield from handle2.rdma_write(k * size, k * size, size)
            ops.append(oh)
        for oh in ops:
            yield from oh.wait()

    proc = sim.process(driver(), name="fuzz.incarnation")
    sim.run_until_done(proc, limit=2_000_000_000)
    sim.run()
    monitor.final_check()
    stale = recovery.stale_frames_rejected_destroyed
    dups = recovery.duplicate_msgs_suppressed_destroyed
    for stack in cluster.stacks:
        for conn in stack.protocol.connections.values():
            stale += conn.stale_frames_rejected
            dups += conn.duplicate_msgs_suppressed
    return IncarnationFuzzResult(
        seed=seed,
        config=config,
        stale_frames_rejected=stale,
        duplicates_suppressed=dups,
        violations=tuple(str(v) for v in monitor.violations),
    )


# ---------------------------------------------------------------------------
# Fabric fuzzing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FabricScenario:
    """A declarative multi-switch fabric fuzz case (repro.fabric).

    ``trunk_events`` is a tuple of ``(at_ns, kind, a, b, dwell_ns)``
    tuples: at ``at_ns`` the trunk between switches ``a`` and ``b`` is
    either administratively drained (``"drain"`` — in-flight frames
    still arrive) or hard-failed (``"fail"`` — in-flight frames are
    lost), and restored ``dwell_ns`` later.  Events always leave at
    least one alternate uplink alive, so ECMP re-pins around them.
    """

    seed: int
    topology: str  # "leaf-spine" | "fat-tree"
    leaves: int
    spines: int
    hosts_per_leaf: int
    k: int
    nodes: int
    traffic: str  # "permutation" | "all-to-all" | "hotspot" | "elephant-mice"
    bytes_per_flow: int
    trunk_events: tuple[tuple[int, str, str, str, int], ...]


@dataclass(frozen=True)
class FabricFuzzResult:
    """Outcome of one :func:`run_fabric_scenario` run."""

    scenario: FabricScenario
    flows: int
    messages_received: int
    data_intact: bool
    switch_drops: int
    repins: int
    violations: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return (
            self.data_intact
            and self.messages_received == self.flows
            and not self.violations
        )


def fabric_scenario_from_seed(seed: int) -> FabricScenario:
    """Derive a fabric scenario from the dedicated RNG stream
    (``multiedge-fuzz-fabric:<seed>``), so the pre-existing scenario
    derivation — and every pinned fingerprint — stays byte-identical.
    """
    rng = random.Random(f"multiedge-fuzz-fabric:{seed}")
    traffic = rng.choice(
        ("permutation", "all-to-all", "hotspot", "elephant-mice")
    )
    bytes_per_flow = rng.choice((2_048, 8_192, 16_384))
    leaves = spines = hosts_per_leaf = k = 0
    events: list[tuple[int, str, str, str, int]] = []
    if rng.random() < 0.75:
        topology = "leaf-spine"
        leaves = rng.randint(2, 3)
        spines = rng.randint(2, 3)
        hosts_per_leaf = rng.randint(2, 4)
        nodes = min(leaves * hosts_per_leaf, rng.randint(4, 8))
        # Each event targets a distinct leaf, and spines >= 2, so every
        # leaf keeps at least one live uplink throughout.
        for target_leaf in rng.sample(range(leaves), rng.randint(0, 2)):
            events.append(
                (
                    rng.randint(50 * _US, 2 * _MS),
                    rng.choice(("drain", "fail")),
                    f"leaf0.{target_leaf}",
                    f"spine0.{rng.randrange(spines)}",
                    rng.randint(100 * _US, 1500 * _US),
                )
            )
    else:
        topology = "fat-tree"
        k = 4
        nodes = rng.randint(4, 8)
        if rng.random() < 0.5:
            # One edge-to-aggregation trunk in pod 0; the edge's other
            # aggregation uplink keeps every host reachable.
            events.append(
                (
                    rng.randint(50 * _US, 2 * _MS),
                    rng.choice(("drain", "fail")),
                    "edge0.0.0",
                    f"agg0.0.{rng.randrange(2)}",
                    rng.randint(100 * _US, 1500 * _US),
                )
            )
    return FabricScenario(
        seed=seed,
        topology=topology,
        leaves=leaves,
        spines=spines,
        hosts_per_leaf=hosts_per_leaf,
        k=k,
        nodes=nodes,
        traffic=traffic,
        bytes_per_flow=bytes_per_flow,
        trunk_events=tuple(events),
    )


class FabricRun:
    """One fabric fuzz execution, pausable for checkpointing.

    Same phase split as :class:`ScenarioRun`: construction wires the
    fabric, trunk-churn events, and traffic processes; :meth:`run_to`
    pauses at an exact instant (e.g. inside a trunk-churn window);
    :meth:`finish` completes and reports.
    """

    def __init__(self, seed: int) -> None:
        from ..bench.cluster import make_cluster as _make
        from ..fabric import (
            AllToAll,
            ElephantMice,
            FatTreeSpec,
            Hotspot,
            LeafSpineSpec,
            Permutation,
            TrafficRun,
        )

        sc = self.sc = fabric_scenario_from_seed(seed)
        if sc.topology == "leaf-spine":
            spec = LeafSpineSpec(
                leaves=sc.leaves,
                spines=sc.spines,
                hosts_per_leaf=sc.hosts_per_leaf,
            )
        else:
            spec = FatTreeSpec(k=sc.k)
        cluster = self.cluster = _make(
            "1L-1G",
            nodes=sc.nodes,
            seed=sc.seed,
            synthetic_payloads=False,
            fabric=spec,
        )
        fabric = self.fabric = cluster.fabrics[0]
        for at_ns, kind, a, b, dwell_ns in sc.trunk_events:
            if kind == "drain":
                cluster.sim.at(at_ns, fabric.set_trunk_enabled, a, b, False)
                cluster.sim.at(
                    at_ns + dwell_ns, fabric.set_trunk_enabled, a, b, True
                )
            else:
                cluster.sim.at(at_ns, fabric.fail_trunk, a, b, dwell_ns)
        traffic = {
            "permutation": lambda: Permutation(sc.bytes_per_flow, rounds=2),
            "all-to-all": lambda: AllToAll(sc.bytes_per_flow),
            "hotspot": lambda: Hotspot(
                targets=1, bytes_per_flow=sc.bytes_per_flow
            ),
            "elephant-mice": lambda: ElephantMice(
                elephants=2,
                elephant_bytes=4 * sc.bytes_per_flow,
                mice=8,
                mouse_bytes=max(sc.bytes_per_flow // 8, 64),
            ),
        }[sc.traffic]()
        self.traffic_run = TrafficRun(cluster, traffic, seed=sc.seed)

    def state(self) -> dict:
        """Capture root for the checkpoint walker."""
        return {
            "cluster": self.cluster,
            "traffic": self.traffic_run.state(),
        }

    def run_to(self, time_ns: int) -> None:
        """Execute every event due at or before ``time_ns``, then pause."""
        self.cluster.sim.run_until_time(time_ns)

    def finish(self) -> FabricFuzzResult:
        result = self.traffic_run.finish()
        cluster = self.cluster
        violations = [
            v for fab in cluster.fabrics for v in fab.routing_invariants()
        ]
        return FabricFuzzResult(
            scenario=self.sc,
            flows=result.flows,
            messages_received=result.messages_received,
            data_intact=result.data_intact,
            switch_drops=result.switch_drops,
            repins=sum(sw.repins for sw in self.fabric.switches),
            violations=tuple(violations),
        )


def run_fabric_scenario(seed: int) -> FabricFuzzResult:
    """One randomized multi-switch fabric run with trunk churn.

    Builds the scenario's leaf-spine or fat-tree fabric, drives its
    traffic matrix over message passing while trunks drain/fail and
    recover mid-run, then asserts the fabric's routing invariants
    (structural acyclicity, ECMP determinism, switch and trunk frame
    conservation) and end-to-end data integrity.
    """
    return FabricRun(seed).finish()


# ---------------------------------------------------------------------------
# Serve fuzzing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ServeFuzzResult:
    """Outcome of one :func:`run_serve_scenario` run."""

    seed: int
    config: str
    policy: str
    arrival_kind: str
    fault_profile: str
    generated: int
    completed: int
    shed: int  # server-side sheds + client-side outbox rejects
    failed: int
    replayed: int
    violations: tuple[str, ...]
    fingerprint: str

    @property
    def ok(self) -> bool:
        """Request conservation (and every other serve invariant) held.

        Conservation itself — ``generated == completed + shed + failed``
        with nothing left pending — is one of the ``check_invariants``
        clauses folded into ``violations``; an empty tuple asserts it.
        """
        return self.generated > 0 and not self.violations


def run_serve_scenario(seed: int) -> ServeFuzzResult:
    """One randomized open-loop serving run (repro.serve).

    Parameters come from their own RNG stream
    (``multiedge-fuzz-serve:<seed>``) so every pre-existing fuzz
    derivation — and every pinned fingerprint — stays byte-identical.
    The draw crosses arrival model (Poisson/bursty) x load-balancing
    policy x fault profile (clean or mid-run server crash/restart) x
    overload knobs (queue cap, workers, service-time model, client
    outbox cap), runs under the invariant monitor, and asserts request
    conservation: every generated request ends as completed, shed
    (server- or client-side), or failed — across crash replay too.
    """
    from ..bench.serve import run_serve
    from ..serve import ArrivalSpec, ServerSpec

    rng = random.Random(f"multiedge-fuzz-serve:{seed}")
    arrival_kind = rng.choice(("poisson", "bursty"))
    policy = rng.choice(
        ("round-robin", "least-outstanding", "leaf-affinity")
    )
    fault_profile = rng.choice(("none", "none", "crash"))
    config = rng.choice(("1L-1G", "1L-10G"))
    n_clients = rng.randint(1, 3)
    n_servers = rng.randint(1, 3)
    duration_ns = rng.randint(4 * _MS, 8 * _MS)
    arrival = ArrivalSpec(
        kind=arrival_kind,
        rate_rps=rng.choice((10_000, 30_000, 60_000)),
        request_bytes=("uniform", 32, 1_024),
        response_bytes=("uniform", 64, 2_048),
        batch=64,
    )
    server = ServerSpec(
        queue_cap=rng.choice((4, 16, 64)),
        workers=rng.choice((1, 2, 4)),
        service=rng.choice(
            (("fixed", 20_000), ("exp", 30_000), ("uniform", 5_000, 50_000))
        ),
    )
    kwargs: dict = {"outbox_cap": rng.choice((0, 8, 64))}
    if fault_profile == "crash":
        n_servers = max(n_servers, 2)
        kwargs.update(
            crash_server=n_clients + rng.randrange(n_servers),
            crash_ns=rng.randint(1 * _MS, duration_ns // 2),
            restart_delay_ns=rng.randint(500 * _US, 3 * _MS),
        )
    res = run_serve(
        config=config,
        n_clients=n_clients,
        n_servers=n_servers,
        policy=policy,
        arrival=arrival,
        server=server,
        duration_ns=duration_ns,
        seed=seed,
        use_monitor=True,
        **kwargs,
    )
    return ServeFuzzResult(
        seed=seed,
        config=config,
        policy=policy,
        arrival_kind=arrival_kind,
        fault_profile=fault_profile,
        generated=res.generated,
        completed=res.completed,
        shed=res.shed + res.shed_client,
        failed=res.failed,
        replayed=res.replayed,
        violations=res.violations,
        fingerprint=res.fingerprint,
    )


# ---------------------------------------------------------------------------
# Gray-failure fuzzing (repro.control gray faults x repro.serve.tail)
# ---------------------------------------------------------------------------


@dataclass
class GrayFuzzResult:
    """Outcome of one :func:`run_gray_scenario` run."""

    seed: int
    config: str
    policy: str
    gray_kinds: tuple  # class names of the injected gray events
    mitigated: bool  # a TailSpec was armed
    detected: bool  # the differential gray scorer was armed
    generated: int
    completed: int
    shed: int
    failed: int
    replayed: int
    hedges_sent: int
    retries_sent: int
    duplicate_responses: int
    violations: tuple
    fingerprint: str

    @property
    def ok(self) -> bool:
        return self.generated > 0 and not self.violations


def run_gray_scenario(seed: int) -> GrayFuzzResult:
    """One randomized serving run under gray (degraded-mode) faults.

    Parameters come from their own ``multiedge-fuzz-gray:<seed>`` RNG
    stream, so every pre-existing fuzz derivation — including the pinned
    serve fingerprints — stays byte-identical.  The draw crosses gray
    fault kind (slow node / slow NIC / degraded link / intermittent
    drop / asymmetric partition) x tail-tolerance machinery (off, or
    hedging + retry budget + breakers + ejection) x differential
    detection (off/on) x an optional clean-node crash, and asserts the
    same request-conservation and tail-accounting invariants as the
    plain serve fuzzer: gray degradation may slow requests down, but
    every one of them must still be accounted for.
    """
    from ..bench.serve import run_serve
    from ..control import (
        AsymmetricPartition,
        DegradedLink,
        IntermittentDrop,
        SlowNic,
        SlowNode,
    )
    from ..serve import ArrivalSpec, ServerSpec, TailSpec

    rng = random.Random(f"multiedge-fuzz-gray:{seed}")
    config = rng.choice(("1L-1G", "1L-10G", "2L-1G"))
    rails = 2 if config.startswith("2") else 1
    policy = rng.choice(("round-robin", "least-outstanding"))
    n_clients = rng.randint(1, 2)
    n_servers = rng.randint(2, 4)
    duration_ns = rng.randint(4 * _MS, 6 * _MS)
    arrival = ArrivalSpec(
        kind=rng.choice(("poisson", "bursty")),
        rate_rps=rng.choice((10_000, 30_000)),
        request_bytes=("uniform", 32, 512),
        response_bytes=("uniform", 64, 1_024),
        batch=64,
    )
    server = ServerSpec(
        queue_cap=rng.choice((16, 64)),
        workers=rng.choice((2, 4)),
        service=rng.choice((("fixed", 20_000), ("exp", 30_000))),
    )
    tail = None
    if rng.random() < 0.7:
        tail = TailSpec(
            hedge=rng.random() < 0.8,
            retry_budget=rng.choice((0.05, 0.1, 0.2)),
            breaker=rng.random() < 0.8,
            eject=rng.random() < 0.8,
        )
    detected = rng.random() < 0.5
    # One gray event per node keeps the schedule trivially conflict-free
    # (the validator rejects overlapping windows on one edge).
    n_nodes = n_clients + n_servers
    gray_nodes = rng.sample(range(n_nodes), rng.randint(1, 2))
    faults = []
    for node in gray_nodes:
        at = rng.randint(_MS, duration_ns // 2)
        dur = rng.randint(_MS, 2 * _MS)
        rail = rng.randrange(rails)
        kind = rng.choice(
            ("slow-node", "slow-nic", "degraded", "drop", "partition")
        )
        if kind == "slow-node":
            faults.append(
                SlowNode(at_ns=at, node=node, duration_ns=dur,
                         factor=rng.choice((2.0, 4.0, 8.0)))
            )
        elif kind == "slow-nic":
            faults.append(
                SlowNic(at_ns=at, node=node, rail=rail, duration_ns=dur,
                        factor=rng.choice((2.0, 4.0)))
            )
        elif kind == "degraded":
            faults.append(
                DegradedLink(at_ns=at, node=node, rail=rail, duration_ns=dur,
                             bit_error_rate=rng.choice((1e-7, 1e-6)),
                             jitter_ns=rng.choice((0, 20_000)))
            )
        elif kind == "drop":
            faults.append(
                IntermittentDrop(at_ns=at, node=node, rail=rail,
                                 duration_ns=dur,
                                 drop_p=rng.choice((0.01, 0.05)),
                                 burst_len=rng.choice((2.0, 4.0)))
            )
        else:
            faults.append(
                AsymmetricPartition(at_ns=at, node=node, rail=rail,
                                    duration_ns=dur,
                                    direction=rng.choice(("tx", "rx")))
            )
    kwargs: dict = {}
    clean_servers = [
        s for s in range(n_clients, n_nodes) if s not in gray_nodes
    ]
    if clean_servers and len(clean_servers) < n_servers and rng.random() < 0.3:
        # A fail-stop crash on a gray-free server, racing the gray window.
        kwargs.update(
            crash_server=rng.choice(clean_servers),
            crash_ns=rng.randint(_MS, duration_ns // 2),
            restart_delay_ns=rng.randint(500 * _US, 2 * _MS),
        )
    res = run_serve(
        config=config,
        n_clients=n_clients,
        n_servers=n_servers,
        policy=policy,
        arrival=arrival,
        server=server,
        duration_ns=duration_ns,
        seed=seed,
        use_monitor=True,
        tail=tail,
        faults=faults,
        gray_detection=detected,
        **kwargs,
    )
    return GrayFuzzResult(
        seed=seed,
        config=config,
        policy=policy,
        gray_kinds=tuple(type(ev).__name__ for ev in faults),
        mitigated=tail is not None,
        detected=detected,
        generated=res.generated,
        completed=res.completed,
        shed=res.shed + res.shed_client,
        failed=res.failed,
        replayed=res.replayed,
        hedges_sent=res.hedges_sent,
        retries_sent=res.retries_sent,
        duplicate_responses=res.duplicate_responses,
        violations=res.violations,
        fingerprint=res.fingerprint,
    )


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------


def shrink_scenario(
    sc: Scenario,
    fails: Optional[Callable[[Scenario], bool]] = None,
    max_runs: int = 200,
) -> Scenario:
    """Greedily reduce a failing scenario to a minimal reproducer.

    Removal passes (ops one at a time, then fault events, then halved
    sizes, then knob simplification) repeat until a fixpoint or the run
    budget is exhausted.  Every candidate is re-executed, so the result is
    guaranteed to still fail.
    """
    if fails is None:
        def fails(s: Scenario) -> bool:
            return not run_scenario(s).ok

    runs = 0

    def still_fails(candidate: Scenario) -> bool:
        nonlocal runs
        if runs >= max_runs:
            return False
        runs += 1
        return fails(candidate)

    if not still_fails(sc):
        raise ValueError("shrink_scenario: the input scenario does not fail")

    changed = True
    while changed and runs < max_runs:
        changed = False
        # Drop ops one at a time (back to front keeps indices stable).
        i = len(sc.ops) - 1
        while i >= 0 and len(sc.ops) > 1:
            cand = replace(sc, ops=sc.ops[:i] + sc.ops[i + 1:])
            if still_fails(cand):
                sc = cand
                changed = True
            i -= 1
        # Drop fault events one at a time.
        i = len(sc.faults) - 1
        while i >= 0:
            cand = replace(sc, faults=sc.faults[:i] + sc.faults[i + 1:])
            if still_fails(cand):
                sc = cand
                changed = True
            i -= 1
        # Halve op sizes.
        if any(op.size > 64 for op in sc.ops):
            cand = replace(
                sc,
                ops=tuple(
                    replace(op, size=max(64, op.size // 2)) for op in sc.ops
                ),
            )
            if still_fails(cand):
                sc = cand
                changed = True
        # Simplify knobs.  Each candidate must be rebuilt from the
        # *current* scenario: materializing the whole tuple up front
        # would resurrect knobs an earlier adoption in this very pass
        # just simplified, and the pass would oscillate (adopt A, adopt
        # B-with-A-reverted, re-adopt A, ...) until the run budget was
        # gone.
        def _shrink_nodes(s: Scenario) -> Scenario:
            if s.nodes > 2 and all(
                op.src < 2 and op.dst < 2 for op in s.ops
            ):
                return replace(s, nodes=2)
            return s

        for simplify in (
            lambda s: replace(s, control_plane=False),
            lambda s: replace(s, striping=None),
            lambda s: replace(s, tx_ring_frames=None),
            lambda s: replace(s, congestion="static", pacing=False),
            lambda s: replace(s, ecn_threshold=None),
            _shrink_nodes,
        ):
            simpler = simplify(sc)
            if simpler != sc and still_fails(simpler):
                sc = simpler
                changed = True
    return sc


# ---------------------------------------------------------------------------
# Command line
# ---------------------------------------------------------------------------


def run_batch(
    count: int,
    base_seed: int = 0,
    workload: Optional[str] = None,
    fault_profile: Optional[str] = None,
    shrink: bool = True,
    verbose: bool = True,
) -> list[FuzzResult]:
    """Run ``count`` seeded scenarios; shrink and report any failure."""
    results = []
    for k in range(count):
        sc = scenario_from_seed(base_seed + k, workload, fault_profile)
        res = run_scenario(sc)
        results.append(res)
        if verbose and (not res.ok or (k + 1) % 25 == 0):
            status = "FAIL" if not res.ok else "ok"
            print(
                f"[{k + 1}/{count}] seed={sc.seed} {sc.config} "
                f"{sc.workload}/{sc.fault_profile} {status}"
            )
        if not res.ok:
            print(f"  failure: {res.failure}")
            if shrink:
                small = shrink_scenario(sc)
                print(f"  minimal reproducer:\n    {small!r}")
    return results


def main(argv: Optional[list[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Deterministic MultiEdge protocol fuzzer"
    )
    parser.add_argument("--count", type=int, default=50,
                        help="number of seeded scenarios to run")
    parser.add_argument("--base-seed", type=int, default=0)
    parser.add_argument("--seed", type=int, default=None,
                        help="run exactly one seed (implies --count 1)")
    parser.add_argument("--workload", choices=WORKLOADS, default=None)
    parser.add_argument("--faults", choices=FAULT_PROFILES, default=None)
    parser.add_argument("--no-shrink", action="store_true")
    args = parser.parse_args(argv)

    if args.seed is not None:
        count, base = 1, args.seed
    else:
        count, base = args.count, args.base_seed
    results = run_batch(
        count,
        base_seed=base,
        workload=args.workload,
        fault_profile=args.faults,
        shrink=not args.no_shrink,
    )
    failures = [r for r in results if not r.ok]
    checks = sum(r.checks for r in results)
    print(
        f"{len(results)} scenarios, {checks} invariant checks, "
        f"{len(failures)} failures"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
