"""Runtime protocol verification (invariant checking + fuzzing).

The reproduction's claims rest on protocol-level bookkeeping — retransmit
counts, CPU charges, striping balance — being exactly right, and simulated
fidelity rots silently without continuous checking.  This package is the
standing gate:

* :class:`InvariantMonitor` — an opt-in runtime checker that hooks
  :class:`~repro.core.connection.Connection`, the NICs, and the edge
  lifecycle control plane through guarded hook points (a single ``is not
  None`` test when disabled) and asserts protocol invariants after every
  event.
* :mod:`repro.verify.fuzz` — a deterministic fuzz harness driving seeded
  random workloads crossed with fault schedules under the monitor, with a
  shrinker that reduces any failing seed to a minimal reproducer.
"""

from .monitor import ConnectionMonitor, InvariantMonitor, InvariantViolation

__all__ = ["InvariantMonitor", "ConnectionMonitor", "InvariantViolation"]
