"""MultiEdge reproduction: an edge-based communication subsystem, simulated.

Reproduction of *MultiEdge: An Edge-based Communication Subsystem for
Scalable Commodity Servers* (Karlsson, Passas, Kotsis, Bilas — IPPS 2007)
as a deterministic discrete-event simulation of the complete stack:
Ethernet substrate, host/kernel model, the MultiEdge protocol itself, a
GeNIMA-style software DSM, and the SPLASH-2-style application suite the
paper evaluates.

Typical entry points::

    from repro import make_cluster, OpFlags

    cluster = make_cluster("1L-1G", nodes=2)
    alice, bob = cluster.connect(0, 1)
    # ... yield from alice.rdma_write(src, dst, size, flags=OpFlags.NOTIFY)

See ``examples/quickstart.py`` and README.md.
"""

from .bench import (
    CONFIG_NAMES,
    Cluster,
    ClusterConfig,
    make_cluster,
    run_micro,
)
from .control import (
    DetectorParams,
    EdgeLifecycleManager,
    EdgeState,
    FaultSchedule,
)
from .core import (
    ConnectionHandle,
    ConnectionStats,
    MultiEdgeStack,
    Notification,
    OpHandle,
    ProtocolParams,
    establish,
)
from .dsm import DsmNode, DsmRuntime, SharedRegion
from .ethernet import LinkParams, NicParams, OpFlags, SwitchParams
from .host import HostParams, Node
from .sim import Simulator

__version__ = "0.1.0"

__all__ = [
    "make_cluster",
    "Cluster",
    "ClusterConfig",
    "CONFIG_NAMES",
    "run_micro",
    "MultiEdgeStack",
    "ConnectionHandle",
    "OpHandle",
    "Notification",
    "ProtocolParams",
    "ConnectionStats",
    "establish",
    "EdgeLifecycleManager",
    "EdgeState",
    "DetectorParams",
    "FaultSchedule",
    "DsmRuntime",
    "DsmNode",
    "SharedRegion",
    "OpFlags",
    "LinkParams",
    "NicParams",
    "SwitchParams",
    "HostParams",
    "Node",
    "Simulator",
    "__version__",
]
