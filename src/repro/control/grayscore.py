"""Differential gray-failure detection across the edge population.

A *gray* edge is alive enough to answer every heartbeat — the failure
detector (:mod:`repro.control.detector`) never fires — yet slow or lossy
enough to drag tail latency for everything striped across it.  Absolute
thresholds cannot catch this: a loaded-but-healthy fabric and a gray rail
look identical to any single edge's monitor.

The :class:`GrayScorer` therefore compares *peers*.  Every
``check_interval_ns`` it collects the per-edge EWMAs the health monitors
already maintain (RTT, probe loss, TX-ring backlog) over the population
of UP/DEGRADED edges it watches, takes the population median of each,
and flags edges that deviate from the median by more than the configured
margins.  An edge flagged ``degrade_after`` consecutive checks enters
the DEGRADED lifecycle state; one clean for ``recover_after`` checks
returns to UP.  Hysteresis on both sides keeps a noisy sample from
flapping the state.

DEGRADED is deliberately gentle: the rail keeps carrying traffic and its
probes keep flowing, but the scorer installs a score *cap*
(:attr:`~repro.control.lifecycle.EdgeLifecycleManager.gray_cap`) so the
adaptive striping policy drains weight off the gray rail long before the
probe path could ever declare it SUSPECT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..sim import Simulator
from .detector import EdgeState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .lifecycle import EdgeLifecycleManager

__all__ = ["GrayScoreParams", "GrayScorer"]


@dataclass
class GrayScoreParams:
    """Margins and hysteresis for differential peer comparison."""

    check_interval_ns: int = 1_000_000  # population comparison period
    rtt_factor: float = 2.0  # RTT beyond factor*median is deviant
    loss_margin: float = 0.15  # loss EWMA beyond median+margin is deviant
    backlog_margin: float = 0.25  # backlog EWMA beyond median+margin
    min_population: int = 3  # below this, no median is trustworthy
    degrade_after: int = 2  # consecutive deviant checks to mark
    recover_after: int = 2  # consecutive clean checks to clear
    degraded_score: float = 0.2  # striping score cap while DEGRADED

    def __post_init__(self) -> None:
        if self.check_interval_ns <= 0:
            raise ValueError("check_interval_ns must be positive")
        if self.rtt_factor <= 1.0:
            raise ValueError("rtt_factor must exceed 1.0")
        if self.min_population < 2:
            raise ValueError("min_population must be >= 2")
        if self.degrade_after < 1 or self.recover_after < 1:
            raise ValueError("hysteresis counts must be >= 1")
        if not 0.0 <= self.degraded_score <= 1.0:
            raise ValueError("degraded_score must be in [0, 1]")


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


class GrayScorer:
    """Population-median outlier detection over watched edge managers."""

    def __init__(
        self,
        sim: Simulator,
        managers: Optional[list["EdgeLifecycleManager"]] = None,
        params: Optional[GrayScoreParams] = None,
        name: str = "grayscore",
    ) -> None:
        self.sim = sim
        self.params = params or GrayScoreParams()
        self.managers: list["EdgeLifecycleManager"] = []
        # Hysteresis counters keyed by (manager index, rail); manager
        # index (list position) keeps iteration order deterministic.
        self._deviant_streak: dict[tuple[int, int], int] = {}
        self._clean_streak: dict[tuple[int, int], int] = {}
        self.checks = 0
        self.degrade_marks = 0
        self.degrade_clears = 0
        self._running = True
        for mgr in managers or []:
            self.watch(mgr)
        sim.process(self._body(), name=name)

    def watch(self, manager: "EdgeLifecycleManager") -> None:
        """Add a connection endpoint's edges to the compared population."""
        self.managers.append(manager)

    def stop(self) -> None:
        self._running = False

    @property
    def flagged(self) -> list[tuple[int, int]]:
        """Currently-DEGRADED (manager index, rail) pairs."""
        out = []
        for mi, mgr in enumerate(self.managers):
            for rail, det in enumerate(mgr.detectors):
                if det.state is EdgeState.DEGRADED:
                    out.append((mi, rail))
        return out

    # -- periodic comparison ----------------------------------------------

    def _body(self):
        interval = self.params.check_interval_ns
        while self._running:
            yield interval
            if not self._running:
                return
            self._check()

    def _population(self) -> list[tuple[int, "EdgeLifecycleManager", int]]:
        """Comparable edges: UP or DEGRADED, with at least one acked probe."""
        pop = []
        for mi, mgr in enumerate(self.managers):
            for rail, det in enumerate(mgr.detectors):
                if det.state not in (EdgeState.UP, EdgeState.DEGRADED):
                    continue
                if mgr.monitors[rail].probes_acked == 0:
                    continue
                pop.append((mi, mgr, rail))
        return pop

    def _check(self) -> None:
        self.checks += 1
        pop = self._population()
        if len(pop) < self.params.min_population:
            return
        rtt_med = _median([m.monitors[r].rtt_ewma_ns for _, m, r in pop])
        loss_med = _median([m.monitors[r].loss_ewma for _, m, r in pop])
        backlog_med = _median([m.monitors[r].backlog_ewma for _, m, r in pop])
        p = self.params
        for mi, mgr, rail in pop:
            mon = mgr.monitors[rail]
            deviant = (
                (rtt_med > 0 and mon.rtt_ewma_ns > p.rtt_factor * rtt_med)
                or mon.loss_ewma > loss_med + p.loss_margin
                or mon.backlog_ewma > backlog_med + p.backlog_margin
            )
            key = (mi, rail)
            if deviant:
                self._clean_streak[key] = 0
                streak = self._deviant_streak.get(key, 0) + 1
                self._deviant_streak[key] = streak
                if (
                    streak >= p.degrade_after
                    and mgr.detectors[rail].state is EdgeState.UP
                ):
                    self._mark(mgr, rail)
            else:
                self._deviant_streak[key] = 0
                streak = self._clean_streak.get(key, 0) + 1
                self._clean_streak[key] = streak
                if (
                    streak >= p.recover_after
                    and mgr.detectors[rail].state is EdgeState.DEGRADED
                ):
                    self._clear(mgr, rail)

    # -- acting on a verdict -----------------------------------------------

    def _mark(self, mgr: "EdgeLifecycleManager", rail: int) -> None:
        self.degrade_marks += 1
        mgr.detectors[rail].mark_degraded(self.sim.now)
        mgr.gray_cap[rail] = self.params.degraded_score
        mgr._push_score(rail)

    def _clear(self, mgr: "EdgeLifecycleManager", rail: int) -> None:
        self.degrade_clears += 1
        mgr.gray_cap.pop(rail, None)
        mgr.detectors[rail].clear_degraded(self.sim.now)
        mgr._push_score(rail)
