"""Health-aware striping: byte-deficit round-robin weighted by edge score.

:class:`AdaptiveStriping` plugs into the core striping interface
(:func:`repro.core.register_striping_policy` under the name
``"adaptive"``).  It behaves exactly like the paper's byte-deficit
round-robin when every edge is healthy, but scales each rail's effective
capacity by the health score the lifecycle manager pushes via
:meth:`set_score`: a rail at score 0.5 is charged bytes at twice the
rate, so it receives roughly half the traffic; a rail at score 0 is
skipped outright even before the failure detector masks it.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.striping import StripingPolicy, register_striping_policy
from ..ethernet import Nic

__all__ = ["AdaptiveStriping"]

# Below this score a rail gets no fresh traffic even if not yet masked.
_MIN_USABLE_SCORE = 0.05


class AdaptiveStriping(StripingPolicy):
    """Byte-deficit striping with per-rail health weighting."""

    def __init__(self, nics: Sequence[Nic]) -> None:
        super().__init__(nics)
        self._cursor = 0
        self._charged = [0.0] * len(nics)  # score-scaled assigned bytes
        self._scores = [1.0] * len(nics)

    def add_rail(self, nic: Nic) -> int:
        rail = super().add_rail(nic)
        self._charged.append(min(self._charged) if self._charged else 0.0)
        self._scores.append(1.0)
        return rail

    def enable_rail(self, rail: int) -> None:
        super().enable_rail(rail)
        # Same catch-up hazard as round-robin: rejoin at the low-water
        # mark of the rails that stayed active.
        others = [
            c
            for r, c in enumerate(self._charged)
            if r != rail and r not in self.masked
        ]
        if others:
            self._charged[rail] = max(self._charged[rail], min(others))

    def set_score(self, rail: int, score: float) -> None:
        """Lifecycle manager pushes the latest health score for ``rail``."""
        if not 0 <= rail < len(self.nics):
            raise ValueError(f"rail {rail} out of range")
        self._scores[rail] = max(0.0, min(1.0, score))

    def score_of(self, rail: int) -> float:
        return self._scores[rail]

    def next_rail(self, wire_bytes: int = 0) -> Optional[int]:
        nics = self.nics
        masked = self.masked
        n = len(nics)
        best: Optional[int] = None
        best_key: Optional[tuple[float, int]] = None
        for probe in range(n):
            rail = (self._cursor + probe) % n
            if rail in masked or nics[rail].tx_ring_free <= 0:
                continue
            if self._scores[rail] < _MIN_USABLE_SCORE:
                continue
            key = (self._charged[rail], probe)
            if best_key is None or key < best_key:
                best, best_key = rail, key
        if best is None:
            return None
        # Charge inversely to health: an ailing rail "fills up" faster and
        # therefore wins the deficit comparison less often.
        self._charged[best] += wire_bytes / max(self._scores[best], _MIN_USABLE_SCORE)
        self._cursor = (best + 1) % n
        low = min(self._charged)
        if low > float(1 << 30):
            self._charged = [b - low for b in self._charged]
        return best


register_striping_policy("adaptive", AdaptiveStriping)
