"""Edge lifecycle control plane (extends the paper's §2.4 fault model).

The MultiEdge paper argues that edges — not connections — are the right
failure domain for multi-rail clusters.  This subsystem makes that
concrete for the simulation:

* :mod:`~repro.control.health` — per-edge heartbeat probes with EWMA
  loss/latency/backlog scoring,
* :mod:`~repro.control.detector` — the UP → SUSPECT → DOWN → RECOVERING
  state machine with bounded detection latency,
* :mod:`~repro.control.lifecycle` — the manager that masks a dead rail,
  migrates its in-flight frames, and re-stripes on recovery,
* :mod:`~repro.control.adaptive` — a health-weighted striping policy
  (registered with the core as ``"adaptive"``),
* :mod:`~repro.control.faults` — declarative fault schedules for
  experiments.
"""

from .adaptive import AdaptiveStriping
from .detector import DetectorParams, EdgeFailureDetector, EdgeState, EdgeTransition
from .faults import (
    AsymmetricPartition,
    BitErrorRamp,
    Crash,
    DegradedLink,
    FaultEvent,
    FaultSchedule,
    FaultScheduleError,
    Flap,
    IntermittentDrop,
    Outage,
    PermanentFailure,
    Repair,
    Restart,
    SlowNic,
    SlowNode,
)
from .grayscore import GrayScoreParams, GrayScorer
from .health import EdgeHealthMonitor, HealthParams
from .lifecycle import EdgeLifecycleManager

__all__ = [
    "EdgeState",
    "EdgeTransition",
    "DetectorParams",
    "EdgeFailureDetector",
    "HealthParams",
    "EdgeHealthMonitor",
    "EdgeLifecycleManager",
    "AdaptiveStriping",
    "GrayScoreParams",
    "GrayScorer",
    "FaultSchedule",
    "FaultScheduleError",
    "FaultEvent",
    "Outage",
    "Flap",
    "BitErrorRamp",
    "PermanentFailure",
    "Repair",
    "Crash",
    "Restart",
    "SlowNode",
    "SlowNic",
    "DegradedLink",
    "IntermittentDrop",
    "AsymmetricPartition",
]
