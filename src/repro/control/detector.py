"""Per-edge failure detection: an explicit lifecycle state machine.

Every edge (rail) of a connection owns one :class:`EdgeFailureDetector`
fed by the health monitor's probe outcomes.  The machine is:

::

    UP --(losses / low score)--> SUSPECT --(confirm window)--> DOWN
     ^ |                          ^ |                            |
     | +--(differential flag)--+  | |                            |
     |   (score recovers)      |  | |                            |
     +-------------------------|--+ |                 (probe answered)
     ^                         v    |                            |
     |      (flag clears)  DEGRADED-+ (losses / low score)       |
     +---------------------+   |                                 |
     ^                                                           |
     +--(recovery_probes successes)-- RECOVERING <---------------+
                                          |
                                          +--(any loss)--> DOWN

DEGRADED sits *between* UP and SUSPECT: the edge still answers probes
(no failure detector would ever fire) but the differential gray scorer
(:mod:`repro.control.grayscore`) found its RTT/loss/backlog EWMAs to be
population outliers.  A DEGRADED edge keeps carrying traffic — the
adaptive striping policy just drains it — and can still escalate to
SUSPECT/DOWN through the ordinary probe path.

Detection latency is bounded by the parameters alone
(:attr:`DetectorParams.detect_bound_ns`), which is what the failover
acceptance test asserts against.  The machine is pure bookkeeping — no
simulator access — so it is unit-testable by driving it with synthetic
probe outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Optional

__all__ = ["EdgeState", "DetectorParams", "EdgeFailureDetector", "EdgeTransition"]


class EdgeState(Enum):
    """Lifecycle state of one edge (rail) of a connection."""

    UP = "up"
    DEGRADED = "degraded"  # gray: alive but a population outlier
    SUSPECT = "suspect"
    DOWN = "down"
    RECOVERING = "recovering"

    def __str__(self) -> str:  # compact trace payloads
        return self.value


@dataclass
class DetectorParams:
    """Detect/confirm windows for the per-edge failure detector.

    Defaults are sized for 1-GbE rails with deep TX rings: a probe stuck
    behind a full 256-frame ring plus a loaded switch queue can take a few
    milliseconds legitimately, so ``probe_timeout_ns`` must not declare a
    merely *congested* rail lost.
    """

    probe_interval_ns: int = 500_000  # heartbeat period per edge
    probe_timeout_ns: int = 4_000_000  # unanswered probe counts as lost
    suspect_after_losses: int = 2  # consecutive losses before SUSPECT
    suspect_score: float = 0.5  # EWMA score below this is suspect
    confirm_window_ns: int = 1_000_000  # SUSPECT must persist this long
    recovery_probes: int = 2  # successes needed to leave RECOVERING

    def __post_init__(self) -> None:
        if self.probe_interval_ns <= 0:
            raise ValueError("probe_interval_ns must be positive")
        if self.probe_timeout_ns <= 0:
            raise ValueError("probe_timeout_ns must be positive")
        if self.suspect_after_losses < 1:
            raise ValueError("suspect_after_losses must be >= 1")
        if self.recovery_probes < 1:
            raise ValueError("recovery_probes must be >= 1")

    @property
    def detect_bound_ns(self) -> int:
        """Worst-case ns from edge death to the DOWN transition.

        ``suspect_after_losses`` probe periods accumulate the losses, the
        last lost probe surfaces after ``probe_timeout_ns``, the SUSPECT
        state must age ``confirm_window_ns``, and the confirming loss can
        lag one further period plus its own timeout-resolution slack.
        """
        return (
            self.suspect_after_losses * self.probe_interval_ns
            + self.probe_timeout_ns
            + self.confirm_window_ns
            + 2 * self.probe_interval_ns
        )


@dataclass(slots=True)
class EdgeTransition:
    """One recorded state change of one edge."""

    time_ns: int
    rail: int
    old: EdgeState
    new: EdgeState
    reason: str


class EdgeFailureDetector:
    """State machine for one edge, driven by probe outcomes."""

    def __init__(
        self,
        rail: int,
        params: Optional[DetectorParams] = None,
        on_transition: Optional[
            Callable[[int, EdgeState, EdgeState, int, str], None]
        ] = None,
    ) -> None:
        self.rail = rail
        self.params = params or DetectorParams()
        self.on_transition = on_transition
        self.state = EdgeState.UP
        self.consecutive_losses = 0
        self.recovery_successes = 0
        self.suspect_since: Optional[int] = None
        self.down_since: Optional[int] = None
        self.degraded_since: Optional[int] = None
        self.transitions = 0
        # Per-state residency accounting (ns), for the analysis roll-up;
        # close the open interval with finalize_state_time() at run end.
        self.state_time_ns: dict[EdgeState, int] = {s: 0 for s in EdgeState}
        self._state_entered_ns = 0

    def _move(self, new: EdgeState, now: int, reason: str) -> None:
        old = self.state
        if new is old:
            return
        self.state_time_ns[old] += max(0, now - self._state_entered_ns)
        self._state_entered_ns = now
        self.state = new
        self.transitions += 1
        if new is EdgeState.SUSPECT:
            self.suspect_since = now
            self.degraded_since = None
        elif new is EdgeState.DOWN:
            self.down_since = now
            self.recovery_successes = 0
            self.degraded_since = None
        elif new is EdgeState.UP:
            self.consecutive_losses = 0
            self.suspect_since = None
            self.down_since = None
            self.degraded_since = None
        elif new is EdgeState.RECOVERING:
            self.recovery_successes = 1
        elif new is EdgeState.DEGRADED:
            self.degraded_since = now
        if self.on_transition is not None:
            self.on_transition(self.rail, old, new, now, reason)

    def finalize_state_time(self, now: int) -> dict[EdgeState, int]:
        """Close the open residency interval and return the per-state map."""
        self.state_time_ns[self.state] += max(0, now - self._state_entered_ns)
        self._state_entered_ns = now
        return self.state_time_ns

    # -- probe outcomes (called by the health monitor) --------------------

    def on_probe_success(self, now: int, score: float) -> None:
        self.consecutive_losses = 0
        state = self.state
        if state is EdgeState.UP or state is EdgeState.DEGRADED:
            # DEGRADED behaves like UP to the probe path: recovery back to
            # UP belongs to the differential scorer, escalation stays here.
            if score < self.params.suspect_score:
                self._move(EdgeState.SUSPECT, now, f"score {score:.2f}")
        elif state is EdgeState.SUSPECT:
            if score >= self.params.suspect_score:
                self._move(EdgeState.UP, now, "score recovered")
        elif state is EdgeState.DOWN:
            self._move(EdgeState.RECOVERING, now, "probe answered")
            if self.recovery_successes >= self.params.recovery_probes:
                self._move(EdgeState.UP, now, "recovery confirmed")
        elif state is EdgeState.RECOVERING:
            self.recovery_successes += 1
            if self.recovery_successes >= self.params.recovery_probes:
                self._move(EdgeState.UP, now, "recovery confirmed")

    def on_probe_loss(self, now: int, score: float) -> None:
        self.consecutive_losses += 1
        state = self.state
        if state is EdgeState.UP or state is EdgeState.DEGRADED:
            if (
                self.consecutive_losses >= self.params.suspect_after_losses
                or score < self.params.suspect_score
            ):
                self._move(
                    EdgeState.SUSPECT,
                    now,
                    f"{self.consecutive_losses} consecutive losses",
                )
        elif state is EdgeState.SUSPECT:
            since = self.suspect_since if self.suspect_since is not None else now
            if now - since >= self.params.confirm_window_ns:
                self._move(EdgeState.DOWN, now, "confirm window elapsed")
        elif state is EdgeState.RECOVERING:
            self._move(EdgeState.DOWN, now, "loss during recovery")

    # -- differential gray scoring (repro.control.grayscore) ---------------

    def mark_degraded(self, now: int, reason: str = "differential") -> None:
        """Flag a population-outlier edge; legal only from UP."""
        if self.state is EdgeState.UP:
            self._move(EdgeState.DEGRADED, now, reason)

    def clear_degraded(self, now: int, reason: str = "differential") -> None:
        """The outlier flag cleared; DEGRADED returns to UP."""
        if self.state is EdgeState.DEGRADED:
            self._move(EdgeState.UP, now, reason)

    # -- external overrides ----------------------------------------------

    def force_down(self, now: int, reason: str = "administrative") -> None:
        """Administrative removal (or a dead-peer escalation)."""
        if self.state is not EdgeState.DOWN:
            self._move(EdgeState.DOWN, now, reason)

    def force_up(self, now: int, reason: str = "administrative") -> None:
        if self.state is not EdgeState.UP:
            self._move(EdgeState.UP, now, reason)
