"""Per-edge health monitoring: heartbeat probes + passive EWMA sampling.

One :class:`EdgeHealthMonitor` per edge of a connection endpoint.  Every
``probe_interval_ns`` it emits a PROBE frame on its rail (bypassing the
striping policy — the point is to measure *this* rail, even one the
control plane has masked).  The peer's :class:`repro.core.Connection`
echoes a PROBE_ACK on the same rail.  From the echo stream the monitor
maintains exponentially weighted moving averages of probe loss and RTT,
and passively samples the NIC's TX-ring backlog at every probe tick.

The combined **health score** in ``[0, 1]`` is::

    score = (1 - loss_ewma) * min(1, rtt_ref / rtt_ewma) * (1 - backlog/2)

so a dead edge decays toward 0 at the loss-EWMA rate, while a
degraded-but-alive edge (elevated RTT, deep backlog) settles at an
intermediate value — which the adaptive striping policy uses to *drain*
it slowly instead of stalling behind it.

Probes that cannot even enter the TX ring (ring full) are recorded as
``probes_skipped`` rather than losses: a saturated-but-healthy rail must
not be declared dead by its own success.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..core.messages import make_probe_frame
from ..sim import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.connection import Connection
    from .detector import EdgeFailureDetector

__all__ = ["HealthParams", "EdgeHealthMonitor"]


@dataclass
class HealthParams:
    """EWMA smoothing and reference values for edge health scoring."""

    alpha: float = 0.3  # EWMA smoothing factor (weight of newest sample)
    rtt_ref_ns: int = 0  # 0 = learn from the first successful probe
    min_score: float = 0.0  # floor reported to the striping policy

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")


class EdgeHealthMonitor:
    """Heartbeat prober + EWMA scorer for one edge of one endpoint."""

    def __init__(
        self,
        sim: Simulator,
        connection: "Connection",
        rail: int,
        detector: "EdgeFailureDetector",
        params: Optional[HealthParams] = None,
    ) -> None:
        self.sim = sim
        self.conn = connection
        self.rail = rail
        self.detector = detector
        self.params = params or HealthParams()

        self.loss_ewma = 0.0
        self.rtt_ewma_ns = 0.0
        self.backlog_ewma = 0.0
        self._rtt_ref = float(self.params.rtt_ref_ns)

        self.probes_sent = 0
        self.probes_acked = 0
        self.probes_lost = 0
        self.probes_skipped = 0
        self.probes_stale = 0

        self._next_probe_seq = 0
        self._pending: dict[int, int] = {}  # probe_seq -> sent_at
        self._running = True
        sim.process(self._body(), name=f"edge-monitor.c{connection.conn_id}.r{rail}")

    # -- scoring ----------------------------------------------------------

    @property
    def score(self) -> float:
        """Combined health score in [0, 1] (feeds adaptive striping)."""
        s = 1.0 - self.loss_ewma
        if self._rtt_ref > 0 and self.rtt_ewma_ns > self._rtt_ref:
            s *= self._rtt_ref / self.rtt_ewma_ns
        s *= 1.0 - self.backlog_ewma / 2.0
        return max(self.params.min_score, min(1.0, s))

    @property
    def detector_score(self) -> float:
        """Loss-dominated signal fed to the failure detector.

        RTT and backlog inflation are *congestion* symptoms — a saturated
        rail must never look failed to the detector, only to the striping
        weights.  Sustained probe loss is the one signal that means the
        edge itself is sick.
        """
        return 1.0 - self.loss_ewma

    def _ewma(self, current: float, sample: float) -> float:
        a = self.params.alpha
        return a * sample + (1.0 - a) * current

    # -- probe loop -------------------------------------------------------

    def stop(self) -> None:
        self._running = False

    def _body(self):
        interval = self.detector.params.probe_interval_ns
        while self._running:
            yield interval
            if not self._running:
                return
            self._send_probe()

    def _send_probe(self) -> None:
        conn = self.conn
        rail = self.rail
        if rail >= len(conn.nics) or conn.closed:
            return
        nic = conn.nics[rail]
        now = self.sim.now
        seq = self._next_probe_seq
        self._next_probe_seq += 1
        # Passive backlog sample rides the probe tick.
        self.backlog_ewma = self._ewma(self.backlog_ewma, nic.tx_backlog_fraction)
        frame = make_probe_frame(
            nic.mac, conn.peer_macs[rail], conn.conn_id, rail, seq, now
        )
        if conn.recovery is not None:
            frame.incarnation = conn.local_incarnation
        if not nic.transmit(frame):
            # Ring full: the rail is saturated, not lost.  Skip the probe;
            # the backlog EWMA already took the hit.
            self.probes_skipped += 1
            return
        self.probes_sent += 1
        conn.stats.probes_sent += 1
        self._pending[seq] = now
        self.sim.timer(self.detector.params.probe_timeout_ns, self._timeout, seq)

    def _timeout(self, seq: int) -> None:
        if self._pending.pop(seq, None) is None:
            return  # answered in time
        self.probes_lost += 1
        self.loss_ewma = self._ewma(self.loss_ewma, 1.0)
        if self._running:
            self.detector.on_probe_loss(self.sim.now, self.detector_score)

    def on_probe_ack(self, probe_seq: int, sent_at: int) -> None:
        """Called by the lifecycle manager when this rail's echo arrives."""
        if self._pending.pop(probe_seq, None) is None:
            return  # already timed out (late echo) or duplicate
        # Links are FIFO: a probe older than this ack either already
        # arrived or died *before* this success.  Its pending timeout is
        # stale information — letting it fire would knock a freshly
        # recovered rail back DOWN.
        for old_seq in [s for s in self._pending if s < probe_seq]:
            del self._pending[old_seq]
            self.probes_stale += 1
        now = self.sim.now
        rtt = now - sent_at
        self.probes_acked += 1
        self.loss_ewma = self._ewma(self.loss_ewma, 0.0)
        self.rtt_ewma_ns = (
            float(rtt) if self.rtt_ewma_ns == 0.0
            else self._ewma(self.rtt_ewma_ns, float(rtt))
        )
        if self._rtt_ref == 0.0:
            self._rtt_ref = float(rtt)
        if self._running:
            self.detector.on_probe_success(now, self.detector_score)
