"""Declarative fault schedules for cluster experiments.

Instead of sprinkling ``sim.schedule(t, link.fail_for, d)`` calls through
every experiment script, a :class:`FaultSchedule` is a list of fault
*events* — plain dataclasses naming a ``(node, rail)`` edge and a start
time — applied to a :class:`~repro.bench.cluster.Cluster` before the run:

>>> schedule = FaultSchedule([
...     Outage(at_ns=2_000_000, node=0, rail=0, duration_ns=5_000_000),
...     PermanentFailure(at_ns=20_000_000, node=1, rail=1),
...     Repair(at_ns=60_000_000, node=1, rail=1),
... ])
>>> schedule.apply(cluster)

Fail-stop faults hit the full-duplex cable between the node's NIC and
its switch port, both directions, which is what a yanked cable or dead
port does in practice.  *Gray* faults degrade without killing: a node's
CPU slows (:class:`SlowNode`), a NIC drains its TX ring late
(:class:`SlowNic`), a link gets noisy and jittery (:class:`DegradedLink`),
drops frames in bursts (:class:`IntermittentDrop`), or blackholes one
direction only (:class:`AsymmetricPartition`).  Every event is
deterministic: the schedule only installs simulator timers, and gray
randomness (burst loss, jitter) draws from dedicated per-link RNG
streams that exist only while the fault is active, so same seed + same
schedule = same run and a schedule without gray events is byte-identical
to one built before they existed.

Schedules are validated at :meth:`FaultSchedule.apply` time: overlapping
or contradictory windows on the same target (two gray windows on one
edge, a Crash inside an impairment window, a double-Crash with no
Restart between) raise a typed :class:`FaultScheduleError` naming the
conflicting events instead of silently producing a run whose fault
timeline means something other than what was written.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..bench.cluster import Cluster
    from ..ethernet.link import Cable

__all__ = [
    "Outage",
    "Flap",
    "BitErrorRamp",
    "PermanentFailure",
    "Repair",
    "Crash",
    "Restart",
    "SlowNode",
    "SlowNic",
    "DegradedLink",
    "IntermittentDrop",
    "AsymmetricPartition",
    "FaultEvent",
    "FaultSchedule",
    "FaultScheduleError",
]


class FaultScheduleError(ValueError):
    """A schedule contains overlapping or contradictory events.

    Raised at :meth:`FaultSchedule.apply` time, before any timer is
    installed; the message names the two conflicting events.
    """


@dataclass(frozen=True)
class Outage:
    """Transient outage: the edge drops every frame for ``duration_ns``."""

    at_ns: int
    node: int
    rail: int
    duration_ns: int


@dataclass(frozen=True)
class Flap:
    """A flapping edge: ``count`` outages of ``down_ns`` every ``period_ns``.

    The k-th outage starts at ``at_ns + k * period_ns``.  ``down_ns`` must
    not exceed ``period_ns`` (that would be a permanent failure in
    disguise — use :class:`PermanentFailure`).
    """

    at_ns: int
    node: int
    rail: int
    period_ns: int
    down_ns: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("count must be >= 1")
        if not 0 < self.down_ns <= self.period_ns:
            raise ValueError("need 0 < down_ns <= period_ns")


@dataclass(frozen=True)
class BitErrorRamp:
    """Raise the edge's bit-error rate at ``at_ns`` (until a Repair).

    The link's shared :class:`~repro.ethernet.LinkParams` is *copied*
    before mutation so the ramp affects only the targeted edge, never the
    whole cluster.
    """

    at_ns: int
    node: int
    rail: int
    bit_error_rate: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.bit_error_rate < 1.0:
            raise ValueError("bit_error_rate must be in [0, 1)")


@dataclass(frozen=True)
class PermanentFailure:
    """Kill the edge outright (until a Repair, if any)."""

    at_ns: int
    node: int
    rail: int


@dataclass(frozen=True)
class Repair:
    """End any outage and restore the original bit-error rate."""

    at_ns: int
    node: int
    rail: int


@dataclass(frozen=True)
class Crash:
    """Whole-node fail-stop crash at ``at_ns`` (all rails, all state).

    Handled by :class:`repro.recovery.ClusterRecovery` (enabled on the
    cluster automatically when a schedule contains crash events): every
    connection endpoint at the node is destroyed, its NICs lose power and
    their rings, and pending operations fail with
    :class:`~repro.core.PeerCrashed`.
    """

    at_ns: int
    node: int


@dataclass(frozen=True)
class Restart:
    """Reboot a crashed node ``delay_ns`` after ``at_ns``.

    The node comes back as a *new incarnation*: its incarnation number is
    bumped, so surviving peers reject any frame still in flight from the
    dead incarnation.  ``delay_ns`` models boot time.
    """

    at_ns: int
    node: int
    delay_ns: int = 0

    def __post_init__(self) -> None:
        if self.delay_ns < 0:
            raise ValueError("delay_ns must be >= 0")


@dataclass(frozen=True)
class SlowNode:
    """Gray fault: the node's CPU runs slow for ``duration_ns``.

    Service times at the node's :class:`~repro.serve.ServerLoop` stretch
    by ``factor`` and every pump batch pays an extra per-frame CPU charge
    (billed under the ``gray.slow-node`` accounting tag so the pump-CPU
    conservation invariant stays exact).  The node never crashes and no
    failure detector fires — this is the canonical gray failure.
    """

    at_ns: int
    node: int
    duration_ns: int
    factor: float = 4.0

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1 (1 = no slowdown)")
        if self.duration_ns <= 0:
            raise ValueError("duration_ns must be positive")


@dataclass(frozen=True)
class SlowNic:
    """Gray fault: the NIC drains its TX ring ``factor``x slower.

    Every frame's serialisation time is stretched, so the ring backs up,
    the health monitor's backlog EWMA climbs, and probe RTTs inflate —
    without a single loss.
    """

    at_ns: int
    node: int
    rail: int
    duration_ns: int
    factor: float = 4.0

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1 (1 = no slowdown)")
        if self.duration_ns <= 0:
            raise ValueError("duration_ns must be positive")


@dataclass(frozen=True)
class DegradedLink:
    """Gray fault: elevated bit errors + latency jitter, link stays up.

    Both directions of the edge get a private :class:`LinkParams` copy
    with ``bit_error_rate`` raised and a uniform ``[0, jitter_ns)`` delay
    added per frame from the link's dedicated ``.grayjitter`` RNG stream.
    """

    at_ns: int
    node: int
    rail: int
    duration_ns: int
    bit_error_rate: float = 1e-6
    jitter_ns: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.bit_error_rate < 1.0:
            raise ValueError("bit_error_rate must be in [0, 1)")
        if self.jitter_ns < 0:
            raise ValueError("jitter_ns must be >= 0")
        if self.duration_ns <= 0:
            raise ValueError("duration_ns must be positive")


@dataclass(frozen=True)
class IntermittentDrop:
    """Gray fault: seeded burst loss (a two-state Gilbert model).

    While active the link flips between a good state and a loss burst;
    ``drop_p`` is the long-run loss fraction and ``burst_len`` the mean
    frames per burst.  Draws come from the link's dedicated
    ``.graydrop`` RNG stream, so runs without this fault never touch it.
    """

    at_ns: int
    node: int
    rail: int
    duration_ns: int
    drop_p: float = 0.05
    burst_len: float = 4.0

    def __post_init__(self) -> None:
        if not 0.0 < self.drop_p < 1.0:
            raise ValueError("drop_p must be in (0, 1)")
        if self.burst_len < 1.0:
            raise ValueError("burst_len must be >= 1")
        if self.duration_ns <= 0:
            raise ValueError("duration_ns must be positive")


@dataclass(frozen=True)
class AsymmetricPartition:
    """Gray fault: blackhole one *direction* of an edge.

    ``direction="tx"`` kills frames leaving the node (requests vanish,
    responses still arrive); ``"rx"`` kills the switch-to-node leg.  The
    opposite direction is untouched — the classic half-open link that
    keeps ARP-style liveness alive while the data path is dead.
    """

    at_ns: int
    node: int
    rail: int
    duration_ns: int
    direction: str = "tx"

    def __post_init__(self) -> None:
        if self.direction not in ("tx", "rx"):
            raise ValueError('direction must be "tx" or "rx"')
        if self.duration_ns <= 0:
            raise ValueError("duration_ns must be positive")


FaultEvent = Union[
    Outage, Flap, BitErrorRamp, PermanentFailure, Repair, Crash, Restart,
    SlowNode, SlowNic, DegradedLink, IntermittentDrop, AsymmetricPartition,
]

# Gray events whose effect spans a [at_ns, at_ns + duration_ns) window on
# one (node, rail) edge — used by the overlap validator.
_GRAY_EDGE_EVENTS = (DegradedLink, IntermittentDrop, AsymmetricPartition, SlowNic)


def _window(ev) -> Optional[tuple[int, int]]:
    """The [start, end) active window of an event, None if pointlike."""
    if isinstance(ev, Outage):
        return (ev.at_ns, ev.at_ns + ev.duration_ns)
    if isinstance(ev, Flap):
        return (
            ev.at_ns,
            ev.at_ns + (ev.count - 1) * ev.period_ns + ev.down_ns,
        )
    if isinstance(ev, (SlowNode, *_GRAY_EDGE_EVENTS)):
        return (ev.at_ns, ev.at_ns + ev.duration_ns)
    return None


class FaultSchedule:
    """An ordered set of fault events, applied once to a cluster.

    Every timer is installed through
    :meth:`~repro.sim.core.Simulator.schedule_cancellable` and the handles
    are kept per fault index, so a fault whose start time is still in the
    future can be withdrawn with :meth:`cancel_pending` — this is how the
    fuzz shrinker probes "same run minus fault *i*" from a mid-run
    checkpoint instead of replaying from t=0.  Cancellation shifts the
    simulator's event sequence counter by a constant, leaving the relative
    order of all surviving events intact, so a run with a fault cancelled
    before it fires is scheduling-identical to a run built without it.
    """

    def __init__(self, events: Sequence[FaultEvent] = ()) -> None:
        self.events: list[FaultEvent] = list(events)
        self._applied = False
        # Parallel to self.events once applied: the cancellable queue
        # entries installed for each fault (a Flap installs several).
        self._handles: list[list] = []
        self._sim = None

    def add(self, event: FaultEvent) -> "FaultSchedule":
        if self._applied:
            raise RuntimeError("schedule already applied; build a new one")
        self.events.append(event)
        return self

    def validate(self) -> None:
        """Reject overlapping/contradictory windows on the same target.

        Three classes of conflict, each previously accepted silently:

        * two gray windows on the same ``(node, rail)`` edge (or two
          :class:`SlowNode` windows on the same node) that overlap in
          time — the second would clobber the first's saved pristine
          state on expiry;
        * a :class:`Crash` inside any impairment window targeting the
          same node — the window's expiry timer would "repair" hardware
          that no longer exists (and the window meant to degrade a live
          node, not a corpse);
        * two :class:`Crash` events on one node with no :class:`Restart`
          taking effect between them, or a :class:`Restart` whose
          effective time lands after a *later* crash of the same node.
        """
        events = list(enumerate(self.events))

        def clash(i, a, j, b, why):
            raise FaultScheduleError(
                f"conflicting fault events: #{i} {a!r} and #{j} {b!r} ({why})"
            )

        # -- overlapping gray windows on one target ------------------------
        windowed = [
            (i, ev) for i, ev in events
            if isinstance(ev, (SlowNode, *_GRAY_EDGE_EVENTS))
        ]
        for k, (i, a) in enumerate(windowed):
            ka = (a.node, getattr(a, "rail", None))
            sa, ea = _window(a)
            for j, b in windowed[k + 1:]:
                if (b.node, getattr(b, "rail", None)) != ka:
                    continue
                sb, eb = _window(b)
                if sa < eb and sb < ea:
                    clash(i, a, j, b, "overlapping gray windows on one target")

        # -- a crash inside an impairment window of the same node ----------
        for i, ev in events:
            if not isinstance(ev, Crash):
                continue
            for j, other in events:
                win = _window(other)
                if win is None or other.node != ev.node:
                    continue
                if win[0] <= ev.at_ns < win[1]:
                    clash(
                        j, other, i, ev,
                        "crash inside the event's active window",
                    )

        # -- crash/restart ordering per node -------------------------------
        per_node: dict[int, list] = {}
        for i, ev in events:
            if isinstance(ev, Crash):
                per_node.setdefault(ev.node, []).append((ev.at_ns, 0, i, ev))
            elif isinstance(ev, Restart):
                per_node.setdefault(ev.node, []).append(
                    (ev.at_ns + ev.delay_ns, 1, i, ev)
                )
        for timeline in per_node.values():
            timeline.sort(key=lambda t: (t[0], t[1]))
            last_crash = None
            for _t, _kind, i, ev in timeline:
                if isinstance(ev, Crash):
                    if last_crash is not None:
                        clash(
                            last_crash[0], last_crash[1], i, ev,
                            "second crash with no restart taking effect "
                            "in between",
                        )
                    last_crash = (i, ev)
                else:
                    last_crash = None

    def apply(self, cluster: "Cluster") -> None:
        """Install every event as simulator timers on ``cluster``."""
        if self._applied:
            raise RuntimeError("schedule already applied; build a new one")
        self.validate()
        self._applied = True
        sim = self._sim = cluster.sim
        for ev in self.events:
            handles: list = []
            self._handles.append(handles)
            # Node-scoped events first: they have no rail and no cable.
            if isinstance(ev, SlowNode):
                if not 0 <= ev.node < len(cluster.nodes):
                    raise ValueError(f"no node {ev.node} in the cluster")
                node = cluster.nodes[ev.node]
                handles.append(
                    sim.schedule_cancellable(
                        ev.at_ns, _slow_node_start, node, ev.factor
                    )
                )
                handles.append(
                    sim.schedule_cancellable(
                        ev.at_ns + ev.duration_ns, _slow_node_end, node
                    )
                )
                continue
            if isinstance(ev, Crash):
                recovery = cluster.enable_crash_recovery()
                handles.append(
                    sim.schedule_cancellable(ev.at_ns, recovery.crash, ev.node)
                )
                continue
            if isinstance(ev, Restart):
                recovery = cluster.enable_crash_recovery()
                handles.append(
                    sim.schedule_cancellable(
                        ev.at_ns + ev.delay_ns, recovery.restart, ev.node
                    )
                )
                continue
            cable = cluster.cable(ev.node, ev.rail)
            if isinstance(ev, Outage):
                handles.append(
                    sim.schedule_cancellable(
                        ev.at_ns, cable.fail_for, ev.duration_ns
                    )
                )
            elif isinstance(ev, Flap):
                for k in range(ev.count):
                    handles.append(
                        sim.schedule_cancellable(
                            ev.at_ns + k * ev.period_ns,
                            cable.fail_for,
                            ev.down_ns,
                        )
                    )
            elif isinstance(ev, BitErrorRamp):
                handles.append(
                    sim.schedule_cancellable(
                        ev.at_ns, _set_ber, cable, ev.bit_error_rate
                    )
                )
            elif isinstance(ev, PermanentFailure):
                handles.append(
                    sim.schedule_cancellable(ev.at_ns, cable.fail_forever)
                )
            elif isinstance(ev, Repair):
                handles.append(
                    sim.schedule_cancellable(ev.at_ns, _repair, cable)
                )
            elif isinstance(ev, SlowNic):
                nic = cluster.nodes[ev.node].nics[ev.rail]
                handles.append(
                    sim.schedule_cancellable(
                        ev.at_ns, _slow_nic_start, nic, ev.factor
                    )
                )
                handles.append(
                    sim.schedule_cancellable(
                        ev.at_ns + ev.duration_ns, _slow_nic_end, nic
                    )
                )
            elif isinstance(ev, DegradedLink):
                handles.append(
                    sim.schedule_cancellable(
                        ev.at_ns, _degrade_start, cable,
                        ev.bit_error_rate, ev.jitter_ns, 0.0, 1.0,
                    )
                )
                handles.append(
                    sim.schedule_cancellable(
                        ev.at_ns + ev.duration_ns, _degrade_end, cable
                    )
                )
            elif isinstance(ev, IntermittentDrop):
                handles.append(
                    sim.schedule_cancellable(
                        ev.at_ns, _degrade_start, cable,
                        0.0, 0, ev.drop_p, ev.burst_len,
                    )
                )
                handles.append(
                    sim.schedule_cancellable(
                        ev.at_ns + ev.duration_ns, _degrade_end, cable
                    )
                )
            elif isinstance(ev, AsymmetricPartition):
                nic = cluster.nodes[ev.node].nics[ev.rail]
                link = cable.link_from(nic)
                if ev.direction == "rx":
                    link = cable.ab if link is cable.ba else cable.ba
                handles.append(
                    sim.schedule_cancellable(
                        ev.at_ns, link.fail_for, ev.duration_ns
                    )
                )
            else:
                raise TypeError(f"unknown fault event {ev!r}")

    def cancel_pending(self, index: int) -> None:
        """Withdraw fault ``index`` before any of its timers have fired.

        Only valid while every timer of the fault is still in the future
        (``at_ns > sim.now``) — cancelling an already-executed entry would
        corrupt the queue's dead-entry accounting.  The shrinker guarantees
        this by only routing candidates through a checkpoint taken before
        the dropped fault's start time.
        """
        if not self._applied:
            raise RuntimeError("schedule not applied yet")
        ev = self.events[index]
        if ev.at_ns <= self._sim.now:
            raise ValueError(
                f"fault {index} starts at {ev.at_ns} <= now={self._sim.now}; "
                "it may already have fired"
            )
        for entry in self._handles[index]:
            self._sim.cancel_scheduled(entry)


def _set_ber(cable: "Cable", rate: float) -> None:
    # LinkParams is shared across the whole cluster; give each direction a
    # private copy so the ramp stays scoped to this one edge.
    for link in (cable.ab, cable.ba):
        if not hasattr(link, "_pristine_params"):
            link._pristine_params = link.params
        link.params = replace(link._pristine_params, bit_error_rate=rate)


def _repair(cable: "Cable") -> None:
    cable.repair()
    for link in (cable.ab, cable.ba):
        pristine = getattr(link, "_pristine_params", None)
        if pristine is not None:
            link.params = pristine


# -- gray fault actuators --------------------------------------------------


def _slow_node_start(node, factor: float) -> None:
    node.gray_slow_factor = factor
    # Extra protocol-CPU cost per pumped frame, billed under its own
    # accounting tag (see Connection.pump) so pump-CPU conservation holds.
    node.gray_pump_extra_ns = int(
        node.params.per_frame_send_ns * (factor - 1.0)
    )


def _slow_node_end(node) -> None:
    node.gray_slow_factor = 1.0
    node.gray_pump_extra_ns = 0


def _slow_nic_start(nic, factor: float) -> None:
    nic.set_tx_throttle(factor)


def _slow_nic_end(nic) -> None:
    nic.set_tx_throttle(1.0)


def _degrade_start(
    cable: "Cable", ber: float, jitter_ns: int, drop_p: float, burst_len: float
) -> None:
    for link in (cable.ab, cable.ba):
        if ber > 0.0:
            if not hasattr(link, "_pristine_params"):
                link._pristine_params = link.params
            link.params = replace(link._pristine_params, bit_error_rate=ber)
            link._gray_ber_raised = True
        link.degrade(jitter_ns=jitter_ns, drop_p=drop_p, burst_len=burst_len)


def _degrade_end(cable: "Cable") -> None:
    for link in (cable.ab, cable.ba):
        if getattr(link, "_gray_ber_raised", False):
            link._gray_ber_raised = False
            pristine = getattr(link, "_pristine_params", None)
            if pristine is not None:
                link.params = pristine
        link.clear_degraded()
