"""Declarative fault schedules for cluster experiments.

Instead of sprinkling ``sim.schedule(t, link.fail_for, d)`` calls through
every experiment script, a :class:`FaultSchedule` is a list of fault
*events* — plain dataclasses naming a ``(node, rail)`` edge and a start
time — applied to a :class:`~repro.bench.cluster.Cluster` before the run:

>>> schedule = FaultSchedule([
...     Outage(at_ns=2_000_000, node=0, rail=0, duration_ns=5_000_000),
...     PermanentFailure(at_ns=20_000_000, node=1, rail=1),
...     Repair(at_ns=60_000_000, node=1, rail=1),
... ])
>>> schedule.apply(cluster)

All faults hit the full-duplex cable between the node's NIC and its
switch port, both directions, which is what a yanked cable or dead port
does in practice.  Every event is deterministic: the schedule only
installs simulator timers, so same seed + same schedule = same run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..bench.cluster import Cluster
    from ..ethernet.link import Cable

__all__ = [
    "Outage",
    "Flap",
    "BitErrorRamp",
    "PermanentFailure",
    "Repair",
    "Crash",
    "Restart",
    "FaultEvent",
    "FaultSchedule",
]


@dataclass(frozen=True)
class Outage:
    """Transient outage: the edge drops every frame for ``duration_ns``."""

    at_ns: int
    node: int
    rail: int
    duration_ns: int


@dataclass(frozen=True)
class Flap:
    """A flapping edge: ``count`` outages of ``down_ns`` every ``period_ns``.

    The k-th outage starts at ``at_ns + k * period_ns``.  ``down_ns`` must
    not exceed ``period_ns`` (that would be a permanent failure in
    disguise — use :class:`PermanentFailure`).
    """

    at_ns: int
    node: int
    rail: int
    period_ns: int
    down_ns: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("count must be >= 1")
        if not 0 < self.down_ns <= self.period_ns:
            raise ValueError("need 0 < down_ns <= period_ns")


@dataclass(frozen=True)
class BitErrorRamp:
    """Raise the edge's bit-error rate at ``at_ns`` (until a Repair).

    The link's shared :class:`~repro.ethernet.LinkParams` is *copied*
    before mutation so the ramp affects only the targeted edge, never the
    whole cluster.
    """

    at_ns: int
    node: int
    rail: int
    bit_error_rate: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.bit_error_rate < 1.0:
            raise ValueError("bit_error_rate must be in [0, 1)")


@dataclass(frozen=True)
class PermanentFailure:
    """Kill the edge outright (until a Repair, if any)."""

    at_ns: int
    node: int
    rail: int


@dataclass(frozen=True)
class Repair:
    """End any outage and restore the original bit-error rate."""

    at_ns: int
    node: int
    rail: int


@dataclass(frozen=True)
class Crash:
    """Whole-node fail-stop crash at ``at_ns`` (all rails, all state).

    Handled by :class:`repro.recovery.ClusterRecovery` (enabled on the
    cluster automatically when a schedule contains crash events): every
    connection endpoint at the node is destroyed, its NICs lose power and
    their rings, and pending operations fail with
    :class:`~repro.core.PeerCrashed`.
    """

    at_ns: int
    node: int


@dataclass(frozen=True)
class Restart:
    """Reboot a crashed node ``delay_ns`` after ``at_ns``.

    The node comes back as a *new incarnation*: its incarnation number is
    bumped, so surviving peers reject any frame still in flight from the
    dead incarnation.  ``delay_ns`` models boot time.
    """

    at_ns: int
    node: int
    delay_ns: int = 0

    def __post_init__(self) -> None:
        if self.delay_ns < 0:
            raise ValueError("delay_ns must be >= 0")


FaultEvent = Union[
    Outage, Flap, BitErrorRamp, PermanentFailure, Repair, Crash, Restart
]


class FaultSchedule:
    """An ordered set of fault events, applied once to a cluster.

    Every timer is installed through
    :meth:`~repro.sim.core.Simulator.schedule_cancellable` and the handles
    are kept per fault index, so a fault whose start time is still in the
    future can be withdrawn with :meth:`cancel_pending` — this is how the
    fuzz shrinker probes "same run minus fault *i*" from a mid-run
    checkpoint instead of replaying from t=0.  Cancellation shifts the
    simulator's event sequence counter by a constant, leaving the relative
    order of all surviving events intact, so a run with a fault cancelled
    before it fires is scheduling-identical to a run built without it.
    """

    def __init__(self, events: Sequence[FaultEvent] = ()) -> None:
        self.events: list[FaultEvent] = list(events)
        self._applied = False
        # Parallel to self.events once applied: the cancellable queue
        # entries installed for each fault (a Flap installs several).
        self._handles: list[list] = []
        self._sim = None

    def add(self, event: FaultEvent) -> "FaultSchedule":
        if self._applied:
            raise RuntimeError("schedule already applied; build a new one")
        self.events.append(event)
        return self

    def apply(self, cluster: "Cluster") -> None:
        """Install every event as simulator timers on ``cluster``."""
        if self._applied:
            raise RuntimeError("schedule already applied; build a new one")
        self._applied = True
        sim = self._sim = cluster.sim
        for ev in self.events:
            handles: list = []
            self._handles.append(handles)
            # Node-scoped events first: they have no rail and no cable.
            if isinstance(ev, Crash):
                recovery = cluster.enable_crash_recovery()
                handles.append(
                    sim.schedule_cancellable(ev.at_ns, recovery.crash, ev.node)
                )
                continue
            if isinstance(ev, Restart):
                recovery = cluster.enable_crash_recovery()
                handles.append(
                    sim.schedule_cancellable(
                        ev.at_ns + ev.delay_ns, recovery.restart, ev.node
                    )
                )
                continue
            cable = cluster.cable(ev.node, ev.rail)
            if isinstance(ev, Outage):
                handles.append(
                    sim.schedule_cancellable(
                        ev.at_ns, cable.fail_for, ev.duration_ns
                    )
                )
            elif isinstance(ev, Flap):
                for k in range(ev.count):
                    handles.append(
                        sim.schedule_cancellable(
                            ev.at_ns + k * ev.period_ns,
                            cable.fail_for,
                            ev.down_ns,
                        )
                    )
            elif isinstance(ev, BitErrorRamp):
                handles.append(
                    sim.schedule_cancellable(
                        ev.at_ns, _set_ber, cable, ev.bit_error_rate
                    )
                )
            elif isinstance(ev, PermanentFailure):
                handles.append(
                    sim.schedule_cancellable(ev.at_ns, cable.fail_forever)
                )
            elif isinstance(ev, Repair):
                handles.append(
                    sim.schedule_cancellable(ev.at_ns, _repair, cable)
                )
            else:
                raise TypeError(f"unknown fault event {ev!r}")

    def cancel_pending(self, index: int) -> None:
        """Withdraw fault ``index`` before any of its timers have fired.

        Only valid while every timer of the fault is still in the future
        (``at_ns > sim.now``) — cancelling an already-executed entry would
        corrupt the queue's dead-entry accounting.  The shrinker guarantees
        this by only routing candidates through a checkpoint taken before
        the dropped fault's start time.
        """
        if not self._applied:
            raise RuntimeError("schedule not applied yet")
        ev = self.events[index]
        if ev.at_ns <= self._sim.now:
            raise ValueError(
                f"fault {index} starts at {ev.at_ns} <= now={self._sim.now}; "
                "it may already have fired"
            )
        for entry in self._handles[index]:
            self._sim.cancel_scheduled(entry)


def _set_ber(cable: "Cable", rate: float) -> None:
    # LinkParams is shared across the whole cluster; give each direction a
    # private copy so the ramp stays scoped to this one edge.
    for link in (cable.ab, cable.ba):
        if not hasattr(link, "_pristine_params"):
            link._pristine_params = link.params
        link.params = replace(link._pristine_params, bit_error_rate=rate)


def _repair(cable: "Cable") -> None:
    cable.repair()
    for link in (cable.ab, cable.ba):
        pristine = getattr(link, "_pristine_params", None)
        if pristine is not None:
            link.params = pristine
