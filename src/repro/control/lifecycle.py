"""Edge lifecycle manager: ties monitors, detectors, and the connection.

One :class:`EdgeLifecycleManager` per connection endpoint.  It owns one
:class:`~repro.control.health.EdgeHealthMonitor` and one
:class:`~repro.control.detector.EdgeFailureDetector` per rail, registers
itself as ``connection.control_plane`` (so PROBE_ACK frames and dead-peer
escalations route here), and acts on detector transitions:

* ``* → DOWN``   — ``connection.remove_edge(rail)``: mask the rail and
  migrate its stranded in-flight frames onto the survivors.
* ``* → UP``     — ``connection.add_edge(rail)``: re-stripe across it.

Every transition is appended to :attr:`history` and recorded through the
simulation :class:`~repro.sim.Tracer` under category ``"edge.state"`` so
the Chrome trace exporter can draw per-edge lifecycle spans.  After every
probe outcome the latest health score is pushed into the striping policy
when it supports it (the ``"adaptive"`` policy does).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..sim import Simulator
from .detector import DetectorParams, EdgeFailureDetector, EdgeState, EdgeTransition
from .health import EdgeHealthMonitor, HealthParams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.connection import Connection
    from ..sim.trace import Tracer

__all__ = ["EdgeLifecycleManager"]


class EdgeLifecycleManager:
    """Control plane for all edges of one connection endpoint."""

    def __init__(
        self,
        sim: Simulator,
        connection: "Connection",
        detector_params: Optional[DetectorParams] = None,
        health_params: Optional[HealthParams] = None,
        tracer: Optional["Tracer"] = None,
        auto_failover: bool = True,
    ) -> None:
        self.sim = sim
        self.conn = connection
        self.tracer = tracer
        self.auto_failover = auto_failover
        self.detector_params = detector_params or DetectorParams()
        self.history: list[EdgeTransition] = []
        self.detectors: list[EdgeFailureDetector] = []
        self.monitors: list[EdgeHealthMonitor] = []
        # Opt-in invariant monitor (repro.verify); validates state-machine
        # transition legality.  None in normal runs.
        self.invariant_monitor = None
        # Opt-in PEER_DOWN escalation (repro.recovery): called with this
        # manager exactly once when every edge of the peer is DOWN (or the
        # coarse retransmit timer declares the connection dead).  None in
        # normal runs — per-edge failover then remains the only response.
        self.peer_down_handler = None
        self._peer_down_fired = False
        # Per-rail score ceiling imposed by the differential gray scorer
        # (repro.control.grayscore).  Absent rails are uncapped; the cap
        # shifts adaptive striping weight off a gray rail *before* the
        # failure detector could ever fire.
        self.gray_cap: dict[int, float] = {}
        for rail in range(len(connection.nics)):
            self._make_edge(rail, health_params)
        connection.control_plane = self

    def _make_edge(self, rail: int, health_params: Optional[HealthParams]) -> None:
        detector = EdgeFailureDetector(
            rail, self.detector_params, on_transition=self._on_transition
        )
        monitor = EdgeHealthMonitor(
            self.sim, self.conn, rail, detector, params=health_params
        )
        self.detectors.append(detector)
        self.monitors.append(monitor)

    # -- introspection -----------------------------------------------------

    def edge_state(self, rail: int) -> EdgeState:
        return self.detectors[rail].state

    @property
    def states(self) -> list[EdgeState]:
        return [d.state for d in self.detectors]

    def edge_score(self, rail: int) -> float:
        return self.monitors[rail].score

    def transitions_for(self, rail: int) -> list[EdgeTransition]:
        return [t for t in self.history if t.rail == rail]

    # -- wiring ------------------------------------------------------------

    def watch_new_rail(
        self, rail: int, health_params: Optional[HealthParams] = None
    ) -> None:
        """Start monitoring a rail attached after construction."""
        if rail != len(self.detectors):
            raise ValueError(
                f"rails must be watched in order; expected {len(self.detectors)}, "
                f"got {rail}"
            )
        self._make_edge(rail, health_params)

    def stop(self) -> None:
        """Stop all probe loops (end of experiment)."""
        for monitor in self.monitors:
            monitor.stop()

    # -- callbacks from the connection ------------------------------------

    def on_probe_ack(self, frame) -> None:
        """PROBE_ACK arrived; route to the monitor for its rail."""
        rail = frame.control
        if not isinstance(rail, int) or not 0 <= rail < len(self.monitors):
            return
        monitor = self.monitors[rail]
        monitor.on_probe_ack(frame.header.op_id, frame.header.remote_address)
        self._push_score(rail)

    def on_connection_dead(self) -> None:
        """Coarse retransmit retries exhausted: every rail is silent.

        Nothing to fail over *to*; record the event so experiments can
        distinguish total-fabric death from single-edge failures.
        """
        if self.tracer is not None and self.tracer.is_enabled("edge.state"):
            self.tracer.record(
                "edge.state",
                {"conn": self.conn.conn_id, "rail": -1, "old": "up",
                 "new": "dead", "reason": "all rails silent"},
            )
        self._fire_peer_down()

    # -- detector transition handling --------------------------------------

    def _on_transition(
        self, rail: int, old: EdgeState, new: EdgeState, now: int, reason: str
    ) -> None:
        self.history.append(EdgeTransition(now, rail, old, new, reason))
        fastpath = getattr(self.conn, "fastpath", None)
        if fastpath is not None:
            # Any heartbeat-driven edge state change is a discontinuity for
            # the flow-level fast-forward model.
            fastpath.on_discontinuity("edge-transition")
        if self.invariant_monitor is not None:
            self.invariant_monitor.on_edge_transition(self, rail, old, new, reason)
        if self.tracer is not None and self.tracer.is_enabled("edge.state"):
            self.tracer.record(
                "edge.state",
                {"conn": self.conn.conn_id, "rail": rail, "old": str(old),
                 "new": str(new), "reason": reason},
            )
        if self.auto_failover:
            if new is EdgeState.DOWN:
                self.conn.remove_edge(rail)
            elif new is EdgeState.UP and old not in (
                EdgeState.SUSPECT, EdgeState.DEGRADED
            ):
                # SUSPECT→UP and DEGRADED→UP never masked the rail, so
                # there is nothing to undo; DEGRADED only drains weight.
                self.conn.add_edge(rail)
        if new is EdgeState.DOWN and all(
            d.state is EdgeState.DOWN for d in self.detectors
        ):
            # Every edge of the peer is gone: per-edge failover has run
            # out of survivors.  Escalate to PEER_DOWN.
            self._fire_peer_down()

    def _fire_peer_down(self) -> None:
        if self._peer_down_fired or self.peer_down_handler is None:
            return
        self._peer_down_fired = True
        self.peer_down_handler(self)

    def _push_score(self, rail: int) -> None:
        striping = self.conn.striping
        set_score = getattr(striping, "set_score", None)
        if set_score is not None:
            score = self.monitors[rail].score
            cap = self.gray_cap.get(rail)
            if cap is not None and cap < score:
                score = cap
            set_score(rail, score)
