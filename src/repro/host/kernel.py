"""Kernel model: interrupt dispatch and the protocol kernel thread.

This implements the paper's §2.3/§2.6 receive-path structure:

1. the NIC raises an interrupt; the low-level handler masks further
   interrupts on that NIC, does a small fixed amount of work, and signals
   the protocol layer (opens the work gate);
2. a dedicated *protocol kernel thread* (pinned to the second CPU — the
   paper dedicates one CPU to protocol processing) wakes up and polls every
   NIC, draining received frames and TX completions through the registered
   driver client;
3. interrupts are re-enabled only once no pending events remain and the
   kernel thread is about to sleep, which coalesces interrupts down to the
   1-per-several-frames factors the paper reports.

The *driver client* is the MultiEdge protocol layer; it exposes generator
methods so every piece of protocol work is charged to a CPU.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Protocol, Sequence

from ..ethernet import Frame, Nic
from ..sim import Gate, Simulator
from .cpu import Cpu
from .params import HostParams

__all__ = ["DriverClient", "Kernel"]

# Frames harvested per poll call; bounds kthread batch latency.
POLL_BATCH = 64


class DriverClient(Protocol):
    """Interface the protocol layer presents to the kernel."""

    def handle_frame(self, frame: Frame, cpu: Cpu) -> Generator[Any, Any, None]:
        """Process one received frame, charging CPU time as needed."""

    def handle_tx_completions(
        self, nic: Nic, count: int, cpu: Cpu
    ) -> Generator[Any, Any, None]:
        """Process ``count`` freed TX descriptors on ``nic``."""


class Kernel:
    """Per-node interrupt dispatch plus the protocol kernel thread."""

    def __init__(
        self,
        sim: Simulator,
        params: HostParams,
        cpus: Sequence[Cpu],
        nics: Sequence[Nic],
        name: str = "kernel",
    ) -> None:
        self.sim = sim
        self.params = params
        self.cpus = list(cpus)
        self.nics = list(nics)
        self.name = name
        self.client: Optional[DriverClient] = None

        # The protocol thread runs on the last CPU (the dedicated one).
        self.protocol_cpu = self.cpus[-1]
        self._work = Gate(sim)
        self.kthread_active = False

        # Statistics.
        self.irqs_handled = 0
        self.kthread_wakeups = 0

        for nic in self.nics:
            nic.on_irq = self._on_irq
        sim.process(self._kthread(), name=f"{name}.kthread")

    def attach_client(self, client: DriverClient) -> None:
        self.client = client

    def kick(self) -> None:
        """Wake the protocol thread without an interrupt (send-path nudge)."""
        self._work.open()

    # -- interrupt path ----------------------------------------------------

    def _on_irq(self, nic: Nic) -> None:
        # Hardware masking is immediate; the handler cost is charged async.
        nic.disable_interrupts()
        self.irqs_handled += 1
        self.sim.process(self._irq_handler(), name=f"{self.name}.irq")

    def _irq_handler(self) -> Generator[Any, Any, None]:
        yield from self.protocol_cpu.run(self.params.interrupt_ns, "interrupt")
        self._work.open()

    # -- protocol kernel thread ---------------------------------------------

    def _kthread(self) -> Generator[Any, Any, None]:
        cpu = self.protocol_cpu
        work = self._work
        while True:
            if not work.is_open:
                yield work.wait()
            work.close()
            self.kthread_active = True
            self.kthread_wakeups += 1
            yield from cpu.run(self.params.kthread_wakeup_ns, "protocol.wakeup")
            nics = self.nics
            client = self.client
            while True:
                did_work = False
                for nic in nics:
                    nic.interrupts_enabled = False
                    frames, completions = nic.poll(POLL_BATCH)
                    if completions and client is not None:
                        yield from client.handle_tx_completions(
                            nic, completions, cpu
                        )
                        did_work = True
                    if frames and client is not None:
                        for frame in frames:
                            yield from client.handle_frame(frame, cpu)
                        did_work = True
                if not did_work:
                    break
            self.kthread_active = False
            for nic in self.nics:
                nic.enable_interrupts()
