"""CPU model with tagged time accounting.

A :class:`Cpu` is a capacity-1 FIFO resource.  Code runs on it by yielding
from :meth:`run`, which queues for the CPU, holds it for the given duration,
and charges the time to a *tag* ("app", "protocol.send", "protocol.recv",
"interrupt", "dsm", ...).  The tag breakdown is how the reproduction gets the
paper's CPU-utilization figures (2c) and protocol-time fractions (3c, 5c)
without separate instrumentation.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Generator

from ..sim import Resource, Simulator

__all__ = ["Cpu", "CpuAccounting"]


class CpuAccounting:
    """Shared per-node tag → busy-nanoseconds map."""

    def __init__(self) -> None:
        self.by_tag: dict[str, int] = defaultdict(int)
        self._epoch_snapshot: dict[str, int] = {}

    def charge(self, tag: str, duration: int) -> None:
        self.by_tag[tag] += duration

    def reclassify(self, from_tag: str, to_tag: str, duration: int) -> None:
        """Move ``duration`` ns already charged to ``from_tag`` onto ``to_tag``.

        The core really was occupied for that time (busy-time conservation
        holds), but the work turned out not to belong under ``from_tag`` —
        e.g. a send batch billed up front that then stalled on a full TX
        ring.  Total charged time is unchanged.
        """
        if duration <= 0:
            return
        self.by_tag[from_tag] -= duration
        self.by_tag[to_tag] += duration

    def mark_epoch(self) -> None:
        """Snapshot counters; :meth:`since_epoch` reports deltas after this."""
        self._epoch_snapshot = dict(self.by_tag)

    def since_epoch(self) -> dict[str, int]:
        return {
            tag: total - self._epoch_snapshot.get(tag, 0)
            for tag, total in self.by_tag.items()
            if total - self._epoch_snapshot.get(tag, 0) > 0
        }

    def total(self, prefix: str = "", since_epoch: bool = False) -> int:
        """Total charged time for tags starting with ``prefix``.

        With ``since_epoch=True``, only time charged after the last
        :meth:`mark_epoch` counts (measurement intervals).
        """
        if since_epoch:
            return sum(
                v - self._epoch_snapshot.get(k, 0)
                for k, v in self.by_tag.items()
                if k.startswith(prefix)
            )
        return sum(v for k, v in self.by_tag.items() if k.startswith(prefix))


class Cpu:
    """One core: a FIFO resource plus accounting."""

    def __init__(
        self,
        sim: Simulator,
        index: int,
        accounting: CpuAccounting,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.index = index
        self.accounting = accounting
        self.name = name or f"cpu{index}"
        self.resource = Resource(sim, capacity=1)

    def run(self, duration: int, tag: str) -> Generator[Any, Any, None]:
        """Queue for this CPU, occupy it for ``duration`` ns, charge ``tag``.

        Use as ``yield from cpu.run(1000, "protocol.recv")`` inside a
        simulation process.  Zero-duration runs return immediately without
        touching the resource.  When the core is idle the grant is taken
        synchronously, skipping the acquire-event round trip.
        """
        if duration <= 0:
            return
        duration = int(duration)
        res = self.resource
        if res.in_use < res.capacity and not res._waiters:
            # Uncontended: claim the core in place (same state transition
            # acquire() would make at this timestamp, minus the event hop).
            now = self.sim.now
            res.busy_time += res.in_use * (now - res._busy_since)
            res._busy_since = now
            res.in_use += 1
        else:
            yield res.acquire()
        yield duration
        if res._waiters:
            res.release()
        else:
            now = self.sim.now
            res.busy_time += res.in_use * (now - res._busy_since)
            res._busy_since = now
            res.in_use -= 1
        self.accounting.charge(tag, duration)

    def utilization(self, elapsed: int | None = None) -> float:
        """Busy fraction of this core (0..1)."""
        return self.resource.utilization(elapsed)

    def reset_accounting(self) -> None:
        self.resource.reset_accounting()
