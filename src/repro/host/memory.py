"""Per-node virtual memory.

RDMA operations in MultiEdge address the *virtual address space* of the
remote process (paper §2.2: receive buffers need not be pre-registered; data
is copied directly into the receiver's address space).  This module gives
each node a real byte-addressable store so the reproduction moves actual
data: the DSM and the applications depend on RDMA writes landing the right
bytes at the right addresses.

Allocations come from a bump allocator; reads and writes may span any range
inside a single allocation (cross-allocation accesses are a programming
error and raise).
"""

from __future__ import annotations

import bisect

import numpy as np

__all__ = ["VirtualMemory", "MemoryFault"]


class MemoryFault(Exception):
    """Access outside any allocation (the simulated SIGSEGV)."""


class VirtualMemory:
    """A sparse virtual address space backed by numpy byte buffers."""

    # Leave a guard gap between allocations so off-by-one bugs fault
    # instead of silently touching a neighbouring buffer.
    _GUARD = 4096

    def __init__(self, base: int = 0x1000_0000) -> None:
        self._next = base
        self._starts: list[int] = []
        self._regions: list[tuple[int, int, np.ndarray]] = []  # (start, end, buf)

    def alloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the virtual base address."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        addr = self._next
        buf = np.zeros(size, dtype=np.uint8)
        self._regions.append((addr, addr + size, buf))
        self._starts.append(addr)
        self._next = addr + size + self._GUARD
        return addr

    def _find(self, addr: int, size: int) -> tuple[np.ndarray, int]:
        i = bisect.bisect_right(self._starts, addr) - 1
        if i >= 0:
            start, end, buf = self._regions[i]
            if addr >= start and addr + size <= end:
                return buf, addr - start
        raise MemoryFault(
            f"access [{addr:#x}, {addr + size:#x}) outside any allocation"
        )

    def write(self, addr: int, data: bytes | np.ndarray) -> None:
        """Store ``data`` at virtual address ``addr``."""
        view = np.frombuffer(data, dtype=np.uint8) if isinstance(
            data, (bytes, bytearray, memoryview)
        ) else data
        buf, off = self._find(addr, len(view))
        buf[off : off + len(view)] = view

    def read(self, addr: int, size: int) -> bytes:
        """Load ``size`` bytes from virtual address ``addr``."""
        buf, off = self._find(addr, size)
        return buf[off : off + size].tobytes()

    def view(self, addr: int, size: int) -> np.ndarray:
        """Zero-copy uint8 view of an allocated range (for applications)."""
        buf, off = self._find(addr, size)
        return buf[off : off + size]

    def ndarray(self, addr: int, shape: tuple[int, ...], dtype) -> np.ndarray:
        """Typed zero-copy view of an allocated range."""
        nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        return self.view(addr, nbytes).view(dtype).reshape(shape)

    @property
    def allocated_bytes(self) -> int:
        return sum(end - start for start, end, _ in self._regions)
