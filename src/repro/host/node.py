"""Node assembly: CPUs + memory + NICs + kernel.

A :class:`Node` is one cluster machine.  The paper's nodes have two CPUs and
run the application on one while dedicating the other to protocol
processing; the node exposes :attr:`app_cpu` and leaves the last CPU to the
kernel's protocol thread.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..ethernet import Nic, NicParams, mac_address
from ..sim import RngRegistry, Simulator
from .cpu import Cpu, CpuAccounting
from .kernel import Kernel
from .memory import VirtualMemory
from .params import HostParams

__all__ = ["Node"]


class Node:
    """One simulated cluster node."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        host_params: Optional[HostParams] = None,
        nic_params: Optional[Sequence[NicParams]] = None,
        rng: Optional[RngRegistry] = None,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.params = host_params or HostParams()
        self.rng = rng or RngRegistry(0)
        self.name = name or f"node{node_id}"

        # Gray-fault CPU slowdown (repro.control.SlowNode).  A factor of
        # 1.0 / extra of 0 keeps every hot path pristine; the extra is the
        # additional protocol-CPU cost per pumped frame, billed under the
        # dedicated "gray.slow-node" tag so pump-CPU conservation holds.
        self.gray_slow_factor = 1.0
        self.gray_pump_extra_ns = 0

        self.accounting = CpuAccounting()
        self.cpus = [
            Cpu(sim, i, self.accounting, name=f"{self.name}.cpu{i}")
            for i in range(self.params.cpus)
        ]
        self.memory = VirtualMemory()

        nic_param_list = list(nic_params or [NicParams()])
        self.nics = [
            Nic(
                sim,
                p,
                mac=mac_address(node_id, rail),
                rng=self.rng,
                name=f"{self.name}.nic{rail}",
            )
            for rail, p in enumerate(nic_param_list)
        ]
        self.kernel = Kernel(
            sim, self.params, self.cpus, self.nics, name=f"{self.name}.kernel"
        )

    @property
    def app_cpu(self) -> Cpu:
        """The CPU the application thread runs on."""
        return self.cpus[0]

    @property
    def protocol_cpu(self) -> Cpu:
        """The CPU dedicated to protocol processing."""
        return self.cpus[-1]

    # -- accounting helpers ----------------------------------------------

    def protocol_cpu_time(self, since_epoch: bool = True) -> int:
        """Nanoseconds of CPU spent in the communication protocol.

        By default counts from the last :meth:`reset_accounting` (the
        start of the measured interval).
        """
        acc = self.accounting
        return acc.total("protocol", since_epoch) + acc.total(
            "interrupt", since_epoch
        )

    def cpu_utilization(self, elapsed: int) -> float:
        """Summed busy fraction over all CPUs (0..cpus), as the paper plots
        utilization out of 200 % for two CPUs."""
        if elapsed <= 0:
            return 0.0
        return sum(cpu.utilization(elapsed) for cpu in self.cpus)

    def protocol_utilization(self, elapsed: int) -> float:
        """Protocol share of total CPU, summed over CPUs (0..cpus)."""
        if elapsed <= 0:
            return 0.0
        return self.protocol_cpu_time() / elapsed

    def reset_accounting(self) -> None:
        for cpu in self.cpus:
            cpu.reset_accounting()
        self.accounting.mark_epoch()
