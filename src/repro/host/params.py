"""Calibrated host cost parameters.

The defaults model the paper's testbed nodes: dual Opteron 244 (1.8 GHz),
Tyan S2892, Linux 2.6.12.  They were calibrated so that the micro-benchmark
endpoints reported in the paper's §4 come out of the simulation:

* ``per_frame_send_ns`` + the user→kernel copy bound the 10-GbE one-way
  sender at ≈1100 MB/s (the paper's "higher-than-expected overhead on the
  sender side"),
* ``interrupt_ns`` + ``kthread_wakeup_ns`` + NIC coalescing produce the
  ≈30 µs minimum ping-pong latency and the ping-pong throughput penalty
  (≈710 MB/s on 10 GbE, receiver interrupt-driven instead of polling),
* ``syscall_ns`` + operation bookkeeping give the ≈2 µs host overhead to
  initiate an operation.

Everything is a plain dataclass so experiments and ablations can override
single fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..ethernet import NicParams

__all__ = ["HostParams", "tigon3_params", "myri10g_params"]


@dataclass
class HostParams:
    """Per-node cost model."""

    cpus: int = 2
    # Syscall entry/exit plus operation setup in the protocol layer.
    syscall_ns: int = 700
    # Host overhead to initiate an RDMA operation from user level (the
    # user-library part; the paper reports ~2 us total with syscall).
    op_issue_ns: int = 800
    # Hardware interrupt handler: register reads, masking, kthread signal.
    interrupt_ns: int = 2_500
    # Waking the protocol kernel thread (schedule latency + context switch).
    kthread_wakeup_ns: int = 5_500
    context_switch_ns: int = 1_500
    # Protocol processing per frame, excluding copies.
    per_frame_send_ns: int = 700
    per_frame_recv_ns: int = 650
    # memcpy model: fixed overhead plus per-byte time (~3.2 GB/s streams).
    memcpy_base_ns: int = 60
    memcpy_ns_per_kb: int = 305  # 1024 B / 3.2 GB/s ≈ 305 ns

    def memcpy_ns(self, nbytes: int) -> int:
        """Cost of copying ``nbytes`` between user and kernel space."""
        if nbytes <= 0:
            return 0
        return self.memcpy_base_ns + (nbytes * self.memcpy_ns_per_kb) // 1024

    def __post_init__(self) -> None:
        if self.cpus < 1:
            raise ValueError("cpus must be >= 1")


def tigon3_params(**overrides) -> NicParams:
    """Broadcom Tigon 3 (BCM57xx) 1-GbE NIC model."""
    params = NicParams(
        speed_bps=1e9,
        tx_ring_frames=512,
        rx_ring_frames=512,
        dma_ns=600,
        tx_jitter_ns=800,
        coalesce_frames=8,
        coalesce_timeout_ns=18_000,
        tx_completion_batch=16,
        unmaskable_tx_irq=False,
    )
    return replace(params, **overrides)


def myri10g_params(**overrides) -> NicParams:
    """Myricom 10G-PCIE-8A-C 10-GbE NIC model.

    The send-completion interrupts on this NIC could not be disabled in the
    paper's driver, hence ``unmaskable_tx_irq=True``.
    """
    params = NicParams(
        speed_bps=10e9,
        tx_ring_frames=512,
        rx_ring_frames=512,
        dma_ns=500,
        tx_jitter_ns=400,
        coalesce_frames=8,
        coalesce_timeout_ns=12_000,
        # Send-completion interrupts cannot be masked and fire every few
        # frames: this is the paper's "higher-than-expected overhead on the
        # sender side" that caps one-way at ~88 % of the 10-GbE line rate.
        tx_completion_batch=4,
        unmaskable_tx_irq=True,
    )
    return replace(params, **overrides)
