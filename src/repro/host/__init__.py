"""Host model: CPUs, memory, kernel, and node assembly."""

from .cpu import Cpu, CpuAccounting
from .kernel import DriverClient, Kernel
from .memory import MemoryFault, VirtualMemory
from .node import Node
from .params import HostParams, myri10g_params, tigon3_params

__all__ = [
    "Cpu",
    "CpuAccounting",
    "Kernel",
    "DriverClient",
    "VirtualMemory",
    "MemoryFault",
    "Node",
    "HostParams",
    "tigon3_params",
    "myri10g_params",
]
