"""Collective operations on top of point-to-point message passing.

Standard log-depth algorithms, so collective latency scales the way MPI
libraries of the paper's era did over GbE:

* :func:`barrier` — dissemination barrier, ⌈log2 P⌉ rounds of pairwise
  exchange (contrast with the DSM's centralized manager barrier),
* :func:`bcast` / :func:`reduce` — binomial trees,
* :func:`allreduce` — reduce to rank 0 then broadcast,
* :func:`gather` — linear to the root,
* :func:`alltoall` — P-1 rounds of pairwise exchange (rank ^ round).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

import numpy as np

from .endpoint import MpEndpoint

__all__ = ["barrier", "bcast", "reduce", "allreduce", "gather", "alltoall"]

_BARRIER_TAG = 1 << 20
_BCAST_TAG = 1 << 21
_REDUCE_TAG = 1 << 22
_GATHER_TAG = 1 << 23
_ALLTOALL_TAG = 1 << 24


def barrier(ep: MpEndpoint, tag_round: int = 0) -> Generator[Any, Any, None]:
    """Dissemination barrier: ⌈log2 P⌉ pairwise rounds."""
    size, rank = ep.size, ep.rank
    if size == 1:
        return
    round_no = 0
    distance = 1
    while distance < size:
        dest = (rank + distance) % size
        src = (rank - distance) % size
        tag = _BARRIER_TAG + (tag_round << 8) + round_no
        yield from ep.send(dest, b"b", tag=tag)
        yield from ep.recv(source=src, tag=tag)
        distance *= 2
        round_no += 1


def bcast(
    ep: MpEndpoint, data: Optional[bytes], root: int = 0
) -> Generator[Any, Any, bytes]:
    """Binomial-tree broadcast; returns the payload on every rank."""
    size = ep.size
    if size == 1:
        return data or b""
    rel = (ep.rank - root) % size
    # Receive from parent (unless root).
    if rel != 0:
        parent_rel = rel & (rel - 1)  # clear lowest set bit
        parent = (parent_rel + root) % size
        msg = yield from ep.recv(source=parent, tag=_BCAST_TAG)
        data = msg.data
    assert data is not None
    # Forward to children.
    mask = 1
    while mask < size:
        if rel & (mask - 1) == 0 and rel | mask != rel and rel + mask < size:
            child = ((rel | mask) + root) % size
            yield from ep.send(child, data, tag=_BCAST_TAG)
        mask <<= 1
    return data


def reduce(
    ep: MpEndpoint,
    value: np.ndarray,
    op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
    root: int = 0,
) -> Generator[Any, Any, Optional[np.ndarray]]:
    """Binomial-tree reduction of equal-shape numpy arrays."""
    size = ep.size
    acc = np.array(value, copy=True)
    if size == 1:
        return acc
    rel = (ep.rank - root) % size
    mask = 1
    while mask < size:
        if rel & mask:
            parent = ((rel & ~mask) + root) % size
            yield from ep.send(parent, acc.tobytes(), tag=_REDUCE_TAG + mask)
            return None
        child_rel = rel | mask
        if child_rel < size:
            child = (child_rel + root) % size
            msg = yield from ep.recv(source=child, tag=_REDUCE_TAG + mask)
            acc = op(acc, np.frombuffer(msg.data, dtype=acc.dtype).reshape(acc.shape))
        mask <<= 1
    return acc


def allreduce(
    ep: MpEndpoint,
    value: np.ndarray,
    op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
) -> Generator[Any, Any, np.ndarray]:
    """Reduce to rank 0, then broadcast the result."""
    reduced = yield from reduce(ep, value, op, root=0)
    payload = reduced.tobytes() if ep.rank == 0 else None
    out = yield from bcast(ep, payload, root=0)
    template = np.asarray(value)
    return np.frombuffer(out, dtype=template.dtype).reshape(template.shape).copy()


def gather(
    ep: MpEndpoint, data: bytes, root: int = 0
) -> Generator[Any, Any, Optional[list[bytes]]]:
    """Linear gather of per-rank byte strings to the root."""
    if ep.rank == root:
        out: list[Optional[bytes]] = [None] * ep.size
        out[root] = data
        for _ in range(ep.size - 1):
            msg = yield from ep.recv(tag=_GATHER_TAG)
            out[msg.source] = msg.data
        return out  # type: ignore[return-value]
    yield from ep.send(root, data, tag=_GATHER_TAG)
    return None


def alltoall(
    ep: MpEndpoint, chunks: list[bytes]
) -> Generator[Any, Any, list[bytes]]:
    """Personalised all-to-all: ``chunks[d]`` goes to rank d."""
    size, rank = ep.size, ep.rank
    if len(chunks) != size:
        raise ValueError(f"need {size} chunks, got {len(chunks)}")
    out: list[Optional[bytes]] = [None] * size
    out[rank] = chunks[rank]
    # Pairwise exchange: round r pairs rank with rank ^ r (works for any
    # size when restricted to valid partners each round).
    for r in range(1, _next_pow2(size)):
        partner = rank ^ r
        if partner >= size:
            continue
        tag = _ALLTOALL_TAG + r
        if rank < partner:
            yield from ep.send(partner, chunks[partner], tag=tag)
            msg = yield from ep.recv(source=partner, tag=tag)
        else:
            msg = yield from ep.recv(source=partner, tag=tag)
            yield from ep.send(partner, chunks[partner], tag=tag)
        out[partner] = msg.data
    return out  # type: ignore[return-value]


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p <<= 1
    return p
