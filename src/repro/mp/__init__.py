"""MPI-style message passing over MultiEdge (second application domain)."""

from .collectives import allreduce, alltoall, barrier, bcast, gather, reduce
from .endpoint import ANY_SOURCE, ANY_TAG, MpEndpoint, MpMessage, MpWorld

__all__ = [
    "MpWorld",
    "MpEndpoint",
    "MpMessage",
    "ANY_SOURCE",
    "ANY_TAG",
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "alltoall",
]
