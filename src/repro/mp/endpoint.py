"""Message passing over MultiEdge RDMA.

The paper motivates MultiEdge with the observation that scalable systems
carry *several* communication protocols for different application domains
on separate physical interconnects, and asks whether one edge-based
interconnect can serve them all.  The DSM (:mod:`repro.dsm`) is one such
domain; this package is the other classic one — MPI-style message passing —
built on exactly the same RDMA primitives:

* **eager protocol** (small messages): the payload is RDMA-written into a
  slot of the receiver's per-peer inbox ring together with a 32-byte
  envelope; the completion notification wakes the receiver's matcher.
  Slot reuse is governed by credits the receiver returns.
* **rendezvous protocol** (large messages): the sender posts a
  request-to-send envelope; when a matching ``recv`` buffer exists, the
  receiver answers clear-to-send with the destination virtual address and
  the payload travels as a single zero-copy RDMA write into the user
  buffer — the RDMA-enabled message passing the paper's related work
  (EMP, U-Net, VIA) builds towards.

Matching follows MPI semantics: ``(source, tag)`` with wildcards, FIFO per
(source, tag) pair, with an unexpected-message queue.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ..bench.cluster import Cluster
from ..core import ConnectionHandle, PeerCrashed
from ..ethernet import OpFlags
from ..sim import Event, Simulator, Store

__all__ = ["MpWorld", "MpEndpoint", "MpMessage", "ANY_SOURCE", "ANY_TAG"]

ANY_SOURCE = -1
ANY_TAG = -1

SLOT_BYTES = 16_384  # eager ceiling; larger messages rendezvous
RING_SLOTS = 16
CREDIT_EVERY = 4

# Envelope at the head of every eager slot / control message:
#   u32 kind, u32 src, u32 tag, u32 msg_id, u64 size, u64 addr
_ENVELOPE = struct.Struct("!IIIIQQ")
ENVELOPE_BYTES = _ENVELOPE.size

KIND_EAGER = 1
KIND_RTS = 2  # rendezvous request-to-send
KIND_CTS = 3  # clear-to-send, carries destination address
KIND_FIN = 4  # rendezvous payload delivered
KIND_CREDIT = 5


@dataclass
class MpMessage:
    """A received message."""

    source: int
    tag: int
    data: bytes

    def __len__(self) -> int:
        return len(self.data)


@dataclass
class _PeerState:
    conn: ConnectionHandle
    # our inbox the peer writes into
    my_ring_base: int = 0
    my_credit_cell: int = 0
    # the peer's inbox we write into
    peer_ring_base: int = 0
    peer_credit_cell: int = 0
    send_seq: int = 0
    peer_consumed: int = 0
    recv_seq: int = 0
    processed: int = 0
    credit_event: Optional[Event] = None


@dataclass
class _PendingRecv:
    source: int
    tag: int
    event: Event


@dataclass
class _PendingRendezvous:
    """Sender-side state of one rendezvous transfer."""

    data: bytes
    done: Event
    dest: int = -1


class MpEndpoint:
    """One rank of a message-passing world."""

    def __init__(self, world: "MpWorld", rank: int) -> None:
        self.world = world
        self.rank = rank
        self.size = world.size
        self.sim: Simulator = world.cluster.sim
        self.stack = world.cluster.stacks[rank]
        self._peers: dict[int, _PeerState] = {}
        self._unexpected: list[MpMessage] = []
        self._waiting: list[_PendingRecv] = []
        # Posted receive buffers for rendezvous: (source, tag) matching.
        self._posted_rdv: list[tuple[int, int, int, int, Event]] = []
        #   entries: (source, tag, dest_addr, max_size, event)
        self._rdv_out: dict[int, _PendingRendezvous] = {}
        self._next_msg_id = 1
        # Messages that arrived as RTS and wait for a matching recv.
        self._pending_rts: list[tuple[int, int, int, int]] = []
        #   entries: (src, tag, msg_id, size)
        self.stats_sent = 0
        self.stats_received = 0

    # -- wiring ------------------------------------------------------------

    def _wire(self) -> None:
        memory = self.stack.node.memory
        for peer in range(self.size):
            if peer == self.rank:
                continue
            here, _ = self.world.cluster.connect(self.rank, peer)
            ps = self._peers.setdefault(peer, _PeerState(conn=here))
            ps.conn = here
            ps.my_ring_base = memory.alloc(RING_SLOTS * SLOT_BYTES)
            ps.my_credit_cell = memory.alloc(8)
            other = self.world.endpoints[peer]._peers.setdefault(
                self.rank, _PeerState(conn=None)  # conn fixed when peer wires
            )
            other.peer_ring_base = ps.my_ring_base
            other.peer_credit_cell = ps.my_credit_cell
        if self.size > 1:
            for peer in self._peers:
                self.sim.process(
                    self._listener(peer), name=f"mp.listen{self.rank}-{peer}"
                )

    # -- send path -----------------------------------------------------------

    def send(
        self, dest: int, data: bytes, tag: int = 0
    ) -> Generator[Any, Any, None]:
        """Blocking send (returns when the buffer is reusable)."""
        if dest == self.rank:
            raise ValueError("self-sends are not supported")
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError("mp payloads are bytes")
        data = bytes(data)
        ps = self._peers[dest]
        if ENVELOPE_BYTES + len(data) <= SLOT_BYTES:
            yield from self._send_eager(ps, dest, data, tag)
        else:
            yield from self._send_rendezvous(ps, dest, data, tag)
        self.stats_sent += 1

    def _slot_write(
        self, ps: _PeerState, envelope: bytes, payload: bytes = b""
    ) -> Generator[Any, Any, None]:
        """Write envelope+payload into the peer's next ring slot."""
        while ps.send_seq - ps.peer_consumed >= RING_SLOTS - 2:
            ps.credit_event = Event(self.sim)
            got = yield ps.credit_event
            if isinstance(got, PeerCrashed):
                raise got
        slot = ps.send_seq % RING_SLOTS
        memory = self.stack.node.memory
        blob = envelope + payload
        scratch = memory.alloc(len(blob))
        memory.write(scratch, blob)
        yield from ps.conn.rdma_write(
            scratch,
            ps.peer_ring_base + slot * SLOT_BYTES,
            len(blob),
            flags=OpFlags.NOTIFY | OpFlags.FENCE_BACKWARD,
        )
        ps.send_seq += 1

    def _send_eager(
        self, ps: _PeerState, dest: int, data: bytes, tag: int
    ) -> Generator[Any, Any, None]:
        envelope = _ENVELOPE.pack(
            KIND_EAGER, self.rank, tag, self._next_msg_id, len(data), 0
        )
        self._next_msg_id += 1
        yield from self._slot_write(ps, envelope, data)

    def _send_rendezvous(
        self, ps: _PeerState, dest: int, data: bytes, tag: int
    ) -> Generator[Any, Any, None]:
        msg_id = self._next_msg_id
        self._next_msg_id += 1
        pending = _PendingRendezvous(data=data, done=Event(self.sim), dest=dest)
        self._rdv_out[msg_id] = pending
        envelope = _ENVELOPE.pack(
            KIND_RTS, self.rank, tag, msg_id, len(data), 0
        )
        yield from self._slot_write(ps, envelope)
        # CTS handling (in the listener) performs the bulk write; we wait
        # until the payload has been pushed and acknowledged.
        got = yield pending.done
        if isinstance(got, PeerCrashed):
            raise got

    # -- receive path ----------------------------------------------------------

    def recv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Generator[Any, Any, MpMessage]:
        """Blocking receive with MPI-style (source, tag) matching."""
        msg = self._match_unexpected(source, tag)
        if msg is not None:
            self.stats_received += 1
            return msg
        # A pending rendezvous RTS may match: accept it by allocating the
        # destination buffer and answering CTS.
        rts = self._match_rts(source, tag)
        if rts is not None:
            msg = yield from self._accept_rendezvous(*rts)
            self.stats_received += 1
            return msg
        waiter = _PendingRecv(source, tag, Event(self.sim))
        self._waiting.append(waiter)
        msg = yield waiter.event
        if isinstance(msg, PeerCrashed):  # the only matching sender died
            raise msg
        if isinstance(msg, tuple):  # an RTS matched this waiter
            msg = yield from self._accept_rendezvous(*msg)
        self.stats_received += 1
        return msg

    def _match_unexpected(self, source: int, tag: int) -> Optional[MpMessage]:
        for i, msg in enumerate(self._unexpected):
            if (source in (ANY_SOURCE, msg.source)) and (
                tag in (ANY_TAG, msg.tag)
            ):
                return self._unexpected.pop(i)
        return None

    def _match_rts(self, source: int, tag: int):
        for i, (src, t, msg_id, size) in enumerate(self._pending_rts):
            if (source in (ANY_SOURCE, src)) and (tag in (ANY_TAG, t)):
                return self._pending_rts.pop(i)
        return None

    def _accept_rendezvous(
        self, src: int, tag: int, msg_id: int, size: int
    ) -> Generator[Any, Any, MpMessage]:
        memory = self.stack.node.memory
        dest = memory.alloc(size)
        fin = Event(self.sim)
        self._posted_rdv.append((src, msg_id, dest, size, fin))
        ps = self._peers[src]
        envelope = _ENVELOPE.pack(KIND_CTS, self.rank, tag, msg_id, size, dest)
        yield from self._slot_write(ps, envelope)
        got = yield fin
        if isinstance(got, PeerCrashed):
            raise got
        return MpMessage(source=src, tag=tag, data=memory.read(dest, size))

    # -- listener ---------------------------------------------------------------

    def _listener(self, peer: int) -> Generator:
        ps = self._peers[peer]
        memory = self.stack.node.memory
        cpu = self.stack.node.protocol_cpu
        while True:
            note = yield from ps.conn.wait_notification(cpu=cpu)
            if ps.conn.conn.closed:
                # This incarnation died (node crash destroyed the
                # endpoint); drop the notification and retire.  After a
                # reconnect, rewire_pair() spawns a fresh listener on
                # the new endpoints.
                return
            if note.address == ps.my_credit_cell:
                consumed = int.from_bytes(memory.read(ps.my_credit_cell, 8), "big")
                ps.peer_consumed = max(ps.peer_consumed, consumed)
                if ps.credit_event is not None and not ps.credit_event.triggered:
                    ps.credit_event.trigger()
                    ps.credit_event = None
                continue
            # Rendezvous payload landing directly in a posted buffer?
            handled = False
            for i, (src, msg_id, dest, size, fin) in enumerate(self._posted_rdv):
                if note.address == dest and src == peer:
                    self._posted_rdv.pop(i)
                    fin.trigger()
                    handled = True
                    break
            if handled:
                continue
            # Otherwise: an inbox slot.
            slot = ps.recv_seq % RING_SLOTS
            base = ps.my_ring_base + slot * SLOT_BYTES
            if note.address != base:
                raise RuntimeError(
                    f"mp rank {self.rank}: notification at {note.address:#x} "
                    f"matches no ring slot or posted buffer"
                )
            ps.recv_seq += 1
            ps.processed += 1
            envelope = memory.read(base, ENVELOPE_BYTES)
            kind, src, tag, msg_id, size, addr = _ENVELOPE.unpack(envelope)
            if ps.processed % CREDIT_EVERY == 0:
                try:
                    yield from self._send_credit(ps)
                except RuntimeError:
                    if ps.conn.conn.closed:
                        return  # crashed mid-credit; listener retires
                    raise
            if kind == KIND_EAGER:
                data = memory.read(base + ENVELOPE_BYTES, size)
                self._deliver(MpMessage(source=src, tag=tag, data=data))
            elif kind == KIND_RTS:
                self._deliver_rts(src, tag, msg_id, size)
            elif kind == KIND_CTS:
                pending = self._rdv_out.pop(msg_id, None)
                if pending is None:
                    raise RuntimeError(f"CTS for unknown message {msg_id}")
                self.sim.process(
                    self._push_rendezvous(ps, addr, pending),
                    name=f"mp.rdv{self.rank}->{peer}",
                )
            else:
                raise RuntimeError(f"unknown mp envelope kind {kind}")

    def _push_rendezvous(
        self, ps: _PeerState, dest_addr: int, pending: _PendingRendezvous
    ) -> Generator:
        memory = self.stack.node.memory
        scratch = memory.alloc(len(pending.data))
        memory.write(scratch, pending.data)
        cpu = self.stack.node.protocol_cpu
        h = yield from ps.conn.rdma_write(
            scratch, dest_addr, len(pending.data),
            flags=OpFlags.NOTIFY, cpu=cpu,
        )
        yield from h.wait()
        pending.done.trigger()

    def _send_credit(self, ps: _PeerState) -> Generator:
        memory = self.stack.node.memory
        scratch = memory.alloc(8)
        memory.write(scratch, ps.recv_seq.to_bytes(8, "big"))
        yield from ps.conn.rdma_write(
            scratch, ps.peer_credit_cell, 8, flags=OpFlags.NOTIFY,
            cpu=self.stack.node.protocol_cpu,
        )

    def _deliver(self, msg: MpMessage) -> None:
        for i, waiter in enumerate(self._waiting):
            if (waiter.source in (ANY_SOURCE, msg.source)) and (
                waiter.tag in (ANY_TAG, msg.tag)
            ):
                self._waiting.pop(i)
                waiter.event.trigger(msg)
                return
        self._unexpected.append(msg)

    # -- crash recovery hook ----------------------------------------------

    def on_peer_crashed(self, peer: int) -> None:
        """Fail every wait that only ``peer`` could satisfy.

        Called by the recovery layer when ``peer`` crashes.  Receives
        posted with ``source == peer``, rendezvous sends targeting the
        peer, and credit waits on its inbox all raise a typed
        :class:`~repro.core.PeerCrashed` instead of hanging forever.
        ``ANY_SOURCE`` receives are left alone — a surviving rank may
        still satisfy them.
        """
        exc = PeerCrashed(-1, peer)
        ps = self._peers.get(peer)
        if ps is not None and ps.credit_event is not None:
            ev, ps.credit_event = ps.credit_event, None
            if not ev.triggered:
                ev.trigger(exc)
        for waiter in [w for w in self._waiting if w.source == peer]:
            self._waiting.remove(waiter)
            waiter.event.trigger(exc)
        for msg_id in [m for m, p in self._rdv_out.items() if p.dest == peer]:
            pending = self._rdv_out.pop(msg_id)
            if not pending.done.triggered:
                pending.done.trigger(exc)
        for entry in [e for e in self._posted_rdv if e[0] == peer]:
            self._posted_rdv.remove(entry)
            fin = entry[4]
            if not fin.triggered:
                fin.trigger(exc)

    def _deliver_rts(self, src: int, tag: int, msg_id: int, size: int) -> None:
        for i, waiter in enumerate(self._waiting):
            if (waiter.source in (ANY_SOURCE, src)) and (
                waiter.tag in (ANY_TAG, tag)
            ):
                self._waiting.pop(i)
                waiter.event.trigger((src, tag, msg_id, size))
                return
        self._pending_rts.append((src, tag, msg_id, size))


class MpWorld:
    """A message-passing world over one simulated cluster."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.size = cluster.config.nodes
        self.endpoints = [MpEndpoint(self, rank) for rank in range(self.size)]
        for ep in self.endpoints:
            ep._wire()
        recovery = getattr(cluster, "recovery", None)
        if recovery is not None:
            self.attach_recovery(recovery)

    def attach_recovery(self, recovery) -> None:
        """Propagate node crashes into typed ``PeerCrashed`` failures."""

        def on_crash(node_id: int) -> None:
            for ep in self.endpoints:
                if ep.rank != node_id:
                    ep.on_peer_crashed(node_id)

        recovery.subscribe_crash(on_crash)

    def rewire_pair(self, i: int, j: int) -> None:
        """Rebuild the eager rings between ``i`` and ``j`` after a crash.

        A node crash destroys the pair's connection endpoints; once the
        recovery layer has re-dialled and refreshed the cluster's cached
        handles, the old per-peer state (ring bases, credit cells,
        sequence counters) refers to a dead incarnation.  This allocates
        fresh rings on both sides, cross-links them, and spawns new
        listener processes on the fresh connection.  The old listeners
        stay parked on the destroyed endpoints' notification queues
        forever, which is harmless — destroyed connections never notify.
        """
        if i == j:
            raise ValueError("cannot rewire a rank to itself")
        for rank, peer in ((i, j), (j, i)):
            ep = self.endpoints[rank]
            here, _ = self.cluster.connect(rank, peer)
            memory = ep.stack.node.memory
            ps = _PeerState(conn=here)
            ps.my_ring_base = memory.alloc(RING_SLOTS * SLOT_BYTES)
            ps.my_credit_cell = memory.alloc(8)
            ep._peers[peer] = ps
        self.endpoints[j]._peers[i].peer_ring_base = (
            self.endpoints[i]._peers[j].my_ring_base
        )
        self.endpoints[j]._peers[i].peer_credit_cell = (
            self.endpoints[i]._peers[j].my_credit_cell
        )
        self.endpoints[i]._peers[j].peer_ring_base = (
            self.endpoints[j]._peers[i].my_ring_base
        )
        self.endpoints[i]._peers[j].peer_credit_cell = (
            self.endpoints[j]._peers[i].my_credit_cell
        )
        for rank, peer in ((i, j), (j, i)):
            ep = self.endpoints[rank]
            ep.sim.process(
                ep._listener(peer), name=f"mp.relisten{rank}-{peer}"
            )

    def start(self, program) -> list:
        """Spawn ``program(endpoint)`` on every rank without running.

        Returns the processes; pass them to :meth:`wait` to execute.  The
        split lets a caller pause the world mid-run (checkpointing) —
        ``start`` + ``wait`` is exactly :meth:`run`.
        """
        sim = self.cluster.sim
        return [
            sim.process(program(ep), name=f"mp.rank{ep.rank}")
            for ep in self.endpoints
        ]

    def wait(self, procs: list, limit_ms: int = 600_000) -> list:
        """Run until every process from :meth:`start` finishes."""
        sim = self.cluster.sim
        return [
            sim.run_until_done(p, limit=limit_ms * 1_000_000) for p in procs
        ]

    def run(self, program, limit_ms: int = 600_000) -> list:
        """Run ``program(endpoint)`` on every rank; returns their results."""
        return self.wait(self.start(program), limit_ms)
