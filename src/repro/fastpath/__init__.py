"""Hybrid-fidelity fast path: flow-level fast-forward under frame-level edges.

The simulator normally models every Ethernet frame as a cascade of
engine events.  During long steady-state stretches — window open, zero
loss, no ECN, no control-plane activity — that cascade computes a
perfectly predictable outcome at great expense.  This package detects
those stretches (:mod:`repro.fastpath.detector`), replaces them with a
closed-form service-curve transfer model over the edge set
(:mod:`repro.fastpath.model`), advances virtual time in one jump per
operation and synthesizes the cumulative counter deltas both hosts and
the fabric would have accumulated (:mod:`repro.fastpath.forwarder`).
Any discontinuity aborts the jump at the boundary and resumes exact
frame-level simulation.

Enable per cluster with ``ClusterConfig(fastpath=True)`` or
``Cluster.enable_fastpath()``; coverage statistics surface through
:mod:`repro.analysis`.
"""

from .detector import UNSUPPORTED_OP_FLAGS, disqualify_reason
from .forwarder import FastpathManager, FlowForwarder
from .model import PathModel
from .stats import FastpathStats

__all__ = [
    "FastpathManager",
    "FlowForwarder",
    "PathModel",
    "FastpathStats",
    "disqualify_reason",
    "UNSUPPORTED_OP_FLAGS",
]
