"""Closed-form service model of one connection direction.

:class:`PathModel` captures the arrival/service-curve parameters of the
edge set between a sender and a receiver — per-rail link rates, switch
forwarding latency and egress serialisation, NIC DMA latencies and the
mean TX scheduling jitter, interrupt-coalescing behaviour, and the
per-frame CPU costs on both hosts — so the forwarder can advance a flow
frame-by-frame with pure arithmetic instead of scheduler events.

The model is deliberately a *mean-value* model: TX jitter enters as its
expectation (``tx_jitter_ns // 2``) and interrupt coalescing as a fixed
batch factor, because consuming the NIC's jitter RNG stream from the
fast path would perturb every later frame-level draw and break the
fingerprint-parity guarantee on runs where fast-forward never arms.
The residual timing error is a per-jump constant (interrupt latency,
ack return path), bounded well under 1 % of any window long enough for
the detector to arm.
"""

from __future__ import annotations

from ..ethernet.frame import frame_sizes, max_payload_per_frame, wire_time_ns

__all__ = ["PathModel"]


class PathModel:
    """Service parameters for one directed connection (sender view)."""

    def __init__(self, conn, peer, cluster) -> None:
        self.rails = len(conn.nics)
        link = cluster.config.link
        self.prop_ns = link.propagation_ns
        self.fwd_ns = cluster.config.switch.forwarding_latency_ns
        sender_nic = conn.nics[0]
        recv_nic = peer.nics[0]
        self.speed_bps = min(link.speed_bps, sender_nic.params.speed_bps)
        self.tx_dma_ns = sender_nic.params.dma_ns
        # Expected value of the uniform [0, jitter) scheduling noise.
        self.jitter_mean_ns = sender_nic.params.tx_jitter_ns // 2
        self.rx_dma_ns = recv_nic.params.dma_ns

        sp = conn.node.params
        rp = peer.node.params
        self.per_frame_send_ns = sp.per_frame_send_ns
        self.per_frame_recv_ns = rp.per_frame_recv_ns
        self.memcpy_ns = rp.memcpy_ns

        # Interrupt coalescing on the receive side: frames per IRQ is the
        # count threshold when full-rate arrivals reach it before the
        # coalesce timer, else whatever the timer window holds.
        _, full_wire = frame_sizes(max_payload_per_frame())
        self._wt_cache: dict[int, int] = {}
        full_wt = self.wire_ns(full_wire)
        interarrival = max(1, full_wt // self.rails)
        cf = recv_nic.params.coalesce_frames
        ct = recv_nic.params.coalesce_timeout_ns
        if (cf - 1) * interarrival <= ct:
            self.rx_batch = cf
        else:
            self.rx_batch = ct // interarrival + 1
        interrupt = rp.interrupt_ns
        wakeup = rp.kthread_wakeup_ns
        # Pipeline-fill latency for a frame that has to wait out the
        # coalesce timer.
        self.irq_latency_ns = ct + interrupt + wakeup
        # Per-frame amortised IRQ handling cost, bounded by the receive
        # kthread's idle slack: if processing a full frame leaves less
        # slack than the IRQ chain costs, the kthread cannot afford to
        # sleep between batches — it keeps polling (interrupts stay
        # masked), so the flow pays at most the slack, not the chain.
        # 1 GbE: slack >> chain, interrupt-driven per coalesce batch.
        # 10 GbE: slack ~ 7%% of the chain, effectively polling.
        chain = interrupt + wakeup
        cost_full = rp.per_frame_recv_ns + rp.memcpy_ns(max_payload_per_frame())
        slack = max(0, interarrival - cost_full)
        per_batch_amort = chain // self.rx_batch
        self.irq_amortized_ns = min(per_batch_amort, slack)
        # Effective frames per raised IRQ (counter synthesis): the coalesce
        # batch when interrupt-driven, the polling stretch one IRQ opens
        # when the kthread saturates.
        if self.irq_amortized_ns >= per_batch_amort:
            self.frames_per_irq = self.rx_batch
        else:
            self.frames_per_irq = max(self.rx_batch, chain // max(1, slack))
        self.interrupt_ns = interrupt
        self.kthread_wakeup_ns = wakeup

        # Sender-side CPU occupancy beyond the pump itself.  NICs whose
        # send-completion interrupts cannot be masked (the Myricom 10-GbE
        # quirk) charge the IRQ handler on the protocol CPU every
        # ``tx_completion_batch`` frames even while the kthread is busy
        # polling; maskable NICs keep interrupts disabled for the whole
        # stream and pay nothing per frame.  Returning explicit acks
        # occupy the same CPU for one receive-processing quantum each.
        self.tx_completion_batch = sender_nic.params.tx_completion_batch
        self.unmaskable_tx_irq = sender_nic.params.unmaskable_tx_irq
        if self.unmaskable_tx_irq:
            self.tx_irq_amortized_ns = sp.interrupt_ns // self.tx_completion_batch
        else:
            self.tx_irq_amortized_ns = 0
        ack_every = peer.ack_policy.params.ack_every_frames
        self.ack_rx_amortized_ns = sp.per_frame_recv_ns // ack_every
        self.tx_busy_ns = (
            sp.per_frame_send_ns
            + self.tx_irq_amortized_ns
            + self.ack_rx_amortized_ns
        )

        # Return path of one explicit ack (84 wire bytes): serialisation +
        # two propagation hops + forwarding + DMA + the sender-side
        # interrupt/kthread/receive processing chain.
        _, ack_wire = frame_sizes(0)
        self.ack_wire_bytes = ack_wire
        self.ack_return_ns = (
            self.wire_ns(ack_wire) * 2
            + 2 * self.prop_ns
            + self.fwd_ns
            + sender_nic.params.dma_ns
            + sender_nic.params.coalesce_timeout_ns
            + sp.interrupt_ns
            + sp.kthread_wakeup_ns
            + sp.per_frame_recv_ns
        )

    def wire_ns(self, wire_bytes: int) -> int:
        t = self._wt_cache.get(wire_bytes)
        if t is None:
            t = wire_time_ns(wire_bytes, self.speed_bps)
            self._wt_cache[wire_bytes] = t
        return t
