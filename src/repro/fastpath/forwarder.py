"""Flow-level fast-forward: closed-form jumps over steady-state stretches.

A :class:`FlowForwarder` sits on ``connection.fastpath`` and intercepts
the pump.  When the steady-state detector clears the flow, the forwarder
*plans* every queued frame descriptor through the :class:`PathModel` —
walking the striping policy per frame so per-rail byte deficits advance
exactly as the frame path would — and schedules **one** cancellable
engine event per operation at the instant the receiver would finish
processing its last frame.  Descriptors stay in ``conn.unsent`` until
that event fires, so an abort rewinds an unfinished operation wholesale
to its pre-jump state.

At each op event the forwarder synthesizes, atomically, every side
effect the frame cascade would have produced: sequence/window advance,
send/receive/ack counters, ordering and watermark state, notification
delivery, memory writes, NIC/switch/link/kernel counters, and tagged CPU
charges on both hosts.  Any discontinuity — a fault, an ECN mark, a
queue drop, an edge-state transition, a NIC power event — bumps the
:class:`FastpathManager` guard, which aborts every active jump at that
boundary and drops the flows back to frame level.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..core.connection import Notification, Operation
from ..core.ordering import InOrderDelivery, RxOpState
from ..ethernet.frame import OpFlags, frame_sizes
from .detector import UNSUPPORTED_OP_FLAGS, disqualify_reason
from .model import PathModel
from .stats import FastpathStats

__all__ = ["FlowForwarder", "FastpathManager"]


class _PlannedOp:
    """One operation's analytically computed completion."""

    __slots__ = (
        "op", "n_frames", "payload_bytes", "t_event", "entry", "rail_tx",
        "writes", "memcpy_total", "n_irqs", "base_address", "strip_snapshot",
    )

    def __init__(self, op) -> None:
        self.op = op
        self.n_frames = 0
        self.payload_bytes = 0
        self.t_event = 0
        self.entry = None
        self.rail_tx: dict[int, list[int]] = {}  # rail -> [frames, wire_bytes]
        self.writes: list[tuple[int, bytes]] = []
        self.memcpy_total = 0
        self.n_irqs = 0
        self.base_address = 1 << 62
        self.strip_snapshot = None


def _snapshot_striping(striping):
    cursor = getattr(striping, "_cursor", None)
    assigned = getattr(striping, "_assigned_bytes", None)
    if cursor is None and assigned is None:
        return None
    return (cursor, list(assigned) if assigned is not None else None)


def _restore_striping(striping, snapshot) -> None:
    if snapshot is None:
        return
    cursor, assigned = snapshot
    if cursor is not None:
        striping._cursor = cursor
    if assigned is not None:
        striping._assigned_bytes[:] = assigned


class FlowForwarder:
    """Per-endpoint fast-forward state for one connection direction."""

    def __init__(self, manager: "FastpathManager", conn, peer) -> None:
        self.manager = manager
        self.conn = conn
        self.peer = peer
        self.stats = manager.stats
        self.model = PathModel(conn, peer, manager.cluster)
        self.active = False
        self._pending: deque[_PlannedOp] = deque()
        self._planned_descs = 0  # descs at the head of unsent already planned
        # Fluid timeline (absolute ns), valid while active.
        self._rail_free: list[int] = []
        self._sw_free: list[int] = []
        self._tx_cpu_free = 0
        self._rx_cpu_free = 0
        self._cover_from = 0

    # -- pump hook ---------------------------------------------------------

    def offer(self, conn) -> bool:
        """Claim this pump call; True means the frame path must not run."""
        if self.active:
            # Absorb work queued mid-jump (back-to-back submissions, pump
            # calls from probe RX tails).  An unsupported descriptor is a
            # discontinuity: abort and let the frame path take over.
            if self._plan_new():
                return True
            self.abort("mid-jump-unsupported-op", pump=False)
            return False
        if not conn.unsent:
            return False
        # This endpoint is about to transmit.  If the reverse direction is
        # mid-jump, its model assumed a dedicated receive CPU and idle
        # return path over here — no longer true, so that jump aborts at
        # this boundary (unfinished ops rewind and go frame-level).
        peer_fwd = self.peer.fastpath
        if peer_fwd is not None and peer_fwd.active:
            peer_fwd.abort("reverse-traffic")
        reason = disqualify_reason(self)
        if reason is not None:
            self.stats.deny(reason)
            return False
        self._arm()
        if not self._plan_new() or not self._pending:
            self._teardown("arming-unsupported-op")
            return False
        self.stats.jumps += 1
        return True

    def on_discontinuity(self, reason: str) -> None:
        """Connection-local discontinuity (edge transition, teardown)."""
        self.manager.bump(reason)

    # -- arming / planning -------------------------------------------------

    def _arm(self) -> None:
        sim = self.conn.sim
        now = sim.now
        self.active = True
        self._rail_free = [
            max(now, nic._line_free_at) for nic in self.conn.nics
        ]
        self._sw_free = [now] * len(self.conn.nics)
        self._tx_cpu_free = now
        self._rx_cpu_free = now
        self._cover_from = now
        # The first window's worth of TX-completion interrupts fire while
        # the sender is still window-blocked (CPU otherwise idle), so they
        # never delay a delivery; only once the flow is ack-clocked does
        # each completion batch serialize with the pump.
        self._tx_irq_free_frames = self.conn.window.limit

    def _plan_new(self) -> bool:
        """Plan unplanned descriptors; False on an unsupported shape."""
        conn = self.conn
        unsent = conn.unsent
        start = self._planned_descs
        if start >= len(unsent):
            return True
        m = self.model
        sim = conn.sim
        now = sim.now
        striping = conn.striping
        if self._tx_cpu_free < now:
            self._tx_cpu_free = now
        if self._rx_cpu_free < now:
            self._rx_cpu_free = now
        rail_free = self._rail_free
        sw_free = self._sw_free
        rec: Optional[_PlannedOp] = None
        t_deliver = self._rx_cpu_free
        for i in range(start, len(unsent)):
            desc = unsent[i]
            op = desc.op
            if (
                desc.is_read_req
                or op.kind != Operation.WRITE
                or op.flags & UNSUPPORTED_OP_FLAGS
            ):
                return False
            if rec is None or rec.op is not op:
                if rec is not None:
                    self._commit_planned(rec, t_deliver, sim)
                rec = _PlannedOp(op)
                rec.strip_snapshot = _snapshot_striping(striping)
            plen = desc.payload_len
            _, wire = frame_sizes(plen)
            rail = striping.next_rail(plen or 64)
            if rail is None:
                return False
            wt = m.wire_ns(wire)
            tx_cost = m.tx_busy_ns
            if self._tx_irq_free_frames > 0:
                tx_cost -= m.tx_irq_amortized_ns
                self._tx_irq_free_frames -= 1
            self._tx_cpu_free += tx_cost
            depart = max(
                self._tx_cpu_free + m.tx_dma_ns + m.jitter_mean_ns,
                rail_free[rail],
            ) + wt
            rail_free[rail] = depart
            out = max(depart + m.prop_ns + m.fwd_ns, sw_free[rail]) + wt
            sw_free[rail] = out
            visible = out + m.prop_ns + m.rx_dma_ns
            cost = m.per_frame_recv_ns + m.memcpy_ns(plen)
            t_deliver = (
                max(visible + m.irq_latency_ns, self._rx_cpu_free)
                + cost
                + m.irq_amortized_ns
            )
            self._rx_cpu_free = t_deliver
            rec.n_frames += 1
            rec.payload_bytes += plen
            rec.memcpy_total += m.memcpy_ns(plen)
            if desc.remote_address < rec.base_address:
                rec.base_address = desc.remote_address
            tx = rec.rail_tx.get(rail)
            if tx is None:
                rec.rail_tx[rail] = [1, wire]
            else:
                tx[0] += 1
                tx[1] += wire
            if desc.payload is not None:
                rec.writes.append((desc.remote_address, desc.payload))
            self._planned_descs += 1
        if rec is not None:
            self._commit_planned(rec, t_deliver, sim)
        return True

    def _commit_planned(self, rec: _PlannedOp, t_deliver: int, sim) -> None:
        rec.n_irqs = -(-rec.n_frames // self.model.frames_per_irq)
        rec.t_event = max(t_deliver, sim.now + 1)
        rec.entry = sim.schedule_cancellable(
            rec.t_event - sim.now, self._fire, rec
        )
        self._pending.append(rec)

    # -- synthesis ---------------------------------------------------------

    def _fire(self, rec: _PlannedOp) -> None:
        if not self.active or not self._pending or self._pending[0] is not rec:
            return
        self._pending.popleft()
        conn = self.conn
        peer = self.peer
        sim = conn.sim
        now = sim.now
        m = self.model
        op = rec.op
        n = rec.n_frames

        # Sender: consume the descriptors and advance the send window as
        # if every frame had been transmitted and cumulatively acked.
        unsent = conn.unsent
        for _ in range(n):
            unsent.popleft()
        self._planned_descs -= n
        conn.window.next_seq += n
        cs = conn.stats
        cs.data_frames_sent += n
        cs.data_bytes_sent += rec.payload_bytes
        cs.piggybacked_acks += n
        cs.pump_charged_ns += n * m.per_frame_send_ns
        conn.ack_policy.on_ack_emitted(conn.tracker.cum_ack, piggybacked=True)
        conn._cancel_delayed_ack()

        # Receiver: deliver the operation in sequence.
        peer.tracker.expected += n
        ordering = peer.ordering
        if isinstance(ordering, InOrderDelivery):
            ordering._next_apply += n
        ps = peer.stats
        ps.data_frames_received += n
        ps.data_bytes_received += rec.payload_bytes
        rx = ordering.ops.get(op.op_seq)
        if rx is None:
            rx = RxOpState(
                op_id=op.op_id,
                op_seq=op.op_seq,
                flags=int(op.flags),
                length=op.length,
            )
            ordering.ops[op.op_seq] = rx
        if rec.base_address < rx.base_address:
            rx.base_address = rec.base_address
        rx.bytes_applied += rec.payload_bytes
        if rec.writes:
            memory = peer.node.memory
            for address, data in rec.writes:
                memory.write(address, data)
        if rx.bytes_applied >= rx.length and not rx.complete:
            rx.complete = True
            rx.src_node = peer.peer_node_id
            ordering._advance_watermark()
            if rx.wants_notification() and not rx.is_read_request:
                peer.notifications.put(
                    Notification(
                        op_id=rx.op_id,
                        src_node=peer.peer_node_id,
                        address=rx.base_address,
                        length=rx.length,
                        delivered_at=now,
                    )
                )
                ps.notifications_delivered += 1

        # Explicit acks at the receiver's cadence; the tail remainder is
        # flushed by the delayed-ack path once the stream goes idle, so
        # the final planned op carries it.
        ap = peer.ack_policy
        unacked = ap._unacked_frames + n
        acks, remainder = divmod(unacked, ap.params.ack_every_frames)
        if not self._pending and remainder:
            acks += 1
            remainder = 0
        if acks:
            ps.explicit_acks_sent += acks
            cs.explicit_acks_received += acks
            ap.on_ack_emitted(peer.tracker.cum_ack, piggybacked=False)
        ap._unacked_frames = remainder

        # Operation completion (ack covering the last frame).
        op.frames_acked = op.frames_total
        if not op.completed:
            conn._complete_local_op(op)

        self._charge_cpu(rec, acks)
        self._count_devices(rec, acks)

        st = self.stats
        st.ops_synthesized += 1
        st.ff_frames += n
        st.ff_bytes += rec.payload_bytes
        st.ff_acks += acks
        st.ff_virtual_ns += now - self._cover_from
        self._cover_from = now

        if not self._pending:
            self.active = False

    def _charge_cpu(self, rec: _PlannedOp, acks: int) -> None:
        m = self.model
        conn, peer = self.conn, self.peer
        # Sender: pump work plus the ack receive chain.
        sp = conn.node.params
        send_ns = rec.n_frames * m.per_frame_send_ns
        sacct = conn.node.accounting
        sacct.charge("protocol.send", send_ns)
        stotal = send_ns
        if acks:
            sacct.charge("protocol.recv", acks * sp.per_frame_recv_ns)
            sacct.charge("interrupt", acks * sp.interrupt_ns)
            sacct.charge("protocol.wakeup", acks * sp.kthread_wakeup_ns)
            stotal += acks * (
                sp.per_frame_recv_ns + sp.interrupt_ns + sp.kthread_wakeup_ns
            )
        n_tx_irqs = 0
        if m.unmaskable_tx_irq:
            n_tx_irqs = rec.n_frames // m.tx_completion_batch
            if n_tx_irqs:
                sacct.charge("interrupt", n_tx_irqs * sp.interrupt_ns)
                stotal += n_tx_irqs * sp.interrupt_ns
        conn.node.protocol_cpu.resource.busy_time += stotal
        skern = getattr(conn.node, "kernel", None)
        if skern is not None and (acks or n_tx_irqs):
            skern.irqs_handled += acks + n_tx_irqs
            skern.kthread_wakeups += acks
        # Receiver: per-frame processing, copies, IRQ batches.
        recv_ns = rec.n_frames * m.per_frame_recv_ns + rec.memcpy_total
        irq_ns = rec.n_irqs * m.interrupt_ns
        wake_ns = rec.n_irqs * m.kthread_wakeup_ns
        racct = peer.node.accounting
        racct.charge("protocol.recv", recv_ns)
        racct.charge("interrupt", irq_ns)
        racct.charge("protocol.wakeup", wake_ns)
        peer.node.protocol_cpu.resource.busy_time += recv_ns + irq_ns + wake_ns
        rkern = getattr(peer.node, "kernel", None)
        if rkern is not None:
            rkern.irqs_handled += rec.n_irqs
            rkern.kthread_wakeups += rec.n_irqs

    def _count_devices(self, rec: _PlannedOp, acks: int) -> None:
        conn, peer = self.conn, self.peer
        m = self.model
        busiest_rail = 0
        busiest = -1
        for rail, (cnt, wbytes) in rec.rail_tx.items():
            tx = conn.nics[rail].counters
            tx.tx_frames += cnt
            tx.tx_bytes += wbytes
            if m.unmaskable_tx_irq:
                txirqs = cnt // m.tx_completion_batch
                tx.tx_irqs_raised += txirqs
                tx.irqs_raised += txirqs
            peer.nics[rail].counters.rx_frames += cnt
            if cnt > busiest:
                busiest, busiest_rail = cnt, rail
            self.manager.note_switch_traffic(
                rail, conn.node.node_id, peer.node.node_id, cnt, wbytes
            )
            link = conn.nics[rail].tx_link
            if link is not None:
                link.frames_delivered += cnt
                link.bytes_delivered += wbytes
        peer.nics[busiest_rail].counters.irqs_raised += rec.n_irqs
        for _ in range(acks):
            crail = peer.striping.control_rail()
            if crail is None:
                continue
            atx = peer.nics[crail].counters
            atx.tx_frames += 1
            atx.tx_bytes += m.ack_wire_bytes
            arx = conn.nics[crail].counters
            arx.rx_frames += 1
            arx.irqs_raised += 1
            self.manager.note_switch_traffic(
                crail, peer.node.node_id, conn.node.node_id, 1,
                m.ack_wire_bytes,
            )
            link = peer.nics[crail].tx_link
            if link is not None:
                link.frames_delivered += 1
                link.bytes_delivered += m.ack_wire_bytes

    # -- abort -------------------------------------------------------------

    def abort(self, reason: str, pump: bool = True) -> None:
        """Cancel every pending jump; unfinished ops rewind to ``unsent``."""
        if not self.active:
            return
        self._teardown(reason, note=True)
        conn = self.conn
        if pump and not conn.closed and conn.has_send_work():
            conn.sim.process(conn._timer_pump())

    def _teardown(self, reason: str, note: bool = False) -> None:
        self.active = False
        sim = self.conn.sim
        first = self._pending[0] if self._pending else None
        for rec in self._pending:
            sim.cancel_scheduled(rec.entry)
        if first is not None:
            _restore_striping(self.conn.striping, first.strip_snapshot)
        self._pending.clear()
        self._planned_descs = 0
        if note:
            self.stats.note_abort(reason)


class FastpathManager:
    """Cluster-level owner: forwarders, the guard, and coverage stats."""

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        self.stats = FastpathStats()
        self.forwarders: list[FlowForwarder] = []
        self._wire_guards()

    # -- wiring ------------------------------------------------------------

    def attach(self, conn) -> None:
        """Put a forwarder on one connection endpoint (idempotent)."""
        existing = conn.fastpath
        if existing is not None and existing.manager is self:
            return
        peer_stack = self.cluster.stacks[conn.peer_node_id]
        peer = peer_stack.protocol.connections.get(conn.conn_id)
        if peer is None:
            raise ValueError(
                f"peer endpoint of connection {conn.conn_id} does not exist"
            )
        forwarder = FlowForwarder(self, conn, peer)
        conn.fastpath = forwarder
        self.forwarders.append(forwarder)

    def attach_all(self) -> None:
        for stack in self.cluster.stacks:
            for conn in list(stack.protocol.connections.values()):
                self.attach(conn)

    def _wire_guards(self) -> None:
        """Point every device-level discontinuity hook at this manager."""
        for cable in self.cluster._cables.values():
            cable.ab.fastpath_guard = self
            cable.ba.fastpath_guard = self
        for node in self.cluster.nodes:
            for nic in node.nics:
                nic.fastpath_guard = self
        for switch in self.cluster.all_switches:
            for port in switch.ports:
                port.fastpath_guard = self

    # -- discontinuities ---------------------------------------------------

    def bump(self, reason: str) -> None:
        """A discontinuity fired somewhere: abort every active jump."""
        self.stats.guard_bumps += 1
        for forwarder in self.forwarders:
            if forwarder.active:
                forwarder.abort(reason)

    # -- fabric-level detector checks -------------------------------------

    def fabric_disqualify_reason(self, conn, peer) -> Optional[str]:
        cluster = self.cluster
        config = cluster.config
        serve = getattr(cluster, "serve", None)
        if serve is not None:
            # Open-loop serving traffic (repro.serve): an armed arrival
            # source guarantees future requests at times the analytic
            # model cannot see, and request/response traffic is
            # bidirectional by construction — the reverse leg would be
            # jumped over.  Both must refuse fast-forward.
            if serve.arrivals_armed:
                return "serve-arrivals-armed"
            if serve.active:
                return "serve-traffic-active"
        if getattr(cluster, "fabrics", None):
            # Multi-switch datacenter fabric (repro.fabric): per-hop
            # store-and-forward latency and ECMP path choice are exactly
            # the dynamics the analytic jump cannot reproduce — and
            # ``cluster.switches`` is empty, so every check below would
            # be looking at the wrong topology anyway.
            return "multi-hop-fabric"
        if config.leaf_switches > 1:
            return "multi-hop-fabric"
        if config.link.bit_error_rate > 0.0:
            return "lossy-link"
        for rail in range(len(conn.nics)):
            switch = cluster.switches[rail]
            if switch.params.ecn_threshold_frames is not None:
                return "ecn-enabled"
            if switch.total_queue_depth:
                return "switch-queue-occupied"
        for stack in cluster.stacks:
            for other in stack.protocol.connections.values():
                if other is conn or other is peer:
                    continue
                if (
                    other.unsent
                    or other.window.inflight
                    or other._retransmit_q
                ):
                    return "fabric-busy"
        return None

    # -- synthesized fabric counters --------------------------------------

    def note_switch_traffic(
        self, rail: int, src_node: int, dst_node: int, frames: int, _wbytes: int
    ) -> None:
        switch = self.cluster.switches[rail]
        switch.forwarded += frames
        port = switch.ports[dst_node]
        port.tx_frames += frames
        link = port.tx_link
        if link is not None:
            link.frames_delivered += frames
            link.bytes_delivered += _wbytes

    # -- reporting ---------------------------------------------------------

    def coverage(self) -> dict:
        """Coverage against the cluster's current totals (analysis probe)."""
        total_bytes = sum(
            stack.protocol.total_stats().data_bytes_sent
            for stack in self.cluster.stacks
        )
        report = self.stats.coverage(self.cluster.sim.now, total_bytes)
        report["pending_horizon_ns"] = self.cluster.sim.next_event_time()
        return report
