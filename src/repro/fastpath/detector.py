"""Steady-state detector: may this connection fast-forward right now?

:func:`disqualify_reason` is a pure inspection — it draws no random
numbers, touches no striping deficits, and schedules nothing — so a run
with fastpath *enabled but never armed* stays event-for-event identical
to a run without the subsystem.  It returns ``None`` when the flow is in
analytic steady state, or a stable reason string naming the first
disqualifying condition found (cheapest checks first).

The arming predicate, spelled out (see DESIGN.md "Hybrid fidelity"):
window fully open or cwnd-stable, zero loss (no retransmit queue, no
receive gaps, nothing in flight), no ECN marks or echoes pending, no
fence/fault/failover/journal activity on the edge set, an otherwise
quiet fabric, and a transfer shape the closed-form model covers.
"""

from __future__ import annotations

from ..ethernet.frame import OpFlags

__all__ = ["disqualify_reason", "UNSUPPORTED_OP_FLAGS"]

# Operation shapes the closed-form model does not cover: fences change
# completion ordering, scatter payloads change receiver memory traffic,
# journaled messages need dedup bookkeeping.  Reads are rejected by kind.
UNSUPPORTED_OP_FLAGS = (
    OpFlags.FENCE_BACKWARD | OpFlags.FENCE_FORWARD
    | OpFlags.SCATTER | OpFlags.JOURNALED
)


def _timer_active(timer) -> bool:
    return timer is not None and timer.active


def disqualify_reason(fwd):
    """``None`` if ``fwd.conn`` may arm, else the disqualifying reason."""
    conn = fwd.conn
    peer = fwd.peer

    # The invariant monitor checks per-event conservation laws that a
    # closed-form jump satisfies only at op boundaries; monitored runs
    # stay frame-level so every invariant holds at every instant.
    if conn.monitor is not None or peer.monitor is not None:
        return "monitor-attached"
    if conn.closed or peer.closed:
        return "connection-closed"

    # Crash recovery: incarnation stamping and journal replay are
    # discontinuities by definition.
    recovery = conn.recovery or peer.recovery
    if recovery is not None:
        for channel in getattr(recovery, "_channels", {}).values():
            if channel._ready is not None:
                return "journal-replay-in-flight"
        return "recovery-active"

    # Zero-loss steady state: nothing queued for retransmission, nothing
    # unacknowledged in flight, no receive gaps on either side.
    if conn._retransmit_q or peer._retransmit_q:
        return "open-loss-episode"
    if conn.window.inflight or peer.window.inflight:
        return "frames-in-flight"
    if conn.tracker.has_gap() or peer.tracker.has_gap():
        return "open-loss-episode"

    # ECN: no mark may be pending anywhere on the path and no echo debt
    # outstanding; marking itself is a discontinuity, so fabrics with
    # marking enabled stay frame-level entirely.
    if conn.ack_policy.echo_pending or peer.ack_policy.echo_pending:
        return "pending-ecn-echo"

    # Ack machinery quiescent: no unacked receive credit, no armed
    # delayed-ack/NACK timers whose firing the jump would have to model.
    if conn.ack_policy._unacked_frames or peer.ack_policy._unacked_frames:
        return "unacked-frames"
    if _timer_active(conn._delayed_ack_timer) or _timer_active(
        peer._delayed_ack_timer
    ):
        return "delayed-ack-armed"
    if _timer_active(conn._nack_timer) or _timer_active(peer._nack_timer):
        return "nack-timer-armed"

    if conn._forward_fences or peer._forward_fences:
        return "fence-active"
    if conn._pending_reads or peer._pending_reads:
        return "read-in-flight"
    # The reverse direction must be idle: a peer concurrently streaming
    # shares the receive CPU the model assumes dedicated.
    if peer.unsent:
        return "peer-sending"

    # Window fully open relative to the receiver's ack cadence, so flow
    # control can never bind mid-jump (peak synthesized in-flight stays
    # below one ack batch plus pipeline slack).
    if conn.window.limit < 2 * peer.ack_policy.params.ack_every_frames:
        return "window-too-small"

    # Congestion control stable (static policy is always stable); pacing
    # shapes departures in a way the model does not reproduce.
    cc = conn._cc
    if cc is not None and not cc.cwnd_stable(conn.sim.now):
        return "cwnd-unstable"
    if conn._pacing_on or peer._pacing_on:
        return "pacing-enabled"
    for nic in conn.nics:
        if nic.pacer is not None:
            return "pacing-enabled"

    # Control plane: every edge UP on both sides (a SUSPECT edge may
    # transition any moment; heartbeat traffic itself keeps flowing as
    # real frames during a jump and is unaffected).
    for plane in (conn.control_plane, peer.control_plane):
        if plane is None:
            continue
        for state in plane.states:
            if state.name != "UP":
                return "edge-not-up"

    # NIC / fabric quiescent along the path.
    for nic in conn.nics:
        if not nic.powered:
            return "nic-powered-off"
        if nic._tx_ring_used:
            return "nic-busy"
    for nic in peer.nics:
        if not nic.powered:
            return "nic-powered-off"
        if nic._rx_inflight or nic._rx_pending:
            return "nic-busy"

    return fwd.manager.fabric_disqualify_reason(conn, peer)
