"""Fast-forward coverage and arming statistics.

One :class:`FastpathStats` per :class:`~repro.fastpath.FastpathManager`.
Counters are plain attributes (never fuzz-fingerprinted) so enabling the
subsystem cannot perturb pinned fingerprints.  The coverage figures —
what fraction of virtual time and of transferred bytes was simulated
analytically instead of frame by frame — feed the analysis probe and the
``BENCH_fastpath.json`` records.
"""

from __future__ import annotations

__all__ = ["FastpathStats"]


class FastpathStats:
    """Arming outcomes plus analytic-coverage accumulators."""

    def __init__(self) -> None:
        self.jumps = 0  # times a flow armed and fast-forwarded
        self.aborts = 0  # jumps cut short by a discontinuity
        self.ops_synthesized = 0  # operations completed analytically
        self.guard_bumps = 0  # discontinuity signals received
        # Virtual nanoseconds covered by closed-form jumps (only windows
        # that actually synthesized; aborted windows are not credited).
        self.ff_virtual_ns = 0
        self.ff_bytes = 0  # payload bytes moved analytically
        self.ff_frames = 0  # data frames synthesized (never built)
        self.ff_acks = 0  # explicit acks synthesized
        # Why the detector refused to arm / why jumps aborted.
        self.denials: dict[str, int] = {}
        self.abort_reasons: dict[str, int] = {}

    def reset(self) -> None:
        """Zero every counter in place (measurement-window reset).

        In place because forwarders alias the manager's stats object;
        benchmarks call this between warmup and measurement alongside the
        ConnectionStats replacement.
        """
        self.__init__()

    def deny(self, reason: str) -> None:
        self.denials[reason] = self.denials.get(reason, 0) + 1

    def note_abort(self, reason: str) -> None:
        self.aborts += 1
        self.abort_reasons[reason] = self.abort_reasons.get(reason, 0) + 1

    # -- reporting ---------------------------------------------------------

    def coverage(self, elapsed_ns: int, total_bytes: int) -> dict:
        """Coverage fractions against a run's elapsed time / moved bytes."""
        time_pct = (
            100.0 * self.ff_virtual_ns / elapsed_ns if elapsed_ns > 0 else 0.0
        )
        byte_pct = (
            100.0 * self.ff_bytes / total_bytes if total_bytes > 0 else 0.0
        )
        return {
            "virtual_time_pct": time_pct,
            "bytes_pct": byte_pct,
            "jumps": self.jumps,
            "aborts": self.aborts,
            "ops_synthesized": self.ops_synthesized,
            "ff_virtual_ns": self.ff_virtual_ns,
            "ff_bytes": self.ff_bytes,
            "ff_frames": self.ff_frames,
            "ff_acks": self.ff_acks,
        }

    def to_dict(self) -> dict:
        return {
            "jumps": self.jumps,
            "aborts": self.aborts,
            "ops_synthesized": self.ops_synthesized,
            "guard_bumps": self.guard_bumps,
            "ff_virtual_ns": self.ff_virtual_ns,
            "ff_bytes": self.ff_bytes,
            "ff_frames": self.ff_frames,
            "ff_acks": self.ff_acks,
            "denials": dict(self.denials),
            "abort_reasons": dict(self.abort_reasons),
        }
