"""Tail-latency accounting: HDR-style histograms and SLO objects.

Serving systems live and die by their tails: a mean latency says nothing
about the p99 a user actually experiences under open-loop load (the
serving layer, :mod:`repro.serve`, never slows its arrival process down
just because the system is struggling — that is what makes the tail
honest).  This module provides the two measurement primitives the layer
reports through:

* :class:`LatencyHistogram` — a log-bucketed (HDR-style) histogram over
  non-negative integer nanoseconds.  Values below 2**7 are recorded
  exactly; above that, each power of two is split into 128 linear
  sub-buckets, bounding the relative quantization error of any recorded
  value by 1/128 (< 0.8%).  Histograms are sparse dicts, cheap to merge
  (counts add), and merging is associative and commutative — so
  per-node histograms can be combined in any order into one cluster-wide
  tail without shipping raw samples.
* :class:`SloSpec` / :class:`SloReport` — declarative service-level
  objectives (``p99 < X ms``, max shed fraction, max deadline-miss
  fraction) evaluated against a histogram + counters into an attainment
  report.

Percentiles use the nearest-rank definition: ``percentile(99)`` is the
smallest recorded bucket such that at least 99% of all recorded values
are at or below it.  The returned value is the bucket midpoint, so the
oracle error is at most half a sub-bucket (1/256 relative).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = ["LatencyHistogram", "SloSpec", "SloReport"]

_SUB_BITS = 7  # 128 linear sub-buckets per power of two
_SUB = 1 << _SUB_BITS


def _index_of(value: int) -> int:
    """Bucket index for a non-negative integer value.

    ``value < 256`` maps to itself (shift 0: exact below 128, and the
    first power-of-two region is already at full sub-bucket resolution);
    above that, the top 8 bits select the bucket.
    """
    if value < 2 * _SUB:
        return value
    shift = value.bit_length() - 1 - _SUB_BITS
    return (shift << _SUB_BITS) + (value >> shift)


def _bucket_bounds(index: int) -> tuple[int, int]:
    """Inclusive [lo, hi] value range covered by bucket ``index``."""
    if index < 2 * _SUB:
        return index, index
    shift = (index >> _SUB_BITS) - 1
    sub = _SUB + (index & (_SUB - 1))
    lo = sub << shift
    return lo, lo + (1 << shift) - 1


class LatencyHistogram:
    """Sparse log-bucketed latency histogram (values in integer ns)."""

    __slots__ = ("counts", "total", "min_value", "max_value", "sum_value")

    def __init__(self) -> None:
        self.counts: dict[int, int] = {}
        self.total = 0
        self.min_value: Optional[int] = None
        self.max_value: Optional[int] = None
        self.sum_value = 0

    # -- recording ---------------------------------------------------------

    def record(self, value: int, count: int = 1) -> None:
        if value < 0:
            raise ValueError("latency values must be non-negative")
        if count < 1:
            raise ValueError("count must be positive")
        value = int(value)
        idx = _index_of(value)
        self.counts[idx] = self.counts.get(idx, 0) + count
        self.total += count
        self.sum_value += value * count
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value

    def record_many(self, values: Iterable[int]) -> None:
        for v in values:
            self.record(v)

    # -- merging -----------------------------------------------------------

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other`` into this histogram in place; returns self."""
        for idx, count in other.counts.items():
            self.counts[idx] = self.counts.get(idx, 0) + count
        self.total += other.total
        self.sum_value += other.sum_value
        for bound in (other.min_value,):
            if bound is not None and (
                self.min_value is None or bound < self.min_value
            ):
                self.min_value = bound
        for bound in (other.max_value,):
            if bound is not None and (
                self.max_value is None or bound > self.max_value
            ):
                self.max_value = bound
        return self

    @classmethod
    def merged(cls, parts: Iterable["LatencyHistogram"]) -> "LatencyHistogram":
        out = cls()
        for part in parts:
            out.merge(part)
        return out

    # -- queries -----------------------------------------------------------

    def percentile(self, pct: float) -> int:
        """Nearest-rank percentile (bucket midpoint); 0 when empty."""
        if not 0 < pct <= 100:
            raise ValueError("percentile must be in (0, 100]")
        if self.total == 0:
            return 0
        rank = max(1, -(-int(pct * self.total) // 100))  # ceil(pct% * n)
        seen = 0
        for idx in sorted(self.counts):
            seen += self.counts[idx]
            if seen >= rank:
                lo, hi = _bucket_bounds(idx)
                return (lo + hi) // 2
        lo, hi = _bucket_bounds(max(self.counts))
        return (lo + hi) // 2

    @property
    def p50(self) -> int:
        return self.percentile(50)

    @property
    def p99(self) -> int:
        return self.percentile(99)

    @property
    def p999(self) -> int:
        return self.percentile(99.9)

    @property
    def mean(self) -> float:
        return self.sum_value / self.total if self.total else 0.0

    # -- serialization (benchmark JSON) -------------------------------------

    def to_dict(self) -> dict:
        return {
            "counts": {str(k): v for k, v in sorted(self.counts.items())},
            "total": self.total,
            "min": self.min_value,
            "max": self.max_value,
            "sum": self.sum_value,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LatencyHistogram":
        out = cls()
        out.counts = {int(k): int(v) for k, v in data["counts"].items()}
        out.total = int(data["total"])
        out.min_value = data["min"]
        out.max_value = data["max"]
        out.sum_value = int(data["sum"])
        return out

    def __eq__(self, other) -> bool:
        if not isinstance(other, LatencyHistogram):
            return NotImplemented
        return (
            self.counts == other.counts
            and self.total == other.total
            and self.min_value == other.min_value
            and self.max_value == other.max_value
            and self.sum_value == other.sum_value
        )

    def __repr__(self) -> str:
        return (
            f"LatencyHistogram(n={self.total}, p50={self.p50}, "
            f"p99={self.p99}, p999={self.p999})"
        )


@dataclass(frozen=True)
class SloSpec:
    """A service-level objective over one latency distribution.

    Latency bounds are in milliseconds (``None`` disables that clause);
    fractions are in [0, 1].  All configured clauses must hold for the
    SLO to be attained.
    """

    p50_ms: Optional[float] = None
    p99_ms: Optional[float] = None
    p999_ms: Optional[float] = None
    max_shed_fraction: Optional[float] = None
    max_deadline_miss_fraction: Optional[float] = None

    def evaluate(
        self,
        hist: LatencyHistogram,
        shed_fraction: float = 0.0,
        deadline_miss_fraction: float = 0.0,
    ) -> "SloReport":
        clauses: dict[str, bool] = {}
        for name, bound_ms, pct in (
            ("p50", self.p50_ms, 50),
            ("p99", self.p99_ms, 99),
            ("p999", self.p999_ms, 99.9),
        ):
            if bound_ms is not None:
                clauses[name] = hist.percentile(pct) < bound_ms * 1e6
        if self.max_shed_fraction is not None:
            clauses["shed"] = shed_fraction <= self.max_shed_fraction
        if self.max_deadline_miss_fraction is not None:
            clauses["deadline"] = (
                deadline_miss_fraction <= self.max_deadline_miss_fraction
            )
        return SloReport(
            spec=self,
            attained=all(clauses.values()),
            clauses=clauses,
            p50_ns=hist.p50,
            p99_ns=hist.p99,
            p999_ns=hist.p999,
            shed_fraction=shed_fraction,
            deadline_miss_fraction=deadline_miss_fraction,
        )


@dataclass
class SloReport:
    """Attainment of one :class:`SloSpec` against measured data."""

    spec: SloSpec
    attained: bool
    clauses: dict = field(default_factory=dict)
    p50_ns: int = 0
    p99_ns: int = 0
    p999_ns: int = 0
    shed_fraction: float = 0.0
    deadline_miss_fraction: float = 0.0

    def to_dict(self) -> dict:
        return {
            "attained": self.attained,
            "clauses": dict(self.clauses),
            "p50_ms": round(self.p50_ns / 1e6, 4),
            "p99_ms": round(self.p99_ns / 1e6, 4),
            "p999_ms": round(self.p999_ns / 1e6, 4),
            "shed_fraction": round(self.shed_fraction, 6),
            "deadline_miss_fraction": round(self.deadline_miss_fraction, 6),
        }
