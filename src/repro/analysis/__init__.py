"""Measurement probes and cluster-wide summaries."""

from .latency import LatencyHistogram, SloReport, SloSpec
from .probes import (
    CwndProbe,
    EdgeScoreProbe,
    FastForwardProbe,
    InflightProbe,
    MarkedFractionProbe,
    PacingStallProbe,
    QueueProbe,
    ReconnectLatencyProbe,
    Sample,
    ThroughputProbe,
)
from .summary import (
    ClusterSummary,
    RailCounters,
    SwitchCounters,
    ascii_histogram,
    reorder_histogram,
    summarize_cluster,
)

__all__ = [
    "LatencyHistogram",
    "SloSpec",
    "SloReport",
    "ThroughputProbe",
    "QueueProbe",
    "InflightProbe",
    "EdgeScoreProbe",
    "CwndProbe",
    "MarkedFractionProbe",
    "PacingStallProbe",
    "FastForwardProbe",
    "ReconnectLatencyProbe",
    "Sample",
    "ClusterSummary",
    "RailCounters",
    "SwitchCounters",
    "summarize_cluster",
    "reorder_histogram",
    "ascii_histogram",
]
