"""Measurement probes and cluster-wide summaries."""

from .probes import InflightProbe, QueueProbe, Sample, ThroughputProbe
from .summary import (
    ClusterSummary,
    ascii_histogram,
    reorder_histogram,
    summarize_cluster,
)

__all__ = [
    "ThroughputProbe",
    "QueueProbe",
    "InflightProbe",
    "Sample",
    "ClusterSummary",
    "summarize_cluster",
    "reorder_histogram",
    "ascii_histogram",
]
