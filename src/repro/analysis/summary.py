"""Cluster-wide measurement summaries.

Turns the counters scattered across NICs, switches, connections, and CPU
accounting into one flat report — the "detailed network statistics" view
the paper builds its §4 analysis on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..bench.cluster import Cluster
from ..core import merge_stats
from ..core.stats import ConnectionStats

__all__ = [
    "ClusterSummary",
    "RailCounters",
    "SwitchCounters",
    "summarize_cluster",
    "reorder_histogram",
    "ascii_histogram",
]


@dataclass
class RailCounters:
    """Hardware counters rolled up per rail across every node."""

    rail: int
    tx_frames: int
    tx_bytes: int
    rx_frames: int
    ring_drops: int
    crc_drops: int
    irqs: int


@dataclass
class SwitchCounters:
    """One switch's counters, keyed by name (multi-switch fabrics give
    every switch a distinct name; classic configs have one per rail)."""

    name: str
    tier: str  # "leaf"/"spine"/"edge"/"agg"/"core"; "" for classic wiring
    forwarded: int
    dropped_total: int
    dropped_queue_full: int
    ce_marked: int
    peak_queue_depth: int
    tx_frames: int
    tx_bytes: int  # bytes this switch's egress links delivered
    # ECMP counters (zero on classic learning switches).
    ecmp_routed: int = 0
    repins: int = 0


@dataclass
class ClusterSummary:
    """Flat roll-up of every layer's counters."""

    elapsed_ns: int
    # Protocol layer.
    data_frames: int
    data_bytes: int
    explicit_acks: int
    nacks: int
    retransmissions: int
    duplicates: int
    out_of_order_fraction: float
    extra_frame_fraction: float
    mean_reorder_distance: float
    # Hardware layer.
    wire_frames: int
    wire_bytes: int
    irqs: int
    switch_drops: int
    nic_ring_drops: int
    crc_drops: int
    # Host layer.
    protocol_cpu_fraction_mean: float
    # Event-loop behaviour (see repro.sim.core.Simulator).  Regressions in
    # scheduling structure show up here before they show up as wall time.
    events_processed: int = 0
    heap_pushes: int = 0
    fastlane_hits: int = 0
    cancelled_popped: int = 0
    # Congestion management (repro.congestion; all zero with ECN off and
    # the static controller).
    ce_marked: int = 0  # frames CE-marked by any switch output queue
    ce_received: int = 0  # CE-marked sequenced frames seen by receivers
    ecn_echoes_sent: int = 0  # acks/nacks/data frames that carried the echo
    ecn_echoes_received: int = 0
    pacing_stall_ns: int = 0  # total token-bucket wait across all NICs
    congestion_controllers: list[str] = field(default_factory=list)
    cwnd_final_mean: float = 0.0  # mean final cwnd over adaptive connections
    # Edge lifecycle (populated when the control plane is in use).
    rails: list["RailCounters"] = field(default_factory=list)
    edge_history: list = field(default_factory=list)  # EdgeTransition, by time
    edges_failed: int = 0  # transitions into DOWN
    edges_recovered: int = 0  # DOWN/RECOVERING -> UP transitions
    frames_migrated: int = 0  # in-flight frames re-striped off dead rails
    # Hybrid-fidelity fast path (repro.fastpath; all zero when disabled).
    ff_jumps: int = 0
    ff_aborts: int = 0
    ff_ops_synthesized: int = 0
    ff_virtual_ns: int = 0  # virtual time covered by closed-form jumps
    ff_bytes: int = 0  # payload bytes moved analytically
    ff_frames: int = 0  # data frames synthesized instead of simulated
    # Crash recovery (repro.recovery; all zero without crash faults).
    node_crashes: int = 0
    node_restarts: int = 0
    peer_down_events: int = 0  # all-edges-DOWN escalations
    reconnects: int = 0
    reconnects_failed: int = 0
    reconnect_latency_mean_ns: float = 0.0
    reconnect_latency_max_ns: int = 0
    stale_frames_rejected: int = 0  # dead-incarnation frames dropped
    duplicate_msgs_suppressed: int = 0  # journal redeliveries deduped
    messages_journaled: int = 0
    messages_redelivered: int = 0
    # Per-switch roll-up, keyed by switch name (repro.fabric gives every
    # fabric switch a distinct name; classic configs list one per rail).
    switches: list["SwitchCounters"] = field(default_factory=list)
    # Serving layer (repro.serve; all zero without enable_serving()).
    requests_generated: int = 0
    requests_completed: int = 0
    requests_shed: int = 0  # server-side sheds + client-side outbox rejects
    requests_failed: int = 0
    requests_replayed: int = 0
    deadline_missed: int = 0
    serve_p50_ns: int = 0
    serve_p99_ns: int = 0
    serve_p999_ns: int = 0
    serve_shed_fraction: float = 0.0
    # Tail tolerance (repro.serve.tail; all zero without a TailSpec).
    hedges_sent: int = 0
    hedges_won: int = 0
    retries_shed: int = 0  # shed responses retried on another server
    retries_denied: int = 0  # extra attempts refused by the retry budget
    breaker_opens: int = 0
    ejections: int = 0
    serve_p99_by_server: dict = field(default_factory=dict)
    # Gray-failure detection (repro.control.grayscore; empty/zero without
    # enable_gray_detection()).  State residency is summed across every
    # watched edge, keyed by lifecycle state name ("up", "degraded", ...).
    edge_state_time_ns: dict = field(default_factory=dict)
    gray_checks: int = 0
    gray_degrade_marks: int = 0
    gray_degrade_clears: int = 0
    gray_flagged_edges: int = 0  # edges DEGRADED at summary time

    @property
    def tier_drops(self) -> dict:
        """Total drops per fabric tier (empty-string tier for classic
        single-switch wiring)."""
        out: dict = {}
        for sc in self.switches:
            out[sc.tier] = out.get(sc.tier, 0) + sc.dropped_total
        return out

    @property
    def fastlane_fraction(self) -> float:
        """Share of scheduled work that skipped the heap."""
        total = self.heap_pushes + self.fastlane_hits
        return self.fastlane_hits / total if total else 0.0

    @property
    def goodput_mbps(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return self.data_bytes / (self.elapsed_ns / 1e9) / 1e6

    @property
    def wire_efficiency(self) -> float:
        """Payload bytes as a fraction of all bytes that crossed any wire."""
        return self.data_bytes / self.wire_bytes if self.wire_bytes else 0.0

    @property
    def interrupt_coalescing_factor(self) -> float:
        """Frames per interrupt (paper Fig 5: 'total coalescing factor')."""
        return self.wire_frames / self.irqs if self.irqs else 0.0

    @property
    def ff_time_coverage_pct(self) -> float:
        """Percent of virtual time simulated analytically (fastpath)."""
        if self.elapsed_ns <= 0:
            return 0.0
        return 100.0 * self.ff_virtual_ns / self.elapsed_ns

    @property
    def ff_byte_coverage_pct(self) -> float:
        """Percent of transferred payload bytes moved analytically."""
        if self.data_bytes <= 0:
            return 0.0
        return 100.0 * self.ff_bytes / self.data_bytes


def summarize_cluster(
    cluster: Cluster, elapsed_ns: Optional[int] = None
) -> ClusterSummary:
    """Roll up every counter in the cluster into one summary."""
    stats = merge_stats(
        [s.protocol.total_stats() for s in cluster.stacks]
    )
    elapsed = elapsed_ns if elapsed_ns is not None else cluster.sim.now
    wire_frames = wire_bytes = irqs = ring = crc = pacing_stall = 0
    for node in cluster.nodes:
        for nic in node.nics:
            wire_frames += nic.counters.tx_frames
            wire_bytes += nic.counters.tx_bytes
            irqs += nic.counters.irqs_raised
            ring += nic.counters.rx_dropped_ring_full
            crc += nic.counters.rx_dropped_crc
            pacing_stall += nic.counters.pacing_stall_ns
    switch_drops = sum(sw.dropped_total for sw in cluster.all_switches)
    ce_marked = sum(sw.ce_marked_total for sw in cluster.all_switches)
    switch_counters = []
    for sw in cluster.all_switches:
        q_drops = peak = tx_f = tx_b = 0
        for port in sw.ports:
            q_drops += port.dropped_queue_full
            peak = max(peak, port.peak_queue_depth)
            tx_f += port.tx_frames
            if port.tx_link is not None:
                tx_b += port.tx_link.bytes_delivered
        switch_counters.append(
            SwitchCounters(
                name=sw.name,
                tier=getattr(sw, "tier", ""),
                forwarded=sw.forwarded,
                dropped_total=sw.dropped_total,
                dropped_queue_full=q_drops,
                ce_marked=sw.ce_marked_total,
                peak_queue_depth=peak,
                tx_frames=tx_f,
                tx_bytes=tx_b,
                ecmp_routed=getattr(sw, "ecmp_routed", 0),
                repins=getattr(sw, "repins", 0),
            )
        )
    ce_received = echoes_sent = echoes_received = 0
    controllers: set[str] = set()
    cwnd_finals: list[int] = []
    for stack in cluster.stacks:
        for conn in stack.protocol.connections.values():
            ce_received += conn.ce_frames_received
            echoes_sent += conn.ecn_echoes_sent
            echoes_received += conn.ecn_echoes_received
            cc = conn.congestion
            controllers.add(cc.name)
            if cc.active:
                cwnd_finals.append(cc.cwnd_frames)
    rails = []
    for rail in range(cluster.config.rails):
        tx_f = tx_b = rx_f = ring_d = crc_d = rail_irqs = 0
        for node in cluster.nodes:
            c = node.nics[rail].counters
            tx_f += c.tx_frames
            tx_b += c.tx_bytes
            rx_f += c.rx_frames
            ring_d += c.rx_dropped_ring_full
            crc_d += c.rx_dropped_crc
            rail_irqs += c.irqs_raised
        rails.append(
            RailCounters(
                rail=rail, tx_frames=tx_f, tx_bytes=tx_b, rx_frames=rx_f,
                ring_drops=ring_d, crc_drops=crc_d, irqs=rail_irqs,
            )
        )
    stale_rejected = dup_suppressed = 0
    for stack in cluster.stacks:
        for conn in stack.protocol.connections.values():
            stale_rejected += conn.stale_frames_rejected
            dup_suppressed += conn.duplicate_msgs_suppressed
    recovery = getattr(cluster, "recovery", None)
    crashes = restarts = peer_down = reconnects = reconnects_failed = 0
    rc_mean = 0.0
    rc_max = 0
    journaled = redelivered = 0
    if recovery is not None:
        crashes = recovery.crashes
        restarts = recovery.restarts
        peer_down = recovery.peer_down_events
        reconnects = recovery.reconnects
        reconnects_failed = recovery.reconnects_failed
        stale_rejected += recovery.stale_frames_rejected_destroyed
        dup_suppressed += recovery.duplicate_msgs_suppressed_destroyed
        latencies = [ns for _, ns in recovery.reconnect_latencies]
        if latencies:
            rc_mean = sum(latencies) / len(latencies)
            rc_max = max(latencies)
        journaled = sum(ch.messages_sent for ch in recovery.channels)
        redelivered = sum(ch.redeliveries for ch in recovery.channels)
    edge_history = sorted(
        (t for mgr in cluster.control_planes.values() for t in mgr.history),
        key=lambda t: (t.time_ns, t.rail),
    )
    edges_failed = sum(1 for t in edge_history if t.new.value == "down")
    edges_recovered = sum(
        1
        for t in edge_history
        if t.new.value == "up" and t.old.value in ("down", "recovering")
    )
    # Per-edge state residency (closes each open interval at `elapsed`,
    # which is a no-op for repeated summaries at the same instant).
    state_time: dict = {}
    for mgr in cluster.control_planes.values():
        for det in mgr.detectors:
            for st, ns in det.finalize_state_time(elapsed).items():
                state_time[st.value] = state_time.get(st.value, 0) + ns
    scorer = getattr(cluster, "gray_scorer", None)
    gray_fields: dict = {}
    if scorer is not None:
        gray_fields = {
            "gray_checks": scorer.checks,
            "gray_degrade_marks": scorer.degrade_marks,
            "gray_degrade_clears": scorer.degrade_clears,
            "gray_flagged_edges": len(scorer.flagged),
        }
    serve = getattr(cluster, "serve", None)
    serve_fields: dict = {}
    if serve is not None:
        merged = serve.merged_histogram()
        serve_fields = {
            "requests_generated": serve.generated,
            "requests_completed": serve.completed,
            "requests_shed": serve.shed + serve.shed_client,
            "requests_failed": serve.failed,
            "requests_replayed": serve.replayed,
            "deadline_missed": serve.deadline_missed,
            "serve_p50_ns": merged.p50,
            "serve_p99_ns": merged.p99,
            "serve_p999_ns": merged.p999,
            "serve_shed_fraction": serve.shed_fraction,
            "serve_p99_by_server": {
                s: h.p99 for s, h in serve.hist_by_server.items()
            },
        }
        if serve.tail is not None:
            serve_fields.update(
                hedges_sent=serve.tail.hedges_sent,
                hedges_won=serve.tail.hedges_won,
                retries_shed=serve.tail.retries_sent,
                retries_denied=serve.tail.budget.denied,
                breaker_opens=serve.tail.breaker_opens,
                ejections=serve.tail.ejections,
            )
    manager = getattr(cluster, "fastpath", None)
    ff = manager.stats if manager is not None else None
    n = len(cluster.stacks)
    proto_frac = (
        sum(s.node.protocol_cpu_time() / elapsed for s in cluster.stacks) / n
        if elapsed > 0 and n
        else 0.0
    )
    return ClusterSummary(
        elapsed_ns=elapsed,
        data_frames=stats.data_frames_sent,
        data_bytes=stats.data_bytes_sent,
        explicit_acks=stats.explicit_acks_sent,
        nacks=stats.nacks_sent,
        retransmissions=stats.retransmitted_frames,
        duplicates=stats.duplicate_frames,
        out_of_order_fraction=stats.out_of_order_fraction,
        extra_frame_fraction=stats.extra_frame_fraction,
        mean_reorder_distance=stats.mean_reorder_distance,
        wire_frames=wire_frames,
        wire_bytes=wire_bytes,
        irqs=irqs,
        switch_drops=switch_drops,
        nic_ring_drops=ring,
        crc_drops=crc,
        protocol_cpu_fraction_mean=proto_frac,
        events_processed=cluster.sim.events_processed,
        heap_pushes=getattr(cluster.sim, "heap_pushes", 0),
        fastlane_hits=getattr(cluster.sim, "fastlane_hits", 0),
        cancelled_popped=getattr(cluster.sim, "cancelled_popped", 0),
        ce_marked=ce_marked,
        ce_received=ce_received,
        ecn_echoes_sent=echoes_sent,
        ecn_echoes_received=echoes_received,
        pacing_stall_ns=pacing_stall,
        congestion_controllers=sorted(controllers),
        cwnd_final_mean=(
            sum(cwnd_finals) / len(cwnd_finals) if cwnd_finals else 0.0
        ),
        ff_jumps=ff.jumps if ff else 0,
        ff_aborts=ff.aborts if ff else 0,
        ff_ops_synthesized=ff.ops_synthesized if ff else 0,
        ff_virtual_ns=ff.ff_virtual_ns if ff else 0,
        ff_bytes=ff.ff_bytes if ff else 0,
        ff_frames=ff.ff_frames if ff else 0,
        rails=rails,
        edge_history=edge_history,
        edges_failed=edges_failed,
        edges_recovered=edges_recovered,
        frames_migrated=stats.migrated_frames,
        node_crashes=crashes,
        node_restarts=restarts,
        peer_down_events=peer_down,
        reconnects=reconnects,
        reconnects_failed=reconnects_failed,
        reconnect_latency_mean_ns=rc_mean,
        reconnect_latency_max_ns=rc_max,
        stale_frames_rejected=stale_rejected,
        duplicate_msgs_suppressed=dup_suppressed,
        messages_journaled=journaled,
        messages_redelivered=redelivered,
        switches=switch_counters,
        edge_state_time_ns=state_time,
        **gray_fields,
        **serve_fields,
    )


def reorder_histogram(cluster: Cluster) -> list[int]:
    """Cluster-wide reorder-distance histogram (buckets 1..15, >=16)."""
    stats = merge_stats([s.protocol.total_stats() for s in cluster.stacks])
    return list(stats.reorder_histogram)


def ascii_histogram(
    buckets: list[int], labels: Optional[list[str]] = None, width: int = 40
) -> str:
    """Render a histogram as terminal text."""
    if labels is None:
        labels = [str(i + 1) for i in range(len(buckets) - 1)] + [
            f">={len(buckets)}"
        ]
    peak = max(buckets) or 1
    lines = []
    for label, count in zip(labels, buckets):
        bar = "#" * max(0, round(width * count / peak))
        lines.append(f"{label:>5} | {bar} {count}")
    return "\n".join(lines)
