"""Runtime probes: time series sampled from a live simulation.

The paper's §4 analysis reasons about traffic *behaviour* — burstiness,
reordering spacing, congestion — not just totals.  Probes sample counters
at a fixed simulated-time interval, producing the series needed for that
kind of analysis:

* :class:`ThroughputProbe` — delivered payload bytes/s per interval for a
  connection endpoint,
* :class:`QueueProbe` — switch output-queue depth over time (congestion
  visibility),
* :class:`InflightProbe` — sender window occupancy over time,
* :class:`CwndProbe` — the congestion window a repro.congestion controller
  is granting the connection,
* :class:`MarkedFractionProbe` — per-interval fraction of received data
  frames that arrived CE-marked (receiver-side ECN visibility),
* :class:`PacingStallProbe` — per-interval nanoseconds a NIC's frames
  spent waiting on the pacing token bucket,
* :class:`FastForwardProbe` — per-interval fraction of virtual time the
  hybrid-fidelity fast path simulated analytically (repro.fastpath),
* :class:`ReconnectLatencyProbe` — detection-to-reconnect latency of each
  crash-recovery reconnect (event-driven, not periodic).

Each periodic probe runs as a simulation process; call :meth:`stop` (or
let the simulation end) and read ``samples``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.connection import Connection
from ..ethernet import Switch
from ..sim import Simulator

__all__ = [
    "ThroughputProbe",
    "QueueProbe",
    "InflightProbe",
    "EdgeScoreProbe",
    "CwndProbe",
    "MarkedFractionProbe",
    "PacingStallProbe",
    "FastForwardProbe",
    "ReconnectLatencyProbe",
    "Sample",
]


@dataclass
class Sample:
    time_ns: int
    value: float


class _Probe:
    """Base: periodic sampler driven by a simulation process."""

    def __init__(self, sim: Simulator, interval_ns: int) -> None:
        if interval_ns <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.interval_ns = interval_ns
        self.samples: list[Sample] = []
        self._running = True
        sim.process(self._body(), name=type(self).__name__)

    def _body(self):
        while self._running:
            yield self.interval_ns
            if not self._running:
                return
            self.samples.append(Sample(self.sim.now, self._read()))

    def _read(self) -> float:
        raise NotImplementedError

    def stop(self) -> None:
        self._running = False

    @property
    def values(self) -> list[float]:
        return [s.value for s in self.samples]

    @property
    def times_us(self) -> list[float]:
        return [s.time_ns / 1000.0 for s in self.samples]

    def mean(self) -> float:
        return sum(self.values) / len(self.samples) if self.samples else 0.0

    def peak(self) -> float:
        return max(self.values) if self.samples else 0.0


class ThroughputProbe(_Probe):
    """Received payload throughput (MB/s) per sampling interval."""

    def __init__(
        self, sim: Simulator, connection: Connection, interval_ns: int = 1_000_000
    ) -> None:
        self._conn = connection
        self._last_bytes = connection.stats.data_bytes_received
        super().__init__(sim, interval_ns)

    def _read(self) -> float:
        now_bytes = self._conn.stats.data_bytes_received
        delta = now_bytes - self._last_bytes
        self._last_bytes = now_bytes
        return delta / (self.interval_ns / 1e9) / 1e6


class QueueProbe(_Probe):
    """Total output-queue depth of a switch, in frames."""

    def __init__(
        self, sim: Simulator, switch: Switch, interval_ns: int = 100_000
    ) -> None:
        self._switch = switch
        super().__init__(sim, interval_ns)

    def _read(self) -> float:
        return float(self._switch.total_queue_depth)


class InflightProbe(_Probe):
    """Sender sliding-window occupancy, in frames."""

    def __init__(
        self, sim: Simulator, connection: Connection, interval_ns: int = 100_000
    ) -> None:
        self._conn = connection
        super().__init__(sim, interval_ns)

    def _read(self) -> float:
        return float(self._conn.window.in_flight_count)


class CwndProbe(_Probe):
    """Congestion window granted by the connection's controller, in frames.

    With the static policy this is a flat line at the flow window size.
    """

    def __init__(
        self, sim: Simulator, connection: Connection, interval_ns: int = 100_000
    ) -> None:
        self._conn = connection
        super().__init__(sim, interval_ns)

    def _read(self) -> float:
        return float(self._conn.congestion.cwnd_frames)


class MarkedFractionProbe(_Probe):
    """Fraction of data frames received CE-marked, per interval.

    Receiver-side view of fabric congestion (the sender-side EWMA is
    ``connection.congestion.marked_fraction``).  Intervals with no
    arrivals sample 0.
    """

    def __init__(
        self, sim: Simulator, connection: Connection, interval_ns: int = 1_000_000
    ) -> None:
        self._conn = connection
        self._last_ce = connection.ce_frames_received
        self._last_rx = connection.stats.data_frames_received
        super().__init__(sim, interval_ns)

    def _read(self) -> float:
        conn = self._conn
        ce = conn.ce_frames_received
        rx = conn.stats.data_frames_received
        d_ce = ce - self._last_ce
        d_rx = rx - self._last_rx
        self._last_ce = ce
        self._last_rx = rx
        return d_ce / d_rx if d_rx > 0 else 0.0


class PacingStallProbe(_Probe):
    """Nanoseconds of token-bucket pacing delay accrued per interval."""

    def __init__(self, sim: Simulator, nic, interval_ns: int = 1_000_000) -> None:
        self._nic = nic
        self._last_stall = nic.counters.pacing_stall_ns
        super().__init__(sim, interval_ns)

    def _read(self) -> float:
        stall = self._nic.counters.pacing_stall_ns
        delta = stall - self._last_stall
        self._last_stall = stall
        return float(delta)


class FastForwardProbe(_Probe):
    """Cumulative fraction of virtual time covered analytically.

    Samples the :class:`~repro.fastpath.FastpathStats` coverage
    accumulator of a cluster's fast-forward manager: a sample of 1.0
    means every nanosecond up to that instant was simulated by
    closed-form jumps, 0.0 means pure frame-level simulation (or
    fastpath disabled).  Cumulative rather than per-interval because a
    jump credits its whole window at the op boundary where it lands —
    per-interval deltas would alias against the sampling grid.  The
    probe's own periodic events ride alongside jumps without aborting
    them.
    """

    def __init__(self, sim: Simulator, cluster, interval_ns: int = 1_000_000) -> None:
        manager = getattr(cluster, "fastpath", None)
        self._stats = manager.stats if manager is not None else None
        self._base_ns = self._stats.ff_virtual_ns if self._stats else 0
        self._start_ns = sim.now
        super().__init__(sim, interval_ns)

    def _read(self) -> float:
        if self._stats is None:
            return 0.0
        elapsed = self.sim.now - self._start_ns
        if elapsed <= 0:
            return 0.0
        frac = (self._stats.ff_virtual_ns - self._base_ns) / elapsed
        return frac if frac < 1.0 else 1.0


class ReconnectLatencyProbe:
    """Detection-to-reconnect latency of each crash-recovery reconnect.

    Unlike the periodic probes, this one is event-driven: it registers a
    watcher on a :class:`~repro.recovery.ClusterRecovery` and records one
    sample per successful reconnect, stamped with the reconnect completion
    time and valued at the detection-to-established latency in
    nanoseconds.  It exposes the same ``samples``/``values``/``mean``/
    ``peak`` surface as the periodic probes so plotting code is shared.
    """

    def __init__(self, recovery) -> None:
        self.samples: list[Sample] = []
        self._running = True
        recovery.add_reconnect_watcher(self._on_reconnect)

    def _on_reconnect(self, time_ns: int, latency_ns: int) -> None:
        if self._running:
            self.samples.append(Sample(time_ns, float(latency_ns)))

    def stop(self) -> None:
        self._running = False

    @property
    def values(self) -> list[float]:
        return [s.value for s in self.samples]

    @property
    def times_us(self) -> list[float]:
        return [s.time_ns / 1000.0 for s in self.samples]

    def mean(self) -> float:
        return sum(self.values) / len(self.samples) if self.samples else 0.0

    def peak(self) -> float:
        return max(self.values) if self.samples else 0.0


class EdgeScoreProbe(_Probe):
    """One edge's EWMA health score over time (control plane required).

    ``manager`` is the connection endpoint's
    :class:`~repro.control.EdgeLifecycleManager`; the probe samples the
    combined loss/RTT/backlog score of ``rail``.
    """

    def __init__(
        self, sim: Simulator, manager, rail: int, interval_ns: int = 500_000
    ) -> None:
        self._manager = manager
        self._rail = rail
        super().__init__(sim, interval_ns)

    def _read(self) -> float:
        return self._manager.edge_score(self._rail)
