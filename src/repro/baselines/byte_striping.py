"""Byte-level striping baseline (paper §1).

The paper contrasts MultiEdge's *decoupled* spatial parallelism (whole
frames round-robined over rails) with the traditional *byte-level*
parallelism, where "a single data unit sliced in bytes is transmitted over
multiple physical links that are tightly controlled by the sender and the
receiver".  This module implements that tightly-coupled scheme over the
same NIC/link substrate so the two approaches can be compared:

* every data unit is sliced into one fragment per rail (each fragment pays
  the full per-frame Ethernet overhead),
* the rails operate in lock-step: the next unit may start only when every
  fragment of the previous unit has been delivered — the sender
  synchronises to the *slowest* rail, so per-frame jitter directly
  subtracts from throughput,
* as the number of rails grows, the fixed overhead per fragment grows
  linearly while the payload per fragment shrinks — the scaling problem
  the paper points out.

This is a transport-level model (no sliding window / retransmission): the
comparison of interest is achievable goodput versus rail count.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ethernet import (
    ETH_MIN_PAYLOAD,
    MULTIEDGE_HEADER_BYTES,
    Frame,
    MultiEdgeHeader,
    max_payload_per_frame,
)
from ..sim import Event
from .. bench.cluster import Cluster

__all__ = ["ByteStripingResult", "run_byte_striping"]


@dataclass
class ByteStripingResult:
    """Outcome of a byte-striping transfer."""

    rails: int
    unit_bytes: int
    total_bytes: int
    elapsed_ns: int
    throughput_mbps: float
    frames_sent: int


def run_byte_striping(
    cluster: Cluster,
    total_bytes: int = 4_000_000,
    unit_bytes: int | None = None,
) -> ByteStripingResult:
    """Stream ``total_bytes`` from node 0 to node 1 with byte striping.

    ``unit_bytes`` defaults to one MTU worth of payload per *unit* (the
    natural comparison point: frame striping moves the same unit as one
    frame on one rail).
    """
    sim = cluster.sim
    node_a, node_b = cluster.nodes[0], cluster.nodes[1]
    rails = min(len(node_a.nics), len(node_b.nics))
    unit = unit_bytes or max_payload_per_frame()
    slice_size = (unit + rails - 1) // rails

    state = {"received": 0, "frames": 0}
    done = Event(sim)
    expected_frames = ((total_bytes + unit - 1) // unit) * rails

    def on_rx() -> None:
        state["frames"] += 1
        if state["frames"] >= expected_frames:
            done.trigger()

    # Drain receiver NICs by polling (transport-level model: no kernel).
    def receiver():
        polled = 0
        for nic in node_b.nics:
            nic.disable_interrupts()
        while state["frames"] < expected_frames:
            progressed = False
            for nic in node_b.nics:
                frames, _ = nic.poll()
                for _f in frames:
                    on_rx()
                    progressed = True
            if not progressed:
                yield 1_000
        return None

    def sender():
        sent = 0
        seq = 0
        while sent < total_bytes:
            this_unit = min(unit, total_bytes - sent)
            per_slice = (this_unit + rails - 1) // rails
            # Lock-step: wait for every rail to have TX-ring room.
            while any(nic.tx_ring_free == 0 for nic in node_a.nics[:rails]):
                yield 1_000
            for rail in range(rails):
                chunk = min(per_slice, max(0, this_unit - rail * per_slice))
                header = MultiEdgeHeader(
                    seq=seq, payload_length=max(chunk, 0)
                )
                frame = Frame(
                    src_mac=node_a.nics[rail].mac,
                    dst_mac=node_b.nics[rail].mac,
                    header=header,
                    payload=bytes(max(chunk, 0)),
                )
                node_a.nics[rail].transmit(frame)
                seq += 1
            sent += this_unit
            # Tight coupling: next unit only after the slowest rail is
            # ready again (modelled by ring-space polling above plus the
            # lock-step slice issue).
        return None

    t0 = sim.now
    sproc = sim.process(sender(), name="bytestripe.send")
    rproc = sim.process(receiver(), name="bytestripe.recv")
    sim.run_until_done(rproc, limit=t0 + 600_000_000_000)
    elapsed = sim.now - t0
    throughput = total_bytes / (elapsed / 1e9) / 1e6 if elapsed else 0.0
    return ByteStripingResult(
        rails=rails,
        unit_bytes=unit,
        total_bytes=total_bytes,
        elapsed_ns=elapsed,
        throughput_mbps=throughput,
        frames_sent=expected_frames,
    )
