"""Comparison baselines and ablation variants."""

from .byte_striping import ByteStripingResult, run_byte_striping
from .gobackn import GoBackNConnection, install_go_back_n

__all__ = [
    "run_byte_striping",
    "ByteStripingResult",
    "GoBackNConnection",
    "install_go_back_n",
]
