"""Go-back-N retransmission baseline.

MultiEdge recovers losses with *selective repeat*: NACKs name exactly the
missing frames.  The classic alternative — what a TCP-without-SACK-style
transport would do — is go-back-N: on loss, rewind and retransmit
everything from the first missing frame.  This baseline subclasses the
MultiEdge connection and overrides only the recovery decisions, so an
ablation can quantify what selective repeat buys on lossy links.
"""

from __future__ import annotations

from ..core.connection import Connection
from ..core.protocol import MultiEdgeProtocol

__all__ = ["GoBackNConnection", "install_go_back_n"]


class GoBackNConnection(Connection):
    """Connection variant with go-back-N loss recovery."""

    def _process_nack(self, missing: list[int]) -> None:
        """Rewind: queue every unacked frame from the first missing one."""
        if not missing:
            return
        first = min(missing)
        queued = set(self._retransmit_q)
        holdoff = self.params.retransmit.nack_holdoff_ns
        now = self.sim.now
        rewind = sorted(
            seq for seq in self.window.inflight if seq >= first
        )
        if not rewind:
            return
        oldest = self.window.inflight[rewind[0]]
        if now - oldest.last_sent_at < holdoff:
            return
        for seq in rewind:
            if seq in queued:
                continue
            rec = self.window.inflight[seq]
            rec.retransmits += 1
            self._retransmit_q.append(seq)
            self.stats.nack_retransmits += 1

    def _on_coarse_timeout(self) -> None:
        """Timeout: rewind to the oldest unacked frame."""
        rec = self.window.oldest_unacked()
        if rec is None:
            return
        self.stats.timeout_retransmits += 1
        queued = set(self._retransmit_q)
        for seq in sorted(self.window.inflight):
            if seq not in queued:
                self.window.inflight[seq].retransmits += 1
                self._retransmit_q.append(seq)
        self.sim.process(self._timer_pump())
        self.retransmit_timer.arm()


def install_go_back_n(protocol: MultiEdgeProtocol) -> None:
    """Make every *future* connection of this protocol use go-back-N."""

    original = protocol.create_connection

    def create(conn_id, peer_node_id, peer_macs, params=None):
        if conn_id in protocol.connections:
            raise ValueError(f"connection id {conn_id} already exists")
        conn = GoBackNConnection(
            protocol, conn_id, peer_node_id, peer_macs, params or protocol.params
        )
        protocol.connections[conn_id] = conn
        return conn

    protocol.create_connection = create  # type: ignore[method-assign]
