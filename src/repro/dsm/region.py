"""Shared regions and per-node page tables.

A :class:`SharedRegion` is a global allocation visible to every node.  Each
node backs the whole region in its own virtual memory; page ownership
("home") is distributed across nodes.  The home's copy of a page is
authoritative: writers flush byte diffs to the home, readers fetch pages
from the home.  This is the home-based lazy-release-consistency layout
GeNIMA uses, and it maps perfectly onto MultiEdge RDMA — a page fetch is a
remote read from the home's copy, a diff flush is a remote write into the
home's copy, and the home does no protocol processing at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable

import numpy as np

__all__ = ["PAGE_SIZE", "PageState", "SharedRegion", "PageTable", "HomePolicy"]

PAGE_SIZE = 4096


class PageState(Enum):
    INVALID = "invalid"  # local copy stale; fetch from home before reading
    VALID = "valid"  # clean local copy
    DIRTY = "dirty"  # locally written this interval; twin held for diffing


class HomePolicy:
    """Built-in page→home assignment policies."""

    @staticmethod
    def block(n_pages: int, n_nodes: int) -> Callable[[int], int]:
        """Contiguous blocks of pages per node (matches SPLASH partitioning)."""
        per = max(1, (n_pages + n_nodes - 1) // n_nodes)

        def home(page: int) -> int:
            return min(page // per, n_nodes - 1)

        return home

    @staticmethod
    def round_robin(n_pages: int, n_nodes: int) -> Callable[[int], int]:
        def home(page: int) -> int:
            return page % n_nodes

        return home

    @staticmethod
    def fixed(owner: int) -> Callable[[int], int]:
        def home(page: int) -> int:
            return owner

        return home


@dataclass
class SharedRegion:
    """Global descriptor of one shared allocation."""

    region_id: int
    name: str
    size: int
    n_pages: int
    home_of: Callable[[int], int]
    # Per-node base virtual address of the region's local backing.
    base: list[int]

    def page_of(self, offset: int) -> int:
        return offset // PAGE_SIZE

    def page_range(self, offset: int, nbytes: int) -> range:
        if nbytes <= 0:
            raise ValueError("access size must be positive")
        if offset < 0 or offset + nbytes > self.size:
            raise ValueError(
                f"access [{offset}, {offset + nbytes}) outside region "
                f"{self.name!r} of size {self.size}"
            )
        return range(offset // PAGE_SIZE, (offset + nbytes - 1) // PAGE_SIZE + 1)

    def page_addr(self, node: int, page: int) -> int:
        return self.base[node] + page * PAGE_SIZE


class PageTable:
    """One node's view of one region: page states, twins, dirty set."""

    def __init__(self, region: SharedRegion, node_id: int) -> None:
        self.region = region
        self.node_id = node_id
        self.state = [PageState.INVALID] * region.n_pages
        self.twins: dict[int, np.ndarray] = {}
        self.dirty: set[int] = set()
        # Home pages are always valid locally.
        for page in range(region.n_pages):
            if region.home_of(page) == node_id:
                self.state[page] = PageState.VALID

    def is_home(self, page: int) -> bool:
        return self.region.home_of(page) == self.node_id

    def invalidate(self, page: int) -> None:
        """Apply a write notice: drop the cached copy unless we are home.

        Dirty pages are not invalidated mid-interval — by release
        consistency, a data-race-free application never has a page dirty
        here while a notice for a *conflicting* write arrives; concurrent
        false-sharing writers are merged byte-wise at the home.
        """
        if self.is_home(page) or self.state[page] == PageState.DIRTY:
            return
        self.state[page] = PageState.INVALID
