"""Execution-time breakdowns for DSM runs (paper Figures 3–6, panel b).

Each node accounts its wall time into the same buckets the paper plots:

* **compute** — application computation,
* **data wait** — blocked fetching pages (remote memory fetches),
* **sync** — blocked in locks and barriers,
* **dsm overhead** — diff creation, message handling, bookkeeping (runs on
  the application CPU),
* the **protocol** time comes from the node's CPU accounting and is
  reported separately (Figures 3c/5c).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DsmNodeStats", "Breakdown"]


@dataclass
class DsmNodeStats:
    """Per-node DSM counters."""

    compute_ns: int = 0
    data_wait_ns: int = 0
    lock_wait_ns: int = 0
    barrier_wait_ns: int = 0
    dsm_overhead_ns: int = 0

    page_fetches: int = 0
    page_fetch_bytes: int = 0
    diffs_flushed: int = 0
    diff_bytes: int = 0
    diff_runs: int = 0
    write_notices_sent: int = 0
    invalidations_applied: int = 0
    lock_acquires: int = 0
    barriers: int = 0
    messages_sent: int = 0
    messages_received: int = 0

    @property
    def sync_wait_ns(self) -> int:
        return self.lock_wait_ns + self.barrier_wait_ns


@dataclass
class Breakdown:
    """Normalized execution-time breakdown for one run."""

    elapsed_ns: int
    compute: float
    data_wait: float
    sync: float
    dsm_overhead: float
    protocol: float
    other: float

    @classmethod
    def from_stats(
        cls, elapsed_ns: int, stats: DsmNodeStats, protocol_ns: int
    ) -> "Breakdown":
        if elapsed_ns <= 0:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        compute = stats.compute_ns / elapsed_ns
        data_wait = stats.data_wait_ns / elapsed_ns
        sync = stats.sync_wait_ns / elapsed_ns
        overhead = stats.dsm_overhead_ns / elapsed_ns
        protocol = protocol_ns / elapsed_ns
        other = max(0.0, 1.0 - compute - data_wait - sync - overhead)
        return cls(
            elapsed_ns=elapsed_ns,
            compute=compute,
            data_wait=data_wait,
            sync=sync,
            dsm_overhead=overhead,
            protocol=protocol,
            other=other,
        )
