"""Lock and barrier manager state machines.

Synchronization is centralized per object: lock ``k`` is managed by node
``k % N``; barrier ``b`` by node ``b % N``.  Managers are pure state
machines — the DSM node drives them from its message dispatcher and sends
whatever grants/releases they emit.  Write notices accumulate with the
manager and propagate to acquirers (locks) or to everyone (barriers),
implementing release-consistent invalidation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

__all__ = ["LockManagerState", "BarrierManagerState"]

Notice = tuple[int, int]  # (region_id, page_index)


@dataclass
class LockManagerState:
    """Manager-side state of one lock."""

    lock_id: int
    holder: Optional[int] = None
    waiting: Deque[int] = field(default_factory=deque)
    # Notices each node must apply before it may next hold the lock.
    pending_for: dict[int, list[Notice]] = field(default_factory=dict)
    # Accumulates chunked notice uploads from the current releaser.
    partial: list[Notice] = field(default_factory=list)

    def request(self, node: int) -> Optional[int]:
        """Node asks for the lock; returns the node to grant to (or None)."""
        if self.holder is None:
            self.holder = node
            return node
        self.waiting.append(node)
        return None

    def release(self, node: int, notices: list[Notice], n_nodes: int) -> Optional[int]:
        """Holder releases with its write notices; returns next grantee."""
        if self.holder != node:
            raise RuntimeError(
                f"lock {self.lock_id}: release by {node} but holder is {self.holder}"
            )
        all_notices = self.partial + notices
        self.partial = []
        if all_notices:
            for other in range(n_nodes):
                if other != node:
                    self.pending_for.setdefault(other, []).extend(all_notices)
        self.holder = None
        if self.waiting:
            self.holder = self.waiting.popleft()
            return self.holder
        return None

    def add_partial(self, notices: list[Notice]) -> None:
        self.partial.extend(notices)

    def take_pending(self, node: int) -> list[Notice]:
        """Notices to ship with a grant to ``node`` (cleared afterwards)."""
        return self.pending_for.pop(node, [])


@dataclass
class BarrierManagerState:
    """Manager-side state of one barrier."""

    barrier_id: int
    epoch: int = 0
    arrived: set[int] = field(default_factory=set)
    notices_from: dict[int, list[Notice]] = field(default_factory=dict)
    partial: dict[int, list[Notice]] = field(default_factory=dict)

    def add_partial(self, node: int, notices: list[Notice]) -> None:
        self.partial.setdefault(node, []).extend(notices)

    def arrive(
        self, node: int, notices: list[Notice], n_nodes: int
    ) -> Optional[dict[int, list[Notice]]]:
        """Final arrival chunk from ``node``.

        When the last node arrives, returns ``{node: notices_to_apply}``
        (everyone else's write notices) and advances the epoch; otherwise
        returns None.
        """
        if node in self.arrived:
            raise RuntimeError(
                f"barrier {self.barrier_id}: node {node} arrived twice in "
                f"epoch {self.epoch}"
            )
        self.arrived.add(node)
        self.notices_from[node] = self.partial.pop(node, []) + notices
        if len(self.arrived) < n_nodes:
            return None
        releases: dict[int, list[Notice]] = {}
        for target in self.arrived:
            merged: list[Notice] = []
            for src, src_notices in self.notices_from.items():
                if src != target:
                    merged.extend(src_notices)
            releases[target] = merged
        self.arrived = set()
        self.notices_from = {}
        self.epoch += 1
        return releases
