"""GeNIMA-style software distributed shared memory over MultiEdge."""

from .messages import MSG_SLOT_BYTES, Message, MsgType, decode_notices, encode_notices
from .region import PAGE_SIZE, HomePolicy, PageState, PageTable, SharedRegion
from .runtime import DsmNode, DsmRunResult, DsmRuntime
from .stats import Breakdown, DsmNodeStats
from .sync import BarrierManagerState, LockManagerState

__all__ = [
    "DsmRuntime",
    "DsmNode",
    "DsmRunResult",
    "SharedRegion",
    "PageTable",
    "PageState",
    "HomePolicy",
    "PAGE_SIZE",
    "Message",
    "MsgType",
    "MSG_SLOT_BYTES",
    "encode_notices",
    "decode_notices",
    "DsmNodeStats",
    "Breakdown",
    "LockManagerState",
    "BarrierManagerState",
]
