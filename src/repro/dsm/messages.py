"""DSM control-message wire format.

GeNIMA-style synchronization rides on ordinary MultiEdge RDMA writes: a
control message is a 128-byte record deposited into the peer's inbox ring
with ``NOTIFY | FENCE_BACKWARD`` flags.  The backward fence guarantees that
everything the sender issued earlier on the same connection — page diffs,
write-notice arrays — has been applied before the message is acted upon;
this is precisely the "enforce ordering only between necessary operations"
usage of the paper's API extension (§2.5, Figure 6).

Large variable-size payloads (write-notice lists) do not travel in the
message: they are bulk-written to a staging area and the message carries
only a count.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum

__all__ = ["MsgType", "Message", "MSG_SLOT_BYTES", "encode_notices", "decode_notices"]

MSG_SLOT_BYTES = 128
_MSG_STRUCT = struct.Struct("!IIQQQQ")  # type, src, a, b, c, d
_PAD = MSG_SLOT_BYTES - _MSG_STRUCT.size


class MsgType(IntEnum):
    LOCK_REQ = 1  # a=lock_id
    LOCK_GRANT = 2  # a=lock_id, b=notice_count (staged)
    LOCK_REL = 3  # a=lock_id, b=notice_count (staged)
    BARRIER_ARRIVE = 4  # a=barrier_id, b=notice_count (staged), c=epoch
    BARRIER_RELEASE = 5  # a=barrier_id, b=notice_count (staged), c=epoch
    CREDIT = 6  # a=consumed_total
    APP = 7  # application-defined payload in a..d


@dataclass
class Message:
    """One 128-byte control message."""

    msg_type: MsgType
    src: int
    a: int = 0
    b: int = 0
    c: int = 0
    d: int = 0

    def encode(self) -> bytes:
        return (
            _MSG_STRUCT.pack(
                int(self.msg_type), self.src, self.a, self.b, self.c, self.d
            )
            + b"\x00" * _PAD
        )

    @classmethod
    def decode(cls, data: bytes) -> "Message":
        msg_type, src, a, b, c, d = _MSG_STRUCT.unpack(data[: _MSG_STRUCT.size])
        return cls(MsgType(msg_type), src, a, b, c, d)


def encode_notices(notices: list[tuple[int, int]]) -> bytes:
    """Pack (region_id, page_index) write notices for bulk staging."""
    out = bytearray()
    for region_id, page in notices:
        out += struct.pack("!II", region_id, page)
    return bytes(out)


def decode_notices(data: bytes, count: int) -> list[tuple[int, int]]:
    """Unpack ``count`` write notices from a staging area."""
    notices = []
    for i in range(count):
        region_id, page = struct.unpack_from("!II", data, i * 8)
        notices.append((region_id, page))
    return notices
