"""GeNIMA-style DSM runtime over MultiEdge.

One :class:`DsmNode` runs on each cluster node; together they provide a
page-based shared address space with home-based release consistency:

* **page fetch** — an RDMA read from the home node's authoritative copy;
  no code runs at the home (GeNIMA's "avoid asynchronous protocol
  processing" design, enabled by MultiEdge's RDMA semantics),
* **diff flush** — at every release point (unlock, barrier arrival) the
  writer diffs dirty pages against their twins and RDMA-writes the changed
  byte runs straight into the home copy,
* **write notices** — page invalidations propagate through lock grants and
  barrier releases; notice arrays are bulk-written to a staging ring and
  the control message carries only a count,
* **control messages** — 128-byte records deposited in per-pair inbox
  rings with ``NOTIFY | FENCE_BACKWARD``, so a message is only acted on
  after every earlier operation from that sender (diffs, staged notices)
  has been applied.  In the 2Lu configuration this is the *only* ordering
  the DSM requests — data frames flow freely out of order, which is
  exactly the experiment of the paper's Figure 6.

The application-facing API is deliberately explicit (software DSM on a
simulator has no MMU to trap accesses): programs call
:meth:`DsmNode.access` to fault ranges in, then operate on real numpy
views of the local backing store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

import numpy as np

from ..bench.cluster import Cluster
from ..core import ConnectionHandle, merge_stats
from ..core.stats import ConnectionStats
from ..ethernet import OpFlags
from ..sim import Event, Store
from .messages import MSG_SLOT_BYTES, Message, MsgType, decode_notices, encode_notices
from .region import PAGE_SIZE, HomePolicy, PageState, PageTable, SharedRegion
from .stats import Breakdown, DsmNodeStats
from .sync import BarrierManagerState, LockManagerState

__all__ = ["DsmRuntime", "DsmNode", "DsmRunResult"]

INBOX_SLOTS = 64
NOTICE_SEG_BYTES = 8192  # 1024 notices per chunk
NOTICES_PER_CHUNK = NOTICE_SEG_BYTES // 8
CREDIT_EVERY = 16
SEND_WINDOW = INBOX_SLOTS - 8

# Modelled CPU costs of DSM bookkeeping (charged to the app CPU, tag "dsm").
MSG_HANDLE_NS = 600
NOTICE_APPLY_NS = 40

# Maximum concurrently outstanding page fetches per node.  Page faults in a
# software DSM are mostly synchronous; a small pipeline models modest
# fault-ahead without generating the 16-way fetch incast a real
# fault-driven system never produces.
FETCH_PIPELINE = 4


@dataclass
class _PeerMailbox:
    """Sender/receiver state for one directed peer relationship."""

    # Addresses in the *peer's* memory (we write there).
    peer_inbox_base: int = 0
    peer_staging_base: int = 0
    peer_credit_cell: int = 0
    # Addresses in *our* memory (the peer writes there).
    my_inbox_base: int = 0
    my_staging_base: int = 0
    my_credit_cell: int = 0
    # Flow control.
    send_seq: int = 0
    peer_consumed: int = 0
    recv_seq: int = 0
    processed: int = 0
    credit_event: Optional[Event] = None


@dataclass
class DsmRunResult:
    """Outcome of one DSM application run."""

    nodes: int
    elapsed_ns: int
    per_node: list[DsmNodeStats]
    breakdowns: list[Breakdown]
    network: ConnectionStats
    frames_dropped: int
    irqs: int
    protocol_cpu_fraction: float  # mean over nodes, 0..2
    returns: list[Any] = field(default_factory=list)

    @property
    def interrupt_fraction(self) -> float:
        frames = self.network.data_frames_sent + self.network.extra_frames_sent
        return self.irqs / frames if frames else 0.0


class DsmRuntime:
    """Cluster-wide DSM: regions, nodes, and the run harness."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.sim = cluster.sim
        self.n = cluster.config.nodes
        if self.n > 1:
            cluster.connect_all_pairs()
        self.regions: dict[int, SharedRegion] = {}
        self._next_region_id = 1
        self.nodes = [DsmNode(self, rank) for rank in range(self.n)]
        for node in self.nodes:
            node._wire_peers()
        recovery = getattr(cluster, "recovery", None)
        if recovery is not None:
            self.attach_recovery(recovery)
        # Measurement window.
        self._measure_votes = 0
        self.t_start = 0
        self._node_end: list[int] = [0] * self.n

    def attach_recovery(self, recovery) -> None:
        """Propagate node crashes into page-cache recovery hooks.

        The crashed node's own page cache (twins, dirty set, cached
        copies) is volatile and dropped; every survivor invalidates its
        cached copies of pages *homed* at the crashed node, so the next
        access refetches instead of trusting a copy that may predate
        diffs lost in the crash.
        """

        def on_crash(node_id: int) -> None:
            for node in self.nodes:
                if node.rank == node_id:
                    node.on_self_crashed()
                else:
                    node.on_peer_crashed(node_id)

        recovery.subscribe_crash(on_crash)

    # -- region management -------------------------------------------------

    def alloc_region(
        self, name: str, size: int, home="block"
    ) -> SharedRegion:
        """Collectively allocate a shared region on every node.

        ``home`` selects the page→home mapping: ``"block"``,
        ``"round_robin"``, ``"fixed:<node>"``, or a callable
        ``page_index -> node`` for application-specific placement.
        """
        if size <= 0:
            raise ValueError("region size must be positive")
        n_pages = (size + PAGE_SIZE - 1) // PAGE_SIZE
        if callable(home):
            home_of = home
        elif home == "block":
            home_of = HomePolicy.block(n_pages, self.n)
        elif home == "round_robin":
            home_of = HomePolicy.round_robin(n_pages, self.n)
        elif home.startswith("fixed:"):
            home_of = HomePolicy.fixed(int(home.split(":", 1)[1]))
        else:
            raise ValueError(f"unknown home policy {home!r}")
        base = [
            node.stack.node.memory.alloc(n_pages * PAGE_SIZE)
            for node in self.nodes
        ]
        region = SharedRegion(
            region_id=self._next_region_id,
            name=name,
            size=size,
            n_pages=n_pages,
            home_of=home_of,
            base=base,
        )
        self._next_region_id += 1
        self.regions[region.region_id] = region
        for node in self.nodes:
            node.page_tables[region.region_id] = PageTable(region, node.rank)
        return region

    # -- measurement --------------------------------------------------------

    def _vote_start(self) -> None:
        self._measure_votes += 1
        if self._measure_votes == self.n:
            self.t_start = self.sim.now
            for stack in self.cluster.stacks:
                stack.node.reset_accounting()
                for conn in stack.protocol.connections.values():
                    conn.stats = ConnectionStats()
            for node in self.nodes:
                node.stats = DsmNodeStats()

    # -- run harness ---------------------------------------------------------

    def run(
        self,
        program: Callable[["DsmNode"], Generator],
        limit_ms: int = 600_000,
    ) -> DsmRunResult:
        """Run ``program(node)`` on every node to completion."""
        procs = []
        for node in self.nodes:
            procs.append(
                self.sim.process(
                    self._wrap(node, program(node)), name=f"dsm.app{node.rank}"
                )
            )
        returns = []
        for proc in procs:
            returns.append(
                self.sim.run_until_done(proc, limit=limit_ms * 1_000_000)
            )
        elapsed = max(self._node_end) - self.t_start
        per_node = [node.stats for node in self.nodes]
        breakdowns = [
            Breakdown.from_stats(
                elapsed,
                node.stats,
                node.stack.node.protocol_cpu_time(),
            )
            for node in self.nodes
        ]
        network = merge_stats(
            [s.protocol.total_stats() for s in self.cluster.stacks]
        )
        proto_frac = (
            sum(
                s.node.protocol_cpu_time() / elapsed
                for s in self.cluster.stacks
            )
            / self.n
            if elapsed > 0
            else 0.0
        )
        return DsmRunResult(
            nodes=self.n,
            elapsed_ns=elapsed,
            per_node=per_node,
            breakdowns=breakdowns,
            network=network,
            frames_dropped=self.cluster.total_frames_dropped(),
            irqs=self.cluster.total_irqs(),
            protocol_cpu_fraction=proto_frac,
            returns=returns,
        )

    def _wrap(self, node: "DsmNode", gen: Generator) -> Generator:
        result = yield from gen
        self._node_end[node.rank] = self.sim.now
        return result


class DsmNode:
    """Per-node DSM runtime and the application-facing API."""

    def __init__(self, runtime: DsmRuntime, rank: int) -> None:
        self.runtime = runtime
        self.rank = rank
        self.size = runtime.n
        self.sim = runtime.sim
        self.stack = runtime.cluster.stacks[rank]
        # DSM protocol services (message listeners, the sender) run on the
        # dedicated protocol CPU, like GeNIMA's handler thread: a node busy
        # computing must not delay lock grants or barrier releases it
        # manages for others.
        self.service_cpu = self.stack.node.protocol_cpu
        self.stats = DsmNodeStats()
        self.page_tables: dict[int, PageTable] = {}

        self.conns: dict[int, ConnectionHandle] = {}
        self._mail: dict[int, _PeerMailbox] = {}
        self._out: Store = Store(self.sim)

        # Client-side sync state.
        self._lock_grant_ev: dict[int, Event] = {}
        self._barrier_ev: dict[tuple[int, int], Event] = {}
        self._barrier_epoch: dict[int, int] = {}

        # Manager-side sync state (for objects this node manages).
        self._locks: dict[int, LockManagerState] = {}
        self._barriers: dict[int, BarrierManagerState] = {}
        # Every notice this node generated since its last barrier.  Lock
        # releases propagate notices only to the next acquirer; a barrier
        # must establish coherence for *everyone*, so each node relays all
        # notices from its completed lock intervals with its arrival.
        self._since_barrier: set[tuple[int, int]] = set()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def _wire_peers(self) -> None:
        memory = self.stack.node.memory
        for peer in range(self.size):
            if peer == self.rank:
                continue
            here, _ = self.runtime.cluster.connect(self.rank, peer)
            self.conns[peer] = here
            mb = self._mail.setdefault(peer, _PeerMailbox())
            mb.my_inbox_base = memory.alloc(INBOX_SLOTS * MSG_SLOT_BYTES)
            mb.my_staging_base = memory.alloc(INBOX_SLOTS * NOTICE_SEG_BYTES)
            mb.my_credit_cell = memory.alloc(8)
            # Tell the peer where to write (control-plane setup).
            peer_node = self.runtime.nodes[peer]
            peer_mb = peer_node._mail.setdefault(self.rank, _PeerMailbox())
            peer_mb.peer_inbox_base = mb.my_inbox_base
            peer_mb.peer_staging_base = mb.my_staging_base
            peer_mb.peer_credit_cell = mb.my_credit_cell
        if self.size > 1:
            self.sim.process(self._sender(), name=f"dsm.sender{self.rank}")
            for peer in self.conns:
                self.sim.process(
                    self._listener(peer), name=f"dsm.listen{self.rank}-{peer}"
                )

    # ------------------------------------------------------------------
    # Crash recovery hooks (repro.recovery)
    # ------------------------------------------------------------------

    def on_peer_crashed(self, peer: int) -> int:
        """Survivor-side hook: refetch rather than trust crash-era copies.

        Cached (non-home, non-dirty) copies of pages homed at ``peer``
        are invalidated; the next access fetches from the home's restored
        authoritative copy.  Returns the number of pages dropped.
        """
        dropped = 0
        for pt in self.page_tables.values():
            region = pt.region
            for page in range(region.n_pages):
                if (
                    region.home_of(page) == peer
                    and not pt.is_home(page)
                    and pt.state[page] is PageState.VALID
                ):
                    pt.state[page] = PageState.INVALID
                    dropped += 1
        return dropped

    def on_self_crashed(self) -> None:
        """The node's page cache is volatile: drop everything non-home."""
        for pt in self.page_tables.values():
            pt.twins.clear()
            pt.dirty.clear()
            for page in range(pt.region.n_pages):
                pt.state[page] = (
                    PageState.VALID if pt.is_home(page) else PageState.INVALID
                )

    # ------------------------------------------------------------------
    # Messaging substrate
    # ------------------------------------------------------------------

    def _enqueue(self, peer: int, msg: Message, notices: Optional[list] = None) -> None:
        """Queue a control message (with optional notice payload) for sending.

        Chunks notice lists larger than one staging segment into multiple
        messages; only the final chunk has ``d == 0``.
        """
        notices = notices or []
        chunks = [
            notices[i : i + NOTICES_PER_CHUNK]
            for i in range(0, len(notices), NOTICES_PER_CHUNK)
        ] or [[]]
        for i, chunk in enumerate(chunks):
            m = Message(
                msg.msg_type,
                msg.src,
                a=msg.a,
                b=len(chunk),
                c=msg.c,
                d=0 if i == len(chunks) - 1 else 1,
            )
            self._out.put((peer, m, chunk))

    def _sender(self) -> Generator:
        memory = self.stack.node.memory
        while True:
            peer, msg, notices = yield self._out.get()
            mb = self._mail[peer]
            conn = self.conns[peer]
            while mb.send_seq - mb.peer_consumed >= SEND_WINDOW:
                mb.credit_event = Event(self.sim)
                yield mb.credit_event
            slot = mb.send_seq % INBOX_SLOTS
            if notices:
                blob = encode_notices(notices)
                scratch = memory.alloc(len(blob))
                memory.write(scratch, blob)
                yield from conn.rdma_write(
                    scratch,
                    mb.peer_staging_base + slot * NOTICE_SEG_BYTES,
                    len(blob),
                    cpu=self.service_cpu,
                )
            scratch_msg = memory.alloc(MSG_SLOT_BYTES)
            memory.write(scratch_msg, msg.encode())
            yield from conn.rdma_write(
                scratch_msg,
                mb.peer_inbox_base + slot * MSG_SLOT_BYTES,
                MSG_SLOT_BYTES,
                flags=OpFlags.NOTIFY | OpFlags.FENCE_BACKWARD,
                cpu=self.service_cpu,
            )
            mb.send_seq += 1
            self.stats.messages_sent += 1

    def _listener(self, peer: int) -> Generator:
        conn = self.conns[peer]
        memory = self.stack.node.memory
        mb = self._mail[peer]
        cpu = self.service_cpu
        while True:
            note = yield from conn.wait_notification(cpu=cpu)
            if note.address == mb.my_credit_cell:
                consumed = int.from_bytes(memory.read(mb.my_credit_cell, 8), "big")
                mb.peer_consumed = max(mb.peer_consumed, consumed)
                if mb.credit_event is not None and not mb.credit_event.triggered:
                    mb.credit_event.trigger()
                    mb.credit_event = None
                continue
            slot = mb.recv_seq % INBOX_SLOTS
            expected = mb.my_inbox_base + slot * MSG_SLOT_BYTES
            if note.address != expected:
                raise RuntimeError(
                    f"dsm node {self.rank}: message from {peer} landed at "
                    f"{note.address:#x}, expected slot {slot} at {expected:#x}"
                )
            msg = Message.decode(memory.read(expected, MSG_SLOT_BYTES))
            mb.recv_seq += 1
            mb.processed += 1
            self.stats.messages_received += 1
            yield from cpu.run(MSG_HANDLE_NS, "dsm")
            notices = []
            if msg.b:
                blob = memory.read(
                    mb.my_staging_base + slot * NOTICE_SEG_BYTES, msg.b * 8
                )
                notices = decode_notices(blob, msg.b)
                yield from cpu.run(NOTICE_APPLY_NS * msg.b, "dsm")
            if mb.processed % CREDIT_EVERY == 0:
                yield from self._send_credit(peer, mb)
            self._dispatch(peer, msg, notices)

    def _send_credit(self, peer: int, mb: _PeerMailbox) -> Generator:
        memory = self.stack.node.memory
        scratch = memory.alloc(8)
        memory.write(scratch, mb.recv_seq.to_bytes(8, "big"))
        yield from self.conns[peer].rdma_write(
            scratch, mb.peer_credit_cell, 8, flags=OpFlags.NOTIFY,
            cpu=self.service_cpu,
        )

    # ------------------------------------------------------------------
    # Message dispatch (manager + client state machines)
    # ------------------------------------------------------------------

    def _lock_mgr(self, lock_id: int) -> int:
        return lock_id % self.size

    def _barrier_mgr(self, barrier_id: int) -> int:
        return barrier_id % self.size

    def _dispatch(self, peer: int, msg: Message, notices: list) -> None:
        t = msg.msg_type
        if t == MsgType.LOCK_REQ:
            state = self._locks.setdefault(msg.a, LockManagerState(msg.a))
            grantee = state.request(msg.src)
            if grantee is not None:
                self._grant_lock(msg.a, grantee, state)
        elif t == MsgType.LOCK_GRANT:
            self._apply_notices(notices)
            if msg.d == 0:
                ev = self._lock_grant_ev.pop(msg.a, None)
                if ev is not None:
                    ev.trigger()
        elif t == MsgType.LOCK_REL:
            state = self._locks.setdefault(msg.a, LockManagerState(msg.a))
            if msg.d == 1:
                state.add_partial(notices)
            else:
                grantee = state.release(msg.src, notices, self.size)
                if grantee is not None:
                    self._grant_lock(msg.a, grantee, state)
        elif t == MsgType.BARRIER_ARRIVE:
            state = self._barriers.setdefault(
                msg.a, BarrierManagerState(msg.a)
            )
            if msg.d == 1:
                state.add_partial(msg.src, notices)
            else:
                releases = state.arrive(msg.src, notices, self.size)
                if releases is not None:
                    self._release_barrier(msg.a, state.epoch - 1, releases)
        elif t == MsgType.BARRIER_RELEASE:
            self._apply_notices(notices)
            if msg.d == 0:
                ev = self._barrier_ev.pop((msg.a, msg.c), None)
                if ev is not None:
                    ev.trigger()
        else:
            raise RuntimeError(f"unhandled DSM message type {t}")

    def _grant_lock(self, lock_id: int, grantee: int, state: LockManagerState) -> None:
        pending = state.take_pending(grantee)
        if grantee == self.rank:
            self._apply_notices(pending)
            ev = self._lock_grant_ev.pop(lock_id, None)
            if ev is not None:
                ev.trigger()
        else:
            self._enqueue(
                grantee,
                Message(MsgType.LOCK_GRANT, self.rank, a=lock_id),
                pending,
            )

    def _release_barrier(
        self, barrier_id: int, epoch: int, releases: dict[int, list]
    ) -> None:
        for target, notices in releases.items():
            if target == self.rank:
                self._apply_notices(notices)
                ev = self._barrier_ev.pop((barrier_id, epoch), None)
                if ev is not None:
                    ev.trigger()
            else:
                self._enqueue(
                    target,
                    Message(
                        MsgType.BARRIER_RELEASE, self.rank, a=barrier_id, c=epoch
                    ),
                    notices,
                )

    def _apply_notices(self, notices: list) -> None:
        for region_id, page in notices:
            pt = self.page_tables.get(region_id)
            if pt is not None:
                pt.invalidate(page)
                self.stats.invalidations_applied += 1

    # ------------------------------------------------------------------
    # Application API: memory access
    # ------------------------------------------------------------------

    def access(
        self,
        region: SharedRegion,
        offset: int,
        nbytes: int,
        mode: str = "r",
    ) -> Generator[Any, Any, np.ndarray]:
        """Fault in ``[offset, offset+nbytes)`` and return a local view.

        ``mode`` is ``"r"`` for read-only access or ``"rw"``/``"w"`` for
        write access (pages become dirty and are diffed at the next
        release).  Time spent fetching pages is accounted as data wait.
        """
        pt = self.page_tables[region.region_id]
        memory = self.stack.node.memory
        pages = region.page_range(offset, nbytes)
        to_fetch = [p for p in pages if pt.state[p] == PageState.INVALID]
        yield from self._fetch_pages(region, pt, to_fetch)
        if mode in ("w", "rw"):
            cpu = self.stack.node.app_cpu
            params = self.stack.node.params
            for page in pages:
                if pt.state[page] == PageState.DIRTY:
                    continue
                if not pt.is_home(page):
                    twin_cost = params.memcpy_ns(PAGE_SIZE)
                    t1 = self.sim.now
                    yield from cpu.run(twin_cost, "dsm")
                    self.stats.dsm_overhead_ns += self.sim.now - t1
                    pt.twins[page] = memory.view(
                        region.page_addr(self.rank, page), PAGE_SIZE
                    ).copy()
                pt.state[page] = PageState.DIRTY
                pt.dirty.add(page)
        elif mode != "r":
            raise ValueError(f"invalid access mode {mode!r}")
        return memory.view(region.base[self.rank] + offset, nbytes)

    def prefetch(
        self, region: SharedRegion, ranges: list[tuple[int, int]]
    ) -> Generator:
        """Fault in several (offset, nbytes) ranges with one parallel wait.

        Issues every needed page fetch before waiting, so a compute phase
        that needs scattered blocks pays one fetch round-trip instead of
        one per block.
        """
        pt = self.page_tables[region.region_id]
        seen: set[int] = set()
        to_fetch = []
        for offset, nbytes in ranges:
            for page in region.page_range(offset, nbytes):
                if page not in seen and pt.state[page] == PageState.INVALID:
                    seen.add(page)
                    to_fetch.append(page)
        yield from self._fetch_pages(region, pt, to_fetch)

    def _fetch_pages(
        self, region: SharedRegion, pt: PageTable, pages: list[int]
    ) -> Generator:
        """Fetch pages from their homes, at most FETCH_PIPELINE in flight."""
        if not pages:
            return
        t0 = self.sim.now
        pending = []
        for page in pages:
            if len(pending) >= FETCH_PIPELINE:
                h, p = pending.pop(0)
                yield from h.wait()
                pt.state[p] = PageState.VALID
            home = region.home_of(page)
            h = yield from self.conns[home].rdma_read(
                region.page_addr(self.rank, page),
                region.page_addr(home, page),
                PAGE_SIZE,
            )
            pending.append((h, page))
        for h, p in pending:
            yield from h.wait()
            pt.state[p] = PageState.VALID
        self.stats.page_fetches += len(pages)
        self.stats.page_fetch_bytes += len(pages) * PAGE_SIZE
        self.stats.data_wait_ns += self.sim.now - t0

    def ndview(
        self, region: SharedRegion, offset: int, shape, dtype
    ) -> np.ndarray:
        """Typed view of already-faulted local backing (no protocol action)."""
        nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        return (
            self.stack.node.memory.view(region.base[self.rank] + offset, nbytes)
            .view(dtype)
            .reshape(shape)
        )

    def compute(self, duration_ns: int) -> Generator:
        """Charge modelled application computation time."""
        if duration_ns > 0:
            yield from self.stack.node.app_cpu.run(int(duration_ns), "app.compute")
            self.stats.compute_ns += int(duration_ns)

    # ------------------------------------------------------------------
    # Application API: release consistency
    # ------------------------------------------------------------------

    def _flush(self) -> Generator[Any, Any, list]:
        """Diff and write back all dirty pages; returns write notices.

        Blocks until every diff has been acknowledged (and therefore
        applied at the home — see connection ack semantics), which is the
        flush a releaser must perform before making its writes visible.
        """
        memory = self.stack.node.memory
        cpu = self.stack.node.app_cpu
        params = self.stack.node.params
        notices: list[tuple[int, int]] = []
        # home node -> list of (home_address, data) diff segments.
        segments: dict[int, list[tuple[int, bytes]]] = {}
        for region_id, pt in self.page_tables.items():
            if not pt.dirty:
                continue
            region = pt.region
            for page in sorted(pt.dirty):
                if pt.is_home(page):
                    notices.append((region_id, page))
                    pt.state[page] = PageState.VALID
                    continue
                twin = pt.twins.pop(page)
                current = memory.view(
                    region.page_addr(self.rank, page), PAGE_SIZE
                )
                t1 = self.sim.now
                yield from cpu.run(params.memcpy_ns(PAGE_SIZE), "dsm")
                self.stats.dsm_overhead_ns += self.sim.now - t1
                runs = _diff_runs(twin, current)
                pt.state[page] = PageState.VALID
                if not runs:
                    continue
                notices.append((region_id, page))
                home = region.home_of(page)
                home_base = region.page_addr(home, page)
                segs = segments.setdefault(home, [])
                for start, length in runs:
                    segs.append(
                        (
                            home_base + start,
                            current[start : start + length].tobytes(),
                        )
                    )
                    self.stats.diff_bytes += length
                    self.stats.diff_runs += 1
                self.stats.diffs_flushed += 1
            pt.dirty.clear()
        # One scatter operation per home carries the whole diff set, the
        # way real SVM systems ship one diff message per flush target.
        handles = []
        for home, segs in segments.items():
            h = yield from self.conns[home].rdma_write_scatter(segs)
            handles.append(h)
        for h in handles:
            yield from h.wait()
        self.stats.write_notices_sent += len(notices)
        self._since_barrier.update(notices)
        return notices

    def lock(self, lock_id: int) -> Generator:
        """Acquire a global lock (release-consistency acquire point)."""
        t0 = self.sim.now
        mgr = self._lock_mgr(lock_id)
        ev = Event(self.sim)
        self._lock_grant_ev[lock_id] = ev
        if mgr == self.rank:
            state = self._locks.setdefault(lock_id, LockManagerState(lock_id))
            grantee = state.request(self.rank)
            if grantee == self.rank:
                self._grant_lock(lock_id, self.rank, state)
        else:
            self._enqueue(mgr, Message(MsgType.LOCK_REQ, self.rank, a=lock_id))
        if not ev.triggered:
            yield ev
        self.stats.lock_wait_ns += self.sim.now - t0
        self.stats.lock_acquires += 1

    def unlock(self, lock_id: int) -> Generator:
        """Release a global lock (flushes dirty pages first)."""
        notices = yield from self._flush()
        mgr = self._lock_mgr(lock_id)
        if mgr == self.rank:
            state = self._locks.setdefault(lock_id, LockManagerState(lock_id))
            grantee = state.release(self.rank, notices, self.size)
            if grantee is not None:
                self._grant_lock(lock_id, grantee, state)
        else:
            self._enqueue(
                mgr, Message(MsgType.LOCK_REL, self.rank, a=lock_id), notices
            )

    def barrier(self, barrier_id: int = 0) -> Generator:
        """Global barrier (flush + release + acquire semantics)."""
        t0 = self.sim.now
        yield from self._flush()
        notices = sorted(self._since_barrier)
        self._since_barrier.clear()
        mgr = self._barrier_mgr(barrier_id)
        epoch = self._barrier_epoch.get(barrier_id, 0)
        self._barrier_epoch[barrier_id] = epoch + 1
        ev = Event(self.sim)
        self._barrier_ev[(barrier_id, epoch)] = ev
        if mgr == self.rank:
            state = self._barriers.setdefault(
                barrier_id, BarrierManagerState(barrier_id)
            )
            releases = state.arrive(self.rank, notices, self.size)
            if releases is not None:
                self._release_barrier(barrier_id, state.epoch - 1, releases)
        else:
            self._enqueue(
                mgr,
                Message(MsgType.BARRIER_ARRIVE, self.rank, a=barrier_id, c=epoch),
                notices,
            )
        if not ev.triggered:
            yield ev
        self.stats.barrier_wait_ns += self.sim.now - t0
        self.stats.barriers += 1

    def start_measurement(self) -> None:
        """Mark the start of the timed section (call on every node)."""
        self.runtime._vote_start()


def _diff_runs(twin: np.ndarray, current: np.ndarray) -> list[tuple[int, int]]:
    """Exact changed-byte runs between twin and current page.

    Runs must be *byte-exact*: merging across unchanged gaps would write
    stale twin bytes back to the home, silently clobbering a concurrent
    false-sharing writer of the same page (page-based DSMs rely on the
    home merging disjoint byte diffs).  Densely modified pages collapse to
    few runs naturally; fine-grained scatter (e.g. Radix's permutation)
    genuinely costs many small writes — that is the real behaviour of
    page-based software DSM under false sharing.
    """
    changed = twin != current
    if not changed.any():
        return []
    idx = np.flatnonzero(changed)
    breaks = np.flatnonzero(np.diff(idx) > 1)
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks, [len(idx) - 1]))
    return [
        (int(idx[s]), int(idx[e] - idx[s] + 1)) for s, e in zip(starts, ends)
    ]
