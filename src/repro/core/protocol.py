"""Per-node protocol layer: the kernel driver client.

:class:`MultiEdgeProtocol` is the kernel-level MultiEdge layer of one node
(paper Figure 1, middle box).  It owns every connection terminating at the
node, dispatches received frames to them, reacts to TX-ring completions by
re-pumping stalled connections, and provides the op-id namespace.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..ethernet import Frame, Nic
from ..host import Node
from .connection import Connection, ProtocolParams
from .stats import ConnectionStats, merge_stats

__all__ = ["MultiEdgeProtocol"]


class MultiEdgeProtocol:
    """The MultiEdge kernel protocol layer of one node."""

    def __init__(self, node: Node, params: Optional[ProtocolParams] = None) -> None:
        self.node = node
        self.params = params or ProtocolParams()
        self.connections: dict[int, Connection] = {}
        self._next_op_id = 1
        self.unknown_connection_frames = 0
        # Crash recovery (repro.recovery): the node's monotonically
        # increasing incarnation number, bumped on every restart, and the
        # cluster-level recovery coordinator (None when crashes are not
        # modelled — the default path must not change).
        self.incarnation = 0
        self.recovery: Optional[Any] = None
        node.kernel.attach_client(self)

    # -- connection management -------------------------------------------

    def create_connection(
        self,
        conn_id: int,
        peer_node_id: int,
        peer_macs: list[int],
        params: Optional[ProtocolParams] = None,
    ) -> Connection:
        """Instantiate the local endpoint of a connection."""
        if conn_id in self.connections:
            raise ValueError(f"connection id {conn_id} already exists")
        conn = Connection(
            self, conn_id, peer_node_id, peer_macs, params or self.params
        )
        self.connections[conn_id] = conn
        if self.recovery is not None:
            self.recovery.on_connection_created(self, conn)
        return conn

    def allocate_op_id(self) -> int:
        op_id = self._next_op_id
        self._next_op_id += 1
        return op_id

    # -- DriverClient interface (called from the kernel thread) -----------

    def handle_frame(self, frame: Frame, cpu) -> Generator[Any, Any, None]:
        # Not a generator function: returning the connection's generator
        # directly keeps it out of the per-resume delegation chain (the
        # kernel thread drives one of these per received frame).
        conn = self.connections.get(frame.header.connection_id)
        if conn is None:
            self.unknown_connection_frames += 1
            return iter(())
        return conn.handle_rx_frame(frame, cpu)

    def handle_tx_completions(
        self, nic: Nic, count: int, cpu
    ) -> Generator[Any, Any, None]:
        yield from cpu.run(self.params.tx_complete_ns, "protocol.send")
        # Freed descriptors may unblock stalled connections.
        for conn in self.connections.values():
            if conn.has_send_work():
                yield from conn.pump(cpu)

    # -- aggregate statistics ----------------------------------------------

    def total_stats(self) -> ConnectionStats:
        return merge_stats([c.stats for c in self.connections.values()])
