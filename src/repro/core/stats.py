"""Protocol statistics counters.

One :class:`ConnectionStats` per connection endpoint.  These counters are
the raw material for the paper's network-level analysis:

* *extra frames* = explicit acks + nacks + retransmissions, reported as a
  fraction of data frames (paper: ≤5.5 % in micro-benchmarks, ≤15 % in
  applications),
* *out-of-order arrivals* = sequenced frames arriving with a sequence number
  different from the next expected one (paper: ≈0 % single link, 45–50 %
  with two links under round-robin striping),
* *reorder distance* histogram support (paper: "frames arrive out-of-order
  but closely spaced"),
* duplicates received (late retransmissions), frames dropped as detected by
  gap NACKs, and piggy-backed ack counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ConnectionStats", "merge_stats"]


@dataclass(slots=True)
class ConnectionStats:
    """Counters for one connection endpoint (both directions)."""

    # Send side.
    ops_submitted: int = 0
    ops_completed: int = 0
    data_frames_sent: int = 0
    data_bytes_sent: int = 0
    retransmitted_frames: int = 0
    explicit_acks_sent: int = 0
    nacks_sent: int = 0
    piggybacked_acks: int = 0
    timeout_retransmits: int = 0
    nack_retransmits: int = 0
    # CPU-charge conservation: pump() bills its batch up front, then
    # reclassifies the unused remainder when the TX ring stalls the batch.
    # Invariant: pump_charged_ns == frames actually sent * per_frame_send_ns.
    pump_charged_ns: int = 0
    pump_stalled_ns: int = 0

    # Edge lifecycle (control plane).
    edges_removed: int = 0
    edges_added: int = 0
    migrated_frames: int = 0
    probes_sent: int = 0
    probes_answered: int = 0

    # Receive side.
    data_frames_received: int = 0
    data_bytes_received: int = 0
    duplicate_frames: int = 0
    out_of_order_frames: int = 0
    buffered_frames: int = 0
    max_buffered_frames: int = 0
    reorder_distance_total: int = 0
    reorder_events: int = 0
    # Reorder-distance histogram: buckets 1, 2, 3, ..., 15, >=16.
    reorder_histogram: list = field(default_factory=lambda: [0] * 16)
    explicit_acks_received: int = 0
    nacks_received: int = 0
    notifications_delivered: int = 0

    def record_reorder(self, distance: int) -> None:
        self.reorder_events += 1
        self.reorder_distance_total += distance
        self.reorder_histogram[min(max(distance, 1), 16) - 1] += 1

    def record_buffered(self, depth: int) -> None:
        self.buffered_frames += 1
        if depth > self.max_buffered_frames:
            self.max_buffered_frames = depth

    @property
    def extra_frames_sent(self) -> int:
        """Frames beyond the minimum needed to move the data."""
        return self.explicit_acks_sent + self.nacks_sent + self.retransmitted_frames

    @property
    def extra_frame_fraction(self) -> float:
        """Extra frames / data frames sent (the paper's 'additional traffic')."""
        if self.data_frames_sent == 0:
            return 0.0
        return self.extra_frames_sent / self.data_frames_sent

    @property
    def out_of_order_fraction(self) -> float:
        if self.data_frames_received == 0:
            return 0.0
        return self.out_of_order_frames / self.data_frames_received

    @property
    def mean_reorder_distance(self) -> float:
        if self.reorder_events == 0:
            return 0.0
        return self.reorder_distance_total / self.reorder_events


def merge_stats(stats_list: list[ConnectionStats]) -> ConnectionStats:
    """Sum counters across connections (node- or cluster-level view)."""
    total = ConnectionStats()
    for s in stats_list:
        for f in (
            "ops_submitted",
            "ops_completed",
            "data_frames_sent",
            "data_bytes_sent",
            "retransmitted_frames",
            "explicit_acks_sent",
            "nacks_sent",
            "piggybacked_acks",
            "timeout_retransmits",
            "nack_retransmits",
            "pump_charged_ns",
            "pump_stalled_ns",
            "edges_removed",
            "edges_added",
            "migrated_frames",
            "probes_sent",
            "probes_answered",
            "data_frames_received",
            "data_bytes_received",
            "duplicate_frames",
            "out_of_order_frames",
            "buffered_frames",
            "reorder_distance_total",
            "reorder_events",
            "explicit_acks_received",
            "nacks_received",
            "notifications_delivered",
        ):
            setattr(total, f, getattr(total, f) + getattr(s, f))
        total.max_buffered_frames = max(
            total.max_buffered_frames, s.max_buffered_frames
        )
        total.reorder_histogram = [
            a + b for a, b in zip(total.reorder_histogram, s.reorder_histogram)
        ]
    return total
