"""Connection state machine: the heart of the MultiEdge protocol.

One :class:`Connection` object lives at each endpoint of a point-to-point
channel.  It owns:

**Send side**
  * operation submission: RDMA writes fragment into frame descriptors; RDMA
    reads become a single READ_REQ frame,
  * the sliding :class:`~repro.core.window.SendWindow`,
  * the *pump*: the CPU-charged loop that moves frame descriptors into NIC
    TX rings, choosing a rail per frame via the striping policy, assigning
    sequence numbers in actual transmission order, and piggy-backing the
    current cumulative ack on every frame,
  * forward-fence enforcement (later operations are withheld until the
    fenced operation is fully acknowledged),
  * NACK-driven selective retransmission and the coarse timeout.

**Receive side**
  * duplicate filtering and out-of-order accounting
    (:class:`~repro.core.window.ReceiveTracker`),
  * delivery ordering / backward fences
    (:class:`~repro.core.ordering.OrderingManager`),
  * applying payloads into the node's virtual memory (the paper's
    copy-to-user step, charged to the protocol CPU),
  * servicing remote reads (READ_REQ spawns a READ_RESP send operation),
  * the delayed-ack and NACK timers,
  * completion notifications delivered to the user-level library.

Everything that costs CPU is expressed as a generator to be driven from a
simulation process (the application's syscall context or the kernel
protocol thread), so the CPU-utilization figures fall out of the model.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Generator, Optional

from ..congestion import CongestionParams, make_congestion_controller
from ..congestion.base import FULL_FRAME_WIRE_BYTES
from ..ethernet import ECN_CE, ECN_ECHO, Frame, FrameType, OpFlags, max_payload_per_frame
from ..host.cpu import Cpu
from ..sim import Event, Simulator, Store, Timer
from .ack import AckPolicy, AckPolicyParams
from .messages import (
    SCATTER_RECORD_HEADER,
    decode_scatter_records,
    encode_scatter_records,
    make_ack_frame,
    make_data_frame,
    make_nack_frame,
    make_probe_ack_frame,
    make_read_req_frame,
)
from .errors import PeerCrashed, RetransmitExhausted
from .ordering import FenceDelivery, InOrderDelivery, RxOpState
from .retransmit import RetransmitParams, RetransmitTimer
from .stats import ConnectionStats
from .striping import make_striping_policy
from .window import ReceiveTracker, SendWindow

__all__ = ["ProtocolParams", "Operation", "Notification", "Connection"]


@dataclass
class ProtocolParams:
    """Compile-time protocol configuration (paper: fixed window size etc.)."""

    window_frames: int = 256
    ack: AckPolicyParams = field(default_factory=AckPolicyParams)
    retransmit: RetransmitParams = field(default_factory=RetransmitParams)
    # 2L-1G mode: buffer out-of-order frames, apply strictly in seq order.
    in_order_delivery: bool = False
    striping: str = "round_robin"
    # Frames whose CPU cost is charged per pump batch.
    pump_batch: int = 8
    # Cost of reclaiming a batch of TX descriptors.
    tx_complete_ns: int = 400
    # Length-only payloads: frames carry no bytes, only header lengths.
    # Every CPU/wire cost is computed from lengths, so timing and results
    # are identical to carrying real bytes; memory contents are simply not
    # moved.  Used by the micro-benchmark harness; applications that read
    # back received data must keep this off.
    synthetic_payloads: bool = False
    # Congestion controller ("static" | "aimd" | "dctcp" | any registered
    # name).  "static" is the paper's behaviour: the fixed flow-control
    # window is the only send limit, and every trace is bit-identical to
    # a build without the congestion subsystem.
    congestion: str = "static"
    # Controller tunables; None uses CongestionParams() defaults.
    congestion_params: Optional[CongestionParams] = None

    def __post_init__(self) -> None:
        if self.window_frames < 1:
            raise ValueError("window_frames must be >= 1")
        if self.pump_batch < 1:
            raise ValueError("pump_batch must be >= 1")


class Operation:
    """Sender-side record of one RDMA operation."""

    WRITE = "write"
    READ = "read"
    READ_RESP = "read_resp"

    def __init__(
        self,
        sim: Simulator,
        op_id: int,
        op_seq: int,
        kind: str,
        flags: int,
        local_address: int,
        remote_address: int,
        length: int,
    ) -> None:
        self.op_id = op_id
        self.op_seq = op_seq
        self.kind = kind
        self.flags = flags
        self.local_address = local_address
        self.remote_address = remote_address
        self.length = length
        self.frames_total = 0
        self.frames_acked = 0
        self.bytes_received = 0  # reads: response bytes applied locally
        self.submitted_at = sim.now
        self.completed_at: Optional[int] = None
        self.done = Event(sim)
        # Terminal failure (RetransmitExhausted / PeerCrashed).  A failed
        # op counts as completed so waiters wake exactly once; the API
        # layer re-raises the error from wait()/test().
        self.error: Optional[BaseException] = None

    @property
    def completed(self) -> bool:
        return self.completed_at is not None

    @property
    def failed(self) -> bool:
        return self.error is not None

    @property
    def forward_fenced(self) -> bool:
        return bool(self.flags & OpFlags.FENCE_FORWARD)

    def __repr__(self) -> str:
        state = "done" if self.completed else "pending"
        return f"Op({self.kind} id={self.op_id} len={self.length} {state})"


@dataclass
class Notification:
    """Completion notification delivered at the target (paper §2.2)."""

    op_id: int
    src_node: int
    address: int
    length: int
    delivered_at: int


@dataclass(slots=True)
class _FrameDesc:
    """A not-yet-transmitted fragment of an operation.

    ``payload_len`` is authoritative for frame sizing; ``payload`` holds
    the actual bytes, or None for READ_REQs and synthetic-payload mode.
    """

    op: Operation
    payload: Optional[bytes]
    remote_address: int
    payload_len: int = 0
    is_read_req: bool = False
    read_dest_address: int = 0  # READ_REQ: requester's local buffer


class Connection:
    """One endpoint of a MultiEdge connection."""

    def __init__(
        self,
        protocol: "Any",  # MultiEdgeProtocol; typed loosely to avoid a cycle
        conn_id: int,
        peer_node_id: int,
        peer_macs: list[int],
        params: Optional[ProtocolParams] = None,
    ) -> None:
        self.protocol = protocol
        self.node = protocol.node
        self.sim: Simulator = protocol.node.sim
        self.conn_id = conn_id
        self.peer_node_id = peer_node_id
        self.peer_macs = list(peer_macs)
        self.params = params or ProtocolParams()
        rails = min(len(self.peer_macs), len(self.node.nics))
        self.nics = self.node.nics[:rails]
        self.stats = ConnectionStats()
        # Set by graceful teardown (core.handshake); a closed connection
        # rejects new operations and ignores stray data frames.
        self.closed = False
        self.frames_after_close = 0

        # ---- send state ----
        self.window = SendWindow(self.params.window_frames)
        self.unsent: Deque[_FrameDesc] = deque()
        self._retransmit_q: Deque[int] = deque()  # seqs to retransmit
        self._frame_op: dict[int, Operation] = {}  # seq -> op
        self.striping = make_striping_policy(self.params.striping, self.nics)
        # Congestion control (repro.congestion).  The fast-path guard _cc
        # is None for the static policy — the same single-attribute-test
        # pattern as the monitor hooks, so the default costs nothing.
        self.congestion = make_congestion_controller(
            self.params.congestion, self.window, self.params.congestion_params
        )
        self._cc = self.congestion if self.congestion.active else None
        self._pacing_on = (
            self._cc is not None and self.congestion.params.pacing
        )
        # ECN accounting.  Deliberately *not* in ConnectionStats: stats
        # fields feed the fuzz fingerprints, which must stay bit-identical
        # for pre-ECN scenarios.
        self.ce_frames_received = 0
        self.ecn_echoes_sent = 0
        self.ecn_echoes_received = 0
        # Crash recovery (repro.recovery).  ``recovery`` is None unless the
        # cluster enabled whole-node crash faults; the incarnation pair then
        # fences off frames from dead incarnations of the peer.  Counters
        # are plain attributes for the same fingerprint reason as ECN.
        self.recovery: Optional[Any] = None
        self.local_incarnation = 0
        self.peer_incarnation = 0
        self.stale_frames_rejected = 0
        self.duplicate_msgs_suppressed = 0
        self._next_op_seq = 0
        self._forward_fences: Deque[Operation] = deque()
        self._pending_reads: dict[int, Operation] = {}  # op_id -> read op
        self.retransmit_timer = RetransmitTimer(
            self.sim,
            self.params.retransmit,
            on_timeout=self._on_coarse_timeout,
            on_dead=self._on_coarse_dead,
        )
        # Edge lifecycle control plane (repro.control); None when the
        # connection runs bare.  Receives probe echoes and dead-peer events.
        self.control_plane: Optional[Any] = None
        # Opt-in invariant monitor (repro.verify); None in normal runs so
        # every hook below is a single attribute test.
        self.monitor: Optional[Any] = None
        # Opt-in flow-level fast-forward (repro.fastpath); None keeps the
        # pump on the exact frame-level path.
        self.fastpath: Optional[Any] = None

        # ---- receive state ----
        self.tracker = ReceiveTracker()
        self.ordering = (
            InOrderDelivery() if self.params.in_order_delivery else FenceDelivery()
        )
        self.ack_policy = AckPolicy(self.params.ack)
        self._delayed_ack_timer: Optional[Timer] = None
        self._nack_timer: Optional[Timer] = None
        # Sequences that were already missing when the NACK timer was armed;
        # only gaps that *persist* across the whole delay are NACKed, so
        # transient striping reorder never triggers spurious retransmits.
        self._nack_snapshot: set[int] = set()
        self._nacked_at: dict[int, int] = {}
        self.notifications: Store = Store(self.sim)

        if self._pacing_on:
            self._sync_pacing()

    # ------------------------------------------------------------------
    # Operation submission (runs in the caller's CPU context)
    # ------------------------------------------------------------------

    def submit_write(
        self,
        local_address: int,
        remote_address: int,
        length: int,
        flags: int = 0,
    ) -> Operation:
        """Fragment an RDMA write into frame descriptors and queue them.

        Pure bookkeeping — the caller charges CPU and then drives
        :meth:`pump`.  The data is copied out of user memory here (the
        paper's user→kernel copy; cost charged by the API layer).
        """
        if length <= 0:
            raise ValueError("RDMA operation length must be positive")
        self._check_open()
        op = Operation(
            self.sim,
            op_id=self.protocol.allocate_op_id(),
            op_seq=self._next_op_seq,
            kind=Operation.WRITE,
            flags=flags,
            local_address=local_address,
            remote_address=remote_address,
            length=length,
        )
        self._next_op_seq += 1
        synthetic = self.params.synthetic_payloads
        data = None if synthetic else self.node.memory.read(local_address, length)
        mtu = max_payload_per_frame()
        offset = 0
        while offset < length:
            n = min(mtu, length - offset)
            self.unsent.append(
                _FrameDesc(
                    op=op,
                    payload=None if synthetic else data[offset : offset + n],
                    remote_address=remote_address + offset,
                    payload_len=n,
                )
            )
            op.frames_total += 1
            offset += n
        if op.forward_fenced:
            self._forward_fences.append(op)
        self.stats.ops_submitted += 1
        if self.monitor is not None:
            self.monitor.on_op_submitted(self, op)
        return op

    def submit_scatter(
        self,
        segments: list[tuple[int, bytes]],
        flags: int = 0,
    ) -> Operation:
        """Queue a scatter write: many small (address, data) segments in
        one operation.

        This is the wire format of a software-DSM *diff*: rather than one
        operation per changed byte-run, every run of a flush rides in one
        operation whose frames pack ``u64 addr + u32 len + data`` records.
        Records never split across frames.
        """
        if not segments:
            raise ValueError("scatter operation needs at least one segment")
        self._check_open()
        mtu = max_payload_per_frame()
        op = Operation(
            self.sim,
            op_id=self.protocol.allocate_op_id(),
            op_seq=self._next_op_seq,
            kind=Operation.WRITE,
            flags=flags | OpFlags.SCATTER,
            local_address=0,
            remote_address=segments[0][0],
            length=0,
        )
        self._next_op_seq += 1
        frame_segs: list[tuple[int, bytes]] = []
        frame_bytes = 0

        def emit() -> None:
            nonlocal frame_segs, frame_bytes
            payload = encode_scatter_records(frame_segs)
            self.unsent.append(
                _FrameDesc(
                    op=op,
                    payload=payload,
                    remote_address=segments[0][0],
                    payload_len=len(payload),
                )
            )
            op.frames_total += 1
            op.length += len(payload)
            frame_segs, frame_bytes = [], 0

        for addr, data in segments:
            offset = 0
            while offset < len(data):
                chunk = data[offset : offset + (mtu - SCATTER_RECORD_HEADER)]
                need = SCATTER_RECORD_HEADER + len(chunk)
                if frame_bytes + need > mtu and frame_segs:
                    emit()
                frame_segs.append((addr + offset, chunk))
                frame_bytes += need
                offset += len(chunk)
        if frame_segs:
            emit()
        if op.forward_fenced:
            self._forward_fences.append(op)
        self.stats.ops_submitted += 1
        if self.monitor is not None:
            self.monitor.on_op_submitted(self, op)
        return op

    def submit_read(
        self,
        local_address: int,
        remote_address: int,
        length: int,
        flags: int = 0,
    ) -> Operation:
        """Queue an RDMA read: one READ_REQ frame; completion when all
        response bytes have been applied locally."""
        if length <= 0:
            raise ValueError("RDMA operation length must be positive")
        self._check_open()
        op = Operation(
            self.sim,
            op_id=self.protocol.allocate_op_id(),
            op_seq=self._next_op_seq,
            kind=Operation.READ,
            flags=flags,
            local_address=local_address,
            remote_address=remote_address,
            length=length,
        )
        self._next_op_seq += 1
        op.frames_total = 1
        self.unsent.append(
            _FrameDesc(
                op=op,
                payload=None,
                remote_address=remote_address,
                is_read_req=True,
                read_dest_address=local_address,
            )
        )
        self._pending_reads[op.op_id] = op
        if op.forward_fenced:
            self._forward_fences.append(op)
        self.stats.ops_submitted += 1
        if self.monitor is not None:
            self.monitor.on_op_submitted(self, op)
        return op

    def _submit_read_response(self, rx_op: RxOpState, req_frame: Frame) -> None:
        """Responder side: turn an applied READ_REQ into a data send."""
        length = req_frame.header.op_length
        source = req_frame.header.remote_address
        dest = req_frame.control  # requester's local buffer address
        op = Operation(
            self.sim,
            op_id=req_frame.header.op_id,  # keep the requester's id
            op_seq=self._next_op_seq,
            kind=Operation.READ_RESP,
            flags=0,
            local_address=source,
            remote_address=int(dest),
            length=length,
        )
        self._next_op_seq += 1
        synthetic = self.params.synthetic_payloads
        data = None if synthetic else self.node.memory.read(source, length)
        mtu = max_payload_per_frame()
        descs = []
        offset = 0
        while offset < length:
            n = min(mtu, length - offset)
            descs.append(
                _FrameDesc(
                    op=op,
                    payload=None if synthetic else data[offset : offset + n],
                    remote_address=op.remote_address + offset,
                    payload_len=n,
                )
            )
            op.frames_total += 1
            offset += n
        # Responses bypass forward fences (see _fence_blocked), so they
        # must not queue behind descriptors a fence is withholding: slot
        # them ahead of the first fence-blocked descriptor.
        idx = len(self.unsent)
        if self._forward_fences:
            barrier = self._forward_fences[0].op_seq
            for k, queued in enumerate(self.unsent):
                if (
                    queued.op.kind != Operation.READ_RESP
                    and queued.op.op_seq > barrier
                ):
                    idx = k
                    break
        for k, desc in enumerate(descs):
            self.unsent.insert(idx + k, desc)
        if self.monitor is not None:
            self.monitor.on_op_submitted(self, op)

    # ------------------------------------------------------------------
    # The pump: move descriptors into NIC rings (CPU-charged)
    # ------------------------------------------------------------------

    def has_send_work(self) -> bool:
        return bool(self._retransmit_q) or (
            bool(self.unsent) and self.window.can_send and not self._fence_blocked()
        )

    def _fence_blocked(self) -> bool:
        if not self._forward_fences or not self.unsent:
            return False
        head = self.unsent[0]
        if head.op.kind == Operation.READ_RESP:
            # Responder traffic is never fenced: forward fences order this
            # endpoint's *own* operations.  Parking a read response behind
            # a local fence deadlocks two endpoints whose fenced reads
            # wait on each other's responses.
            return False
        return head.op.op_seq > self._forward_fences[0].op_seq

    def pump(self, cpu: Cpu, tag: str = "protocol.send") -> Generator[Any, Any, None]:
        """Transmit as much as the window, fences, and TX rings allow."""
        fastpath = self.fastpath
        if fastpath is not None and fastpath.offer(self):
            # The flow is in analytic steady state: the forwarder took
            # ownership of everything queued and will synthesize the whole
            # cascade (including this pump's CPU charges) at op boundaries.
            return
        per_frame = self.node.params.per_frame_send_ns
        stats = self.stats
        while True:
            n = self._sendable_now()
            if n == 0:
                return
            batch = min(n, self.params.pump_batch)
            yield from cpu.run(batch * per_frame, tag)
            gray_extra = self.node.gray_pump_extra_ns
            if gray_extra:
                # SlowNode gray fault: the core really is this much slower,
                # but the surplus is billed under its own tag so the
                # pump-CPU conservation invariant stays exact.
                yield from cpu.run(batch * gray_extra, "gray.slow-node")
            # Transmit atomically (no yields) — recheck state after the wait.
            sent = 0
            while sent < batch:
                if not self._send_one():
                    break
                sent += 1
            stats.pump_charged_ns += sent * per_frame
            if self.monitor is not None:
                self.monitor.on_event(self)
            if sent < batch:
                # The batch was billed up front, then the TX rings (or a
                # state change during the CPU wait) stopped it early.  The
                # core really was occupied for the full charge, but the
                # surplus is ring-stall time, not protocol work: reclassify
                # it so protocol-CPU utilization counts only frames sent.
                stalled = (batch - sent) * per_frame
                stats.pump_stalled_ns += stalled
                cpu.accounting.reclassify(tag, "stall.tx_ring", stalled)
                return

    def _sendable_now(self) -> int:
        n = len(self._retransmit_q)
        if self.unsent and not self._fence_blocked():
            n += min(len(self.unsent), self.window.available)
        return n

    def _send_one(self) -> bool:
        """Push one frame to a NIC.  False when nothing can go right now."""
        # Retransmissions first: they unblock the peer.
        while self._retransmit_q:
            seq = self._retransmit_q[0]
            rec = self.window.inflight.get(seq)
            if rec is None:  # acked in the meantime
                self._retransmit_q.popleft()
                continue
            rail = self.striping.next_rail(rec.frame.wire_bytes)
            if rail is None:
                return False
            self._retransmit_q.popleft()
            # An independent wire copy: a previous copy of this seq may
            # still be in flight on another rail, and mutating a shared
            # object would retroactively rewrite its ack, ECN bits, MACs,
            # and transit state (hops/CE/corruption) mid-journey.
            frame = rec.frame.wire_copy()
            frame.dst_mac = self.peer_macs[rail]
            frame.src_mac = self.nics[rail].mac
            frame.header.ack = self.tracker.cum_ack
            # Re-evaluate the ECN echo: the bit a previous copy carried is
            # stale, and a pending CE debt may ride out with this copy.
            if self.ack_policy.echo_pending:
                frame.header.flags |= ECN_ECHO
                self.ecn_echoes_sent += 1
                self.ack_policy.note_echo_sent()
            else:
                frame.header.flags &= ~ECN_ECHO
            rec.last_sent_at = self.sim.now
            rec.last_rail = rail
            if self.recovery is not None:
                frame.incarnation = self.local_incarnation
            self.nics[rail].transmit(frame)
            self.stats.retransmitted_frames += 1
            self.retransmit_timer.arm()
            return True
        unsent = self.unsent
        window = self.window
        if not unsent or not window.can_send or self._fence_blocked():
            return False
        next_bytes = unsent[0].payload_len or 64
        rail = self.striping.next_rail(next_bytes)
        if rail is None:
            return False
        desc = unsent.popleft()
        seq = window.allocate_seq()
        cum_ack = self.tracker.cum_ack
        nic = self.nics[rail]
        if desc.is_read_req:
            frame = make_read_req_frame(
                src_mac=nic.mac,
                dst_mac=self.peer_macs[rail],
                connection_id=self.conn_id,
                seq=seq,
                ack=cum_ack,
                op_id=desc.op.op_id,
                op_seq=desc.op.op_seq,
                op_flags=desc.op.flags,
                remote_address=desc.remote_address,
                op_length=desc.op.length,
            )
            frame.control = desc.read_dest_address
        else:
            frame = make_data_frame(
                src_mac=nic.mac,
                dst_mac=self.peer_macs[rail],
                connection_id=self.conn_id,
                seq=seq,
                ack=cum_ack,
                op_id=desc.op.op_id,
                op_seq=desc.op.op_seq,
                op_flags=desc.op.flags,
                remote_address=desc.remote_address,
                op_length=desc.op.length,
                payload=desc.payload,
                read_response=desc.op.kind == Operation.READ_RESP,
                payload_length=desc.payload_len,
            )
        if self.ack_policy.echo_pending:
            frame.header.flags |= ECN_ECHO
            self.ecn_echoes_sent += 1
        if self.recovery is not None:
            frame.incarnation = self.local_incarnation
        window.register(frame, desc.op.op_id, self.sim.now, rail=rail)
        self._frame_op[seq] = desc.op
        nic.transmit(frame)
        stats = self.stats
        stats.data_frames_sent += 1
        stats.data_bytes_sent += frame.header.payload_length
        stats.piggybacked_acks += 1
        self.ack_policy.on_ack_emitted(cum_ack, piggybacked=True)
        self._cancel_delayed_ack()
        self.retransmit_timer.arm()
        return True

    # ------------------------------------------------------------------
    # Receive path (runs on the protocol kernel thread)
    # ------------------------------------------------------------------

    def _check_open(self) -> None:
        if self.closed:
            raise RuntimeError(
                f"connection {self.conn_id} is closed; no new operations"
            )

    def handle_rx_frame(self, frame: Frame, cpu: Cpu) -> Generator[Any, Any, None]:
        h = frame.header
        if self.recovery is not None and frame.incarnation != self.peer_incarnation:
            # Frame (or ack) from a dead incarnation of the peer: reject it
            # before it can corrupt the resurrected connection's windows.
            self.stale_frames_rejected += 1
            return
        if self.monitor is not None:
            # No-stale-frame-accepted invariant: every frame that passes
            # the guard above must match the expected peer incarnation.
            self.monitor.on_rx_frame(self, frame)
        if self.closed and h.frame_type in (
            FrameType.DATA, FrameType.READ_REQ, FrameType.READ_RESP
        ):
            self.frames_after_close += 1
            return
        # Per-frame protocol cost, charged inline (the open-coded uncontended
        # claim mirrors Cpu.run exactly; the receive path is hot enough that
        # the extra generator hop per frame shows up in wall time).
        duration = self.node.params.per_frame_recv_ns
        if duration > 0:
            sim = self.sim
            res = cpu.resource
            if res.in_use < res.capacity and not res._waiters:
                now = sim.now
                res.busy_time += res.in_use * (now - res._busy_since)
                res._busy_since = now
                res.in_use += 1
            else:
                yield res.acquire()
            yield duration
            if res._waiters:
                res.release()
            else:
                now = sim.now
                res.busy_time += res.in_use * (now - res._busy_since)
                res._busy_since = now
                res.in_use -= 1
            cpu.accounting.charge("protocol.recv", duration)

        ftype = h.frame_type
        if ftype == FrameType.PROBE:
            # Heartbeat: echo it on the rail it probed (control plane §2.4
            # analogue; unsequenced, never flow-controlled).
            if not self.closed:
                yield from self._answer_probe(frame, cpu)
            return
        if ftype == FrameType.PROBE_ACK:
            if self.control_plane is not None:
                self.control_plane.on_probe_ack(frame)
            return
        if ftype == FrameType.ACK:
            self.stats.explicit_acks_received += 1
            self._process_ack_value(h.ack, bool(h.flags & ECN_ECHO))
        elif ftype == FrameType.NACK:
            self.stats.nacks_received += 1
            self._process_ack_value(h.ack, bool(h.flags & ECN_ECHO))
            self._process_nack(frame.control or [])
        else:
            # Sequenced frame: ECN first (a CE mark must be echoed even on
            # a duplicate), then the piggy-backed ack, then delivery.
            flags = h.flags
            if flags & ECN_CE:
                self.ce_frames_received += 1
                self.ack_policy.note_ce()
            self._process_ack_value(h.ack, bool(flags & ECN_ECHO))
            stats = self.stats
            tracker = self.tracker
            expected_before = tracker.expected
            is_new, in_order = tracker.on_frame(h.seq)
            if not is_new:
                stats.duplicate_frames += 1
                # The peer is retransmitting: our ack state probably got lost.
                self._send_explicit_ack()
            else:
                stats.data_frames_received += 1
                stats.data_bytes_received += h.payload_length
                if not in_order:
                    stats.out_of_order_frames += 1
                    stats.record_reorder(abs(h.seq - expected_before))

                # Gap management: arm/cancel the NACK timer.
                if tracker._beyond:
                    self._arm_nack_timer()
                else:
                    self._cancel_nack_timer()

                apply_now, completed = self.ordering.on_frame(frame)
                if not apply_now:
                    stats.record_buffered(self.ordering.buffered)
                for f in apply_now:
                    yield from self._apply_frame(f, cpu)
                for rx_op in completed:
                    self._on_rx_op_complete(rx_op)

                if self.ack_policy.on_data_frame():
                    self._send_explicit_ack()
                else:
                    self._arm_delayed_ack()

        if self.monitor is not None:
            self.monitor.on_event(self)
        # Acks may have opened the window; new work may be queued.
        if self.has_send_work():
            yield from self.pump(cpu)

    def _apply_frame(self, frame: Frame, cpu: Cpu) -> Generator[Any, Any, None]:
        h = frame.header
        if h.frame_type == FrameType.READ_REQ:
            # Perform the read: snapshot memory into a response operation.
            rx_op = self.ordering.ops[h.op_seq]
            cost = self.node.params.memcpy_ns(h.op_length)
            yield from cpu.run(cost, "protocol.recv")
            self._submit_read_response(rx_op, frame)
            return
        if h.payload_length > 0:
            # Copy-to-user cost is a function of length alone; it is charged
            # whether or not real bytes ride in the frame (synthetic mode).
            cost = self.node.params.memcpy_ns(h.payload_length)
            if cost > 0:
                sim = self.sim
                res = cpu.resource
                if res.in_use < res.capacity and not res._waiters:
                    now = sim.now
                    res.busy_time += res.in_use * (now - res._busy_since)
                    res._busy_since = now
                    res.in_use += 1
                else:
                    yield res.acquire()
                yield cost
                if res._waiters:
                    res.release()
                else:
                    now = sim.now
                    res.busy_time += res.in_use * (now - res._busy_since)
                    res._busy_since = now
                    res.in_use -= 1
                cpu.accounting.charge("protocol.recv", cost)
            payload = frame.payload
            if payload is not None:
                if h.flags & OpFlags.SCATTER:
                    for addr, data in decode_scatter_records(payload):
                        self.node.memory.write(addr, data)
                else:
                    self.node.memory.write(h.remote_address, payload)
        if h.frame_type == FrameType.READ_RESP:
            op = self._pending_reads.get(h.op_id)
            if op is not None:
                op.bytes_received += h.payload_length
                if op.bytes_received >= op.length:
                    del self._pending_reads[h.op_id]
                    self._complete_local_op(op)

    def _on_rx_op_complete(self, rx_op: RxOpState) -> None:
        rx_op.src_node = self.peer_node_id
        if (
            self.recovery is not None
            and rx_op.flags & OpFlags.JOURNALED
            and not self.recovery.accept_delivery(self, rx_op)
        ):
            # Journal replay re-sent a message this node already delivered
            # (same peer incarnation + journal seq): suppress the duplicate.
            self.duplicate_msgs_suppressed += 1
            return
        if rx_op.wants_notification() and not rx_op.is_read_request:
            self.notifications.put(
                Notification(
                    op_id=rx_op.op_id,
                    src_node=self.peer_node_id,
                    address=rx_op.base_address,
                    length=rx_op.length,
                    delivered_at=self.sim.now,
                )
            )
            self.stats.notifications_delivered += 1

    # ------------------------------------------------------------------
    # Edge lifecycle (driven by repro.control, usable manually too)
    # ------------------------------------------------------------------

    def _answer_probe(self, frame: Frame, cpu: Cpu) -> Generator[Any, Any, None]:
        """Echo a heartbeat probe back on the rail it arrived on."""
        rail = frame.control
        if not isinstance(rail, int) or not 0 <= rail < len(self.nics):
            return
        yield from cpu.run(self.node.params.per_frame_send_ns, "protocol.send")
        gray_extra = self.node.gray_pump_extra_ns
        if gray_extra:
            # A slow node answers probes slowly too — that is exactly the
            # RTT inflation the differential gray scorer keys on.
            yield from cpu.run(gray_extra, "gray.slow-node")
        nic = self.nics[rail]
        probe_ack = make_probe_ack_frame(
            nic.mac, self.peer_macs[rail], self.conn_id, frame
        )
        if self.recovery is not None:
            probe_ack.incarnation = self.local_incarnation
        nic.transmit(probe_ack)
        self.stats.probes_answered += 1

    def remove_edge(self, rail: int, migrate: bool = True) -> int:
        """Take one rail of a live connection out of service.

        Masks the rail for the striping policy and migrates every unacked
        in-flight frame whose latest transmission used it onto the
        survivors (requeued in sequence order, so delivery-order
        guarantees are untouched — retransmissions keep their original
        sequence numbers).  Returns the number of migrated frames.
        Idempotent: removing an already-removed edge does nothing.
        """
        if not 0 <= rail < len(self.nics):
            raise ValueError(f"rail {rail} out of range")
        if not self.striping.rail_active(rail):
            return 0
        self.striping.disable_rail(rail)
        self.stats.edges_removed += 1
        migrated = 0
        if migrate:
            queued = set(self._retransmit_q)
            for seq in self.window.inflight_on_rail(rail):
                if seq in queued:
                    continue
                self.window.inflight[seq].retransmits += 1
                self._retransmit_q.append(seq)
                migrated += 1
        self.stats.migrated_frames += migrated
        if self.monitor is not None:
            self.monitor.on_event(self)
        if self.has_send_work():
            self.sim.process(self._timer_pump())
        return migrated

    def add_edge(self, rail: int) -> None:
        """Return a previously removed rail to service (live re-stripe)."""
        if not 0 <= rail < len(self.nics):
            raise ValueError(f"rail {rail} out of range")
        if self.striping.rail_active(rail):
            return
        self.striping.enable_rail(rail)
        self.stats.edges_added += 1
        if self.monitor is not None:
            self.monitor.on_event(self)
        if self.has_send_work():
            self.sim.process(self._timer_pump())

    def attach_rail(self, nic: "Any", peer_mac: int) -> int:
        """Extend a live connection with a brand-new rail; returns its index.

        The NIC must already be wired into the fabric; the peer must
        symmetrically attach its own end for traffic to flow both ways.
        """
        self.nics.append(nic)
        self.peer_macs.append(peer_mac)
        rail = self.striping.add_rail(nic)
        self.stats.edges_added += 1
        return rail

    @property
    def active_rails(self) -> list[int]:
        return self.striping.active_rails

    def _on_coarse_dead(self) -> None:
        """Retransmit retries exhausted: every rail is silent."""
        self.fail_pending_ops(
            RetransmitExhausted(
                self.conn_id, self.retransmit_timer.consecutive_timeouts
            )
        )
        if self.control_plane is not None:
            self.control_plane.on_connection_dead()

    def fail_pending_ops(self, exc: BaseException) -> int:
        """Terminate every incomplete operation with a typed error.

        Failed ops count as completed (waiters wake exactly once and the
        API layer re-raises ``exc``); send queues and window state are left
        untouched so accounting invariants still hold — :meth:`destroy`
        clears them for the whole-node crash case.  Returns the number of
        ops failed.
        """
        pending: dict[int, Operation] = {}
        for op in self._frame_op.values():
            pending[id(op)] = op
        for desc in self.unsent:
            pending[id(desc.op)] = desc.op
        for op in self._pending_reads.values():
            pending[id(op)] = op
        for op in self._forward_fences:
            pending[id(op)] = op
        failed = 0
        for op in pending.values():
            if op.completed:
                continue
            op.error = exc
            op.completed_at = self.sim.now
            if not op.done.triggered:
                op.done.trigger(op)
            failed += 1
        return failed

    def destroy(self, exc: Optional[BaseException] = None) -> int:
        """Atomically discard this endpoint's volatile state (crash model).

        Fails every pending op (default :class:`PeerCrashed`), cancels all
        timers, drops the send/receive queues and in-flight window records,
        and removes the connection from the protocol's dispatch table.
        Frames still in the fabric hit ``unknown_connection_frames`` (or
        the stale-incarnation guard of a successor connection).  Returns
        the number of ops failed.
        """
        if exc is None:
            exc = PeerCrashed(self.conn_id, self.peer_node_id)
        fastpath = self.fastpath
        if fastpath is not None:
            fastpath.on_discontinuity("endpoint-destroyed")
            self.fastpath = None
        failed = self.fail_pending_ops(exc)
        self.closed = True
        self.retransmit_timer.cancel()
        self.retransmit_timer.exhausted = True  # never re-arm
        self._cancel_delayed_ack()
        self._cancel_nack_timer()
        self.unsent.clear()
        self._retransmit_q.clear()
        self.window.inflight.clear()
        self._frame_op.clear()
        self._pending_reads.clear()
        self._forward_fences.clear()
        if self.protocol.connections.get(self.conn_id) is self:
            del self.protocol.connections[self.conn_id]
        return failed

    # ------------------------------------------------------------------
    # Ack / NACK machinery
    # ------------------------------------------------------------------

    def _sync_pacing(self) -> None:
        """Retune the NIC token buckets to the controller's current rate.

        The connection-level rate (cwnd/srtt with headroom) is split evenly
        across the active rails; the NIC clamps each share at line rate.
        """
        rate = self.congestion.pacing_rate_bps()
        if rate is None:
            return
        rails = self.striping.active_rails
        per_rail = rate / len(rails) if rails else rate
        burst = self.congestion.params.pacing_burst_frames * FULL_FRAME_WIRE_BYTES
        for rail in rails:
            self.nics[rail].set_pacing_rate(per_rail, burst)

    def _process_ack_value(self, cum_ack: int, ece: bool = False) -> None:
        freed = self.window.on_ack(cum_ack)
        if ece:
            self.ecn_echoes_received += 1
        if self.monitor is not None:
            self.monitor.on_ack(self, cum_ack, freed)
        if not freed:
            return
        cc = self._cc
        if cc is not None:
            # Karn's rule: an RTT sample only from a never-retransmitted
            # frame (the newest of the freed batch).
            rec = freed[-1]
            rtt = None if rec.retransmits else self.sim.now - rec.last_sent_at
            cc.on_ack(len(freed), ece, self.sim.now, rtt)
            if self._pacing_on:
                self._sync_pacing()
        self.retransmit_timer.on_progress()
        if self.window.inflight:
            self.retransmit_timer.arm()
        for rec in freed:
            seq = rec.frame.header.seq
            op = self._frame_op.pop(seq, None)
            if op is None:
                continue
            op.frames_acked += 1
            if op.frames_acked >= op.frames_total and not op.completed:
                if op.kind == Operation.READ:
                    # Reads complete when response data lands, not on ack.
                    continue
                self._complete_local_op(op)

    def _complete_local_op(self, op: Operation) -> None:
        op.completed_at = self.sim.now
        self.stats.ops_completed += 1
        if self._forward_fences and self._forward_fences[0] is op:
            self._forward_fences.popleft()
        elif op in self._forward_fences:
            self._forward_fences.remove(op)
        op.done.trigger(op)

    def _process_nack(self, missing: list[int]) -> None:
        queued = set(self._retransmit_q)
        holdoff = self.params.retransmit.nack_holdoff_ns
        now = self.sim.now
        enqueued = 0
        for seq in missing:
            rec = self.window.inflight.get(seq)
            if rec is None or seq in queued:
                continue
            # Recently (re)transmitted frames are most likely still queued
            # in a busy rail, not lost: retransmitting them would only add
            # duplicates on an already-congested path.
            if now - rec.last_sent_at < holdoff:
                continue
            rec.retransmits += 1
            self._retransmit_q.append(seq)
            self.stats.nack_retransmits += 1
            enqueued += 1
        if enqueued:
            cc = self._cc
            if cc is not None:
                cc.on_loss(now)
                if self._pacing_on:
                    self._sync_pacing()

    def _send_explicit_ack(self) -> None:
        # Control frames ride a separate rotation: they must not charge the
        # data-plane byte-deficit counters or advance its cursor.
        rail = self.striping.control_rail()
        if rail is None:
            return  # rings full; the delayed-ack timer will try again
        cum = self.tracker.cum_ack
        ece = self.ack_policy.echo_pending
        frame = make_ack_frame(
            self.nics[rail].mac, self.peer_macs[rail], self.conn_id, cum, ece
        )
        if self.recovery is not None:
            frame.incarnation = self.local_incarnation
        self.nics[rail].transmit(frame)
        self.stats.explicit_acks_sent += 1
        if ece:
            self.ecn_echoes_sent += 1
        self.ack_policy.on_ack_emitted(cum, piggybacked=False)
        self._cancel_delayed_ack()

    def _send_nack(self) -> None:
        still_missing = set(self.tracker.missing(self.params.ack.nack_max_entries))
        now = self.sim.now
        renack = self.params.ack.renack_interval_ns
        missing = sorted(
            seq
            for seq in (still_missing & self._nack_snapshot)
            if now - self._nacked_at.get(seq, -(1 << 60)) >= renack
        )
        if not missing:
            return
        rail = self.striping.control_rail()
        if rail is None:
            return
        ece = self.ack_policy.echo_pending
        frame = make_nack_frame(
            self.nics[rail].mac,
            self.peer_macs[rail],
            self.conn_id,
            self.tracker.cum_ack,
            missing,
            ece,
        )
        if self.recovery is not None:
            frame.incarnation = self.local_incarnation
        self.nics[rail].transmit(frame)
        self.stats.nacks_sent += 1
        if ece:
            self.ecn_echoes_sent += 1
            self.ack_policy.note_echo_sent()
        for seq in missing:
            self._nacked_at[seq] = now
        expected = self.tracker.expected
        if len(self._nacked_at) > 4 * self.params.ack.nack_max_entries:
            self._nacked_at = {
                s: t for s, t in self._nacked_at.items() if s >= expected
            }

    # ------------------------------------------------------------------
    # Timers (callbacks spawn small CPU-charged processes)
    # ------------------------------------------------------------------

    def _arm_delayed_ack(self) -> None:
        if self._delayed_ack_timer is None or not self._delayed_ack_timer.active:
            self._delayed_ack_timer = self.sim.timer(
                self.params.ack.ack_delay_ns, self._delayed_ack_fired
            )

    def _cancel_delayed_ack(self) -> None:
        if self._delayed_ack_timer is not None:
            self._delayed_ack_timer.cancel()
            self._delayed_ack_timer = None

    def _delayed_ack_fired(self) -> None:
        self._delayed_ack_timer = None
        if self.ack_policy.needs_delayed_ack(self.tracker.cum_ack):
            self.sim.process(self._timer_work(self._send_explicit_ack))

    def _arm_nack_timer(self) -> None:
        if self._nack_timer is None or not self._nack_timer.active:
            self._nack_snapshot = set(
                self.tracker.missing(self.params.ack.nack_max_entries)
            )
            self._nack_timer = self.sim.timer(
                self.params.ack.nack_delay_ns, self._nack_fired
            )

    def _cancel_nack_timer(self) -> None:
        if self._nack_timer is not None:
            self._nack_timer.cancel()
            self._nack_timer = None

    def _nack_fired(self) -> None:
        self._nack_timer = None
        if self.tracker.has_gap():
            self.sim.process(self._timer_work(self._send_nack))
            self._arm_nack_timer()  # keep nagging until the gap closes

    def _on_coarse_timeout(self) -> None:
        rec = self.window.last_unacked()
        if rec is None:
            return
        seq = rec.frame.header.seq
        if seq not in self._retransmit_q:
            # Count at the enqueue site: a timer firing while the seq is
            # still queued enqueues nothing and must not inflate either
            # the per-frame or the connection-level retransmit counter.
            rec.retransmits += 1
            self.stats.timeout_retransmits += 1
            self._retransmit_q.append(seq)
            cc = self._cc
            if cc is not None:
                cc.on_timeout(self.sim.now)
                if self._pacing_on:
                    self._sync_pacing()
        self.sim.process(self._timer_pump())
        self.retransmit_timer.arm()
        if self.monitor is not None:
            self.monitor.on_event(self)

    def _timer_work(self, action) -> Generator[Any, Any, None]:
        """Run a small control-frame action on the protocol CPU."""
        cpu = self.node.protocol_cpu
        yield from cpu.run(self.node.params.per_frame_send_ns, "protocol.send")
        action()

    def _timer_pump(self) -> Generator[Any, Any, None]:
        yield from self.pump(self.node.protocol_cpu)
