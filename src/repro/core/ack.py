"""Acknowledgement policy (paper §2.4).

MultiEdge minimises explicit acknowledgement traffic three ways:

* **piggy-backing** — every outgoing sequenced frame carries the current
  cumulative ack, and doing so counts as having acknowledged;
* **delayed acks** — an explicit ACK is deferred until ``ack_every_frames``
  data frames have arrived unacknowledged, or until ``ack_delay_ns`` passes
  (whichever first);
* **NACK scheduling** — a sequence gap does not trigger an immediate NACK
  (with multiple links, gaps are usually just striping reorder and fill in
  microseconds); instead a NACK timer is armed, and fires only if the gap
  persists for ``nack_delay_ns``.

The policy object is pure decision logic; the connection owns the timers
and the actual frame transmission.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AckPolicyParams", "AckPolicy"]


@dataclass
class AckPolicyParams:
    """Tunables for the acknowledgement policy."""

    ack_every_frames: int = 32  # explicit ack after this many unacked frames
    ack_delay_ns: int = 400_000  # ... or this much time
    nack_delay_ns: int = 400_000  # gap must persist this long to NACK
    renack_interval_ns: int = 600_000  # per-seq NACK repetition floor
    nack_max_entries: int = 64  # missing seqs per NACK frame

    def __post_init__(self) -> None:
        if self.ack_every_frames < 1:
            raise ValueError("ack_every_frames must be >= 1")
        if self.ack_delay_ns < 0 or self.nack_delay_ns < 0:
            raise ValueError("delays must be >= 0")


class AckPolicy:
    """Decides when an explicit acknowledgement is owed."""

    def __init__(self, params: AckPolicyParams | None = None) -> None:
        self.params = params or AckPolicyParams()
        self._unacked_frames = 0
        self._last_acked_value = 0
        # Congestion-Experienced frames seen since the last ack left this
        # node; while non-zero, outgoing acks carry the ECN-echo bit.
        self._ce_since_ack = 0

    @property
    def frames_pending_ack(self) -> int:
        return self._unacked_frames

    @property
    def echo_pending(self) -> bool:
        """True while an ECN echo is owed to the sender."""
        return self._ce_since_ack > 0

    def note_ce(self) -> None:
        """A received sequenced frame carried the CE mark (new or dup)."""
        self._ce_since_ack += 1

    def note_echo_sent(self) -> None:
        """An ECN echo left on a frame that is not an acknowledgement for
        delayed-ack purposes (a NACK or a retransmission): clear only the
        CE debt, leaving the unacked-frame count untouched."""
        self._ce_since_ack = 0

    def on_data_frame(self) -> bool:
        """Register a received data frame; True if an explicit ack is due now."""
        self._unacked_frames += 1
        return self._unacked_frames >= self.params.ack_every_frames

    def needs_delayed_ack(self, current_cum_ack: int) -> bool:
        """Whether the delayed-ack timer, on firing, should emit an ack."""
        return (
            self._unacked_frames > 0 or current_cum_ack != self._last_acked_value
        )

    def on_ack_emitted(self, cum_ack: int, piggybacked: bool) -> None:
        """Reset state after ack information left this node.

        Both explicit acks and piggy-backed acks count (paper: piggy-backing
        reduces the number of explicit acknowledgements).  Any pending ECN
        echo rode out with the ack, so the CE debt clears too.
        """
        self._unacked_frames = 0
        self._last_acked_value = cum_ack
        self._ce_since_ack = 0

    def on_duplicate(self) -> bool:
        """Duplicates mean the peer is retransmitting: re-ack immediately so
        it can advance (its ack may have been lost)."""
        return True
