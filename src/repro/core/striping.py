"""Multi-link striping policies (paper §2.5, "spatial parallelism").

When a connection spans multiple physical rails, every frame to transmit is
assigned to one rail by a load-balancing policy.  The paper uses round-robin;
we also provide two alternatives used by the ablation benchmarks:

* :class:`RoundRobinStriping` — the paper's policy: cycle through rails,
  skipping any whose TX ring is full.
* :class:`ShortestQueueStriping` — pick the rail with the most TX ring
  space (adaptive; trades reorder for balance under asymmetric load).
* :class:`SingleRailStriping` — pin everything to rail 0 (degenerate case,
  equals a single-link configuration even when hardware has two rails).

The edge lifecycle control plane (:mod:`repro.control`) adds a fourth,
health-weighted policy (``"adaptive"``) through
:func:`register_striping_policy`.

Every policy supports *rail masking*: the control plane disables an edge
that its failure detector has declared DOWN, and re-enables it once the
edge recovers.  Masked rails are never chosen; when every active rail's TX
ring is full, ``next_rail`` returns None exactly as before.
"""

from __future__ import annotations

from typing import Optional, Sequence, Type

from ..ethernet import Nic

__all__ = [
    "StripingPolicy",
    "RoundRobinStriping",
    "ShortestQueueStriping",
    "SingleRailStriping",
    "make_striping_policy",
    "register_striping_policy",
]


class StripingPolicy:
    """Chooses the rail for the next frame."""

    def __init__(self, nics: Sequence[Nic]) -> None:
        if not nics:
            raise ValueError("striping policy needs at least one rail")
        self.nics = list(nics)
        # Rails the control plane has taken out of service (edge DOWN).
        self.masked: set[int] = set()
        # Rotation point for control frames (ACK/NACK); separate from any
        # data-plane cursor so control traffic never skews data balance.
        self._control_cursor = 0

    # -- edge lifecycle hooks -------------------------------------------

    def disable_rail(self, rail: int) -> None:
        """Stop assigning frames to ``rail`` (edge declared DOWN)."""
        if not 0 <= rail < len(self.nics):
            raise ValueError(f"rail {rail} out of range")
        self.masked.add(rail)

    def enable_rail(self, rail: int) -> None:
        """Resume assigning frames to ``rail`` (edge recovered)."""
        if not 0 <= rail < len(self.nics):
            raise ValueError(f"rail {rail} out of range")
        self.masked.discard(rail)

    def rail_active(self, rail: int) -> bool:
        return rail not in self.masked

    @property
    def active_rails(self) -> list[int]:
        return [r for r in range(len(self.nics)) if r not in self.masked]

    def add_rail(self, nic: Nic) -> int:
        """Attach a new rail to a live connection; returns its index.

        Subclasses with per-rail state extend it here.
        """
        self.nics.append(nic)
        return len(self.nics) - 1

    # -- selection -------------------------------------------------------

    def next_rail(self, wire_bytes: int = 0) -> Optional[int]:
        """Index of the rail to use, or None if every TX ring is full.

        ``wire_bytes`` is the size of the frame about to be sent; policies
        that balance load by bytes account for it.
        """
        raise NotImplementedError

    def control_rail(self) -> Optional[int]:
        """Rail for a control frame (explicit ACK / NACK), or None.

        Control frames must not perturb the data plane: this rotates its
        own cursor over active rails with TX ring space and never touches
        byte-deficit counters or the data-frame rotation point, so ACK/NACK
        traffic cannot skew data-frame balance on asymmetric rails.
        """
        nics = self.nics
        masked = self.masked
        n = len(nics)
        for probe in range(n):
            rail = (self._control_cursor + probe) % n
            if rail in masked or nics[rail].tx_ring_free <= 0:
                continue
            self._control_cursor = (rail + 1) % n
            return rail
        return None


class RoundRobinStriping(StripingPolicy):
    """The paper's round-robin policy, with byte-deficit correction.

    Equal-size frames alternate rails exactly as plain round-robin would.
    When frame sizes differ (the sub-MTU tail frame of every operation), a
    naive per-frame rotation systematically assigns more *bytes* to one
    rail; the slower rail then accumulates backlog and its frames arrive
    ever later, which shows up as persistent sequence gaps and spurious
    NACKs.  Tracking cumulative assigned bytes and picking the least-loaded
    rail (round-robin order breaking ties) keeps the rails byte-balanced
    while preserving the paper's policy for the full-frame common case.
    """

    def __init__(self, nics: Sequence[Nic]) -> None:
        super().__init__(nics)
        self._cursor = 0
        self._assigned_bytes = [0] * len(nics)

    def add_rail(self, nic: Nic) -> int:
        rail = super().add_rail(nic)
        # Start the newcomer at the current low-water mark so it neither
        # starves nor absorbs the whole stream while catching up.
        self._assigned_bytes.append(
            min(self._assigned_bytes) if self._assigned_bytes else 0
        )
        return rail

    def enable_rail(self, rail: int) -> None:
        super().enable_rail(rail)
        # While masked, this rail's deficit counter froze as the others
        # kept accumulating.  Left alone, the huge gap would route *all*
        # traffic onto the returning rail until it caught up — turning
        # recovery into a bottleneck swap.  Rejoin at the low-water mark
        # of the rails that stayed active instead.
        others = [
            b
            for r, b in enumerate(self._assigned_bytes)
            if r != rail and r not in self.masked
        ]
        if others:
            self._assigned_bytes[rail] = max(
                self._assigned_bytes[rail], min(others)
            )

    def next_rail(self, wire_bytes: int = 0) -> Optional[int]:
        nics = self.nics
        masked = self.masked
        if len(nics) == 1 and not masked:
            # Byte-deficit and cursor state are unobservable with one rail.
            return 0 if nics[0].tx_ring_free > 0 else None
        n = len(nics)
        best: Optional[int] = None
        best_key: Optional[tuple[int, int]] = None
        for probe in range(n):
            rail = (self._cursor + probe) % n
            if rail in masked or nics[rail].tx_ring_free <= 0:
                continue
            key = (self._assigned_bytes[rail], probe)
            if best_key is None or key < best_key:
                best, best_key = rail, key
        if best is None:
            return None
        self._assigned_bytes[best] += wire_bytes
        self._cursor = (best + 1) % n
        # Renormalise counters so they never grow without bound.
        low = min(self._assigned_bytes)
        if low > 1 << 30:
            self._assigned_bytes = [b - low for b in self._assigned_bytes]
        return best


class ShortestQueueStriping(StripingPolicy):
    """Adaptive: send on the rail with the most free TX descriptors."""

    def next_rail(self, wire_bytes: int = 0) -> Optional[int]:
        best, best_free = None, 0
        masked = self.masked
        for rail, nic in enumerate(self.nics):
            if rail in masked:
                continue
            free = nic.tx_ring_free
            if free > best_free:
                best, best_free = rail, free
        return best


class SingleRailStriping(StripingPolicy):
    """Always rail 0 (baseline).  Falls over to the lowest active rail if
    the control plane masks rail 0."""

    def next_rail(self, wire_bytes: int = 0) -> Optional[int]:
        masked = self.masked
        if not masked:
            return 0 if self.nics[0].tx_ring_free > 0 else None
        for rail, nic in enumerate(self.nics):
            if rail not in masked:
                return rail if nic.tx_ring_free > 0 else None
        return None

    def control_rail(self) -> Optional[int]:
        # Pin control frames to the same rail as the data path.
        return self.next_rail(0)


_POLICIES: dict[str, Type[StripingPolicy]] = {
    "round_robin": RoundRobinStriping,
    "shortest_queue": ShortestQueueStriping,
    "single_rail": SingleRailStriping,
}


def register_striping_policy(name: str, cls: Type[StripingPolicy]) -> None:
    """Register an out-of-core policy (used by :mod:`repro.control`)."""
    existing = _POLICIES.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(f"striping policy {name!r} already registered")
    _POLICIES[name] = cls


def make_striping_policy(name: str, nics: Sequence[Nic]) -> StripingPolicy:
    """Factory by policy name (used by cluster configuration)."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown striping policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
    return cls(nics)
