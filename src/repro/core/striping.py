"""Multi-link striping policies (paper §2.5, "spatial parallelism").

When a connection spans multiple physical rails, every frame to transmit is
assigned to one rail by a load-balancing policy.  The paper uses round-robin;
we also provide two alternatives used by the ablation benchmarks:

* :class:`RoundRobinStriping` — the paper's policy: cycle through rails,
  skipping any whose TX ring is full.
* :class:`ShortestQueueStriping` — pick the rail with the most TX ring
  space (adaptive; trades reorder for balance under asymmetric load).
* :class:`SingleRailStriping` — pin everything to rail 0 (degenerate case,
  equals a single-link configuration even when hardware has two rails).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..ethernet import Nic

__all__ = [
    "StripingPolicy",
    "RoundRobinStriping",
    "ShortestQueueStriping",
    "SingleRailStriping",
    "make_striping_policy",
]


class StripingPolicy:
    """Chooses the rail for the next frame."""

    def __init__(self, nics: Sequence[Nic]) -> None:
        if not nics:
            raise ValueError("striping policy needs at least one rail")
        self.nics = list(nics)

    def next_rail(self, wire_bytes: int = 0) -> Optional[int]:
        """Index of the rail to use, or None if every TX ring is full.

        ``wire_bytes`` is the size of the frame about to be sent; policies
        that balance load by bytes account for it.
        """
        raise NotImplementedError


class RoundRobinStriping(StripingPolicy):
    """The paper's round-robin policy, with byte-deficit correction.

    Equal-size frames alternate rails exactly as plain round-robin would.
    When frame sizes differ (the sub-MTU tail frame of every operation), a
    naive per-frame rotation systematically assigns more *bytes* to one
    rail; the slower rail then accumulates backlog and its frames arrive
    ever later, which shows up as persistent sequence gaps and spurious
    NACKs.  Tracking cumulative assigned bytes and picking the least-loaded
    rail (round-robin order breaking ties) keeps the rails byte-balanced
    while preserving the paper's policy for the full-frame common case.
    """

    def __init__(self, nics: Sequence[Nic]) -> None:
        super().__init__(nics)
        self._cursor = 0
        self._assigned_bytes = [0] * len(nics)

    def next_rail(self, wire_bytes: int = 0) -> Optional[int]:
        nics = self.nics
        if len(nics) == 1:
            # Byte-deficit and cursor state are unobservable with one rail.
            return 0 if nics[0].tx_ring_free > 0 else None
        n = len(self.nics)
        best: Optional[int] = None
        best_key: Optional[tuple[int, int]] = None
        for probe in range(n):
            rail = (self._cursor + probe) % n
            if self.nics[rail].tx_ring_free <= 0:
                continue
            key = (self._assigned_bytes[rail], probe)
            if best_key is None or key < best_key:
                best, best_key = rail, key
        if best is None:
            return None
        self._assigned_bytes[best] += wire_bytes
        self._cursor = (best + 1) % n
        # Renormalise counters so they never grow without bound.
        low = min(self._assigned_bytes)
        if low > 1 << 30:
            self._assigned_bytes = [b - low for b in self._assigned_bytes]
        return best


class ShortestQueueStriping(StripingPolicy):
    """Adaptive: send on the rail with the most free TX descriptors."""

    def next_rail(self, wire_bytes: int = 0) -> Optional[int]:
        best, best_free = None, 0
        for rail, nic in enumerate(self.nics):
            free = nic.tx_ring_free
            if free > best_free:
                best, best_free = rail, free
        return best


class SingleRailStriping(StripingPolicy):
    """Always rail 0 (baseline)."""

    def next_rail(self, wire_bytes: int = 0) -> Optional[int]:
        return 0 if self.nics[0].tx_ring_free > 0 else None


_POLICIES = {
    "round_robin": RoundRobinStriping,
    "shortest_queue": ShortestQueueStriping,
    "single_rail": SingleRailStriping,
}


def make_striping_policy(name: str, nics: Sequence[Nic]) -> StripingPolicy:
    """Factory by policy name (used by cluster configuration)."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown striping policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
    return cls(nics)
