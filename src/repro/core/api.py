"""User-level MultiEdge library (paper §2.2).

This is the programming interface applications see.  It mirrors the paper's
API: connection-oriented, fully asynchronous remote memory operations
initiated through a single primitive, operation handles for progress
queries, and completion notifications at the target.

All entry points that cross into the kernel are generators: an application
process issues ``handle = yield from conn.rdma_write(...)``, which charges
the syscall, the user→kernel copy, and the inline send-path work to the
application's CPU — exactly the costs the paper attributes to operation
initiation (~2 µs host overhead plus copy time).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..host import Node
from ..sim import SimulationError
from .connection import Connection, Notification, Operation, ProtocolParams
from .protocol import MultiEdgeProtocol

__all__ = ["OpHandle", "ConnectionHandle", "MultiEdgeStack", "establish"]


class OpHandle:
    """User-level handle to query the progress of an issued operation."""

    def __init__(self, op: Operation, owner: "ConnectionHandle") -> None:
        self._op = op
        self._owner = owner

    @property
    def op_id(self) -> int:
        return self._op.op_id

    def test(self) -> bool:
        """Non-blocking completion probe.

        Raises the operation's typed error (:class:`RetransmitExhausted`,
        :class:`PeerCrashed`) if it terminated in failure.
        """
        if self._op.error is not None:
            raise self._op.error
        return self._op.completed

    def wait(self) -> Generator[Any, Any, "OpHandle"]:
        """Block the calling process until the operation completes.

        Raises the operation's typed error if it terminated in failure
        (retry exhaustion or a peer crash) instead of succeeding.
        """
        if not self._op.completed:
            yield self._op.done
            yield from self._owner._wakeup_cost()
        if self._op.error is not None:
            raise self._op.error
        return self

    @property
    def latency_ns(self) -> int:
        if self._op.completed_at is None:
            raise SimulationError("operation has not completed")
        return self._op.completed_at - self._op.submitted_at


class ConnectionHandle:
    """User-level view of one MultiEdge connection endpoint."""

    def __init__(self, conn: Connection, node: Node) -> None:
        self.conn = conn
        self.node = node

    @property
    def peer_node_id(self) -> int:
        return self.conn.peer_node_id

    @property
    def stats(self):
        return self.conn.stats

    def _issue(self, copied_bytes: int, cpu=None):
        """Charge operation-initiation costs.

        The user-library work and syscall crossing are application time
        (the paper's instrumentation measures protocol time *inside* the
        kernel layer); the user→kernel data copy is protocol time.
        ``cpu`` overrides the issuing CPU (default: the application CPU);
        runtime services pinned to the protocol CPU pass theirs.
        """
        p = self.node.params
        cpu = cpu or self.node.app_cpu
        yield from cpu.run(p.syscall_ns + p.op_issue_ns, "app.issue")
        yield from cpu.run(p.memcpy_ns(copied_bytes), "protocol.send")

    def _wakeup_cost(self, cpu=None) -> Generator[Any, Any, None]:
        cpu = cpu or self.node.app_cpu
        yield from cpu.run(self.node.params.context_switch_ns, "app.wakeup")

    def rdma_write(
        self,
        local_address: int,
        remote_address: int,
        length: int,
        flags: int = 0,
        cpu=None,
    ) -> Generator[Any, Any, OpHandle]:
        """Asynchronous remote memory write; returns an :class:`OpHandle`.

        ``yield from`` this from an application process.
        """
        cpu = cpu or self.node.app_cpu
        yield from self._issue(length, cpu)
        op = self.conn.submit_write(local_address, remote_address, length, flags)
        yield from self.conn.pump(cpu)
        return OpHandle(op, self)

    def rdma_write_scatter(
        self,
        segments: list,
        flags: int = 0,
        cpu=None,
    ) -> Generator[Any, Any, OpHandle]:
        """Scatter write: many (remote_address, bytes) segments, one op.

        The natural carrier for software-DSM diffs; see
        :meth:`Connection.submit_scatter`.
        """
        cpu = cpu or self.node.app_cpu
        total = sum(len(d) for _, d in segments)
        yield from self._issue(total, cpu)
        op = self.conn.submit_scatter(segments, flags)
        yield from self.conn.pump(cpu)
        return OpHandle(op, self)

    def rdma_read(
        self,
        local_address: int,
        remote_address: int,
        length: int,
        flags: int = 0,
        cpu=None,
    ) -> Generator[Any, Any, OpHandle]:
        """Asynchronous remote memory read into ``local_address``."""
        cpu = cpu or self.node.app_cpu
        yield from self._issue(0, cpu)
        op = self.conn.submit_read(local_address, remote_address, length, flags)
        yield from self.conn.pump(cpu)
        return OpHandle(op, self)

    def wait_notification(self, cpu=None) -> Generator[Any, Any, Notification]:
        """Block until a completion notification arrives from the peer."""
        ev = self.conn.notifications.get()
        note = yield ev
        yield from self._wakeup_cost(cpu)
        return note

    def poll_notification(self) -> Optional[Notification]:
        """Non-blocking notification check."""
        ok, note = self.conn.notifications.try_get()
        return note if ok else None


class MultiEdgeStack:
    """A node with the MultiEdge protocol layer attached.

    Bundles the pieces a benchmark or application needs: the host model,
    the kernel protocol layer, and connection establishment.
    """

    def __init__(self, node: Node, params: Optional[ProtocolParams] = None) -> None:
        self.node = node
        self.protocol = MultiEdgeProtocol(node, params)

    @property
    def node_id(self) -> int:
        return self.node.node_id


def establish(
    a: MultiEdgeStack,
    b: MultiEdgeStack,
    params: Optional[ProtocolParams] = None,
    conn_id: Optional[int] = None,
) -> tuple[ConnectionHandle, ConnectionHandle]:
    """Create a connection between two stacks; returns both endpoints.

    Connection setup is a control-plane operation performed out of band
    (the real system exchanges SYN/SYN_ACK frames once at startup; the
    handshake latency is irrelevant to every measured experiment, so the
    simulation wires endpoints directly).  Connection ids are allocated
    from the owning simulator (1-based per simulator), never from module
    state — two clusters in one process cannot observe each other.
    """
    if conn_id is None:
        conn_id = a.node.sim.next_conn_id()
    rails = min(len(a.node.nics), len(b.node.nics))
    conn_a = a.protocol.create_connection(
        conn_id, b.node_id, [nic.mac for nic in b.node.nics[:rails]], params
    )
    conn_b = b.protocol.create_connection(
        conn_id, a.node_id, [nic.mac for nic in a.node.nics[:rails]], params
    )
    return ConnectionHandle(conn_a, a.node), ConnectionHandle(conn_b, b.node)
