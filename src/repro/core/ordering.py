"""Receiver-side delivery ordering and fence semantics (paper §2.5).

By default MultiEdge lets operations — and the individual frames inside
them — be applied to destination memory in whatever order they arrive.
Ordering constraints come from two sources:

* **in-order mode** (the paper's 2L-1G configuration): every frame is
  applied in strict sequence-number order; out-of-order arrivals are
  buffered until the gap fills;
* **fence mode** (1L, 2Lu): frames are applied on arrival unless the
  operation carries a *backward fence* — "performed only after all previous
  operations issued by this source to the same destination have been
  performed".  (*Forward fences* are enforced on the send side: the sender
  withholds later operations until the fenced operation is fully
  acknowledged; see :mod:`repro.core.connection`.)

Completion tracking lives here too: an operation is *performed* when all of
its payload bytes have been applied, at which point notifications (if
requested) fire.

The manager assumes the caller applies every frame it returns, immediately
and in order — true for the kernel-thread receive path that drives it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..ethernet import Frame, FrameType, OpFlags

__all__ = ["RxOpState", "OrderingManager", "InOrderDelivery", "FenceDelivery"]


@dataclass(slots=True)
class RxOpState:
    """Receiver-side record of one incoming operation."""

    op_id: int
    op_seq: int
    flags: int
    length: int
    src_node: int = -1
    bytes_applied: int = 0
    complete: bool = False
    is_read_request: bool = False
    # Lowest target address seen across the op's frames; once the op is
    # complete this is the operation's base remote address.
    base_address: int = 1 << 62

    def wants_notification(self) -> bool:
        return bool(self.flags & OpFlags.NOTIFY)


class OrderingManager:
    """Base class: operation bookkeeping shared by both delivery modes."""

    def __init__(self) -> None:
        self.ops: dict[int, RxOpState] = {}  # op_seq -> state
        self.watermark = 0  # every op_seq < watermark is complete

    def _op_for(self, frame: Frame) -> RxOpState:
        h = frame.header
        op = self.ops.get(h.op_seq)
        if op is None:
            op = RxOpState(
                op_id=h.op_id,
                op_seq=h.op_seq,
                flags=h.flags,
                length=h.op_length,
                is_read_request=h.frame_type == FrameType.READ_REQ,
            )
            self.ops[h.op_seq] = op
        if h.remote_address < op.base_address:
            op.base_address = h.remote_address
        return op

    def _apply_bookkeeping(self, frame: Frame) -> Optional[RxOpState]:
        """Record a frame as applied; returns the op if it just completed."""
        op = self._op_for(frame)
        op.bytes_applied += frame.header.payload_length
        done = (
            op.is_read_request or op.bytes_applied >= op.length
        ) and not op.complete
        if done:
            op.complete = True
            self._advance_watermark()
            return op
        return None

    def _advance_watermark(self) -> None:
        while True:
            op = self.ops.get(self.watermark)
            if op is None or not op.complete:
                return
            self.watermark += 1

    # Subclass interface -------------------------------------------------

    @property
    def buffered(self) -> int:
        raise NotImplementedError

    def on_frame(self, frame: Frame) -> tuple[list[Frame], list[RxOpState]]:
        """Feed one (deduplicated) sequenced frame.

        Returns ``(apply_now, completed_ops)``: the frames the caller must
        apply to memory right now, in order, and the operations that became
        complete as a result.
        """
        raise NotImplementedError


class InOrderDelivery(OrderingManager):
    """Strict sequence-order application (2L-1G configuration)."""

    def __init__(self) -> None:
        super().__init__()
        self._next_apply = 0
        self._buffer: dict[int, Frame] = {}

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    def on_frame(self, frame: Frame) -> tuple[list[Frame], list[RxOpState]]:
        self._op_for(frame)
        if frame.header.seq != self._next_apply:
            self._buffer[frame.header.seq] = frame
            return [], []
        batch = [frame]
        self._next_apply += 1
        while self._next_apply in self._buffer:
            batch.append(self._buffer.pop(self._next_apply))
            self._next_apply += 1
        completed = []
        for f in batch:
            op = self._apply_bookkeeping(f)
            if op is not None:
                completed.append(op)
        return batch, completed


class FenceDelivery(OrderingManager):
    """Apply-on-arrival with backward-fence blocking (1L / 2Lu configs)."""

    def __init__(self) -> None:
        super().__init__()
        # op_seq -> frames waiting for the fence to lift, in arrival order.
        self._blocked: dict[int, list[Frame]] = {}

    @property
    def buffered(self) -> int:
        return sum(len(v) for v in self._blocked.values())

    def _fence_blocks(self, frame: Frame) -> bool:
        h = frame.header
        return bool(h.flags & OpFlags.FENCE_BACKWARD) and self.watermark < h.op_seq

    def on_frame(self, frame: Frame) -> tuple[list[Frame], list[RxOpState]]:
        self._op_for(frame)
        if self._fence_blocks(frame):
            self._blocked.setdefault(frame.header.op_seq, []).append(frame)
            return [], []
        batch = [frame]
        completed = []
        # Applying frames can complete ops, advance the watermark, and lift
        # fences for buffered frames; iterate to a fixpoint.
        i = 0
        while i < len(batch):
            op = self._apply_bookkeeping(batch[i])
            i += 1
            if op is None:
                continue
            completed.append(op)
            for op_seq in sorted(self._blocked):
                probe = self._blocked[op_seq][0]
                if self._fence_blocks(probe):
                    continue
                batch.extend(self._blocked.pop(op_seq))
        return batch, completed
