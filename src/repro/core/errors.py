"""Typed protocol failure conditions.

Before crash recovery existed, the only ways an operation could fail were
a generic ``RuntimeError`` (submit on a closed connection) or silent
stalling when the coarse retransmit timer gave up.  With fail-stop node
crashes in the model, callers need to distinguish *why* an op died:

* :class:`RetransmitExhausted` — the coarse retransmit timer fired
  ``max_retries`` consecutive times without ack progress; the peer may be
  dead or the path may be black-holed.  The connection state is intact;
  the caller may keep waiting (progress clears the condition) or tear
  the connection down.
* :class:`PeerCrashed` — the peer's node was declared crashed (all edges
  DOWN, or an explicit crash fault destroyed the endpoint).  The
  connection's volatile state is gone; pending ops can never complete on
  this incarnation and the recovery layer (if enabled) will redeliver
  journaled messages on the next one.

Both derive from :class:`MultiEdgeError` so callers can catch the family.
"""

from __future__ import annotations

__all__ = ["MultiEdgeError", "RetransmitExhausted", "PeerCrashed"]


class MultiEdgeError(RuntimeError):
    """Base class for typed MultiEdge protocol failures."""


class RetransmitExhausted(MultiEdgeError):
    """Coarse retransmit retries exhausted with no ack progress."""

    def __init__(self, conn_id: int, consecutive_timeouts: int) -> None:
        super().__init__(
            f"connection {conn_id}: {consecutive_timeouts} consecutive "
            "retransmit timeouts without ack progress"
        )
        self.conn_id = conn_id
        self.consecutive_timeouts = consecutive_timeouts


class PeerCrashed(MultiEdgeError):
    """The remote node crashed; this connection incarnation is dead."""

    def __init__(self, conn_id: int, peer_node: int) -> None:
        super().__init__(f"connection {conn_id}: peer node {peer_node} crashed")
        self.conn_id = conn_id
        self.peer_node = peer_node
