"""Sliding-window flow control (paper §2.4).

The window operates on an Ethernet-frame basis with a fixed size chosen at
construction ("the size of the window is set at compile time").  Two state
machines live here:

* :class:`SendWindow` — tracks in-flight (sent, unacknowledged) frames,
  admits new transmissions while fewer than ``size`` frames are in flight,
  frees state on cumulative acks, and hands back frames for NACK- or
  timeout-driven retransmission.
* :class:`ReceiveTracker` — tracks the next expected sequence number and the
  set of out-of-order arrivals beyond it, yielding the cumulative ack value,
  duplicate detection, gap lists for NACKs, and the out-of-order statistics
  the paper analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..ethernet import Frame

__all__ = ["SendWindow", "ReceiveTracker", "InflightFrame"]

DEFAULT_WINDOW_FRAMES = 256


@dataclass(slots=True)
class InflightFrame:
    """Book-keeping for one unacknowledged frame.

    ``last_rail`` records the rail the most recent (re)transmission used,
    so the edge lifecycle control plane can migrate exactly the frames
    stranded on a dead rail.
    """

    frame: Frame
    op_id: int
    first_sent_at: int
    last_sent_at: int = 0
    retransmits: int = 0
    last_rail: int = -1


class SendWindow:
    """Sender half of the sliding window."""

    def __init__(self, size: int = DEFAULT_WINDOW_FRAMES) -> None:
        if size < 1:
            raise ValueError("window size must be >= 1")
        self.size = size
        self.next_seq = 0
        # Congestion window (frames), set by a repro.congestion controller.
        # None — the default, and the only value StaticWindow ever leaves
        # here — means "no congestion limit": the arithmetic below reduces
        # exactly to the fixed flow-control window.
        self.cwnd: Optional[int] = None
        # seq -> InflightFrame; dict preserves insertion (= seq) order.
        self.inflight: dict[int, InflightFrame] = {}

    @property
    def in_flight_count(self) -> int:
        return len(self.inflight)

    @property
    def limit(self) -> int:
        """Effective send limit: min(flow window, congestion window)."""
        cwnd = self.cwnd
        if cwnd is None or cwnd >= self.size:
            return self.size
        return cwnd

    @property
    def available(self) -> int:
        """How many new frames may enter the network right now."""
        cwnd = self.cwnd
        if cwnd is None:
            return self.size - len(self.inflight)
        limit = cwnd if cwnd < self.size else self.size
        avail = limit - len(self.inflight)
        # A controller may shrink cwnd below the in-flight count; the
        # excess drains via acks rather than being clawed back.
        return avail if avail > 0 else 0

    @property
    def can_send(self) -> bool:
        cwnd = self.cwnd
        if cwnd is None:
            return len(self.inflight) < self.size
        return len(self.inflight) < (cwnd if cwnd < self.size else self.size)

    def allocate_seq(self) -> int:
        """Claim the next sequence number (caller must then register)."""
        seq = self.next_seq
        self.next_seq += 1
        return seq

    def register(self, frame: Frame, op_id: int, now: int, rail: int = -1) -> None:
        """Record a sequenced frame as in flight."""
        if not self.can_send:
            raise RuntimeError("window overflow: register() with a full window")
        self.inflight[frame.header.seq] = InflightFrame(
            frame=frame, op_id=op_id, first_sent_at=now, last_sent_at=now,
            last_rail=rail,
        )

    def on_ack(self, cum_ack: int) -> list[InflightFrame]:
        """Free every in-flight frame with ``seq < cum_ack``.

        Returns the freed records (the connection completes ops from them).
        Stale acks free nothing.
        """
        if not self.inflight:
            return []
        freed = [rec for seq, rec in self.inflight.items() if seq < cum_ack]
        for rec in freed:
            del self.inflight[rec.frame.header.seq]
        return freed

    def get_for_retransmit(self, seq: int) -> Optional[InflightFrame]:
        """Look up an in-flight frame for retransmission (None if acked).

        Pure query: the ``retransmits`` counter is incremented by the caller
        at the point a retransmission is actually enqueued, never at lookup
        time, so repeated lookups cannot inflate the count.
        """
        return self.inflight.get(seq)

    def last_unacked(self) -> Optional[InflightFrame]:
        """The most recently sent unacknowledged frame (coarse timeout path).

        The paper retransmits "the last transmitted Ethernet frame" when the
        coarse timer fires, to provoke the receiver into (re)acknowledging.
        Pure query — see :meth:`get_for_retransmit` for why the retransmit
        counter is not touched here.
        """
        if not self.inflight:
            return None
        return self.inflight[max(self.inflight)]

    def oldest_unacked(self) -> Optional[InflightFrame]:
        if not self.inflight:
            return None
        return self.inflight[min(self.inflight)]

    def inflight_on_rail(self, rail: int) -> list[int]:
        """Sequence numbers whose latest transmission used ``rail``.

        Returned in sequence order — the control plane requeues them for
        retransmission in this order when the rail dies, so delivery
        ordering guarantees survive the migration unchanged.
        """
        return sorted(
            seq for seq, rec in self.inflight.items() if rec.last_rail == rail
        )


class ReceiveTracker:
    """Receiver half: cumulative ack state plus out-of-order bookkeeping."""

    def __init__(self) -> None:
        self.expected = 0  # next in-order sequence number
        self._beyond: set[int] = set()  # received seqs > expected

    @property
    def cum_ack(self) -> int:
        """Cumulative ack value: every seq < cum_ack has been received."""
        return self.expected

    @property
    def pending_beyond(self) -> int:
        return len(self._beyond)

    def on_frame(self, seq: int) -> tuple[bool, bool]:
        """Record arrival of sequenced frame ``seq``.

        Returns ``(is_new, in_order)``:
        ``is_new`` False means duplicate (already received);
        ``in_order`` True means the frame had ``seq == expected`` on arrival.
        """
        if seq < self.expected or seq in self._beyond:
            return False, False
        if seq == self.expected:
            self.expected += 1
            # Absorb any previously buffered successors.
            while self.expected in self._beyond:
                self._beyond.remove(self.expected)
                self.expected += 1
            return True, True
        self._beyond.add(seq)
        return True, False

    def missing(self, limit: int = 64) -> list[int]:
        """Sequence numbers in the current gap window, oldest first.

        Stops as soon as ``limit`` gaps are collected, so a wide gap (a
        burst loss spanning thousands of sequence numbers) costs O(limit),
        not O(gap), on every NACK-timer fire.
        """
        beyond = self._beyond
        if not beyond:
            return []
        top = max(beyond)
        gaps: list[int] = []
        for s in range(self.expected, top):
            if s not in beyond:
                gaps.append(s)
                if len(gaps) >= limit:
                    break
        return gaps

    def has_gap(self) -> bool:
        return bool(self._beyond)
