"""Frame construction helpers.

Thin factory layer between the protocol state machines and the Ethernet
substrate: every frame the protocol emits is built here, so header
conventions live in exactly one place.

Conventions:

* only DATA / READ_REQ / READ_RESP frames consume sequence numbers and are
  flow-controlled; ACK / NACK / SYN / SYN_ACK / FIN are unsequenced control
  frames,
* every sequenced frame piggy-backs the sender's current cumulative ack in
  its ``ack`` field (paper §2.4: "all data frames carry positive
  acknowledgement information"),
* a NACK carries the list of missing sequence numbers in ``control`` and
  accounts for their wire size via ``payload_length``.
"""

from __future__ import annotations

import struct
from typing import Optional, Sequence

from ..ethernet import ECN_ECHO, Frame, FrameType, MultiEdgeHeader

__all__ = [
    "SCATTER_RECORD_HEADER",
    "encode_scatter_records",
    "decode_scatter_records",
    "make_data_frame",
    "make_read_req_frame",
    "make_ack_frame",
    "make_nack_frame",
    "make_syn_frame",
    "make_syn_ack_frame",
    "make_probe_frame",
    "make_probe_ack_frame",
    "SEQUENCED_TYPES",
]

# Frame kinds that consume sequence numbers and are covered by the window.
SEQUENCED_TYPES = frozenset(
    {FrameType.DATA, FrameType.READ_REQ, FrameType.READ_RESP}
)

# Bytes per missing-sequence entry in a NACK payload.
NACK_ENTRY_BYTES = 4

# Scatter-write record framing: u64 address + u32 length, then data.
SCATTER_RECORD_HEADER = 12
_SCATTER_HDR = struct.Struct("!QI")


def encode_scatter_records(segments: "Sequence[tuple[int, bytes]]") -> bytes:
    """Pack (remote_address, data) segments into wire bytes."""
    out = bytearray()
    for addr, data in segments:
        out += _SCATTER_HDR.pack(addr, len(data))
        out += data
    return bytes(out)


def decode_scatter_records(payload: bytes) -> list[tuple[int, bytes]]:
    """Unpack scatter records from one frame's payload."""
    records = []
    off = 0
    while off < len(payload):
        addr, length = _SCATTER_HDR.unpack_from(payload, off)
        off += SCATTER_RECORD_HEADER
        records.append((addr, payload[off : off + length]))
        off += length
    return records


def make_data_frame(
    src_mac: int,
    dst_mac: int,
    connection_id: int,
    seq: int,
    ack: int,
    op_id: int,
    op_seq: int,
    op_flags: int,
    remote_address: int,
    op_length: int,
    payload: Optional[bytes],
    read_response: bool = False,
    payload_length: Optional[int] = None,
) -> Frame:
    """A payload-carrying frame of an RDMA write (or read response).

    ``payload`` may be None (synthetic-payload mode); ``payload_length``
    then supplies the length the frame accounts for on the wire.
    """
    header = MultiEdgeHeader(
        frame_type=FrameType.READ_RESP if read_response else FrameType.DATA,
        flags=op_flags,
        connection_id=connection_id,
        seq=seq,
        ack=ack,
        op_id=op_id,
        op_seq=op_seq,
        remote_address=remote_address,
        op_length=op_length,
        payload_length=len(payload) if payload is not None else (payload_length or 0),
    )
    return Frame(src_mac=src_mac, dst_mac=dst_mac, header=header, payload=payload)


def make_read_req_frame(
    src_mac: int,
    dst_mac: int,
    connection_id: int,
    seq: int,
    ack: int,
    op_id: int,
    op_seq: int,
    op_flags: int,
    remote_address: int,
    op_length: int,
) -> Frame:
    """A remote-read request: asks the peer to send ``op_length`` bytes
    starting at ``remote_address`` back as READ_RESP frames.

    ``payload_length`` is 8: the local destination address rides in the
    payload (the frame stays at the 46-byte Ethernet minimum either way).
    """
    header = MultiEdgeHeader(
        frame_type=FrameType.READ_REQ,
        flags=op_flags,
        connection_id=connection_id,
        seq=seq,
        ack=ack,
        op_id=op_id,
        op_seq=op_seq,
        remote_address=remote_address,
        op_length=op_length,
        payload_length=8,
    )
    return Frame(src_mac=src_mac, dst_mac=dst_mac, header=header)


def make_ack_frame(
    src_mac: int, dst_mac: int, connection_id: int, ack: int, ece: bool = False
) -> Frame:
    """Explicit positive acknowledgement up to (not including) ``ack``.

    ``ece`` sets the ECN-echo bit: CE-marked frames arrived since the last
    acknowledgement left this node.
    """
    header = MultiEdgeHeader(
        frame_type=FrameType.ACK,
        flags=ECN_ECHO if ece else 0,
        connection_id=connection_id,
        ack=ack,
    )
    return Frame(src_mac=src_mac, dst_mac=dst_mac, header=header)


def make_nack_frame(
    src_mac: int,
    dst_mac: int,
    connection_id: int,
    ack: int,
    missing: Sequence[int],
    ece: bool = False,
) -> Frame:
    """Negative acknowledgement: cumulative ack plus missing sequences."""
    missing = list(missing)
    header = MultiEdgeHeader(
        frame_type=FrameType.NACK,
        flags=ECN_ECHO if ece else 0,
        connection_id=connection_id,
        ack=ack,
        payload_length=len(missing) * NACK_ENTRY_BYTES,
    )
    return Frame(src_mac=src_mac, dst_mac=dst_mac, header=header, control=missing)


def make_syn_frame(
    src_mac: int, dst_mac: int, connection_id: int, node_id: int
) -> Frame:
    header = MultiEdgeHeader(
        frame_type=FrameType.SYN, connection_id=connection_id, op_id=node_id
    )
    return Frame(src_mac=src_mac, dst_mac=dst_mac, header=header)


def make_syn_ack_frame(
    src_mac: int, dst_mac: int, connection_id: int, node_id: int
) -> Frame:
    header = MultiEdgeHeader(
        frame_type=FrameType.SYN_ACK, connection_id=connection_id, op_id=node_id
    )
    return Frame(src_mac=src_mac, dst_mac=dst_mac, header=header)


def make_probe_frame(
    src_mac: int,
    dst_mac: int,
    connection_id: int,
    rail: int,
    probe_seq: int,
    sent_at: int,
) -> Frame:
    """Edge-health heartbeat (control plane, unsequenced).

    ``probe_seq`` rides in ``op_id`` and the transmit timestamp in
    ``remote_address`` (u64), so the echo carries everything the monitor
    needs to compute the RTT without sender-side correlation state.  The
    probed rail index rides in ``control``; the responder echoes it back
    on the same rail.
    """
    header = MultiEdgeHeader(
        frame_type=FrameType.PROBE,
        connection_id=connection_id,
        op_id=probe_seq,
        remote_address=sent_at,
    )
    frame = Frame(src_mac=src_mac, dst_mac=dst_mac, header=header)
    frame.control = rail
    return frame


def make_probe_ack_frame(
    src_mac: int, dst_mac: int, connection_id: int, probe: Frame
) -> Frame:
    """Echo of a heartbeat probe, sent back on the rail it arrived on."""
    header = MultiEdgeHeader(
        frame_type=FrameType.PROBE_ACK,
        connection_id=connection_id,
        op_id=probe.header.op_id,
        remote_address=probe.header.remote_address,
    )
    frame = Frame(src_mac=src_mac, dst_mac=dst_mac, header=header)
    frame.control = probe.control
    return frame
