"""Connection setup and teardown over the wire (paper §2.2).

"Before any communication can occur between two nodes, a connection has to
be set up."  :func:`repro.core.api.establish` wires endpoints directly for
benchmark convenience; this module implements the real three-message
protocol the frame types SYN / SYN_ACK / FIN exist for:

* **dial** (active side) — allocate a connection id, send SYN carrying the
  initiator's node id and rail count, retransmit on a timer until the
  SYN_ACK arrives, then instantiate the endpoint with the negotiated rail
  count (the minimum of both sides').
* **listen** (passive side) — on SYN, instantiate the endpoint and answer
  SYN_ACK; duplicate SYNs (retransmissions) re-send the SYN_ACK.
* **close** — drain the send window, then exchange FINs (each side
  retransmits its FIN until it sees the peer's); a closed connection
  rejects new operations and drops stray frames.

Address resolution is deterministic in the simulated world — node id n,
rail r always owns MAC ``mac_address(n, r)`` — standing in for ARP.
"""

from __future__ import annotations

import random
from typing import Any, Generator, Optional

from ..ethernet import FrameType, mac_address
from ..sim import Event
from .api import ConnectionHandle, MultiEdgeStack
from .connection import Connection, ProtocolParams
from .messages import make_syn_ack_frame, make_syn_frame
from .retransmit import BackoffPolicy

__all__ = ["dial", "enable_listener", "close_connection", "HandshakeError"]

SYN_RETRY_NS = 3_000_000
MAX_RETRIES = 10

# Capped exponential backoff with seeded jitter for handshake retries
# (shared shape with the crash-recovery reconnect loop).  The first retry
# waits SYN_RETRY_NS like the old fixed schedule; subsequent retries back
# off so a dead or partitioned peer is not hammered on a fixed beat.
HANDSHAKE_BACKOFF = BackoffPolicy(
    base_ns=SYN_RETRY_NS,
    factor=2,
    cap_ns=48_000_000,
    jitter_frac=0.1,
    max_attempts=MAX_RETRIES,
)


def _handshake_rng(protocol) -> random.Random:
    """Per-stack jitter stream, seeded by node id for determinism."""
    rng = getattr(protocol, "_handshake_rng", None)
    if rng is None:
        rng = random.Random(f"multiedge-handshake:{protocol.node.node_id}")
        protocol._handshake_rng = rng
    return rng


class HandshakeError(RuntimeError):
    """Connection setup or teardown failed permanently."""


def _conn_id_for(initiator: int, counter: int) -> int:
    """Initiator-unique connection id within the u16 header field."""
    return ((initiator & 0x3F) << 10) | (counter & 0x3FF)


def enable_listener(stack: MultiEdgeStack) -> None:
    """Accept incoming SYNs on this stack (idempotent)."""
    protocol = stack.protocol
    if getattr(protocol, "_listener_enabled", False):
        return
    protocol._listener_enabled = True
    protocol._pending_dials = getattr(protocol, "_pending_dials", {})

    original_handle = protocol.handle_frame

    def handle_frame(frame, cpu):
        h = frame.header
        if h.frame_type == FrameType.SYN:
            yield from cpu.run(stack.node.params.per_frame_recv_ns, "protocol.recv")
            _accept(stack, h.connection_id, peer_node=h.op_id,
                    peer_rails=h.op_length,
                    peer_incarnation=h.remote_address)
            return
        if h.frame_type == FrameType.SYN_ACK:
            yield from cpu.run(stack.node.params.per_frame_recv_ns, "protocol.recv")
            pending = protocol._pending_dials.pop(h.connection_id, None)
            if pending is not None and not pending["event"].triggered:
                pending["peer_rails"] = h.op_length
                pending["peer_incarnation"] = h.remote_address
                pending["event"].trigger(h.op_length)
            return
        if h.frame_type == FrameType.FIN:
            yield from cpu.run(stack.node.params.per_frame_recv_ns, "protocol.recv")
            conn = protocol.connections.get(h.connection_id)
            if conn is not None:
                _on_fin(stack, conn)
            return
        yield from original_handle(frame, cpu)

    protocol.handle_frame = handle_frame  # type: ignore[method-assign]


def _rails_between(stack: MultiEdgeStack, peer_rails: int) -> int:
    return max(1, min(len(stack.node.nics), peer_rails))


def _accept(
    stack: MultiEdgeStack,
    conn_id: int,
    peer_node: int,
    peer_rails: int,
    peer_incarnation: int = 0,
) -> None:
    protocol = stack.protocol
    rails = _rails_between(stack, peer_rails)
    existing = protocol.connections.get(conn_id)
    if existing is not None and existing.peer_incarnation != peer_incarnation:
        # A new incarnation of the peer is re-dialing a connection id we
        # still hold: the old endpoint belongs to a dead incarnation and
        # must not absorb the fresh handshake.  Route the destruction
        # through the recovery layer when present so monitors detach and
        # counters are salvaged.
        recovery = getattr(protocol, "recovery", None)
        if recovery is not None:
            from .errors import PeerCrashed

            recovery._teardown_connection(
                existing, PeerCrashed(conn_id, peer_node)
            )
        else:
            existing.destroy()
        existing = None
    if existing is None:
        peer_macs = [mac_address(peer_node, r) for r in range(rails)]
        conn = protocol.create_connection(conn_id, peer_node, peer_macs)
        conn.peer_incarnation = peer_incarnation
    # Always answer — duplicate SYNs mean our previous SYN_ACK was lost.
    nic = stack.node.nics[0]
    reply = make_syn_ack_frame(
        nic.mac, mac_address(peer_node, 0), conn_id, stack.node_id
    )
    reply.header.op_length = len(stack.node.nics)
    reply.header.remote_address = getattr(protocol, "incarnation", 0)
    nic.transmit(reply)


def dial(
    stack: MultiEdgeStack,
    peer_node_id: int,
    params: Optional[ProtocolParams] = None,
    backoff: Optional[BackoffPolicy] = None,
) -> Generator[Any, Any, ConnectionHandle]:
    """Open a connection to ``peer_node_id`` with a SYN/SYN_ACK handshake.

    Run from a simulation process: ``handle = yield from dial(stack, 3)``.
    The peer must have called :func:`enable_listener`.  SYN retries follow
    ``backoff`` (default :data:`HANDSHAKE_BACKOFF`): capped exponential
    delays with seeded jitter.
    """
    enable_listener(stack)  # to receive the SYN_ACK and future FINs
    protocol = stack.protocol
    counter = getattr(protocol, "_dial_counter", 0)
    protocol._dial_counter = counter + 1
    conn_id = _conn_id_for(stack.node_id, counter)
    sim = stack.node.sim
    policy = backoff or HANDSHAKE_BACKOFF
    rng = _handshake_rng(protocol)
    incarnation = getattr(protocol, "incarnation", 0)

    done = Event(sim)
    pending = {"event": done, "peer_rails": 0, "peer_incarnation": 0}
    protocol._pending_dials[conn_id] = pending

    nic = stack.node.nics[0]
    for attempt in range(policy.max_attempts):
        syn = make_syn_frame(
            nic.mac, mac_address(peer_node_id, 0), conn_id, stack.node_id
        )
        syn.header.op_length = len(stack.node.nics)
        syn.header.remote_address = incarnation
        nic.transmit(syn)
        timeout = Event(sim)
        timer = sim.timer(policy.delay_ns(attempt, rng), timeout.trigger)
        from ..sim import any_of

        winner = yield any_of(sim, [done, timeout])
        if winner[0] == 0:  # SYN_ACK arrived
            timer.cancel()
            break
    else:
        protocol._pending_dials.pop(conn_id, None)
        raise HandshakeError(
            f"node {stack.node_id}: no SYN_ACK from node {peer_node_id} "
            f"after {policy.max_attempts} attempts"
        )
    peer_rails = done.value
    rails = _rails_between(stack, peer_rails)
    peer_macs = [mac_address(peer_node_id, r) for r in range(rails)]
    conn = protocol.create_connection(conn_id, peer_node_id, peer_macs, params)
    conn.peer_incarnation = pending["peer_incarnation"]
    return ConnectionHandle(conn, stack.node)


# ---------------------------------------------------------------------------
# Teardown
# ---------------------------------------------------------------------------

def _send_fin(stack: MultiEdgeStack, conn: Connection) -> None:
    from ..ethernet import Frame, FrameType as FT, MultiEdgeHeader as Hdr

    nic = stack.node.nics[0]
    header = Hdr(frame_type=FT.FIN, connection_id=conn.conn_id,
                 op_id=stack.node_id)
    nic.transmit(
        Frame(src_mac=nic.mac, dst_mac=conn.peer_macs[0], header=header)
    )


def _on_fin(stack: MultiEdgeStack, conn: Connection) -> None:
    first_time = not getattr(conn, "fin_received", False)
    conn.fin_received = True
    conn.closed = True
    if first_time or not getattr(conn, "fin_sent", False):
        # Echo a FIN so the peer's close() completes even if ours raced.
        conn.fin_sent = True
        _send_fin(stack, conn)
    ev = getattr(conn, "_fin_event", None)
    if ev is not None and not ev.triggered:
        ev.trigger()


def close_connection(
    stack: MultiEdgeStack, handle: ConnectionHandle
) -> Generator[Any, Any, None]:
    """Gracefully close: drain in-flight frames, exchange FINs."""
    enable_listener(stack)
    conn = handle.conn
    sim = stack.node.sim
    # Drain: wait until everything sent has been acknowledged.
    waited = 0
    while conn.window.in_flight_count or conn.unsent:
        yield 200_000
        waited += 1
        if waited > 10_000:
            raise HandshakeError("close(): send window never drained")
    conn._fin_event = getattr(conn, "_fin_event", None) or Event(sim)
    conn.fin_sent = True
    policy = HANDSHAKE_BACKOFF
    rng = _handshake_rng(stack.protocol)
    for attempt in range(policy.max_attempts):
        _send_fin(stack, conn)
        if getattr(conn, "fin_received", False):
            break
        timeout = Event(sim)
        timer = sim.timer(policy.delay_ns(attempt, rng), timeout.trigger)
        from ..sim import any_of

        winner = yield any_of(sim, [conn._fin_event, timeout])
        if winner[0] == 0:
            timer.cancel()
            break
    conn.closed = True
