"""Retransmission policy (paper §2.4).

Two recovery mechanisms:

* **NACK-driven**: the receiver reports persistent sequence gaps; the sender
  retransmits exactly the missing frames (selective repeat).
* **Coarse timeout**: if no positive-ack progress happens for
  ``coarse_timeout_ns`` while frames are in flight, the sender retransmits
  the *last transmitted* frame — enough to provoke the receiver into
  re-sending its cumulative ack (covering the lost-ack case) or a NACK
  (covering lost data), exactly as described in the paper's corner-case
  handling.  Repeated timeouts back off exponentially up to a cap.

The :class:`RetransmitTimer` is policy + timer management; the connection
supplies the actual send hook.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from ..sim import Simulator, Timer

__all__ = ["BackoffPolicy", "RetransmitParams", "RetransmitTimer"]


@dataclass
class BackoffPolicy:
    """Capped exponential backoff with seeded jitter.

    Shared by the handshake retries (SYN / FIN) and the crash-recovery
    reconnect loop: ``delay_ns(attempt)`` grows geometrically from
    ``base_ns`` up to ``cap_ns``, plus a uniform jitter fraction drawn
    from the supplied RNG so that concurrent retriers de-synchronise
    deterministically (the RNG is a named stream, so runs stay
    reproducible).
    """

    base_ns: int
    factor: int = 2
    cap_ns: int = 48_000_000
    jitter_frac: float = 0.1
    max_attempts: int = 10

    def __post_init__(self) -> None:
        if self.base_ns <= 0:
            raise ValueError("base_ns must be positive")
        if self.factor < 1:
            raise ValueError("factor must be >= 1")
        if not 0.0 <= self.jitter_frac < 1.0:
            raise ValueError("jitter_frac must be in [0, 1)")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def delay_ns(self, attempt: int, rng: Optional[random.Random] = None) -> int:
        """Delay before retry number ``attempt`` (0-based)."""
        base = min(self.base_ns * self.factor**attempt, self.cap_ns)
        if rng is None or self.jitter_frac == 0.0:
            return base
        return base + int(base * self.jitter_frac * rng.random())

    def worst_case_total_ns(self) -> int:
        """Upper bound on the summed delay across all attempts.

        Used to derive the reconnect-latency bound checked by
        ``bench_crash``: detection bound + restart delay + this total.
        """
        total = 0
        for attempt in range(self.max_attempts):
            base = min(self.base_ns * self.factor**attempt, self.cap_ns)
            total += base + int(base * self.jitter_frac)
        return total


@dataclass
class RetransmitParams:
    coarse_timeout_ns: int = 3_000_000  # 3 ms
    nack_holdoff_ns: int = 500_000  # ignore NACKs for recently-sent frames
    backoff_factor: int = 2
    max_timeout_ns: int = 48_000_000
    max_retries: int = 20  # after this many silent timeouts, declare dead

    def __post_init__(self) -> None:
        if self.coarse_timeout_ns <= 0:
            raise ValueError("coarse_timeout_ns must be positive")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be >= 1")


class RetransmitTimer:
    """Coarse-grain retransmission timer for one connection direction."""

    def __init__(
        self,
        sim: Simulator,
        params: RetransmitParams,
        on_timeout: Callable[[], None],
        on_dead: Optional[Callable[[], None]] = None,
    ) -> None:
        self.sim = sim
        self.params = params
        self.on_timeout = on_timeout
        self.on_dead = on_dead
        self._timer: Optional[Timer] = None
        self._current_timeout = params.coarse_timeout_ns
        self._consecutive = 0
        self.timeouts_fired = 0
        self.exhausted = False

    @property
    def armed(self) -> bool:
        return self._timer is not None and self._timer.active

    @property
    def consecutive_timeouts(self) -> int:
        """Silent timeouts since the last ack progress.

        The edge lifecycle control plane samples this as a passive health
        signal: coarse timeouts piling up mean *every* rail is failing to
        make progress, not just the probed one.
        """
        return self._consecutive

    def arm(self) -> None:
        """Start (or restart) the timer if not already running.

        A no-op once exhausted: after ``on_dead`` fires, the timer stays
        down until :meth:`on_progress` observes fresh ack progress — the
        connection is presumed dead and retransmitting into it would only
        re-trigger the death callback.
        """
        if self.exhausted:
            return
        if not self.armed:
            self._timer = self.sim.timer(self._current_timeout, self._fire)

    def on_progress(self) -> None:
        """Positive ack progress: reset backoff and restart the clock."""
        self._consecutive = 0
        self._current_timeout = self.params.coarse_timeout_ns
        self.exhausted = False
        self.cancel()

    def cancel(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _fire(self) -> None:
        self._timer = None
        self.timeouts_fired += 1
        self._consecutive += 1
        if self._consecutive > self.params.max_retries:
            self.exhausted = True
            if self.on_dead is not None:
                self.on_dead()
            return
        self._current_timeout = min(
            self._current_timeout * self.params.backoff_factor,
            self.params.max_timeout_ns,
        )
        self.on_timeout()
