"""MultiEdge protocol core: the paper's primary contribution."""

from .ack import AckPolicy, AckPolicyParams
from .api import ConnectionHandle, MultiEdgeStack, OpHandle, establish
from .connection import Connection, Notification, Operation, ProtocolParams
from .errors import MultiEdgeError, PeerCrashed, RetransmitExhausted
from .handshake import HandshakeError, close_connection, dial, enable_listener
from .messages import SEQUENCED_TYPES
from .ordering import FenceDelivery, InOrderDelivery, OrderingManager, RxOpState
from .protocol import MultiEdgeProtocol
from .retransmit import BackoffPolicy, RetransmitParams, RetransmitTimer
from .stats import ConnectionStats, merge_stats
from .striping import (
    RoundRobinStriping,
    ShortestQueueStriping,
    SingleRailStriping,
    StripingPolicy,
    make_striping_policy,
    register_striping_policy,
)
from .window import ReceiveTracker, SendWindow

__all__ = [
    "MultiEdgeStack",
    "ConnectionHandle",
    "OpHandle",
    "establish",
    "dial",
    "enable_listener",
    "close_connection",
    "HandshakeError",
    "MultiEdgeError",
    "RetransmitExhausted",
    "PeerCrashed",
    "MultiEdgeProtocol",
    "Connection",
    "Operation",
    "Notification",
    "ProtocolParams",
    "AckPolicy",
    "AckPolicyParams",
    "BackoffPolicy",
    "RetransmitParams",
    "RetransmitTimer",
    "SendWindow",
    "ReceiveTracker",
    "OrderingManager",
    "InOrderDelivery",
    "FenceDelivery",
    "RxOpState",
    "StripingPolicy",
    "RoundRobinStriping",
    "ShortestQueueStriping",
    "SingleRailStriping",
    "make_striping_policy",
    "register_striping_policy",
    "ConnectionStats",
    "merge_stats",
    "SEQUENCED_TYPES",
]
