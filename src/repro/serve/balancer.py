"""Client-side load balancing policies for the serving layer.

A policy answers one question: given a request and the current view of
the server pool, which server gets it?  Policies only see what a real
client-side balancer could know — the locally tracked outstanding count
per server and static topology — never server-internal queue depths.

Three policies, all deterministic:

* ``round-robin`` — rotate through the alive pool in rank order.
* ``least-outstanding`` — pick the alive server with the fewest
  locally-tracked outstanding requests (lowest rank breaks ties); the
  classic join-shortest-queue approximation that adapts to slow or
  recovering servers.
* ``leaf-affinity`` — prefer servers on the same leaf switch as the
  requesting client (fewer fabric hops, no oversubscribed trunk);
  within the preferred set, fall back to least-outstanding.  Uses
  :mod:`repro.fabric` topology when the cluster has one, the classic
  ``leaf_switches`` partition otherwise, and degrades to plain
  least-outstanding on single-switch wiring.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

__all__ = [
    "LoadBalancer",
    "RoundRobin",
    "LeastOutstanding",
    "LeafAffinity",
    "POLICIES",
    "make_balancer",
    "leaf_of",
]


def leaf_of(cluster, node_id: int) -> int:
    """Which leaf switch a node hangs off (0 on single-switch wiring)."""
    config = cluster.config
    spec = config.fabric
    if spec is not None and hasattr(spec, "hosts_per_leaf"):
        return node_id // spec.hosts_per_leaf
    if config.leaf_switches > 1:
        per_leaf = (config.nodes + config.leaf_switches - 1) // config.leaf_switches
        return node_id // per_leaf
    return 0


class LoadBalancer:
    """Base: tracks the server pool, liveness, and outstanding counts."""

    name = "base"

    def __init__(self, servers: Sequence[int]) -> None:
        if not servers:
            raise ValueError("need at least one server")
        self.servers = tuple(servers)
        self.alive = set(servers)
        self.outstanding = {s: 0 for s in servers}
        self.dispatched = {s: 0 for s in servers}

    # -- pool management (driven by the runtime) ---------------------------

    def mark_down(self, server: int) -> None:
        self.alive.discard(server)

    def mark_up(self, server: int) -> None:
        if server in self.servers:
            self.alive.add(server)

    def note_dispatch(self, server: int) -> None:
        self.outstanding[server] += 1
        self.dispatched[server] += 1

    def note_done(self, server: int) -> None:
        if self.outstanding.get(server, 0) > 0:
            self.outstanding[server] -= 1

    # -- the policy --------------------------------------------------------

    def choose(self, request, candidates: Optional[set] = None) -> Optional[int]:
        """Pick a server for ``request``; ``None`` when no candidate is
        alive (the runtime parks the request until one returns).

        ``candidates`` optionally restricts the pool further (the
        runtime passes the set of servers reachable from the request's
        client during recovery windows).
        """
        pool = [
            s
            for s in self.servers
            if s in self.alive and (candidates is None or s in candidates)
        ]
        if not pool:
            return None
        return self._pick(request, pool)

    def _pick(self, request, pool: list) -> int:
        raise NotImplementedError


class RoundRobin(LoadBalancer):
    name = "round-robin"

    def __init__(self, servers: Sequence[int]) -> None:
        super().__init__(servers)
        self._next = 0

    def _pick(self, request, pool: list) -> int:
        choice = pool[self._next % len(pool)]
        self._next += 1
        return choice


class LeastOutstanding(LoadBalancer):
    name = "least-outstanding"

    def _pick(self, request, pool: list) -> int:
        return min(pool, key=lambda s: (self.outstanding[s], s))


class LeafAffinity(LeastOutstanding):
    name = "leaf-affinity"

    def __init__(
        self, servers: Sequence[int], leaf_lookup: Callable[[int], int]
    ) -> None:
        super().__init__(servers)
        self.leaf_lookup = leaf_lookup

    def _pick(self, request, pool: list) -> int:
        client_leaf = self.leaf_lookup(request.client)
        local = [s for s in pool if self.leaf_lookup(s) == client_leaf]
        return super()._pick(request, local or pool)


POLICIES = ("round-robin", "least-outstanding", "leaf-affinity")


def make_balancer(policy: str, servers: Sequence[int], cluster=None) -> LoadBalancer:
    """Instantiate a policy by name (``leaf-affinity`` needs a cluster)."""
    if policy == "round-robin":
        return RoundRobin(servers)
    if policy == "least-outstanding":
        return LeastOutstanding(servers)
    if policy == "leaf-affinity":
        if cluster is None:
            raise ValueError("leaf-affinity needs the cluster topology")
        return LeafAffinity(servers, lambda n: leaf_of(cluster, n))
    raise ValueError(f"unknown policy {policy!r}; choose from {POLICIES}")
