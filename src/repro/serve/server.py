"""The server side of the serving layer: bounded-queue request loops.

Each server rank runs one :class:`ServerLoop` on its
:class:`~repro.mp.MpEndpoint`: a receiver process that admits requests
into a bounded queue, and a fixed pool of worker processes that dequeue,
model service time, and enqueue responses.  Overload behavior is
explicit: when the queue is at capacity the request is *shed* — the
client gets an immediate tiny response flagged ``FLAG_SHED`` and the
shed counter ticks — never silent queue growth.

Wire format (inside mp messages, which ride the RDMA eager protocol):

* request  (tag ``TAG_REQ``):  ``!QIIQ`` — req_id, client rank, flags,
  response bytes wanted — padded to the request's payload size;
* response (tag ``TAG_RESP``): ``!QIIQQQ`` — req_id, server rank, flags,
  t_rx, t_service_start, t_service_end — padded to the requested
  response size (shed responses are header-only).

The three server-side timestamps ride back to the client so it can
decompose end-to-end latency into queueing (admission -> service start),
service, and network time without any clock-sync hand-waving — all
ranks share the simulator's clock.
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass
from typing import Generator

from ..sim import Event

__all__ = [
    "ServerSpec",
    "ServerLoop",
    "TAG_REQ",
    "TAG_RESP",
    "FLAG_SHED",
    "REQ_HDR",
    "RESP_HDR",
]

TAG_REQ = 0x53A0
TAG_RESP = 0x53A1
FLAG_SHED = 0x1

REQ_HDR = struct.Struct("!QIIQ")  # req_id, client, flags, resp_bytes
RESP_HDR = struct.Struct("!QIIQQQ")  # req_id, server, flags, t_rx, t0, t1


@dataclass(frozen=True)
class ServerSpec:
    """Capacity and service-time model for one server rank.

    ``service`` is ``("fixed", ns)``, ``("exp", mean_ns)``, or
    ``("uniform", lo_ns, hi_ns)``; draws come from a per-server
    ``serve:<seed>:svc:<rank>`` RNG stream so servers never perturb each
    other's (or the arrival source's) sequences.
    """

    queue_cap: int = 64
    workers: int = 4
    service: tuple = ("fixed", 20_000)

    def __post_init__(self) -> None:
        if self.queue_cap < 1:
            raise ValueError("queue_cap must be >= 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")


class ServerLoop:
    """Bounded-queue request/response loop on one mp rank."""

    def __init__(self, runtime, ep, spec: ServerSpec, rng) -> None:
        self.runtime = runtime
        self.ep = ep
        self.rank = ep.rank
        self.sim = ep.sim
        self.spec = spec
        self.rng = rng
        # Gray-fault hook: SlowNode stretches this node's service times.
        self.node = runtime.cluster.nodes[ep.rank]
        self.queue: deque = deque()
        self._idle: list[Event] = []  # parked workers, FIFO
        # Counters (server-side view; conservation is checked client-side).
        self.received = 0
        self.served = 0
        self.shed = 0
        self.peak_queue = 0

    def start(self) -> None:
        self.sim.process(self._receiver(), name=f"serve.rx{self.rank}")
        for w in range(self.spec.workers):
            self.sim.process(self._worker(), name=f"serve.w{self.rank}.{w}")

    # -- crash semantics ---------------------------------------------------

    def on_crash(self) -> None:
        """Volatile state is lost: queued-but-unserved requests vanish.

        The receiver and worker processes themselves survive as parked
        simulation actors (their transport is gone, so nothing wakes
        them); after restart + re-wiring they resume with the empty
        queue — exactly a process restart from the client's view.
        """
        self.queue.clear()
        # Requests that arrived but were never matched also die with the
        # node's memory.
        self.ep._unexpected = [
            m for m in self.ep._unexpected if m.tag != TAG_REQ
        ]

    # -- processes ---------------------------------------------------------

    def _receiver(self) -> Generator:
        while True:
            msg = yield from self.ep.recv(tag=TAG_REQ)
            self.received += 1
            req_id, client, _flags, resp_bytes = REQ_HDR.unpack_from(msg.data)
            now = self.sim.now
            if len(self.queue) >= self.spec.queue_cap:
                self.shed += 1
                self.runtime.enqueue_response(
                    self.rank, client, req_id, FLAG_SHED, now, now, now, 0
                )
                continue
            self.queue.append((req_id, client, resp_bytes, now))
            self.peak_queue = max(self.peak_queue, len(self.queue))
            if self._idle:
                self._idle.pop(0).trigger()

    def _worker(self) -> Generator:
        while True:
            if not self.queue:
                ev = Event(self.sim)
                self._idle.append(ev)
                yield ev
                continue
            req_id, client, resp_bytes, t_rx = self.queue.popleft()
            t_start = self.sim.now
            svc = self._service_ns()
            factor = self.node.gray_slow_factor
            if factor != 1.0:
                svc = max(1, int(svc * factor))
            yield svc
            t_end = self.sim.now
            self.served += 1
            self.runtime.enqueue_response(
                self.rank, client, req_id, 0, t_rx, t_start, t_end, resp_bytes
            )

    def _service_ns(self) -> int:
        kind = self.spec.service[0]
        if kind == "fixed":
            return max(1, int(self.spec.service[1]))
        if kind == "exp":
            return max(1, int(self.rng.exponential(self.spec.service[1])))
        if kind == "uniform":
            lo, hi = self.spec.service[1], self.spec.service[2]
            return max(1, int(self.rng.integers(lo, hi + 1)))
        raise ValueError(f"unknown service model {self.spec.service!r}")


def pack_request(req_id: int, client: int, flags: int, resp_bytes: int,
                 req_bytes: int) -> bytes:
    """Request payload padded to ``req_bytes`` (header minimum)."""
    hdr = REQ_HDR.pack(req_id, client, flags, resp_bytes)
    return hdr + b"\x00" * max(0, req_bytes - len(hdr))


def pack_response(req_id: int, server: int, flags: int, t_rx: int,
                  t_start: int, t_end: int, resp_bytes: int) -> bytes:
    """Response payload padded to ``resp_bytes``; shed = header only."""
    hdr = RESP_HDR.pack(req_id, server, flags, t_rx, t_start, t_end)
    if flags & FLAG_SHED:
        return hdr
    return hdr + b"\x00" * max(0, resp_bytes - len(hdr))


def unpack_response(data: bytes) -> tuple:
    return RESP_HDR.unpack_from(data)
