"""Tail-tolerant client machinery: hedging, retry budgets, breakers.

One gray server — alive, answering, just slow — drags the cluster-wide
p99 even though every health check passes.  The serving layer fights
back with four client-side mechanisms, all standard practice in
production RPC stacks and all bounded so the cure cannot become the
disease:

* **Hedged requests** — after a request has been outstanding longer
  than a tracked latency quantile, a second copy goes to a *different*
  server; the first response wins and the loser's answer is absorbed by
  the existing duplicate-response path.
* **Retry budget** — a token bucket earns ``retry_budget`` tokens per
  fresh request and every hedge or shed-retry spends one, so retry
  amplification is capped at ``1 + retry_budget`` of fresh load no
  matter how unhealthy the pool gets.
* **Circuit breakers** — per-server CLOSED / OPEN / HALF_OPEN machines:
  consecutive failures (sheds) open the breaker, dispatch routes around
  it, and after ``breaker_open_ns`` a limited number of half-open
  probes decide between closing and re-opening.
* **Outlier ejection** — per-server latency EWMAs compared against the
  pool median; a server slower than ``eject_factor`` x median is
  ejected from the candidate pool for ``eject_ns``, with at most
  ``max_eject_fraction`` of the pool ejected at once.

Every filter **fails open**: if breakers + ejection would empty the
candidate pool, the unfiltered pool is used — tail tolerance must never
turn a slow cluster into an unavailable one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..analysis.latency import LatencyHistogram

__all__ = [
    "TailSpec",
    "RetryBudget",
    "CircuitBreaker",
    "OutlierEjector",
    "QuantileTracker",
    "TailController",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"

# The transitions the breaker state machine may legally take; the
# invariant monitor checks every recorded transition against this.
LEGAL_BREAKER_TRANSITIONS = frozenset(
    [
        (BREAKER_CLOSED, BREAKER_OPEN),
        (BREAKER_OPEN, BREAKER_HALF_OPEN),
        (BREAKER_HALF_OPEN, BREAKER_CLOSED),
        (BREAKER_HALF_OPEN, BREAKER_OPEN),
    ]
)


@dataclass(frozen=True)
class TailSpec:
    """Static tail-tolerance policy for one serving deployment."""

    # -- hedging ----------------------------------------------------------
    hedge: bool = True
    hedge_quantile: float = 95.0  # hedge once latency exceeds this pctile
    hedge_min_delay_ns: int = 100_000  # never hedge faster than this
    hedge_max_delay_ns: int = 20_000_000  # nor slower than this
    hedge_warmup: int = 20  # completions before hedging arms
    max_hedges: int = 1  # extra attempts per request
    # -- retry budget (shared by hedges and shed-retries) ------------------
    retry_budget: float = 0.1  # tokens earned per fresh request
    retry_burst: int = 10  # bucket depth (initial + cap headroom)
    retry_sheds: bool = True  # retry shed responses through the budget
    max_attempts: int = 3  # total attempts per request, all causes
    # -- circuit breakers --------------------------------------------------
    breaker: bool = True
    breaker_failures: int = 5  # consecutive failures to open
    breaker_open_ns: int = 5_000_000  # OPEN holds this long
    breaker_half_open_probes: int = 2  # probes allowed while HALF_OPEN
    # -- outlier ejection --------------------------------------------------
    eject: bool = True
    eject_factor: float = 2.0  # slower than factor*median is an outlier
    eject_min_samples: int = 30  # per-server samples before judging
    eject_ns: int = 10_000_000  # ejection duration
    max_eject_fraction: float = 0.5  # never eject more of the pool
    eject_alpha: float = 0.1  # latency EWMA smoothing

    def __post_init__(self) -> None:
        if not 0.0 < self.hedge_quantile <= 100.0:
            raise ValueError("hedge_quantile must be in (0, 100]")
        if self.hedge_min_delay_ns > self.hedge_max_delay_ns:
            raise ValueError("hedge_min_delay_ns exceeds hedge_max_delay_ns")
        if self.max_hedges < 0:
            raise ValueError("max_hedges must be >= 0")
        if self.retry_budget < 0.0:
            raise ValueError("retry_budget must be >= 0")
        if self.retry_burst < 1:
            raise ValueError("retry_burst must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.breaker_failures < 1:
            raise ValueError("breaker_failures must be >= 1")
        if self.breaker_half_open_probes < 1:
            raise ValueError("breaker_half_open_probes must be >= 1")
        if self.eject_factor <= 1.0:
            raise ValueError("eject_factor must exceed 1.0")
        if not 0.0 <= self.max_eject_fraction < 1.0:
            raise ValueError("max_eject_fraction must be in [0, 1)")
        if not 0.0 < self.eject_alpha <= 1.0:
            raise ValueError("eject_alpha must be in (0, 1]")


class RetryBudget:
    """Token bucket bounding *all* extra attempts to a fraction of load.

    Fresh requests earn ``ratio`` tokens each; every hedge or retry
    spends one whole token.  The bucket starts at ``burst`` (so a cold
    system can still hedge) and is capped there, making total extra
    attempts <= ``burst + ratio * fresh`` — the retry-amplification
    bound the invariant monitor checks.
    """

    def __init__(self, ratio: float, burst: int) -> None:
        self.ratio = ratio
        self.burst = burst
        self.tokens = float(burst)
        self.earned = 0  # fresh requests seen
        self.spent = 0  # extra attempts granted
        self.denied = 0  # extra attempts refused

    def on_fresh(self, n: int = 1) -> None:
        self.earned += n
        self.tokens = min(float(self.burst), self.tokens + self.ratio * n)

    def try_spend(self) -> bool:
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.spent += 1
            return True
        self.denied += 1
        return False


class CircuitBreaker:
    """CLOSED / OPEN / HALF_OPEN failure isolation for one server."""

    def __init__(self, spec: TailSpec) -> None:
        self.spec = spec
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0
        self.half_open_probes_left = 0
        self.opens = 0
        # (time_ns, old, new) — audited against LEGAL_BREAKER_TRANSITIONS.
        self.transitions: list[tuple[int, str, str]] = []

    def _move(self, new: str, now: int) -> None:
        old = self.state
        if new == old:
            return
        self.transitions.append((now, old, new))
        self.state = new
        if new == BREAKER_OPEN:
            self.opens += 1
            self.opened_at = now
            self.consecutive_failures = 0
        elif new == BREAKER_HALF_OPEN:
            self.half_open_probes_left = self.spec.breaker_half_open_probes
        elif new == BREAKER_CLOSED:
            self.consecutive_failures = 0

    def allow(self, now: int) -> bool:
        """May a request be dispatched to this server right now?

        Non-consuming: candidate filtering asks this for every server
        but only one gets the request; :meth:`note_dispatch` spends the
        half-open probe when the balancer actually picks this server.
        """
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_OPEN:
            if now - self.opened_at >= self.spec.breaker_open_ns:
                self._move(BREAKER_HALF_OPEN, now)
            else:
                return False
        return self.half_open_probes_left > 0

    def note_dispatch(self, now: int) -> None:
        if self.state == BREAKER_HALF_OPEN and self.half_open_probes_left > 0:
            self.half_open_probes_left -= 1

    def on_success(self, now: int) -> None:
        self.consecutive_failures = 0
        if self.state == BREAKER_HALF_OPEN:
            self._move(BREAKER_CLOSED, now)

    def on_failure(self, now: int) -> None:
        if self.state == BREAKER_HALF_OPEN:
            self._move(BREAKER_OPEN, now)
        elif self.state == BREAKER_CLOSED:
            self.consecutive_failures += 1
            if self.consecutive_failures >= self.spec.breaker_failures:
                self._move(BREAKER_OPEN, now)


class OutlierEjector:
    """Differential latency comparison across the server pool."""

    def __init__(self, spec: TailSpec, servers) -> None:
        self.spec = spec
        self.servers = tuple(servers)
        self.ewma: dict[int, float] = {s: 0.0 for s in self.servers}
        self.samples: dict[int, int] = {s: 0 for s in self.servers}
        self.ejected_until: dict[int, int] = {}  # server -> expiry ns
        self.ejections = 0

    def on_sample(self, server: int, latency_ns: int, now: int) -> None:
        a = self.spec.eject_alpha
        prev = self.ewma.get(server, 0.0)
        self.ewma[server] = (
            float(latency_ns) if self.samples.get(server, 0) == 0
            else a * latency_ns + (1.0 - a) * prev
        )
        self.samples[server] = self.samples.get(server, 0) + 1
        self._judge(server, now)

    def is_ejected(self, server: int, now: int) -> bool:
        expiry = self.ejected_until.get(server)
        if expiry is None:
            return False
        if now >= expiry:
            # Ejection over: forget the bad history so the server is
            # judged on post-recovery samples, not the gray era's EWMA.
            del self.ejected_until[server]
            self.ewma[server] = 0.0
            self.samples[server] = 0
            return False
        return True

    def _judge(self, server: int, now: int) -> None:
        spec = self.spec
        if self.samples[server] < spec.eject_min_samples:
            return
        if server in self.ejected_until:
            return
        peers = [
            self.ewma[s]
            for s in self.servers
            if self.samples[s] >= spec.eject_min_samples
            and s not in self.ejected_until
        ]
        if len(peers) < 2:
            return  # nothing to compare against
        ordered = sorted(peers)
        mid = len(ordered) // 2
        median = (
            ordered[mid]
            if len(ordered) % 2
            else (ordered[mid - 1] + ordered[mid]) / 2.0
        )
        if median <= 0.0 or self.ewma[server] <= spec.eject_factor * median:
            return
        cap = int(spec.max_eject_fraction * len(self.servers))
        if len(self.ejected_until) >= cap:
            return
        self.ejected_until[server] = now + spec.eject_ns
        self.ejections += 1


class QuantileTracker:
    """Latency quantile with a cheap cached read for hedge arming."""

    _REFRESH = 32  # recompute the percentile every this many records

    def __init__(self, quantile: float) -> None:
        self.quantile = quantile
        self.hist = LatencyHistogram()
        self._cached = 0
        self._since_refresh = 0

    def record(self, latency_ns: int) -> None:
        self.hist.record(latency_ns)
        self._since_refresh += 1
        if self._since_refresh >= self._REFRESH:
            self._since_refresh = 0
            self._cached = self.hist.percentile(self.quantile)

    def value(self) -> int:
        if self._since_refresh and not self._cached:
            self._cached = self.hist.percentile(self.quantile)
        return self._cached

    @property
    def total(self) -> int:
        return self.hist.total


class TailController:
    """All tail-tolerance state for one :class:`ServeRuntime`."""

    def __init__(self, spec: TailSpec, servers) -> None:
        self.spec = spec
        self.servers = tuple(servers)
        self.budget = RetryBudget(spec.retry_budget, spec.retry_burst)
        self.breakers: dict[int, CircuitBreaker] = {
            s: CircuitBreaker(spec) for s in self.servers
        }
        self.ejector = OutlierEjector(spec, self.servers)
        self.quantiles = QuantileTracker(spec.hedge_quantile)
        # -- counters ------------------------------------------------------
        self.hedges_sent = 0
        self.hedges_won = 0  # a hedge answered before the primary
        self.retries_sent = 0  # shed responses retried elsewhere
        self.fail_open = 0  # times filtering would have emptied the pool

    # -- dispatch-time filtering ------------------------------------------

    def filter_candidates(self, candidates: set, now: int) -> set:
        """Drop open-breaker and ejected servers; fail open if empty."""
        spec = self.spec
        filtered = set()
        for s in sorted(candidates):
            if spec.breaker and not self.breakers[s].allow(now):
                continue
            if spec.eject and self.ejector.is_ejected(s, now):
                continue
            filtered.add(s)
        if not filtered and candidates:
            self.fail_open += 1
            return set(candidates)
        return filtered

    def on_dispatch(self, server: int, now: int) -> None:
        """The balancer picked ``server``; spend its half-open probe."""
        if self.spec.breaker:
            self.breakers[server].note_dispatch(now)

    # -- response-time signals --------------------------------------------

    def on_success(self, server: int, latency_ns: int, now: int) -> None:
        self.quantiles.record(latency_ns)
        if self.spec.breaker:
            self.breakers[server].on_success(now)
        if self.spec.eject:
            self.ejector.on_sample(server, latency_ns, now)

    def on_shed(self, server: int, now: int) -> None:
        if self.spec.breaker:
            self.breakers[server].on_failure(now)

    # -- hedging -----------------------------------------------------------

    def hedge_delay_ns(self) -> Optional[int]:
        """Outstanding time after which to hedge; None = not warmed up."""
        spec = self.spec
        if not spec.hedge or spec.max_hedges < 1:
            return None
        if self.quantiles.total < spec.hedge_warmup:
            return None
        q = self.quantiles.value()
        if q <= 0:
            return None
        return max(spec.hedge_min_delay_ns, min(spec.hedge_max_delay_ns, q))

    # -- audits ------------------------------------------------------------

    def illegal_breaker_transitions(self) -> list[str]:
        out = []
        for server, breaker in self.breakers.items():
            for t_ns, old, new in breaker.transitions:
                if (old, new) not in LEGAL_BREAKER_TRANSITIONS:
                    out.append(
                        f"server {server}: {old} -> {new} at {t_ns}ns"
                    )
        return out

    @property
    def breaker_opens(self) -> int:
        return sum(b.opens for b in self.breakers.values())

    @property
    def ejections(self) -> int:
        return self.ejector.ejections
