"""Request/response serving over MultiEdge message passing.

The ROADMAP's north star is a system serving heavy traffic from
millions of users; every workload before this package was closed-loop.
:mod:`repro.serve` drives the stack the way a real service is driven:

* **open-loop arrivals** (:mod:`.arrivals`) — seeded Poisson and
  bursty (Markov-modulated on/off) sources that stand in for millions
  of clients with *batched* event generation: one armed scheduler event
  per source, never a process per client or per request;
* **pluggable load balancing** (:mod:`.balancer`) — round-robin,
  least-outstanding, and leaf-affinity over :mod:`repro.fabric`
  topology;
* **bounded-queue servers** (:mod:`.server`) — explicit overload
  behavior: queue at capacity means a shed response and a counter, not
  silent growth;
* **the runtime** (:mod:`.runtime`) — wiring, the client-side request
  journal that replays across server crashes (:mod:`repro.recovery`),
  per-server mergeable latency histograms with queueing/service/network
  decomposition (:mod:`repro.analysis`), and SLO attainment windows.
"""

from .arrivals import ArrivalSource, ArrivalSpec, Request
from .balancer import (
    POLICIES,
    LeafAffinity,
    LeastOutstanding,
    LoadBalancer,
    RoundRobin,
    leaf_of,
    make_balancer,
)
from .runtime import ServeConfig, ServeRuntime, enable_serving
from .server import FLAG_SHED, TAG_REQ, TAG_RESP, ServerLoop, ServerSpec
from .tail import (
    CircuitBreaker,
    OutlierEjector,
    QuantileTracker,
    RetryBudget,
    TailController,
    TailSpec,
)

__all__ = [
    "TailSpec",
    "TailController",
    "RetryBudget",
    "CircuitBreaker",
    "OutlierEjector",
    "QuantileTracker",
    "ArrivalSpec",
    "ArrivalSource",
    "Request",
    "LoadBalancer",
    "RoundRobin",
    "LeastOutstanding",
    "LeafAffinity",
    "POLICIES",
    "make_balancer",
    "leaf_of",
    "ServerSpec",
    "ServerLoop",
    "ServeConfig",
    "ServeRuntime",
    "enable_serving",
    "TAG_REQ",
    "TAG_RESP",
    "FLAG_SHED",
]
