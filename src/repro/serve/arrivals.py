"""Open-loop arrival sources for the serving layer.

The defining property of open-loop load is that the arrival process
never waits for the system: requests keep coming at the configured rate
whether or not earlier requests have completed, which is what exposes
queueing collapse and honest tail latencies (a closed-loop driver slows
itself down exactly when the system is struggling, flattering the p99).

A real service sees this load from millions of independent clients.  We
stand in for them with *batched* event generation: one
:class:`ArrivalSource` pre-draws a whole batch of inter-arrival gaps
from its RNG stream (one vectorized draw for Poisson), then walks the
batch with a single armed scheduler callback — at any instant exactly
one future arrival event is pending per source, regardless of rate.
There is never a process (or timer) per client or per request.

Two arrival processes are provided:

* ``poisson`` — exponential i.i.d. gaps at ``rate_rps``.
* ``bursty`` — a Markov-modulated on/off process: gaps are exponential
  at ``burst_rate_rps`` during "on" phases and ``rate_rps`` during
  "off" phases, with exponentially distributed phase durations.  This
  is the classic MMPP(2) traffic model for flash crowds and spikes.

All randomness (gaps, phase switches, request/response sizes) comes
from the dedicated ``serve:<seed>`` stream of the cluster's
:class:`~repro.sim.RngRegistry`, so enabling serving never perturbs any
other subsystem's draws.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["ArrivalSpec", "ArrivalSource", "Request", "draw_size"]


@dataclass
class Request:
    """One request's lifetime record (client side)."""

    req_id: int
    client: int  # client node rank
    t_arrival: int  # sim time the open-loop source emitted it
    req_bytes: int
    resp_bytes: int
    deadline_ns: int  # 0 = no deadline
    server: int = -1  # most recent dispatch target
    t_dispatch: int = 0  # when the client outbox handed it to mp
    attempts: int = 0  # dispatch attempts (> 1 after replay/hedge/retry)
    # -- tail-tolerance state (repro.serve.tail) --------------------------
    # Servers with an attempt currently in flight (one normally; more
    # while a hedge is racing the primary).
    pending_servers: set = field(default_factory=set)
    # server -> the sim time its attempt left the client outbox; the
    # winner's entry feeds the latency decomposition.
    dispatch_ns: dict = field(default_factory=dict)
    hedges: int = 0  # hedged attempts issued for this request


@dataclass(frozen=True)
class ArrivalSpec:
    """Declarative description of one open-loop source.

    Size distributions are ``(kind, a)`` or ``(kind, a, b)`` tuples:
    ``("fixed", n)``, ``("uniform", lo, hi)`` (inclusive), or
    ``("exp", mean)`` (shifted by 1 so payloads are never empty).
    """

    kind: str = "poisson"  # "poisson" | "bursty"
    rate_rps: float = 20_000.0  # base rate, requests per simulated second
    burst_rate_rps: float = 0.0  # on-phase rate for "bursty" (0 -> 4x base)
    mean_on_ns: int = 2_000_000
    mean_off_ns: int = 2_000_000
    request_bytes: tuple = ("fixed", 128)
    response_bytes: tuple = ("fixed", 512)
    deadline_ns: int = 0  # per-request completion deadline; 0 disables
    batch: int = 256  # arrivals pre-drawn per generation event

    def __post_init__(self) -> None:
        if self.kind not in ("poisson", "bursty"):
            raise ValueError(f"unknown arrival kind {self.kind!r}")
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if self.batch < 1:
            raise ValueError("batch must be >= 1")


def draw_size(rng, dist: tuple) -> int:
    """Draw one size (bytes) from a distribution tuple."""
    kind = dist[0]
    if kind == "fixed":
        return int(dist[1])
    if kind == "uniform":
        return int(rng.integers(dist[1], dist[2] + 1))
    if kind == "exp":
        return 1 + int(rng.exponential(dist[1]))
    raise ValueError(f"unknown size distribution {dist!r}")


class ArrivalSource:
    """One open-loop source feeding requests for a single client rank."""

    def __init__(
        self,
        sim,
        rng,
        spec: ArrivalSpec,
        client: int,
        deliver: Callable[[Request], None],
        stop_at_ns: Optional[int] = None,
        max_requests: Optional[int] = None,
        req_id_base: int = 0,
    ) -> None:
        self.sim = sim
        self.rng = rng
        self.spec = spec
        self.client = client
        self.deliver = deliver
        self.stop_at_ns = stop_at_ns
        self.max_requests = max_requests
        self.generated = 0
        self.batches_generated = 0
        self._next_req_id = req_id_base
        self._times: list[int] = []
        self._i = 0
        self._stopped = False
        self._armed_at: Optional[int] = None
        # Bursty phase state persists across batches.
        self._phase_on = False
        self._phase_end_ns = 0.0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self._refill(from_ns=self.sim.now)
        self._arm()

    def stop(self) -> None:
        """Disarm: the pending scheduler callback becomes a no-op."""
        self._stopped = True
        self._armed_at = None

    @property
    def armed(self) -> bool:
        """True while a future arrival event is scheduled."""
        return self._armed_at is not None

    @property
    def pending_batch(self) -> int:
        """Arrivals already drawn but not yet emitted (checkpoint state)."""
        if self._stopped:
            return 0
        return len(self._times) - self._i

    # -- batch generation --------------------------------------------------

    def _refill(self, from_ns: int) -> None:
        spec = self.spec
        n = spec.batch
        if spec.kind == "poisson":
            gaps = self.rng.exponential(1e9 / spec.rate_rps, n)
            t = float(from_ns)
            times = []
            for g in gaps:
                t += max(1.0, g)
                times.append(int(t))
        else:
            times = self._refill_bursty(from_ns, n)
        self._times = times
        self._i = 0
        self.batches_generated += 1

    def _refill_bursty(self, from_ns: int, n: int) -> list[int]:
        spec = self.spec
        burst = spec.burst_rate_rps or 4 * spec.rate_rps
        t = float(from_ns)
        if self._phase_end_ns <= t and self.batches_generated == 0:
            # First batch: start in the off (base-rate) phase.
            self._phase_on = False
            self._phase_end_ns = t + self.rng.exponential(spec.mean_off_ns)
        times: list[int] = []
        while len(times) < n:
            rate = burst if self._phase_on else spec.rate_rps
            gap = max(1.0, self.rng.exponential(1e9 / rate))
            if t + gap <= self._phase_end_ns:
                t += gap
                times.append(int(t))
            else:
                # Memoryless: discard the partial gap at the boundary.
                t = self._phase_end_ns
                self._phase_on = not self._phase_on
                mean = spec.mean_on_ns if self._phase_on else spec.mean_off_ns
                self._phase_end_ns = t + self.rng.exponential(mean)
        return times

    # -- the single armed event --------------------------------------------

    def _arm(self) -> None:
        if self._stopped:
            return
        if self.max_requests is not None and self.generated >= self.max_requests:
            self._stopped = True
            self._armed_at = None
            return
        if self._i >= len(self._times):
            self._refill(from_ns=self._times[-1] if self._times else self.sim.now)
        t = self._times[self._i]
        if self.stop_at_ns is not None and t >= self.stop_at_ns:
            self._stopped = True
            self._armed_at = None
            return
        self._armed_at = t
        self.sim.at(t, self._fire, t)

    def _fire(self, t: int) -> None:
        if self._stopped or self._armed_at != t:
            return  # stopped (or superseded) after this event was scheduled
        self._armed_at = None
        self._i += 1
        spec = self.spec
        req = Request(
            req_id=self._next_req_id,
            client=self.client,
            t_arrival=self.sim.now,
            req_bytes=draw_size(self.rng, spec.request_bytes),
            resp_bytes=draw_size(self.rng, spec.response_bytes),
            deadline_ns=spec.deadline_ns,
        )
        self._next_req_id += 1
        self.generated += 1
        self._arm()
        self.deliver(req)
