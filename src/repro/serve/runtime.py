"""The serving runtime: sources, balancer, servers, and accounting.

:class:`ServeRuntime` wires the pieces of :mod:`repro.serve` onto a
cluster + :class:`~repro.mp.MpWorld`:

* one open-loop :class:`~repro.serve.arrivals.ArrivalSource` per client
  rank (batched generation — a single armed scheduler event per source);
* one load-balancer instance choosing a server per request;
* one bounded-queue :class:`~repro.serve.server.ServerLoop` per server
  rank;
* per-(src, dst) **outboxes** — exactly one sender process per directed
  pair, because concurrent mp sends to the same peer would race on the
  eager ring slots.  The process count is fixed at wiring time and
  independent of request volume: open-loop load at any rate runs on
  O(clients x servers) processes.

The runtime is also the measurement plane: per-server mergeable
latency histograms, phase decomposition (queueing / service / network),
optional fixed-width attainment windows, and the request-conservation
counters the invariant monitor checks:

    generated == completed + shed + shed_client + failed + pending

Crash interplay (with :mod:`repro.recovery`): when a server crashes,
its queued requests vanish with its memory; the client-side journal
(the ``outstanding`` table) replays every unanswered request to a
surviving server — or parks it until the crashed one reconnects — with
latency still measured from the *original* arrival, so the outage shows
up in the tail exactly as a user would feel it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Generator, Optional

from ..analysis.latency import LatencyHistogram, SloSpec
from ..sim import Event
from .arrivals import ArrivalSource, ArrivalSpec, Request
from .balancer import make_balancer
from .tail import TailController, TailSpec
from .server import (
    FLAG_SHED,
    TAG_REQ,
    TAG_RESP,
    ServerLoop,
    ServerSpec,
    pack_request,
    pack_response,
    unpack_response,
)

__all__ = ["ServeConfig", "ServeRuntime", "enable_serving"]

# Client ranks get disjoint request-id spaces.
_REQ_ID_STRIDE = 1 << 40


@dataclass(frozen=True)
class ServeConfig:
    """Static description of one serving deployment on a cluster."""

    clients: tuple
    servers: tuple
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    server: ServerSpec = field(default_factory=ServerSpec)
    policy: str = "round-robin"
    duration_ns: int = 10_000_000
    window_ns: int = 0  # 0 = no windowed attainment tracking
    outbox_cap: int = 0  # 0 = unbounded client outboxes
    slo: Optional[SloSpec] = None
    # Tail-tolerant client machinery (repro.serve.tail); None keeps the
    # classic dispatch-once path byte-identical.
    tail: Optional[TailSpec] = None

    def __post_init__(self) -> None:
        if not self.clients or not self.servers:
            raise ValueError("need at least one client and one server")
        if set(self.clients) & set(self.servers):
            raise ValueError("a rank cannot be both client and server")
        if self.duration_ns < 1:
            raise ValueError("duration_ns must be positive")


class _Outbox:
    """Serialized sender for one directed (src -> dst) mp pair."""

    def __init__(self, runtime: "ServeRuntime", src: int, dst: int) -> None:
        self.runtime = runtime
        self.src = src
        self.dst = dst
        self.ep = runtime.world.endpoints[src]
        self.entries: deque = deque()  # (payload, tag, req_or_none)
        self._wake: Optional[Event] = None
        self.sim = runtime.cluster.sim
        self.sim.process(self._drain(), name=f"serve.out{src}->{dst}")

    def push(self, payload: bytes, tag: int, req: Optional[Request]) -> None:
        self.entries.append((payload, tag, req))
        if self._wake is not None and not self._wake.triggered:
            self._wake.trigger()
            self._wake = None

    def purge_requests(self) -> list[Request]:
        """Drop queued *request* entries (crash replay); keep responses."""
        kept, dropped = deque(), []
        for payload, tag, req in self.entries:
            if tag == TAG_REQ and req is not None:
                dropped.append(req)
            else:
                kept.append((payload, tag, req))
        self.entries = kept
        return dropped

    def _drain(self) -> Generator:
        while True:
            if not self.entries:
                self._wake = Event(self.sim)
                yield self._wake
                continue
            payload, tag, req = self.entries.popleft()
            if req is not None:
                req.t_dispatch = self.sim.now
                req.dispatch_ns[self.dst] = self.sim.now
            try:
                yield from self.ep.send(self.dst, payload, tag=tag)
            except RuntimeError:
                # Typed peer-crash (or destroyed-connection) failure.
                if tag == TAG_REQ and req is not None:
                    self.runtime._on_request_send_failed(req, self.dst)
                else:
                    self.runtime.responses_dropped += 1


class ServeRuntime:
    """Everything :mod:`repro.serve` hangs off one cluster (see module
    docstring)."""

    def __init__(self, cluster, world, config: ServeConfig) -> None:
        if cluster.config.protocol.synthetic_payloads:
            raise ValueError(
                "the serving layer reads request headers out of payload "
                "bytes; build the cluster with synthetic_payloads=False"
            )
        for rank in (*config.clients, *config.servers):
            if not 0 <= rank < cluster.config.nodes:
                raise ValueError(f"rank {rank} outside the cluster")
        self.cluster = cluster
        self.world = world
        self.config = config
        self.sim = cluster.sim
        seed = cluster.config.seed
        self.balancer = make_balancer(
            config.policy, config.servers, cluster=cluster
        )
        self.sources: dict[int, ArrivalSource] = {}
        for client in config.clients:
            rng = cluster.rng.stream(f"serve:{seed}:arrivals:{client}")
            self.sources[client] = ArrivalSource(
                self.sim,
                rng,
                config.arrival,
                client,
                deliver=self._on_arrival,
                req_id_base=client * _REQ_ID_STRIDE,
            )
        self.servers: dict[int, ServerLoop] = {}
        for rank in config.servers:
            rng = cluster.rng.stream(f"serve:{seed}:svc:{rank}")
            self.servers[rank] = ServerLoop(
                self, world.endpoints[rank], config.server, rng
            )
        self.outboxes: dict[tuple[int, int], _Outbox] = {}
        # Which servers each client can currently reach (recovery windows
        # shrink this; reconnects grow it back).
        self.reachable: dict[int, set] = {
            c: set(config.servers) for c in config.clients
        }
        # Client-side journal: every dispatched-but-unanswered request.
        self.outstanding: dict[int, Request] = {}
        # Requests with no eligible server right now (crash windows).
        self.holding: deque = deque()
        # Losing attempts of already-answered requests: req_id -> the
        # servers whose (duplicate) responses are still expected.  Keeps
        # the balancer's outstanding counts honest under hedging.
        self._absorbing: dict[int, set] = {}
        # Tail tolerance: hedging, retry budget, breakers, ejection.
        self.tail: Optional[TailController] = (
            TailController(config.tail, config.servers)
            if config.tail is not None
            else None
        )
        # -- conservation counters (client-side view) ----------------------
        self.generated = 0
        self.completed = 0  # served responses seen by clients
        self.shed = 0  # server-shed responses seen by clients
        self.shed_client = 0  # dropped at a full client outbox
        self.failed = 0  # typed-failed, never answered
        self.replayed = 0  # re-dispatches after a server crash
        self.duplicate_responses = 0  # replay raced a late response
        self.deadline_missed = 0
        self.responses_dropped = 0  # server -> dead client (not used yet)
        # -- measurement plane --------------------------------------------
        self.hist_by_server: dict[int, LatencyHistogram] = {
            s: LatencyHistogram() for s in config.servers
        }
        self.hist_queueing = LatencyHistogram()
        self.hist_service = LatencyHistogram()
        self.hist_network = LatencyHistogram()
        self.windows: dict[int, dict] = {}
        self._started = False
        self._start_ns = 0
        cluster.serve = self

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Arm every source and spawn the fixed process set."""
        if self._started:
            raise RuntimeError("serving runtime already started")
        self._started = True
        self._start_ns = self.sim.now
        stop_at = self._start_ns + self.config.duration_ns
        for loop in self.servers.values():
            loop.start()
        for source in self.sources.values():
            source.stop_at_ns = stop_at
            source.start()
        for client in self.config.clients:
            self.sim.process(
                self._collector(client), name=f"serve.col{client}"
            )

    def attach_recovery(self, recovery) -> None:
        """Subscribe the serving layer to crash/reconnect notifications."""
        recovery.subscribe_crash(self._on_node_crashed)
        recovery.add_reconnect_pair_watcher(self._on_pair_reconnected)

    # -- fastpath / checkpoint visibility ---------------------------------

    @property
    def arrivals_armed(self) -> bool:
        """An open-loop source holds an armed future arrival event."""
        return any(s.armed for s in self.sources.values())

    @property
    def active(self) -> bool:
        """Serving traffic exists now or is guaranteed to appear."""
        return (
            self.arrivals_armed
            or bool(self.outstanding)
            or bool(self.holding)
            or any(o.entries for o in self.outboxes.values())
            or any(s.queue for s in self.servers.values())
        )

    # -- request path ------------------------------------------------------

    def _on_arrival(self, req: Request) -> None:
        self.generated += 1
        if self.tail is not None:
            self.tail.budget.on_fresh()
        self._window(req.t_arrival)["generated"] += 1
        self._dispatch(req)

    def _dispatch(self, req: Request) -> None:
        candidates = self.reachable[req.client]
        if self.tail is not None:
            candidates = self.tail.filter_candidates(candidates, self.sim.now)
        server = self.balancer.choose(req, candidates=candidates)
        if server is None:
            self.holding.append(req)
            return
        outbox = self._outbox(req.client, server)
        if self.config.outbox_cap and len(outbox.entries) >= self.config.outbox_cap:
            self.shed_client += 1
            self._window(self.sim.now)["shed"] += 1
            return
        self._send_attempt(req, server, outbox)
        self._arm_hedge(req)

    def _send_attempt(self, req: Request, server: int,
                      outbox: Optional[_Outbox] = None) -> None:
        """Put one attempt for ``req`` on the wire toward ``server``."""
        req.server = server
        req.attempts += 1
        req.pending_servers.add(server)
        # Placeholder keeps dispatch order (first key = primary attempt);
        # the outbox overwrites the value with the real drain time.
        req.dispatch_ns.setdefault(server, self.sim.now)
        self.balancer.note_dispatch(server)
        if self.tail is not None:
            self.tail.on_dispatch(server, self.sim.now)
        self.outstanding[req.req_id] = req
        payload = pack_request(req.req_id, req.client, 0, req.resp_bytes,
                               req.req_bytes)
        (outbox or self._outbox(req.client, server)).push(payload, TAG_REQ, req)

    # -- hedging (repro.serve.tail) ---------------------------------------

    def _arm_hedge(self, req: Request) -> None:
        tail = self.tail
        if tail is None:
            return
        if (req.hedges >= tail.spec.max_hedges
                or req.attempts >= tail.spec.max_attempts):
            return
        delay = tail.hedge_delay_ns()
        if delay is None:
            return  # hedging disabled or quantile not warmed up yet
        self.sim.timer(delay, self._maybe_hedge, req.req_id, req.attempts)

    def _maybe_hedge(self, req_id: int, attempts_snapshot: int) -> None:
        tail = self.tail
        req = self.outstanding.get(req_id)
        if tail is None or req is None:
            return  # answered (or failed) before the hedge delay elapsed
        if req.attempts != attempts_snapshot:
            return  # a replay or retry superseded this timer
        if (req.hedges >= tail.spec.max_hedges
                or req.attempts >= tail.spec.max_attempts):
            return
        now = self.sim.now
        candidates = {
            s for s in self.reachable[req.client]
            if s not in req.pending_servers
        }
        if not candidates:
            return  # nowhere different to hedge to
        server = self.balancer.choose(
            req, candidates=tail.filter_candidates(candidates, now)
        )
        if server is None:
            return
        outbox = self._outbox(req.client, server)
        if self.config.outbox_cap and len(outbox.entries) >= self.config.outbox_cap:
            return  # the client itself is backlogged; don't add load
        if not tail.budget.try_spend():
            return  # budget exhausted: the bound beats the tail
        req.hedges += 1
        tail.hedges_sent += 1
        self._send_attempt(req, server, outbox)

    def _outbox(self, src: int, dst: int) -> _Outbox:
        key = (src, dst)
        if key not in self.outboxes:
            self.outboxes[key] = _Outbox(self, src, dst)
        return self.outboxes[key]

    def enqueue_response(self, server: int, client: int, req_id: int,
                         flags: int, t_rx: int, t_start: int, t_end: int,
                         resp_bytes: int) -> None:
        payload = pack_response(req_id, server, flags, t_rx, t_start, t_end,
                                resp_bytes)
        self._outbox(server, client).push(payload, TAG_RESP, None)

    def _collector(self, client: int) -> Generator:
        ep = self.world.endpoints[client]
        while True:
            msg = yield from ep.recv(tag=TAG_RESP)
            req_id, server, flags, t_rx, t_start, t_end = unpack_response(
                msg.data
            )
            if self.tail is None:
                # Classic single-attempt path, byte-identical to the
                # pre-tail runtime (pinned fuzz fingerprints depend on it).
                self._legacy_on_response(
                    req_id, server, flags, t_rx, t_start, t_end
                )
                continue
            now = self.sim.now
            req = self.outstanding.get(req_id)
            if req is None:
                # The request was answered once already: this is a losing
                # hedge attempt's response, or a crash replay raced a
                # response that was already on the wire.
                self._absorb_duplicate(req_id, server)
                continue
            if flags & FLAG_SHED:
                self._on_shed_response(req, server, now)
                continue
            self._complete(req, server, flags, t_rx, t_start, t_end, now)

    def _legacy_on_response(self, req_id: int, server: int, flags: int,
                            t_rx: int, t_start: int, t_end: int) -> None:
        req = self.outstanding.pop(req_id, None)
        if req is None:
            # A crash replay raced a response that was already on the
            # wire; the request was answered once already.
            self.duplicate_responses += 1
            return
        self.balancer.note_done(req.server)
        req.pending_servers.clear()
        now = self.sim.now
        win = self._window(now)
        if flags & FLAG_SHED:
            self.shed += 1
            win["shed"] += 1
            return
        total = now - req.t_arrival
        queueing = (req.t_dispatch - req.t_arrival) + (t_start - t_rx)
        service = t_end - t_start
        network = max(0, total - queueing - service)
        self.completed += 1
        self.hist_by_server[server].record(total)
        self.hist_queueing.record(queueing)
        self.hist_service.record(service)
        self.hist_network.record(network)
        win["completed"] += 1
        win["hist"].record(total)
        if req.deadline_ns and total > req.deadline_ns:
            self.deadline_missed += 1
        # A parked request may now have an eligible server again.
        if self.holding and self.balancer.alive:
            self._drain_holding()

    def _complete(self, req: Request, server: int, flags: int, t_rx: int,
                  t_start: int, t_end: int, now: int) -> None:
        self.outstanding.pop(req.req_id)
        if server in req.pending_servers:
            req.pending_servers.discard(server)
            self.balancer.note_done(server)
        # Attempts still racing (hedge losers, or the replay of a request
        # a stale pre-crash response just answered) stay tracked until
        # their responses arrive or their server dies.
        if req.pending_servers:
            self._absorbing[req.req_id] = set(req.pending_servers)
            req.pending_servers.clear()
        win = self._window(now)
        total = now - req.t_arrival
        dispatch = req.dispatch_ns.get(server, req.t_dispatch)
        queueing = (dispatch - req.t_arrival) + (t_start - t_rx)
        service = t_end - t_start
        network = max(0, total - queueing - service)
        self.completed += 1
        self.hist_by_server[server].record(total)
        self.hist_queueing.record(queueing)
        self.hist_service.record(service)
        self.hist_network.record(network)
        win["completed"] += 1
        win["hist"].record(total)
        if req.deadline_ns and total > req.deadline_ns:
            self.deadline_missed += 1
        if self.tail is not None:
            self.tail.on_success(server, total, now)
            if req.hedges and server != next(iter(req.dispatch_ns), server):
                # Answered by other than the primary attempt's server.
                self.tail.hedges_won += 1
        # A parked request may now have an eligible server again.
        if self.holding and self.balancer.alive:
            self._drain_holding()

    def _on_shed_response(self, req: Request, server: int, now: int) -> None:
        tail = self.tail
        if server in req.pending_servers:
            req.pending_servers.discard(server)
            self.balancer.note_done(server)
        if tail is not None:
            tail.on_shed(server, now)
        if req.pending_servers:
            return  # a hedge attempt is still racing; let it decide
        if (
            tail is not None
            and tail.spec.retry_sheds
            and req.attempts < tail.spec.max_attempts
        ):
            candidates = {
                s for s in self.reachable[req.client] if s != server
            }
            retry_server = self.balancer.choose(
                req,
                candidates=tail.filter_candidates(candidates, now)
                if candidates else candidates,
            )
            if retry_server is not None and tail.budget.try_spend():
                tail.retries_sent += 1
                self._send_attempt(req, retry_server)
                self._arm_hedge(req)
                return
        self.outstanding.pop(req.req_id, None)
        self.shed += 1
        self._window(now)["shed"] += 1

    def _absorb_duplicate(self, req_id: int, server: int) -> None:
        self.duplicate_responses += 1
        losers = self._absorbing.get(req_id)
        if losers is not None and server in losers:
            losers.discard(server)
            self.balancer.note_done(server)
            if not losers:
                del self._absorbing[req_id]

    def _drain_holding(self) -> None:
        pending, self.holding = self.holding, deque()
        for req in pending:
            self._dispatch(req)

    # -- crash / recovery hooks -------------------------------------------

    def _on_node_crashed(self, node_id: int) -> None:
        if node_id not in self.servers:
            return
        self.balancer.mark_down(node_id)
        self.servers[node_id].on_crash()
        for client in self.config.clients:
            self.reachable[client].discard(node_id)
        if self.tail is None:
            # Classic collect-then-replay (kept byte-identical for pinned
            # fingerprints): a request both queued in an outbox toward the
            # dead server and journaled appears in the list twice and is
            # re-dispatched twice, exactly as before the tail machinery.
            to_replay: list[Request] = []
            for (src, dst), outbox in self.outboxes.items():
                if dst == node_id:
                    to_replay.extend(outbox.purge_requests())
                if src == node_id:
                    outbox.entries.clear()  # dead server's unsent responses
            for req in list(self.outstanding.values()):
                if req.server == node_id:
                    to_replay.append(req)
            for req in to_replay:
                self._legacy_replay(req)
            return
        # Requests parked in outboxes toward the dead server never left
        # the client; abandon those attempts with everything in flight.
        for (src, dst), outbox in self.outboxes.items():
            if dst == node_id:
                for req in outbox.purge_requests():
                    self._abandon_attempt(req, node_id)
            if src == node_id:
                outbox.entries.clear()  # dead server's unsent responses
        for req in list(self.outstanding.values()):
            if node_id in req.pending_servers:
                self._abandon_attempt(req, node_id)
        # Losing hedge attempts at the dead server will never answer.
        for req_id, losers in list(self._absorbing.items()):
            if node_id in losers:
                losers.discard(node_id)
                self.balancer.note_done(node_id)
                if not losers:
                    del self._absorbing[req_id]

    def _on_request_send_failed(self, req: Request, failed_dst: int) -> None:
        """The outbox hit a typed failure mid-send for this request.

        The crash notification usually replays the request before the
        failed sender process resumes; only act here if the request is
        still journaled *and* still has an attempt toward the dead leg.
        """
        if self.tail is None:
            if (self.outstanding.get(req.req_id) is req
                    and req.server == failed_dst):
                self._legacy_replay(req)
            return
        if (self.outstanding.get(req.req_id) is req
                and failed_dst in req.pending_servers):
            self._abandon_attempt(req, failed_dst)

    def _legacy_replay(self, req: Request) -> None:
        self.outstanding.pop(req.req_id, None)
        self.balancer.note_done(req.server)
        req.pending_servers.clear()
        req.server = -1
        self.replayed += 1
        self._dispatch(req)

    def _abandon_attempt(self, req: Request, server: int) -> None:
        """One attempt died with its server; replay when none survive."""
        if server in req.pending_servers:
            req.pending_servers.discard(server)
            self.balancer.note_done(server)
        if req.pending_servers:
            return  # another attempt (a hedge) is still live
        if self.outstanding.get(req.req_id) is not req:
            return  # already answered or already failed
        self.outstanding.pop(req.req_id)
        req.server = -1
        self.replayed += 1
        self._dispatch(req)

    def _on_pair_reconnected(self, node_id: int, peer: int, _now: int) -> None:
        client, server = (
            (node_id, peer) if peer in self.servers else (peer, node_id)
        )
        if server not in self.servers or client not in self.reachable:
            return
        self.world.rewire_pair(client, server)
        self.reachable[client].add(server)
        self.balancer.mark_up(server)
        self._drain_holding()

    # -- measurement -------------------------------------------------------

    def _window(self, t_ns: int) -> dict:
        if not self.config.window_ns:
            return self._scratch_window()
        idx = (t_ns - self._start_ns) // self.config.window_ns
        win = self.windows.get(idx)
        if win is None:
            win = {
                "generated": 0,
                "completed": 0,
                "shed": 0,
                "hist": LatencyHistogram(),
            }
            self.windows[idx] = win
        return win

    _scratch = None

    def _scratch_window(self) -> dict:
        if self._scratch is None:
            self._scratch = {
                "generated": 0,
                "completed": 0,
                "shed": 0,
                "hist": LatencyHistogram(),
            }
        return self._scratch

    def merged_histogram(self) -> LatencyHistogram:
        """Cluster-wide latency tail: per-server histograms merged."""
        return LatencyHistogram.merged(self.hist_by_server.values())

    @property
    def shed_fraction(self) -> float:
        total = self.completed + self.shed + self.shed_client
        return (self.shed + self.shed_client) / total if total else 0.0

    @property
    def deadline_miss_fraction(self) -> float:
        return self.deadline_missed / self.completed if self.completed else 0.0

    def slo_report(self, hist: Optional[LatencyHistogram] = None):
        if self.config.slo is None:
            return None
        return self.config.slo.evaluate(
            hist if hist is not None else self.merged_histogram(),
            shed_fraction=self.shed_fraction,
            deadline_miss_fraction=self.deadline_miss_fraction,
        )

    def window_reports(self) -> list[dict]:
        """Per-window attainment, in time order (needs ``window_ns``)."""
        out = []
        for idx in sorted(self.windows):
            win = self.windows[idx]
            hist = win["hist"]
            answered = win["completed"] + win["shed"]
            shed_frac = win["shed"] / answered if answered else 0.0
            row = {
                "window": idx,
                "t0_ms": round(
                    (self._start_ns + idx * self.config.window_ns) / 1e6, 3
                ),
                "generated": win["generated"],
                "completed": win["completed"],
                "shed": win["shed"],
                "p50_ms": round(hist.p50 / 1e6, 4),
                "p99_ms": round(hist.p99 / 1e6, 4),
                "p999_ms": round(hist.p999 / 1e6, 4),
            }
            if self.config.slo is not None:
                row["attained"] = self.config.slo.evaluate(
                    hist, shed_fraction=shed_frac
                ).attained
            out.append(row)
        return out

    # -- end-of-run accounting --------------------------------------------

    def fail_pending(self) -> int:
        """Classify still-unanswered requests to dead servers as failed.

        Called by scenario runners at the end of a run whose fault
        profile leaves a server down; requests that can never be
        answered become typed failures instead of dangling pending.
        """
        failed = 0
        if self.tail is None:
            for req in list(self.outstanding.values()):
                if req.server not in self.balancer.alive:
                    self.outstanding.pop(req.req_id, None)
                    self.balancer.note_done(req.server)
                    req.pending_servers.clear()
                    failed += 1
        else:
            for req in list(self.outstanding.values()):
                dead = [s for s in req.pending_servers
                        if s not in self.balancer.alive]
                for s in dead:
                    req.pending_servers.discard(s)
                    self.balancer.note_done(s)
                if not req.pending_servers:
                    self.outstanding.pop(req.req_id, None)
                    failed += 1
        still_holding = deque()
        for req in self.holding:
            if self.balancer.choose(req, self.reachable[req.client]) is None:
                failed += 1
            else:
                still_holding.append(req)
        self.holding = still_holding
        self.failed += failed
        return failed

    @property
    def pending(self) -> int:
        return len(self.outstanding) + len(self.holding)

    def check_invariants(self) -> list[str]:
        """Request-conservation checks; empty list = all hold."""
        problems = []
        accounted = (
            self.completed
            + self.shed
            + self.shed_client
            + self.failed
            + self.pending
        )
        if self.generated != accounted:
            problems.append(
                f"request-conservation: generated {self.generated} != "
                f"completed {self.completed} + shed {self.shed} + "
                f"shed_client {self.shed_client} + failed {self.failed} + "
                f"pending {self.pending}"
            )
        merged = self.merged_histogram()
        if merged.total != self.completed:
            problems.append(
                f"histogram-conservation: merged histogram holds "
                f"{merged.total} samples but {self.completed} requests "
                "completed"
            )
        for name, hist in (
            ("queueing", self.hist_queueing),
            ("service", self.hist_service),
            ("network", self.hist_network),
        ):
            if hist.total != self.completed:
                problems.append(
                    f"histogram-conservation: {name} phase histogram holds "
                    f"{hist.total} samples for {self.completed} completions"
                )
        tracked = sum(self.balancer.outstanding.values())
        if self.tail is None:
            # Classic accounting: one attempt per journaled request.
            if tracked != len(self.outstanding):
                problems.append(
                    f"balancer-accounting: balancer tracks {tracked} "
                    f"outstanding but the journal holds "
                    f"{len(self.outstanding)}"
                )
        else:
            attempts = sum(
                len(r.pending_servers) for r in self.outstanding.values()
            ) + sum(len(s) for s in self._absorbing.values())
            if tracked != attempts:
                problems.append(
                    f"balancer-accounting: balancer tracks {tracked} "
                    f"outstanding but {attempts} attempts are in flight "
                    f"({len(self.outstanding)} journaled, "
                    f"{sum(len(s) for s in self._absorbing.values())} "
                    "absorbing)"
                )
        src_generated = sum(s.generated for s in self.sources.values())
        if src_generated != self.generated:
            problems.append(
                f"arrival-accounting: sources emitted {src_generated}, "
                f"runtime recorded {self.generated}"
            )
        # -- tail-tolerance invariants ------------------------------------
        tail = self.tail
        hedges_sent = tail.hedges_sent if tail is not None else 0
        if self.duplicate_responses > hedges_sent + self.replayed:
            problems.append(
                "hedge-duplicate-conservation: "
                f"{self.duplicate_responses} duplicate responses exceed "
                f"{hedges_sent} hedges + {self.replayed} replays"
            )
        if tail is not None:
            budget = tail.budget
            cap = budget.burst + budget.ratio * budget.earned
            if budget.spent > cap + 1e-9:
                problems.append(
                    f"retry-budget-bound: {budget.spent} extra attempts "
                    f"exceed the budget cap {cap:.1f} "
                    f"({budget.burst} burst + {budget.ratio} x "
                    f"{budget.earned} fresh)"
                )
            if tail.hedges_sent + tail.retries_sent != budget.spent:
                problems.append(
                    f"retry-budget-accounting: {tail.hedges_sent} hedges + "
                    f"{tail.retries_sent} retries != {budget.spent} tokens "
                    "spent"
                )
            for issue in tail.illegal_breaker_transitions():
                problems.append(f"breaker-state-machine: {issue}")
        return problems


def enable_serving(cluster, world, config: ServeConfig) -> ServeRuntime:
    """Attach a serving runtime to ``cluster`` (as ``cluster.serve``)."""
    runtime = ServeRuntime(cluster, world, config)
    recovery = getattr(cluster, "recovery", None)
    if recovery is not None:
        runtime.attach_recovery(recovery)
    return runtime
