"""Checkpoint-accelerated scenario shrinking.

:func:`~repro.verify.fuzz.shrink_scenario` re-executes every candidate
from t=0.  Its fault-drop pass — one full run per fault event — is pure
waste: every candidate is *identical* to the failing scenario until the
dropped fault's start time.  This module parks a
:class:`~repro.checkpoint.fork.ForkPoint` just before the first fault
fires and answers each fault-drop candidate from a forked grandchild that
merely withdraws the dropped faults' timers
(:meth:`~repro.control.faults.FaultSchedule.cancel_pending`) and finishes
the run.  The shared prefix is simulated once per parked base instead of
once per candidate.

Cancelling a never-fired fault is scheduling-identical to building the
run without it (timer installation shifts the event sequence counter by a
constant, which preserves relative order; lazily-deleted entries are
discarded unexecuted), so a fast probe's verdict is bit-equal to the cold
run's — asserted in ``tests/checkpoint/test_shrink.py``.

Candidates the checkpoint cannot answer (op drops, size halving, knob
simplification — anything that changes state *before* the fork point)
fall back to a cold :func:`~repro.verify.fuzz.run_scenario`.

The park survives fault-only adoptions: dropping a pending fault leaves
the pre-fault prefix untouched, so when the shrinker adopts a candidate
that merely sheds faults, the existing fork point still answers every
later fault-subset candidate (judged against the *parked* scenario, not
the moving base).  Only an adoption that changes something else — an op,
a size, a knob — invalidates the park; the next eligible probe re-parks
at the new base.  Without ``os.fork`` every probe is cold and the result
is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..verify.fuzz import Scenario, ScenarioRun, run_scenario, shrink_scenario
from .fork import HAVE_FORK, ForkPoint

__all__ = ["ShrinkStats", "CheckpointedShrinker", "shrink_scenario_checkpointed"]


@dataclass
class ShrinkStats:
    """Probe accounting for one shrink session."""

    fast_probes: int = 0  # answered from the fork point
    cold_probes: int = 0  # full re-executions from t=0
    reparks: int = 0  # fork points built (incl. the first)

    @property
    def total_probes(self) -> int:
        return self.fast_probes + self.cold_probes


def _dropped_fault_indices(
    base: Scenario, cand: Scenario
) -> Optional[tuple[int, ...]]:
    """Indices of ``base.faults`` absent from ``cand``.

    Returns None unless ``cand`` equals ``base`` with an (order-preserving)
    subset of its faults — the only candidate shape a parked fork point
    can answer.
    """
    if replace(cand, faults=base.faults) != base:
        return None
    dropped = []
    j = 0
    for i, f in enumerate(base.faults):
        if j < len(cand.faults) and cand.faults[j] == f:
            j += 1
        else:
            dropped.append(i)
    if j != len(cand.faults):  # cand has faults base doesn't: not a subset
        return None
    return tuple(dropped)


def _probe(run: ScenarioRun, dropped: tuple[int, ...]) -> bool:
    """Grandchild body: withdraw the dropped faults, finish, report failure."""
    for i in dropped:
        run.faults.cancel_pending(i)
    return not run.finish().ok


class CheckpointedShrinker:
    """A ``fails`` oracle for :func:`~repro.verify.fuzz.shrink_scenario`
    that answers fault-drop candidates from a mid-run checkpoint.

    Use as a context manager (the parked child holds a live process)::

        with CheckpointedShrinker(sc) as oracle:
            small = shrink_scenario(sc, fails=oracle.fails)
        print(oracle.stats)
    """

    def __init__(self, sc: Scenario) -> None:
        self.stats = ShrinkStats()
        self._base = sc  # last scenario known to fail
        self._fp: Optional[ForkPoint] = None
        self._parked_at: Optional[Scenario] = None

    # -- fork-point lifecycle -------------------------------------------

    def _park_time(self, sc: Scenario) -> Optional[int]:
        """Pause instant for ``sc``: just before its earliest fault."""
        if not HAVE_FORK or not sc.faults:
            return None
        t = min(f.at_ns for f in sc.faults) - 1
        return t if t > 0 else None

    def _ensure_parked(self) -> bool:
        """Park at the current base if no live park exists.

        An existing park is kept as-is — callers judge candidate
        eligibility against ``_parked_at``, which stays valid across
        fault-only base changes (invalidation happens at adoption time).
        """
        if self._fp is not None:
            return True
        t = self._park_time(self._base)
        if t is None:
            return False
        base = self._base

        def setup() -> ScenarioRun:
            run = ScenarioRun(base)
            run.run_to(t)
            return run

        try:
            self._fp = ForkPoint(setup, _probe)
        except RuntimeError:
            return False
        self._parked_at = base
        self.stats.reparks += 1
        return True

    def _unpark(self) -> None:
        if self._fp is not None:
            self._fp.close()
            self._fp = None
            self._parked_at = None

    # -- the oracle ------------------------------------------------------

    def fails(self, cand: Scenario) -> bool:
        # Eligibility is judged against the parked scenario when a park
        # exists (a probe cancels the faults the candidate lacks relative
        # to *it*); otherwise against the base we would park at.
        ref = self._parked_at if self._fp is not None else self._base
        dropped = _dropped_fault_indices(ref, cand)
        if dropped is not None and self._ensure_parked():
            try:
                failed = self._fp.call(dropped)
                self.stats.fast_probes += 1
            except RuntimeError:
                # Parked child died (e.g. probe crashed the fork server):
                # rebuild lazily next time, answer this one cold.
                self._unpark()
                failed = not run_scenario(cand).ok
                self.stats.cold_probes += 1
        else:
            failed = not run_scenario(cand).ok
            self.stats.cold_probes += 1
        if failed:
            # The shrinker adopts failing candidates as its new base.  A
            # fault-only adoption leaves the pre-fault prefix — and hence
            # the park — intact; anything else makes it stale (closed
            # now, rebuilt lazily at the new base on demand).
            self._base = cand
            if self._fp is not None and (
                _dropped_fault_indices(self._parked_at, cand) is None
            ):
                self._unpark()
        return failed

    def close(self) -> None:
        self._unpark()

    def __enter__(self) -> "CheckpointedShrinker":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def shrink_scenario_checkpointed(
    sc: Scenario, max_runs: int = 200
) -> tuple[Scenario, ShrinkStats]:
    """Drop-in for :func:`~repro.verify.fuzz.shrink_scenario` that probes
    fault-drop candidates from the nearest checkpoint instead of t=0.

    Returns ``(minimal_scenario, stats)``; the scenario is identical to
    what the cold shrinker produces (same greedy passes, same oracle
    verdicts — only the probe mechanism differs).
    """
    with CheckpointedShrinker(sc) as oracle:
        small = shrink_scenario(sc, fails=oracle.fails, max_runs=max_runs)
        return small, oracle.stats
