"""Process-level checkpointing with ``os.fork``.

The capture/replay half of :mod:`repro.checkpoint` proves state equality;
this half buys wall-clock time.  ``os.fork`` snapshots the *entire
interpreter* — suspended generators included, which no serializer can do —
so a simulation paused at its fork point continues in each child exactly
as the parent would have, bit for bit (copy-on-write, same heap layout,
same iteration orders).

* :func:`fork_map` — one-shot: run each thunk in its own forked child of
  the *current* process state and collect the pickled results.  Used by
  warm-started sweeps: simulate the shared prefix once, fork per sweep
  point.
* :class:`ForkPoint` — a fork *server*: a child process runs ``setup()``
  once (e.g. replay a scenario to its checkpoint instant) and then parks;
  every :meth:`ForkPoint.call` forks a grandchild from that parked state
  to answer one request.  Used by the fuzz shrinker to probe candidate
  scenarios from the nearest checkpoint instead of t=0.

POSIX only (``HAVE_FORK`` gates every entry point); callers fall back to
in-process execution when fork is unavailable.  Children exit with
``os._exit`` so they never run parent atexit hooks or flush shared file
descriptors twice.
"""

from __future__ import annotations

import os
import pickle
import struct
from typing import Any, Callable, Optional, Sequence

__all__ = ["HAVE_FORK", "fork_map", "ForkPoint"]

HAVE_FORK = hasattr(os, "fork")

_LEN = struct.Struct("!Q")


def _write_msg(fd: int, obj: Any) -> None:
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    data = _LEN.pack(len(payload)) + payload
    view = memoryview(data)
    while view:
        n = os.write(fd, view)
        view = view[n:]


def _read_exact(fd: int, n: int) -> Optional[bytes]:
    chunks = []
    got = 0
    while got < n:
        chunk = os.read(fd, n - got)
        if not chunk:
            return None  # EOF: peer died or closed
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def _read_msg(fd: int) -> Any:
    header = _read_exact(fd, _LEN.size)
    if header is None:
        return None
    payload = _read_exact(fd, _LEN.size and _LEN.unpack(header)[0])
    if payload is None:
        return None
    return pickle.loads(payload)


def _child_result(thunk: Callable[[], Any]) -> tuple:
    try:
        return (True, thunk())
    except BaseException as e:  # report, don't unwind into the fork
        return (False, f"{type(e).__name__}: {e}")


def fork_map(thunks: Sequence[Callable[[], Any]]) -> list:
    """Run each thunk in a forked child of the current process state.

    Children run sequentially (deterministic timing, no core
    oversubscription while a child simulates); each inherits the parent's
    exact heap at the moment of its fork, so every thunk sees the same
    prepared state no matter its position in the list.  Returns one result
    per thunk; a thunk that raised surfaces as a re-raised
    :class:`RuntimeError` carrying the child's error string.

    Requires :data:`HAVE_FORK`; callers gate on it.
    """
    if not HAVE_FORK:
        raise RuntimeError("fork_map requires os.fork (POSIX only)")
    results = []
    for thunk in thunks:
        r, w = os.pipe()
        pid = os.fork()
        if pid == 0:  # child
            os.close(r)
            ok = False
            try:
                outcome = _child_result(thunk)
                ok = outcome[0]
                _write_msg(w, outcome)
            finally:
                os._exit(0 if ok else 1)
        os.close(w)
        try:
            msg = _read_msg(r)
        finally:
            os.close(r)
            os.waitpid(pid, 0)
        if msg is None:
            raise RuntimeError("forked child died before reporting a result")
        ok, value = msg
        if not ok:
            raise RuntimeError(f"forked child failed: {value}")
        results.append(value)
    return results


class ForkPoint:
    """A paused computation held in a forked child, probed on demand.

    ``setup()`` runs once, in the child, right after the fork — build the
    expensive shared state there (the parent never pays for it).  Each
    :meth:`call` ships a request to the child, which forks a grandchild;
    the grandchild runs ``handler(state, request)`` against the parked
    state and replies.  The parked child is immutable between calls —
    every grandchild starts from the identical snapshot.

    Use as a context manager, or :meth:`close` explicitly.
    """

    def __init__(
        self,
        setup: Callable[[], Any],
        handler: Callable[[Any, Any], Any],
    ) -> None:
        if not HAVE_FORK:
            raise RuntimeError("ForkPoint requires os.fork (POSIX only)")
        req_r, req_w = os.pipe()
        resp_r, resp_w = os.pipe()
        pid = os.fork()
        if pid == 0:  # the parked child
            os.close(req_w)
            os.close(resp_r)
            code = 0
            try:
                try:
                    state = setup()
                except BaseException as e:
                    _write_msg(resp_w, (False, f"setup: {type(e).__name__}: {e}"))
                    os._exit(1)
                _write_msg(resp_w, (True, None))  # setup done, ready
                while True:
                    req = _read_msg(req_r)
                    if req is None:  # parent closed: shut down
                        break
                    gpid = os.fork()
                    if gpid == 0:  # grandchild: one probe, then exit
                        ok = False
                        try:
                            outcome = _child_result(
                                lambda: handler(state, req)
                            )
                            ok = outcome[0]
                            _write_msg(resp_w, outcome)
                        finally:
                            os._exit(0 if ok else 1)
                    os.waitpid(gpid, 0)
            except BaseException:
                code = 1
            finally:
                os._exit(code)
        # parent
        os.close(req_r)
        os.close(resp_w)
        self._pid = pid
        self._req_w = req_w
        self._resp_r = resp_r
        self._closed = False
        ok, err = _read_msg(self._resp_r) or (False, "child died in setup")
        if not ok:
            self.close()
            raise RuntimeError(f"ForkPoint setup failed: {err}")

    def call(self, request: Any) -> Any:
        """Run ``handler(state, request)`` in a fresh grandchild."""
        if self._closed:
            raise RuntimeError("ForkPoint is closed")
        _write_msg(self._req_w, request)
        msg = _read_msg(self._resp_r)
        if msg is None:
            self.close()
            raise RuntimeError("ForkPoint child died mid-request")
        ok, value = msg
        if not ok:
            raise RuntimeError(f"ForkPoint probe failed: {value}")
        return value

    def close(self) -> None:
        """Tear down the parked child (idempotent)."""
        if self._closed:
            return
        self._closed = True
        os.close(self._req_w)
        os.close(self._resp_r)
        try:
            os.waitpid(self._pid, 0)
        except ChildProcessError:
            pass

    def __enter__(self) -> "ForkPoint":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
