"""Reflective state capture: the complete live object graph, flattened.

:func:`capture_state` walks every object reachable from a root —
simulator queues (both lanes, including lazily-deleted timers), named RNG
streams, connections, NIC rings, switch queues, suspended generator
frames, even closure cells — and flattens it into an ordered
``path -> leaf`` map of deterministic string tokens.
:func:`state_fingerprint` hashes that map; :func:`diff_states` explains a
mismatch path by path.

Design rules (all chosen so two *processes* capturing the same logical
state produce byte-identical maps):

* scalars are captured by ``repr`` (floats via ``repr`` round-trip
  exactly; bools/ints/strs are unambiguous),
* bytes-likes and ndarrays are captured as length + SHA-256 prefix, so
  ``PYTHONHASHSEED`` and buffer addresses never leak in,
* sets are sorted; dicts keep insertion order (deterministic for
  identical executions),
* ``numpy`` generators capture their exact ``bit_generator.state`` and
  ``random.Random`` its ``getstate()`` — mid-sequence, not seed-derived,
* suspended generators capture their function name, current line, and
  the full local frame — the sharpest hidden-state detector we have,
* callables capture their qualified name; bound methods and closure
  cells recurse into the state they close over,
* an object that defines ``snapshot_state()`` is captured through it
  (the subsystem's declaration of what is state vs derivable); any other
  object is captured attribute by attribute, sorted, through ``__dict__``
  and ``__slots__``,
* revisited objects emit a reference to their first-visit path, so
  cycles terminate and aliasing is itself part of the fingerprint.
"""

from __future__ import annotations

import functools
import hashlib
import random
import types
from collections import deque
from enum import Enum

import numpy as np

__all__ = ["capture_state", "state_fingerprint", "diff_states"]

# Deep enough for every structure in the simulator (the graph is wide,
# not deep); both sides of a comparison truncate identically, so a hit
# is deterministic — but it hides state, so keep it generous.
_MAX_DEPTH = 200


def _hash_bytes(data) -> str:
    return hashlib.sha256(bytes(data)).hexdigest()[:16]


def _is_simple_key(k) -> bool:
    if isinstance(k, (type(None), bool, int, float, str)):
        return True
    if isinstance(k, tuple):
        return all(_is_simple_key(x) for x in k)
    return False


def capture_state(root, max_depth: int = _MAX_DEPTH) -> dict:
    """Flatten the object graph under ``root`` into ``{path: token}``."""
    out: dict[str, str] = {}
    memo: dict[int, str] = {}
    # Transient objects created during the walk (frame-locals dicts,
    # snapshot_state() results) are memoized by id; keep them alive so a
    # recycled id can never alias a dead one.
    keepalive: list = []

    def walk(obj, path: str, depth: int) -> None:
        if obj is None or obj is True or obj is False:
            out[path] = repr(obj)
            return
        t = type(obj)
        if t is int or t is str or t is float:
            out[path] = repr(obj)
            return
        if isinstance(obj, np.integer):
            out[path] = repr(int(obj))
            return
        if isinstance(obj, np.floating):
            out[path] = repr(float(obj))
            return
        if isinstance(obj, Enum):
            out[path] = f"<enum:{obj}>"
            return
        if isinstance(obj, (bytes, bytearray, memoryview)):
            out[path] = f"<bytes:{len(obj)}:{_hash_bytes(obj)}>"
            return
        oid = id(obj)
        seen = memo.get(oid)
        if seen is not None:
            out[path] = f"<ref:{seen}>"
            return
        if depth >= max_depth:
            out[path] = f"<depth:{t.__name__}>"
            return
        memo[oid] = path
        keepalive.append(obj)
        if isinstance(obj, np.ndarray):
            arr = obj if obj.flags["C_CONTIGUOUS"] else np.ascontiguousarray(obj)
            out[path] = (
                f"<ndarray:{obj.shape}:{obj.dtype}:{_hash_bytes(arr.tobytes())}>"
            )
            return
        if isinstance(obj, np.random.Generator):
            out[path] = "<nprng>"
            walk(obj.bit_generator.state, f"{path}.state", depth + 1)
            return
        if isinstance(obj, random.Random):
            out[path] = "<pyrng>"
            walk(obj.getstate(), f"{path}.state", depth + 1)
            return
        if t is list or t is deque or t is tuple:
            out[path] = f"<{t.__name__}:{len(obj)}>"
            for i, item in enumerate(obj):
                walk(item, f"{path}[{i}]", depth + 1)
            return
        if t is dict:
            out[path] = f"<dict:{len(obj)}>"
            for i, (k, v) in enumerate(obj.items()):
                if _is_simple_key(k):
                    kp = repr(k)
                else:
                    kp = f"key{i}"
                    walk(k, f"{path}.{kp}", depth + 1)
                walk(v, f"{path}[{kp}]", depth + 1)
            return
        if t is set or t is frozenset:
            tokens = sorted(
                repr(x) if _is_simple_key(x) else f"<{type(x).__name__}>"
                for x in obj
            )
            out[path] = f"<set:{len(obj)}>"
            for i, tok in enumerate(tokens):
                out[f"{path}[{i}]"] = tok
            return
        if isinstance(obj, types.GeneratorType):
            name = obj.gi_code.co_name
            frame = obj.gi_frame
            if frame is None:
                out[path] = f"<gen:{name}:done>"
                return
            out[path] = f"<gen:{name}:{frame.f_lineno}>"
            walk(frame.f_locals, f"{path}.locals", depth + 1)
            return
        if isinstance(obj, types.MethodType):
            out[path] = f"<method:{obj.__func__.__qualname__}>"
            walk(obj.__self__, f"{path}.self", depth + 1)
            return
        if isinstance(obj, functools.partial):
            out[path] = "<partial>"
            walk(obj.func, f"{path}.func", depth + 1)
            walk(obj.args, f"{path}.args", depth + 1)
            walk(obj.keywords, f"{path}.kwargs", depth + 1)
            return
        if isinstance(obj, (types.FunctionType, types.BuiltinFunctionType)):
            qual = getattr(obj, "__qualname__", getattr(obj, "__name__", "?"))
            out[path] = f"<fn:{getattr(obj, '__module__', '?')}.{qual}>"
            for i, cell in enumerate(getattr(obj, "__closure__", None) or ()):
                try:
                    contents = cell.cell_contents
                except ValueError:
                    out[f"{path}.cell{i}"] = "<empty-cell>"
                    continue
                walk(contents, f"{path}.cell{i}", depth + 1)
            return
        if isinstance(obj, type):
            out[path] = f"<class:{obj.__qualname__}>"
            return
        if isinstance(obj, types.ModuleType):
            out[path] = f"<module:{obj.__name__}>"
            return
        snap = getattr(obj, "snapshot_state", None)
        if callable(snap):
            out[path] = f"<{t.__qualname__}>"
            walk(snap(), f"{path}.snap", depth + 1)
            return
        attrs = {}
        for klass in reversed(t.__mro__):
            for slot in getattr(klass, "__slots__", ()):
                if slot in ("__dict__", "__weakref__"):
                    continue
                try:
                    attrs[slot] = getattr(obj, slot)
                except AttributeError:
                    pass
        attrs.update(getattr(obj, "__dict__", {}))
        out[path] = f"<{t.__qualname__}>"
        for name in sorted(attrs):
            walk(attrs[name], f"{path}.{name}", depth + 1)

    walk(root, "$", 0)
    return out


def state_fingerprint(state: dict) -> str:
    """SHA-256 over the canonical encoding of a captured state map."""
    h = hashlib.sha256()
    for path, token in state.items():
        h.update(path.encode())
        h.update(b"=")
        h.update(token.encode())
        h.update(b"\n")
    return h.hexdigest()


def diff_states(a: dict, b: dict, limit: int = 25) -> list:
    """First ``limit`` ``(path, in_a, in_b)`` differences between captures."""
    diffs = []
    for k, va in a.items():
        vb = b.get(k)
        if vb is None and k not in b:
            diffs.append((k, va, "<absent>"))
        elif va != vb:
            diffs.append((k, va, vb))
        if len(diffs) >= limit:
            return diffs
    for k, vb in b.items():
        if k not in a:
            diffs.append((k, "<absent>", vb))
            if len(diffs) >= limit:
                break
    return diffs
