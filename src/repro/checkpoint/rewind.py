"""Rewind-to-violation: replay the window just before an invariant fired.

An :class:`~repro.verify.monitor.InvariantViolation` reports *that* state
went wrong, at a stamped instant (``time_ns``), long after the causing
frame was sent.  :func:`run_with_rewind` runs a fuzz scenario (untraced,
at full speed) while taking periodic checkpoints; when a violation fires
it restores the nearest checkpoint at or before the violation instant —
with frame tracing switched on — and replays up to the violation.  The
result is a live run paused exactly at the failure, whose tracer holds
the frames of the failure window, plus the verified checkpoint trail
bracketing it (step a restored trail entry forward in small ``run_to``
increments and diff ``capture_state`` between steps to bisect *which
event* corrupted state).  Restore is verified replay, so the debug run
does rebuild from t=0 — the win is automation and exact positioning, not
skipped simulation; fork-based continuation covers the wall-clock side.

The debug replay is exact: checkpoints pause on event boundaries
(:meth:`~repro.sim.core.Simulator.run_until_time` never snaps the clock)
and the rebuilt run executes the identical event sequence, so the traced
window shows precisely the frames the original run saw.  Tracing itself
is record-only and cannot perturb the replay — but it does change the
captured state shape, which is why :func:`~repro.checkpoint.restore`
treats the ``trace=True`` override as unverifiable and skips the
fingerprint check for this one hop (the same checkpoint verifies cleanly
without overrides, which the witness tests exercise).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..verify.fuzz import FuzzResult, Scenario, ScenarioRun
from ..verify.monitor import InvariantViolation
from . import Checkpoint, restore, take_checkpoint

__all__ = ["RewindResult", "run_with_rewind"]


@dataclass
class RewindResult:
    """A scenario run, its checkpoint trail, and — on failure — the rewind."""

    result: FuzzResult
    checkpoints: list[Checkpoint] = field(default_factory=list, repr=False)
    violation: Optional[InvariantViolation] = None
    checkpoint: Optional[Checkpoint] = None  # the one rewound to
    debug_run: Optional[ScenarioRun] = None  # traced, paused at the violation

    @property
    def trace_records(self) -> list:
        """Frames traced across the rewound failure window."""
        if self.debug_run is None:
            return []
        return list(self.debug_run.cluster.tracer.records)


def run_with_rewind(
    sc: Scenario,
    interval_ns: int = 2_000_000,
    use_monitor: bool = True,
    collect: bool = False,
) -> RewindResult:
    """Run ``sc`` with a checkpoint every ``interval_ns``; rewind on failure.

    Returns a :class:`RewindResult`.  On a clean run only ``result`` and
    the checkpoint trail are set.  On an invariant violation,
    ``debug_run`` is a fresh replay restored from ``checkpoint`` (the
    nearest one at or before the violation) with tracing enabled and run
    up to the violation instant — its tracer covers the failure window.
    """
    if interval_ns <= 0:
        raise ValueError("interval_ns must be positive")
    run = ScenarioRun(sc, use_monitor=use_monitor, collect=collect)
    monitor = run.monitor
    sim = run.cluster.sim
    checkpoints = [take_checkpoint(run)]

    t = interval_ns
    while t < sc.limit_ns:
        run.run_to(t)
        if monitor is not None and monitor.violations:
            break
        if run._failure is not None:
            break
        if not sim._queue and not sim._fast:
            break  # drained early: nothing left to checkpoint
        checkpoints.append(take_checkpoint(run))
        if run.traffic_done:
            break  # run_to clamps here; further grid points are no-ops
        t += interval_ns

    result = run.finish()
    violation = (
        monitor.violations[0]
        if monitor is not None and monitor.violations
        else None
    )
    if violation is None:
        return RewindResult(result=result, checkpoints=checkpoints)

    nearest = None
    for ck in checkpoints:
        if ck.time_ns <= violation.time_ns:
            nearest = ck
    if nearest is None:  # violation before the first grid point
        nearest = checkpoints[0]
    debug_run = restore(nearest, trace=True)
    debug_run.run_to(violation.time_ns)
    return RewindResult(
        result=result,
        checkpoints=checkpoints,
        violation=violation,
        checkpoint=nearest,
        debug_run=debug_run,
    )
