"""Deterministic checkpoint/restore of complete simulator state.

The simulator's hot loops run suspended Python generators, which cannot
be deep-copied or pickled; a checkpoint therefore has two synchronized
halves:

* **capture** (:mod:`repro.checkpoint.state`): a reflective walk flattens
  every live object reachable from the run — event queue (both lanes,
  including lazily-deleted timers), RNG streams mid-sequence, windows,
  retransmit queues, NIC rings, switch and EcmpSwitch queues and flow
  pins, journals, incarnations, generator frames — into an ordered
  ``path -> token`` map with a SHA-256 fingerprint;
* **restore by verified replay**: the :class:`Checkpoint` carries the
  *recipe* that built the run; :func:`restore` rebuilds it from scratch,
  replays to the captured instant (``Simulator.run_until_time`` is
  scheduling-exact, never snapping the clock), re-captures, and raises
  :class:`CheckpointMismatch` with a path-level diff unless the replayed
  fingerprint is byte-identical.  Any state living *outside* the
  checkpoint — module-level mutables, aliased frames, recreated-from-seed
  RNG streams — turns into a reproducible mismatch instead of a latent
  heisenbug, which is the point.

Where a true same-process continuation is needed (warm-started sweeps,
shrinker re-execution), :mod:`repro.checkpoint.fork` snapshots the whole
interpreter with ``os.fork`` instead — generators and all — and the
capture half is used to witness that forked and cold runs agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .state import capture_state, diff_states, state_fingerprint

__all__ = [
    "FORMAT_VERSION",
    "Checkpoint",
    "CheckpointMismatch",
    "take_checkpoint",
    "restore",
]

# Bump when the capture encoding or the Checkpoint layout changes:
# fingerprints are only comparable between identical format versions.
FORMAT_VERSION = 1


class CheckpointMismatch(AssertionError):
    """Replaying a checkpoint's recipe did not reproduce its state."""

    def __init__(self, expected: str, actual: str, diffs: list) -> None:
        self.expected = expected
        self.actual = actual
        self.diffs = diffs
        lines = [
            f"restore diverged: fingerprint {actual[:16]}… != "
            f"checkpointed {expected[:16]}…; first differing paths:"
        ]
        for path, a, b in diffs[:10]:
            lines.append(f"  {path}: checkpoint={a!r} replay={b!r}")
        super().__init__("\n".join(lines))


@dataclass
class Checkpoint:
    """A captured instant of one simulation run.

    ``kind`` + ``recipe`` rebuild the run from scratch; ``time_ns`` is the
    exact pause instant (the clock is never snapped past the last executed
    event, so replaying ``run_to(time_ns)`` stops at the same event);
    ``state``/``fingerprint`` witness the capture.
    """

    format_version: int
    kind: str  # "fuzz" | "crash" | "fabric" | "serve"
    recipe: dict
    time_ns: int
    fingerprint: str
    state: dict = field(repr=False)


def _capture(run) -> tuple[dict, str]:
    st = capture_state(run.state())
    return st, state_fingerprint(st)


def take_checkpoint(run) -> Checkpoint:
    """Snapshot a paused run (:class:`~repro.verify.fuzz.ScenarioRun`,
    :class:`~repro.bench.crash.CrashRun`, or
    :class:`~repro.verify.fuzz.FabricRun`)."""
    from ..bench.crash import CrashRun
    from ..bench.serve import ServeRun
    from ..verify.fuzz import FabricRun, ScenarioRun

    if isinstance(run, ScenarioRun):
        kind, recipe = "fuzz", {"sc": run.sc, **run.opts}
    elif isinstance(run, CrashRun):
        kind, recipe = "crash", dict(run.recipe)
    elif isinstance(run, FabricRun):
        kind, recipe = "fabric", {"seed": run.sc.seed}
    elif isinstance(run, ServeRun):
        kind, recipe = "serve", dict(run.recipe)
    else:
        raise TypeError(f"cannot checkpoint {type(run).__name__}")
    state, fp = _capture(run)
    return Checkpoint(
        format_version=FORMAT_VERSION,
        kind=kind,
        recipe=recipe,
        time_ns=run.cluster.sim.now,
        fingerprint=fp,
        state=state,
    )


def restore(ck: Checkpoint, verify: bool = True, **overrides):
    """Rebuild a checkpoint's run and replay it to the captured instant.

    Returns the live, paused run object (same type that was
    checkpointed), ready for ``finish()`` or further ``run_to`` calls.
    With ``verify=True`` the replayed state is re-captured and compared
    byte for byte; a divergence raises :class:`CheckpointMismatch` listing
    the offending paths.  ``overrides`` tweak the recipe (e.g.
    ``trace=True`` for a rewind-to-violation debug replay — tracing is
    record-only but changes the capture, so it forces ``verify=False``).
    """
    from ..bench.crash import CrashRun
    from ..bench.serve import ServeRun
    from ..verify.fuzz import FabricRun, ScenarioRun

    if ck.format_version != FORMAT_VERSION:
        raise ValueError(
            f"checkpoint format v{ck.format_version} != "
            f"supported v{FORMAT_VERSION}"
        )
    recipe = {**ck.recipe, **overrides}
    if overrides:
        verify = False
    if ck.kind == "fuzz":
        run = ScenarioRun(**recipe)
    elif ck.kind == "crash":
        run = CrashRun(**recipe)
    elif ck.kind == "fabric":
        run = FabricRun(**recipe)
    elif ck.kind == "serve":
        run = ServeRun(**recipe)
    else:
        raise ValueError(f"unknown checkpoint kind {ck.kind!r}")
    run.run_to(ck.time_ns)
    if verify:
        state, fp = _capture(run)
        if fp != ck.fingerprint:
            raise CheckpointMismatch(
                ck.fingerprint, fp, diff_states(ck.state, state)
            )
    return run
