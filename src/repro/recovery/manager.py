"""Cluster-level crash/restart coordinator.

:class:`ClusterRecovery` owns everything about node failure that is wider
than one connection:

* **Incarnations.**  Each node carries a monotonically increasing
  incarnation number, bumped on every restart and mirrored into
  ``protocol.incarnation``.  The SYN/SYN_ACK handshake exchanges it, every
  frame is stamped with the sender's current value, and the receive path
  rejects frames whose incarnation does not match what the endpoint
  negotiated — so traffic from a dead incarnation can never be absorbed by
  a connection belonging to a live one.
* **Crash.**  :meth:`crash` atomically destroys a node's volatile state:
  every connection endpoint (pending operations fail with
  :class:`~repro.core.PeerCrashed`), its control planes, its handshake
  scratch state (dial counter, pending dials), its sender-side journals,
  and its NICs (rings cleared, in-flight DMA dropped, power off).  The
  per-node *delivery log* — the ``(sender, incarnation, seq)`` dedup set —
  survives, modelling an application-durable log.
* **Restart.**  :meth:`restart` bumps the incarnation, powers the NICs
  back on and re-enables the SYN listener.
* **PEER_DOWN escalation.**  When a watched
  :class:`~repro.control.EdgeLifecycleManager` reports every edge of a
  peer DOWN, the surviving endpoint is torn down and a reconnect loop
  dials the peer with capped exponential backoff + seeded jitter.  On
  success the cluster's cached handles are refreshed, edge control is
  re-armed, and any :class:`~repro.recovery.ReliableChannel` bound to the
  pair replays its unacked suffix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from ..core.api import ConnectionHandle
from ..core.errors import PeerCrashed
from ..core.handshake import HandshakeError, dial, enable_listener
from ..core.retransmit import BackoffPolicy
from .journal import ReliableChannel

__all__ = ["RecoveryParams", "NodeRecoveryState", "ClusterRecovery"]


def _default_reconnect_backoff() -> BackoffPolicy:
    return BackoffPolicy(
        base_ns=1_000_000,
        factor=2,
        cap_ns=50_000_000,
        jitter_frac=0.1,
        max_attempts=16,
    )


@dataclass
class RecoveryParams:
    """Tunables for peer-down escalation and reconnection."""

    reconnect_backoff: BackoffPolicy = field(
        default_factory=_default_reconnect_backoff
    )
    # Re-create the edge lifecycle control plane on the reconnected pair
    # so a *second* crash of the same peer is detected too.
    reattach_edge_control: bool = True
    # Slack added to the derived reconnect bound: one handshake RTT plus
    # scheduling noise.
    margin_ns: int = 2_000_000

    def reconnect_bound_ns(self, restart_delay_ns: int = 0) -> int:
        """Worst-case detection-to-reconnected time, from parameters.

        The reconnect dial must outlast the peer's remaining boot time
        (``restart_delay_ns``) and then land one more SYN; the backoff
        policy's worst-case total bounds the dial itself.
        """
        return (
            restart_delay_ns
            + self.reconnect_backoff.worst_case_total_ns()
            + self.margin_ns
        )


class NodeRecoveryState:
    """Per-node recovery bookkeeping."""

    __slots__ = (
        "node_id",
        "incarnation",
        "crashed",
        "crash_count",
        "restart_count",
        "delivered",
    )

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.incarnation = 0
        self.crashed = False
        self.crash_count = 0
        self.restart_count = 0
        # Durable delivery log of this node *as a receiver*:
        # (sender_node, sender_incarnation, op_seq) for every journaled
        # message ever applied.  Survives crashes — redelivered messages
        # from any past epoch are suppressed exactly once.
        self.delivered: set[tuple[int, int, int]] = set()


class ClusterRecovery:
    """Crash, restart, and reconnect coordination for one cluster."""

    def __init__(self, cluster, params: Optional[RecoveryParams] = None) -> None:
        self.cluster = cluster
        self.sim = cluster.sim
        self.params = params or RecoveryParams()
        self.nodes: dict[int, NodeRecoveryState] = {
            s.node_id: NodeRecoveryState(s.node_id) for s in cluster.stacks
        }
        self.channels: list[ReliableChannel] = []
        # Optional repro.verify.InvariantMonitor; set by its attach() so
        # connections created mid-run (reconnects) are monitored too.
        self.monitor: Optional[Any] = None

        self.crashes = 0
        self.restarts = 0
        self.peer_down_events = 0
        self.reconnects = 0
        self.reconnects_failed = 0
        self.reconnect_latencies: list[tuple[int, int]] = []  # (at_ns, ns)
        # Counters salvaged from destroyed connections, so cluster-wide
        # totals survive the endpoints' destruction.
        self.stale_frames_rejected_destroyed = 0
        self.duplicate_msgs_suppressed_destroyed = 0

        self._reconnect_watchers: list[Callable[[int, int], None]] = []
        self._reconnect_pair_watchers: list[Callable[[int, int, int], None]] = []
        self._crash_subscribers: list[Callable[[int], None]] = []
        self._restart_subscribers: list[Callable[[int], None]] = []
        # (node, peer) -> DetectorParams used before the crash, for re-arm.
        self._edge_params: dict[tuple[int, int], Any] = {}

        for stack in cluster.stacks:
            stack.protocol.recovery = self
            stack.protocol.incarnation = self.nodes[stack.node_id].incarnation
            for conn in list(stack.protocol.connections.values()):
                self.on_connection_created(stack.protocol, conn)
        for mgr in list(cluster.control_planes.values()):
            self.watch_manager(mgr)

    # -- wiring ------------------------------------------------------------

    def state(self, node_id: int) -> NodeRecoveryState:
        return self.nodes[node_id]

    def on_connection_created(self, protocol, conn) -> None:
        """Hook from ``MultiEdgeProtocol.create_connection``."""
        conn.recovery = self
        conn.local_incarnation = protocol.incarnation
        peer_state = self.nodes.get(conn.peer_node_id)
        if peer_state is not None:
            # Cluster-level knowledge stands in for the handshake when the
            # endpoint is wired out of band (establish()); a real dial or
            # accept overwrites this with the value from the wire — which
            # is the same number.
            conn.peer_incarnation = peer_state.incarnation
        if self.monitor is not None:
            attach = getattr(self.monitor, "attach_connection", None)
            if attach is not None:
                attach(conn)

    def watch_manager(self, mgr) -> None:
        """Escalate this lifecycle manager's all-edges-DOWN into PEER_DOWN."""
        node_id = mgr.conn.node.node_id
        peer = mgr.conn.peer_node_id
        self._edge_params[(node_id, peer)] = mgr.detector_params
        mgr.peer_down_handler = self._on_peer_down

    def channel(self, src: int, dst: int) -> ReliableChannel:
        """Create a journaled exactly-once channel from ``src`` to ``dst``."""
        return ReliableChannel(self, src, dst)  # registers itself

    def subscribe_crash(self, cb: Callable[[int], None]) -> None:
        """Run ``cb(node_id)`` whenever a node crashes (DSM/MP hooks)."""
        self._crash_subscribers.append(cb)

    def subscribe_restart(self, cb: Callable[[int], None]) -> None:
        self._restart_subscribers.append(cb)

    def add_reconnect_watcher(self, cb: Callable[[int, int], None]) -> None:
        """Run ``cb(now_ns, latency_ns)`` after every successful reconnect."""
        self._reconnect_watchers.append(cb)

    def add_reconnect_pair_watcher(
        self, cb: Callable[[int, int, int], None]
    ) -> None:
        """Run ``cb(node_id, peer, now_ns)`` after a pair reconnects.

        Unlike :meth:`add_reconnect_watcher` the callback learns *which*
        pair came back, and runs after the cluster's cached connection
        handles have been refreshed — so layers that keep per-pair wiring
        (the mp eager rings, the serving layer) can rebuild on the fresh
        endpoints.
        """
        self._reconnect_pair_watchers.append(cb)

    # -- receiver-side dedup ----------------------------------------------

    def accept_delivery(self, conn, rx_op) -> bool:
        """Exactly-once filter for journaled messages (see Connection)."""
        log = self.nodes[conn.node.node_id].delivered
        key = (conn.peer_node_id, conn.peer_incarnation, rx_op.op_seq)
        if key in log:
            return False
        log.add(key)
        return True

    # -- crash / restart ----------------------------------------------------

    def crash(self, node_id: int) -> None:
        """Atomically destroy the node's volatile state (fail-stop)."""
        st = self.nodes[node_id]
        if st.crashed:
            return
        st.crashed = True
        st.crash_count += 1
        self.crashes += 1
        stack = self.cluster.stacks[node_id]
        protocol = stack.protocol
        # The node's control planes die with it.
        for key in [k for k in self.cluster.control_planes if k[0] == node_id]:
            self.cluster.control_planes.pop(key).stop()
        # Every connection endpoint: windows, retransmit queues, pending
        # operations (their waiters are on the dead node too, but failing
        # them keeps driver processes from hanging forever).
        for conn in list(protocol.connections.values()):
            self._teardown_connection(conn, PeerCrashed(conn.conn_id, node_id))
        # Handshake scratch state is volatile: a reborn node restarts its
        # dial counter, which is exactly why conn ids can collide across
        # incarnations and the incarnation check must exist.
        protocol._pending_dials = {}
        protocol._dial_counter = 0
        if hasattr(protocol, "_handshake_rng"):
            del protocol._handshake_rng
        # Sender-side journals are volatile with the node: unacked
        # messages of a crashed sender are lost (fail-stop), and its next
        # incarnation opens a fresh dedup key space.
        for ch in self.channels:
            if ch.dead is None and ch.src == node_id:
                ch.fail(PeerCrashed(-1, node_id))
        # Cached handles touching the node are dead.
        for key in [k for k in self.cluster._connections if node_id in k]:
            del self.cluster._connections[key]
        # NIC rings and in-flight DMA die with the power.
        for nic in stack.node.nics:
            nic.power_off()
        for cb in self._crash_subscribers:
            cb(node_id)

    def restart(self, node_id: int) -> None:
        """Bring a crashed node back as a fresh incarnation."""
        st = self.nodes[node_id]
        if not st.crashed:
            return
        st.crashed = False
        st.restart_count += 1
        st.incarnation += 1
        self.restarts += 1
        stack = self.cluster.stacks[node_id]
        stack.protocol.incarnation = st.incarnation
        for nic in stack.node.nics:
            nic.power_on()
        enable_listener(stack)
        for cb in self._restart_subscribers:
            cb(node_id)

    # -- peer-down escalation + reconnect ----------------------------------

    def _teardown_connection(self, conn, exc: BaseException) -> None:
        self.stale_frames_rejected_destroyed += conn.stale_frames_rejected
        self.duplicate_msgs_suppressed_destroyed += conn.duplicate_msgs_suppressed
        mon = conn.monitor
        if mon is not None:
            detach = getattr(mon, "detach_connection", None)
            if detach is not None:
                detach(conn)
            conn.monitor = None
        conn.destroy(exc)

    def _on_peer_down(self, mgr) -> None:
        conn = mgr.conn
        node_id = conn.node.node_id
        peer = conn.peer_node_id
        if self.nodes[node_id].crashed:
            return  # it is *this* node that died, not the peer
        self.peer_down_events += 1
        detected_at = self.sim.now
        mgr.stop()
        self.cluster.control_planes.pop((node_id, peer), None)
        self._teardown_connection(conn, PeerCrashed(conn.conn_id, peer))
        for ch in self.channels:
            if ch.dead is None and ch.src == node_id and ch.dst == peer:
                ch.on_connection_lost()
        self.sim.process(
            self._reconnect(node_id, peer, detected_at),
            name=f"recovery.reconnect.{node_id}->{peer}",
        )

    def _reconnect(
        self, node_id: int, peer: int, detected_at: int
    ) -> Generator[Any, Any, None]:
        stack = self.cluster.stacks[node_id]
        try:
            handle = yield from dial(
                stack,
                peer,
                self.cluster.config.protocol,
                backoff=self.params.reconnect_backoff,
            )
        except HandshakeError:
            self.reconnects_failed += 1
            for ch in self.channels:
                if ch.dead is None and ch.src == node_id and ch.dst == peer:
                    ch.fail(PeerCrashed(-1, peer))
            return
        latency = self.sim.now - detected_at
        self.reconnects += 1
        self.reconnect_latencies.append((self.sim.now, latency))
        for watcher in self._reconnect_watchers:
            watcher(self.sim.now, latency)
        # Refresh the cluster's cached pair with the fresh endpoints.
        peer_stack = self.cluster.stacks[peer]
        peer_conn = peer_stack.protocol.connections.get(handle.conn.conn_id)
        if peer_conn is not None:
            peer_handle = ConnectionHandle(peer_conn, peer_stack.node)
            key = (min(node_id, peer), max(node_id, peer))
            self.cluster._connections[key] = (
                (handle, peer_handle) if node_id < peer
                else (peer_handle, handle)
            )
        if (
            self.params.reattach_edge_control
            and (node_id, peer) in self._edge_params
        ):
            self.cluster.enable_edge_control(
                node_id, peer,
                detector_params=self._edge_params[(node_id, peer)],
            )
        for ch in self.channels:
            if ch.dead is None and ch.src == node_id and ch.dst == peer:
                ch.rebind(handle)
        for watcher in self._reconnect_pair_watchers:
            watcher(node_id, peer, self.sim.now)
