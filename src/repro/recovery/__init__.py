"""Whole-node crash/restart recovery (fail-stop model).

The edge lifecycle control plane (:mod:`repro.control`) tolerates *edge*
failures; this package adds the next layer up — a **node** that loses all
volatile state at once: connection windows, retransmit queues, NIC rings,
in-flight pump work, DSM page caches.  The pieces:

* :class:`ClusterRecovery` — the cluster-level coordinator.  Tracks each
  node's **incarnation number** (bumped on every restart, carried by the
  SYN/SYN_ACK handshake and stamped on every frame so traffic from a dead
  incarnation is rejected), performs the atomic state destruction of
  :meth:`~ClusterRecovery.crash` / resurrection of
  :meth:`~ClusterRecovery.restart`, escalates all-edges-DOWN detector
  verdicts into ``PEER_DOWN`` connection teardown, and runs the reconnect
  loop (capped exponential backoff + seeded jitter) for the surviving
  side.  It also owns the receivers' durable delivery log — the
  ``(incarnation, seq)`` dedup that makes redelivery exactly-once.
* :class:`MessageJournal` / :class:`ReliableChannel` — a sender-side
  journal of messages; unacked entries are redelivered across a
  reconnect, with duplicates suppressed at the receiver.

With no crash faults scheduled none of this is instantiated and the
default protocol path is bit-identical (fingerprint-verified).
"""

from .journal import JournalEntry, MessageJournal, ReliableChannel
from .manager import ClusterRecovery, NodeRecoveryState, RecoveryParams

__all__ = [
    "ClusterRecovery",
    "NodeRecoveryState",
    "RecoveryParams",
    "MessageJournal",
    "JournalEntry",
    "ReliableChannel",
]
