"""Sender-side message journal: exactly-once delivery across node crashes.

A :class:`ReliableChannel` wraps one connection with a journal of every
message sent on it.  Each entry gets a **journal sequence number** (jseq)
at append time; the channel is its connection's *sole* submitter, so jseq
and the protocol-level ``op_seq`` coincide — which lets the receiver key
its durable dedup log on ``(sender, sender_incarnation, op_seq)`` without
any extra header bytes.

An entry stays *pending* until the operation carrying it completes
successfully (cumulative acks free the send window in sequence order, so
the delivered set is always a prefix of the journal).  When the peer
crashes, every in-flight operation fails with
:class:`~repro.core.PeerCrashed`; its entries remain pending.  After the
recovery layer reconnects, :meth:`ReliableChannel.rebind` seeds the fresh
connection's ``op_seq`` counter from the first pending jseq and re-issues
the pending suffix.  Entries that *were* applied at the receiver before
the crash (delivered but never acked, or acked frames lost) carry the same
``(incarnation, jseq)`` key and are suppressed by the receiver's delivery
log — at-least-once redelivery plus dedup gives exactly-once.

The journal itself is volatile with its node (fail-stop): if the *sender*
crashes, its journal dies with it and unacked messages are lost.  A
restarted sender is a new incarnation with a fresh key space, so nothing
it sends can be mistaken for the dead incarnation's traffic.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from ..core.api import ConnectionHandle
from ..ethernet.frame import OpFlags

__all__ = ["JournalEntry", "MessageJournal", "ReliableChannel"]


class JournalEntry:
    """One journaled message: payload coordinates plus delivery state."""

    __slots__ = (
        "jseq",
        "local_address",
        "remote_address",
        "length",
        "delivered",
        "delivered_at",
        "issued_on",
        "send_count",
    )

    def __init__(
        self, jseq: int, local_address: int, remote_address: int, length: int
    ) -> None:
        self.jseq = jseq
        self.local_address = local_address
        self.remote_address = remote_address
        self.length = length
        self.delivered = False
        self.delivered_at: Optional[int] = None  # sim ns of the first ack
        # The Connection this entry was last issued on — replay after a
        # rebind must not double-issue entries already in flight on the
        # *new* connection.
        self.issued_on: Optional[Any] = None
        self.send_count = 0


class MessageJournal:
    """Ordered journal of messages; delivered entries form a prefix."""

    def __init__(self) -> None:
        self.entries: List[JournalEntry] = []
        self.delivered_count = 0

    def append(
        self, local_address: int, remote_address: int, length: int
    ) -> JournalEntry:
        entry = JournalEntry(
            len(self.entries), local_address, remote_address, length
        )
        self.entries.append(entry)
        return entry

    def pending(self) -> List[JournalEntry]:
        return [e for e in self.entries if not e.delivered]

    def mark_delivered(self, entry: JournalEntry) -> None:
        if not entry.delivered:
            entry.delivered = True
            self.delivered_count += 1


class ReliableChannel:
    """Exactly-once message stream from ``src`` to ``dst`` over one connection.

    Created through :meth:`ClusterRecovery.channel`.  The channel must be
    the only submitter on its connection (asserted), and does not support
    fence flags — every message is a plain NOTIFY write.
    """

    def __init__(self, recovery, src: int, dst: int) -> None:
        self.recovery = recovery
        self.cluster = recovery.cluster
        self.sim = recovery.sim
        self.src = src
        self.dst = dst
        self.journal = MessageJournal()
        self.handle: ConnectionHandle = self.cluster.connect(src, dst)[0]
        if self.handle.conn._next_op_seq != 0:
            raise ValueError(
                "ReliableChannel must be its connection's sole submitter"
            )
        self.dead: Optional[BaseException] = None
        self.messages_sent = 0
        self.redeliveries = 0
        # None = ready to issue; an Event while a reconnect/replay is in
        # progress (senders block on it instead of racing the replay).
        self._ready = None
        # Register with the recovery layer so peer-down teardown and
        # reconnect rebinds reach this channel.
        if self not in recovery.channels:
            recovery.channels.append(self)

    # -- sending ----------------------------------------------------------

    def send(
        self,
        local_address: int,
        remote_address: int,
        length: int,
        cpu=None,
    ) -> Generator[Any, Any, JournalEntry]:
        """Journal a message and issue it; returns its entry.

        ``yield from`` this from an application process.  The returned
        entry's :attr:`~JournalEntry.delivered` flips once the receiver
        has acknowledged it (possibly after crash-redelivery).
        """
        if self.dead is not None:
            raise self.dead
        entry = self.journal.append(local_address, remote_address, length)
        self.messages_sent += 1
        while True:
            while self._ready is not None:
                yield self._ready
                if self.dead is not None:
                    raise self.dead
            try:
                yield from self._issue(entry, cpu)
            except RuntimeError:
                # The connection was torn down while this send was inside
                # the submit path (the teardown ran between our readiness
                # check and the actual submit).  The recovery layer has
                # already flagged the loss — wait out the reconnect and
                # let the replay redeliver.
                if self.dead is not None:
                    raise self.dead
                if self._ready is None:
                    raise  # closed for a reason recovery doesn't know
                continue
            return entry

    def _issue(
        self, entry: JournalEntry, cpu=None
    ) -> Generator[Any, Any, None]:
        conn = self.handle.conn
        if entry.issued_on is conn:
            return  # replay already put it on the current connection
        assert conn._next_op_seq == entry.jseq, (
            "journal/op sequence divergence: the channel must be the "
            "connection's sole submitter"
        )
        entry.issued_on = conn
        entry.send_count += 1
        h = yield from self.handle.rdma_write(
            entry.local_address,
            entry.remote_address,
            entry.length,
            flags=OpFlags.NOTIFY | OpFlags.JOURNALED,
            cpu=cpu,
        )
        op = h._op

        def _on_done(_value, entry=entry, op=op) -> None:
            if op.error is None:
                if entry.delivered_at is None:
                    entry.delivered_at = self.sim.now
                self.journal.mark_delivered(entry)
            # On error the entry stays pending; rebind() redelivers it.

        op.done.add_callback(_on_done)

    # -- recovery plumbing (called by ClusterRecovery) --------------------

    def on_connection_lost(self) -> None:
        """The underlying connection was destroyed; block new sends."""
        if self._ready is None:
            self._ready = self.sim.event()

    def fail(self, exc: BaseException) -> None:
        """Permanent failure (reconnect exhausted / sender crashed)."""
        self.dead = exc
        ev = self._ready
        self._ready = None
        if ev is not None and not ev.triggered:
            ev.trigger()

    def rebind(self, handle: ConnectionHandle) -> None:
        """Adopt the post-reconnect connection and replay the pending suffix."""
        self.handle = handle
        if self._ready is None:
            self._ready = self.sim.event()
        self.sim.process(self._replay(), name=f"recovery.replay.{self.src}->{self.dst}")

    def _replay(self) -> Generator[Any, Any, None]:
        conn = self.handle.conn
        pending = self.journal.pending()
        if pending:
            assert conn._next_op_seq == 0, (
                "rebind target connection already carried traffic"
            )
            # Resume the op_seq space where the journal left off so
            # jseq == op_seq still holds and the receiver's dedup keys
            # line up across the reconnect.
            conn._next_op_seq = pending[0].jseq
            for entry in pending:
                if self.handle.conn is not conn:
                    return  # a newer rebind superseded this replay
                if entry.issued_on is conn:
                    continue
                replay = entry.send_count > 0
                try:
                    yield from self._issue(entry)
                except RuntimeError:
                    # The replay target died mid-replay (another crash);
                    # leave _ready set for the next rebind (or fail()).
                    return
                if replay:
                    self.redeliveries += 1
        ev = self._ready
        self._ready = None
        if ev is not None and not ev.triggered:
            ev.trigger()
