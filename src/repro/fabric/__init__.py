"""Datacenter fabric subsystem: multi-switch topologies, ECMP, traffic.

Everything before this package ran through a single switch per rail.
``repro.fabric`` composes the existing :class:`~repro.ethernet.Switch` /
:class:`~repro.ethernet.Cable` / :class:`~repro.ethernet.Nic` primitives
into realistic multi-switch fabrics (the SplitSim/SimBricks composition
argument, see PAPERS.md):

* :mod:`~repro.fabric.ecmp` — an :class:`EcmpSwitch` with pre-programmed
  multi-path routes, a seeded deterministic flow hash, automatic hash
  re-pinning around failed uplinks, and the routing invariants (no
  forwarding loops, ECMP determinism, trunk conservation);
* :mod:`~repro.fabric.topology` — a graph-theoretic builder for
  leaf-spine and fat-tree fabrics with configurable radix,
  oversubscription, and per-tier link speeds, with BFS shortest-path
  ECMP route programming;
* :mod:`~repro.fabric.traffic` — declarative traffic matrices
  (permutation, all-to-all shuffle, hotspot incast/outcast,
  elephant/mice mixes) that drive :mod:`repro.mp` endpoints.

Select a fabric per cluster via ``ClusterConfig.fabric``; the default
(``None``) keeps the single-switch wiring byte-identical.
"""

from .ecmp import EcmpSwitch, ecmp_hash
from .topology import Fabric, FatTreeSpec, LeafSpineSpec, build_fabric
from .traffic import (
    AllToAll,
    ElephantMice,
    Flow,
    Hotspot,
    Permutation,
    TrafficResult,
    TrafficRun,
    expand_flows,
    run_traffic,
)

__all__ = [
    "EcmpSwitch",
    "ecmp_hash",
    "Fabric",
    "LeafSpineSpec",
    "FatTreeSpec",
    "build_fabric",
    "Flow",
    "Permutation",
    "AllToAll",
    "Hotspot",
    "ElephantMice",
    "TrafficResult",
    "TrafficRun",
    "expand_flows",
    "run_traffic",
]
