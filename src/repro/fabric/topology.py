"""Graph-theoretic fabric builder: leaf-spine and fat-tree topologies.

A fabric is built in three steps:

1. **Instantiate switches** per the declarative spec — every switch gets
   its own :class:`~repro.ethernet.SwitchParams` (derived from the
   cluster's base switch parameters) so tiers can differ in radix,
   forwarding latency, and queue depth.
2. **Wire trunks** with full-duplex :class:`~repro.ethernet.Cable`\\ s at
   the spec's per-tier speed; trunk ports get MACs from the dedicated
   :func:`~repro.ethernet.trunk_mac` namespace.
3. **Program routes** from the graph: one BFS per attached host computes
   shortest-path distances over the switch graph, and every port whose
   neighbour is strictly closer to the host joins that switch's ECMP
   group for the host's MAC.  Multi-member groups are resolved by the
   seeded flow hash in :mod:`~repro.fabric.ecmp`.

The no-forwarding-loop invariant is checked *structurally*: every ECMP
member at every switch must lead to a neighbour strictly closer (in BFS
distance) to the destination host, which makes the route graph per
destination a DAG.  The per-frame hop budget is a second, dynamic
backstop against routing storms.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..ethernet import (
    LinkParams,
    SwitchParams,
    connect_nic_to_switch,
    connect_trunk,
    trunk_mac,
)
from ..ethernet.link import Cable
from ..ethernet.nic import Nic
from ..sim import RngRegistry, Simulator
from .ecmp import EcmpSwitch

__all__ = ["LeafSpineSpec", "FatTreeSpec", "Fabric", "build_fabric"]


@dataclass(frozen=True)
class LeafSpineSpec:
    """A two-tier Clos: every leaf connects to every spine.

    Oversubscription is ``hosts_per_leaf * host_speed`` versus
    ``spines * trunk_speed`` of uplink capacity per leaf; with 1-GbE
    hosts, 6 hosts per leaf and 2 spines at 1 GbE give the classic 3:1.
    """

    leaves: int = 2
    spines: int = 2
    hosts_per_leaf: int = 4
    trunk_speed_bps: Optional[float] = None  # None: the host link speed
    trunk_propagation_ns: Optional[int] = None  # None: the host link's
    forwarding_latency_ns: Optional[int] = None  # None: the base switch's

    def __post_init__(self) -> None:
        if self.leaves < 1 or self.spines < 1 or self.hosts_per_leaf < 1:
            raise ValueError("leaves, spines, hosts_per_leaf must be >= 1")

    @property
    def capacity(self) -> int:
        return self.leaves * self.hosts_per_leaf

    @property
    def diameter(self) -> int:
        return 3  # leaf -> spine -> leaf

    @property
    def max_hops(self) -> int:
        # The per-frame budget is a storm backstop, not the no-loop
        # invariant (that is the structural acyclicity check): a timeout
        # retransmission reuses the frame object while older copies may
        # still sit in queues, so concurrent journeys share the hop
        # counter.  4x the diameter gives those aliased journeys headroom
        # while still killing any real loop almost immediately.
        return 4 * self.diameter

    def oversubscription(self, host_speed_bps: float) -> float:
        trunk = self.trunk_speed_bps or host_speed_bps
        return (self.hosts_per_leaf * host_speed_bps) / (self.spines * trunk)


@dataclass(frozen=True)
class FatTreeSpec:
    """The classic k-ary fat-tree (Al-Fahres/Leiserson construction).

    ``k`` pods of ``k/2`` edge + ``k/2`` aggregation switches, with
    ``(k/2)^2`` cores; each edge switch hosts ``k/2`` nodes, for a
    capacity of ``k^3 / 4`` — full bisection bandwidth at equal speeds.
    """

    k: int = 4
    trunk_speed_bps: Optional[float] = None
    trunk_propagation_ns: Optional[int] = None
    forwarding_latency_ns: Optional[int] = None

    def __post_init__(self) -> None:
        if self.k < 2 or self.k % 2:
            raise ValueError("fat-tree radix k must be even and >= 2")

    @property
    def capacity(self) -> int:
        return self.k**3 // 4

    @property
    def diameter(self) -> int:
        return 5  # edge -> agg -> core -> agg -> edge

    @property
    def max_hops(self) -> int:
        # See LeafSpineSpec.max_hops: headroom for aliased retransmission
        # journeys; the structural acyclicity check is the real invariant.
        return 4 * self.diameter


class Fabric:
    """One rail's multi-switch fabric: switches, trunks, routes."""

    def __init__(
        self,
        sim: Simulator,
        spec,
        rail: int,
        seed: int,
        switch_params: SwitchParams,
        link_params: LinkParams,
        rng: Optional[RngRegistry] = None,
    ) -> None:
        self.sim = sim
        self.spec = spec
        self.rail = rail
        self.seed = seed
        self.rng = rng
        self.base_switch = switch_params
        self.host_link = link_params
        self.switches: list[EcmpSwitch] = []
        self.by_name: dict[str, EcmpSwitch] = {}
        self._ids: dict[str, int] = {}  # switch name -> trunk-MAC switch id
        # switch name -> [(port, peer switch name)] over trunk cables.
        self._adj: dict[str, list[tuple[int, str]]] = {}
        # (name_a, name_b) sorted -> the trunk cable between them.
        self.trunks: dict[tuple[str, str], Cable] = {}
        # node_id -> (access switch name, access port index).
        self.access: dict[int, tuple[str, int]] = {}
        self.host_macs: dict[int, int] = {}
        self._routes_programmed = False

        self.trunk_link = LinkParams(
            speed_bps=spec.trunk_speed_bps or link_params.speed_bps,
            propagation_ns=(
                spec.trunk_propagation_ns
                if spec.trunk_propagation_ns is not None
                else link_params.propagation_ns
            ),
            bit_error_rate=link_params.bit_error_rate,
        )
        if isinstance(spec, LeafSpineSpec):
            self._build_leaf_spine(spec)
        elif isinstance(spec, FatTreeSpec):
            self._build_fat_tree(spec)
        else:
            raise TypeError(f"unknown fabric spec {spec!r}")

    # -- construction ------------------------------------------------------

    def _switch_params(self, ports: int) -> SwitchParams:
        base = self.base_switch
        return SwitchParams(
            ports=ports,
            forwarding_latency_ns=(
                self.spec.forwarding_latency_ns
                if self.spec.forwarding_latency_ns is not None
                else base.forwarding_latency_ns
            ),
            output_queue_frames=base.output_queue_frames,
            lossless=base.lossless,
            ecn_threshold_frames=base.ecn_threshold_frames,
        )

    def _add_switch(self, name: str, ports: int, tier: str) -> EcmpSwitch:
        sw = EcmpSwitch(
            self.sim,
            self._switch_params(ports),
            name=name,
            tier=tier,
            rail=self.rail,
            seed=self.seed,
            max_hops=self.spec.max_hops,
        )
        self._ids[name] = len(self.switches)
        self.switches.append(sw)
        self.by_name[name] = sw
        self._adj[name] = []
        return sw

    def _add_trunk(
        self, a: EcmpSwitch, port_a: int, b: EcmpSwitch, port_b: int
    ) -> None:
        cable = connect_trunk(
            self.sim,
            a,
            port_a,
            b,
            port_b,
            self.trunk_link,
            self.rng,
            mac_a=trunk_mac(self._ids[a.name], port_a),
            mac_b=trunk_mac(self._ids[b.name], port_b),
        )
        key = tuple(sorted((a.name, b.name)))
        self.trunks[key] = cable
        self._adj[a.name].append((port_a, b.name))
        self._adj[b.name].append((port_b, a.name))

    def _build_leaf_spine(self, spec: LeafSpineSpec) -> None:
        spines = [
            self._add_switch(
                f"spine{self.rail}.{s}", max(2, spec.leaves), "spine"
            )
            for s in range(spec.spines)
        ]
        for l in range(spec.leaves):
            leaf = self._add_switch(
                f"leaf{self.rail}.{l}",
                spec.hosts_per_leaf + spec.spines,
                "leaf",
            )
            for s, spine in enumerate(spines):
                # Leaf uplink ports sit above the host ports.
                self._add_trunk(leaf, spec.hosts_per_leaf + s, spine, l)

    def _build_fat_tree(self, spec: FatTreeSpec) -> None:
        k = spec.k
        half = k // 2
        cores = [
            self._add_switch(f"core{self.rail}.{c}", max(2, k), "core")
            for c in range(half * half)
        ]
        for p in range(k):
            aggs = [
                self._add_switch(f"agg{self.rail}.{p}.{a}", max(2, k), "agg")
                for a in range(half)
            ]
            for e in range(half):
                edge = self._add_switch(
                    f"edge{self.rail}.{p}.{e}", max(2, k), "edge"
                )
                for a, agg in enumerate(aggs):
                    # Edge ports 0..half-1 hold hosts; uplinks follow.
                    self._add_trunk(edge, half + a, agg, e)
            for a, agg in enumerate(aggs):
                for j in range(half):
                    core = cores[a * half + j]
                    self._add_trunk(agg, half + j, core, p)

    # -- host attachment and routing ---------------------------------------

    def host_location(self, node_id: int) -> tuple[str, int]:
        """(access switch name, port index) for a node id."""
        spec = self.spec
        if node_id >= spec.capacity:
            raise ValueError(
                f"node {node_id} exceeds fabric capacity {spec.capacity}"
            )
        if isinstance(spec, LeafSpineSpec):
            leaf = node_id // spec.hosts_per_leaf
            return f"leaf{self.rail}.{leaf}", node_id % spec.hosts_per_leaf
        half = spec.k // 2
        pod_size = half * half
        pod = node_id // pod_size
        within = node_id % pod_size
        return f"edge{self.rail}.{pod}.{within // half}", within % half

    def attach_host(
        self,
        node_id: int,
        nic: Nic,
        link_params: Optional[LinkParams] = None,
        rng: Optional[RngRegistry] = None,
    ) -> Cable:
        """Cable a node's NIC to its access switch port."""
        sw_name, port = self.host_location(node_id)
        cable = connect_nic_to_switch(
            self.sim,
            nic,
            self.by_name[sw_name],
            port_index=port,
            link_params=link_params or self.host_link,
            rng=rng or self.rng,
        )
        self.access[node_id] = (sw_name, port)
        self.host_macs[node_id] = nic.mac
        self._routes_programmed = False
        return cable

    def _bfs(self, source: str) -> dict[str, int]:
        dist = {source: 0}
        frontier = [source]
        while frontier:
            nxt = []
            for name in frontier:
                d = dist[name] + 1
                for _port, peer in self._adj[name]:
                    if peer not in dist:
                        dist[peer] = d
                        nxt.append(peer)
            frontier = nxt
        return dist

    def program_routes(self) -> None:
        """(Re)compute every switch's ECMP groups for every host MAC."""
        for node_id in sorted(self.access):
            sw_name, port = self.access[node_id]
            mac = self.host_macs[node_id]
            dist = self._bfs(sw_name)
            for sw in self.switches:
                if sw.name == sw_name:
                    sw.add_route(mac, (port,))
                    continue
                d = dist.get(sw.name)
                if d is None:
                    continue
                ports = tuple(
                    p
                    for p, peer in self._adj[sw.name]
                    if dist.get(peer) == d - 1
                )
                if ports:
                    sw.add_route(mac, ports)
        self._routes_programmed = True

    # -- trunk management --------------------------------------------------

    def trunk(self, a: str, b: str) -> Cable:
        """The trunk cable between two switches (either name order)."""
        try:
            return self.trunks[tuple(sorted((a, b)))]
        except KeyError:
            raise ValueError(f"no trunk between {a!r} and {b!r}") from None

    def _trunk_ports(self, a: str, b: str) -> tuple[int, int]:
        port_a = next(p for p, peer in self._adj[a] if peer == b)
        port_b = next(p for p, peer in self._adj[b] if peer == a)
        return port_a, port_b

    def set_trunk_enabled(self, a: str, b: str, enabled: bool) -> None:
        """Administratively drain (or restore) a trunk on both ends.

        Unlike a cable failure, frames already in flight still arrive —
        subsequent flows simply re-pin around the drained member.
        """
        port_a, port_b = self._trunk_ports(a, b)
        self.by_name[a].set_port_enabled(port_a, enabled)
        self.by_name[b].set_port_enabled(port_b, enabled)

    def fail_trunk(self, a: str, b: str, duration_ns: Optional[int] = None):
        """Fail a trunk cable (both directions); ECMP re-pins around it."""
        cable = self.trunk(a, b)
        if duration_ns is None:
            cable.fail_forever()
        else:
            cable.fail_for(duration_ns)

    def repair_trunk(self, a: str, b: str) -> None:
        self.trunk(a, b).repair()

    # -- observability -----------------------------------------------------

    def tiers(self) -> dict[str, list[EcmpSwitch]]:
        out: dict[str, list[EcmpSwitch]] = {}
        for sw in self.switches:
            out.setdefault(sw.tier, []).append(sw)
        return out

    def trunk_utilisation(self) -> list[dict]:
        """Per-trunk, per-direction frame/byte counters."""
        out = []
        for (a, b), cable in sorted(self.trunks.items()):
            port_a, port_b = self._trunk_ports(a, b)
            ab = self.by_name[a].port(port_a).tx_link
            ba = self.by_name[b].port(port_b).tx_link
            out.append(
                {
                    "a": a,
                    "b": b,
                    "frames_ab": ab.frames_delivered,
                    "bytes_ab": ab.bytes_delivered,
                    "frames_ba": ba.frames_delivered,
                    "bytes_ba": ba.bytes_delivered,
                }
            )
        return out

    def uplink_bytes(self) -> dict[tuple[str, str], int]:
        """Bytes sent up each (lower-tier switch, upper-tier switch) trunk.

        The ECMP load-balance evenness metric is computed over these.
        """
        order = {"leaf": 0, "edge": 0, "agg": 1, "spine": 2, "core": 2}
        out: dict[tuple[str, str], int] = {}
        for (a, b), _cable in sorted(self.trunks.items()):
            sa, sb = self.by_name[a], self.by_name[b]
            lo, hi = (a, b) if order[sa.tier] < order[sb.tier] else (b, a)
            port_lo = next(p for p, peer in self._adj[lo] if peer == hi)
            link = self.by_name[lo].port(port_lo).tx_link
            out[(lo, hi)] = link.bytes_delivered
        return out

    # -- routing invariants ------------------------------------------------

    def route_acyclicity_violations(self) -> list[str]:
        """Structural no-loop check: for every destination host, every
        ECMP member at every switch must point at a neighbour strictly
        closer to the host (or at the host's own access port), so the
        per-destination route graph is a DAG and no frame can cycle."""
        violations: list[str] = []
        for node_id in sorted(self.access):
            sw_name, port = self.access[node_id]
            mac = self.host_macs[node_id]
            dist = self._bfs(sw_name)
            for sw in self.switches:
                group = sw.route(mac)
                if group is None:
                    continue
                if sw.name == sw_name:
                    if group != (port,):
                        violations.append(
                            f"{sw.name}: node {node_id}'s access route is "
                            f"{group}, expected ({port},)"
                        )
                    continue
                d = dist.get(sw.name, 1 << 30)
                for p in group:
                    peer = next(
                        (n for pp, n in self._adj[sw.name] if pp == p), None
                    )
                    if peer is None or dist.get(peer, 1 << 30) >= d:
                        violations.append(
                            f"{sw.name}: ECMP member port {p} for node "
                            f"{node_id} does not descend toward the host"
                        )
        return violations

    def routing_invariants(self) -> list[str]:
        """Violations of the fabric's routing invariants (drained run):

        * **no forwarding loops** — structurally, every route descends
          toward its destination host (:meth:`route_acyclicity_violations`),
          and dynamically, no frame exceeded the hop budget;
        * **ECMP determinism** — a flow key never changed port while its
          alive member set was unchanged;
        * **switch conservation** — every ingress frame was forwarded or
          dropped for a counted reason;
        * **trunk conservation** — every frame a trunk port serialised
          was delivered by its link or lost to a counted outage.
        """
        violations: list[str] = list(self.route_acyclicity_violations())
        for sw in self.switches:
            violations.extend(sw.loop_violations)
            violations.extend(sw.pin_violations)
            violations.extend(sw.conservation_violations())
        for (a, b), cable in sorted(self.trunks.items()):
            for name, endpoint, link in (
                (f"{a}->{b}", cable.a, cable.ab),
                (f"{b}->{a}", cable.b, cable.ba),
            ):
                delivered = link.frames_delivered + link.frames_lost_outage
                if endpoint.tx_frames != delivered:
                    violations.append(
                        f"trunk {name}: {endpoint.tx_frames} frames "
                        f"serialised but {delivered} accounted by the link"
                    )
        return violations


def build_fabric(
    sim: Simulator,
    spec,
    rail: int = 0,
    seed: int = 0,
    switch_params: Optional[SwitchParams] = None,
    link_params: Optional[LinkParams] = None,
    rng: Optional[RngRegistry] = None,
) -> Fabric:
    """Instantiate a fabric from a spec (hosts attached separately)."""
    return Fabric(
        sim,
        spec,
        rail=rail,
        seed=seed,
        switch_params=switch_params or SwitchParams(),
        link_params=link_params or LinkParams(),
        rng=rng,
    )
