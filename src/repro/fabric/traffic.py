"""Declarative traffic matrices driving :mod:`repro.mp` endpoints.

A traffic matrix is a small frozen spec (which classic datacenter pattern,
how many bytes) that :func:`expand_flows` turns into a concrete list of
:class:`Flow`\\ s for a given cluster size — using a named RNG stream, so
the same ``(spec, nodes, seed)`` always yields the same flows — and
:func:`run_traffic` executes over message passing: every rank sends its
flows from a spawned sender process while its main process sinks the
flows addressed to it, so no send/receive interleaving can deadlock.

The patterns are the standard fabric-evaluation set:

* :class:`Permutation` — a random cyclic permutation (no fixed points);
  every host sends to exactly one host and receives from exactly one.
  The canonical ECMP load-balance test: with even hashing every uplink
  should carry a similar byte count.
* :class:`AllToAll` — the shuffle: every ordered pair exchanges a flow.
* :class:`Hotspot` — incast (everyone sends to a few targets) or outcast
  (a few targets fan out to everyone).
* :class:`ElephantMice` — a heavy-tailed mix of a few large rendezvous
  transfers and many small eager messages between random pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from ..bench.cluster import Cluster

__all__ = [
    "Flow",
    "Permutation",
    "AllToAll",
    "Hotspot",
    "ElephantMice",
    "TrafficResult",
    "TrafficRun",
    "expand_flows",
    "run_traffic",
]


@dataclass(frozen=True)
class Flow:
    """One point-to-point transfer; ``tag`` is unique per flow so MPI
    matching stays unambiguous when a pair carries several flows."""

    src: int
    dst: int
    size_bytes: int
    tag: int = 0


@dataclass(frozen=True)
class Permutation:
    """Random cyclic permutation: rank i sends to perm(i), perm has no
    fixed points (Sattolo's algorithm on the traffic RNG stream).

    ``rounds`` stacks several independent permutations into one matrix —
    the standard way to exercise ECMP spreading with enough flows that
    the per-uplink byte counts can average out."""

    bytes_per_flow: int = 64 * 1024
    rounds: int = 1

    name = "permutation"

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError("permutation needs at least one round")


@dataclass(frozen=True)
class AllToAll:
    """Full shuffle: every ordered pair (i, j), i != j, carries a flow."""

    bytes_per_flow: int = 16 * 1024

    name = "all-to-all"


@dataclass(frozen=True)
class Hotspot:
    """Incast onto (or outcast from) the last ``targets`` ranks."""

    targets: int = 1
    bytes_per_flow: int = 64 * 1024
    outcast: bool = False  # False: incast (all -> targets)

    name = "hotspot"

    def __post_init__(self) -> None:
        if self.targets < 1:
            raise ValueError("hotspot needs at least one target")


@dataclass(frozen=True)
class ElephantMice:
    """Heavy-tailed mix: a few rendezvous elephants, many eager mice,
    between random ordered pairs drawn from the traffic RNG stream."""

    elephants: int = 4
    elephant_bytes: int = 512 * 1024
    mice: int = 32
    mouse_bytes: int = 2 * 1024

    name = "elephant-mice"


TrafficSpec = Union[Permutation, AllToAll, Hotspot, ElephantMice]


def expand_flows(
    spec: TrafficSpec, nodes: int, rng: np.random.Generator
) -> list[Flow]:
    """Instantiate a spec into concrete flows for an ``nodes``-rank world.

    Deterministic: the same ``(spec, nodes)`` and the same RNG stream
    state always produce the same list.  Tags number flows 0..n-1.
    """
    if nodes < 2:
        raise ValueError("traffic matrices need at least 2 nodes")
    flows: list[Flow] = []
    if isinstance(spec, Permutation):
        for _ in range(spec.rounds):
            # Sattolo's algorithm: a uniformly random *cyclic*
            # permutation, so no rank ever draws itself.
            perm = list(range(nodes))
            for i in range(nodes - 1, 0, -1):
                j = int(rng.integers(0, i))
                perm[i], perm[j] = perm[j], perm[i]
            for i in range(nodes):
                flows.append(
                    Flow(i, perm[i], spec.bytes_per_flow, tag=len(flows))
                )
    elif isinstance(spec, AllToAll):
        for i in range(nodes):
            for j in range(nodes):
                if i != j:
                    flows.append(
                        Flow(i, j, spec.bytes_per_flow, tag=len(flows))
                    )
    elif isinstance(spec, Hotspot):
        if spec.targets >= nodes:
            raise ValueError("hotspot targets must leave at least one peer")
        targets = list(range(nodes - spec.targets, nodes))
        others = list(range(nodes - spec.targets))
        for t in targets:
            for o in others:
                src, dst = (t, o) if spec.outcast else (o, t)
                flows.append(Flow(src, dst, spec.bytes_per_flow, tag=len(flows)))
    elif isinstance(spec, ElephantMice):
        for size, count in (
            (spec.elephant_bytes, spec.elephants),
            (spec.mouse_bytes, spec.mice),
        ):
            for _ in range(count):
                src = int(rng.integers(0, nodes))
                dst = int(rng.integers(0, nodes - 1))
                if dst >= src:
                    dst += 1
                flows.append(Flow(src, dst, size, tag=len(flows)))
    else:
        raise TypeError(f"unknown traffic spec {spec!r}")
    return flows


@dataclass
class TrafficResult:
    """Outcome of one :func:`run_traffic` execution."""

    spec_name: str
    flows: int
    total_bytes: int
    elapsed_ns: int
    data_intact: bool
    messages_received: int
    switch_drops: int
    ce_marked: int
    retransmissions: int
    # ECMP load balance over fabric uplinks (empty without a fabric).
    uplink_bytes: dict = None  # (lower switch, upper switch) -> bytes

    @property
    def goodput_bps(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return self.total_bytes * 8 / (self.elapsed_ns / 1e9)

    @staticmethod
    def _ratio(counts: list) -> float:
        if not counts:
            return 1.0
        lo, hi = min(counts), max(counts)
        if hi == 0:
            return 1.0
        return float("inf") if lo == 0 else hi / lo

    @property
    def ecmp_evenness(self) -> float:
        """Max/min byte ratio across *upper-tier switches* (1.0 = perfect
        balance): did the flow hash spread the offered load evenly over
        the spines/cores?  ``inf`` if a spine was bypassed entirely."""
        per_upper: dict = {}
        for (_lo, hi), b in (self.uplink_bytes or {}).items():
            per_upper[hi] = per_upper.get(hi, 0) + b
        return self._ratio(list(per_upper.values()))

    @property
    def trunk_evenness(self) -> float:
        """Max/min byte ratio across individual uplink trunks — noisier
        than :attr:`ecmp_evenness` (each trunk sees one leaf's flows, so
        small fabrics have few flow-hash draws per trunk)."""
        return self._ratio(list((self.uplink_bytes or {}).values()))


def _flow_payload(flow: Flow) -> bytes:
    # One deterministic byte per flow: cheap to build, and a wrong or
    # cross-wired delivery cannot match.
    return bytes([(flow.tag * 31 + 7) % 251]) * flow.size_bytes


class TrafficRun:
    """One traffic-matrix execution, pausable for checkpointing.

    Construction expands flows and spawns the per-rank programs (no
    simulated time passes); :meth:`run_to` executes events up to an exact
    instant; :meth:`finish` completes the run and builds the
    :class:`TrafficResult`.  ``run_to(T)`` + ``finish()`` is
    scheduling-identical to a bare ``finish()``.
    """

    def __init__(
        self,
        cluster: Cluster,
        spec: TrafficSpec,
        seed: int = 0,
        limit_ms: int = 600_000,
    ) -> None:
        from ..mp import MpWorld

        self.cluster = cluster
        self.spec = spec
        self.limit_ms = limit_ms
        rng = cluster.rng.stream(f"fabric-traffic:{seed}")
        flows = self.flows = expand_flows(spec, cluster.config.nodes, rng)
        by_src: dict[int, list[Flow]] = {}
        by_dst: dict[int, list[Flow]] = {}
        for f in flows:
            by_src.setdefault(f.src, []).append(f)
            by_dst.setdefault(f.dst, []).append(f)

        self.world = MpWorld(cluster)
        self.mismatches: list[int] = []
        received = self.received = [0]
        mismatches = self.mismatches

        def program(ep):
            def sender():
                for f in by_src.get(ep.rank, []):
                    yield from ep.send(f.dst, _flow_payload(f), tag=f.tag)

            tx = cluster.sim.process(sender(), name=f"traffic.tx{ep.rank}")
            for f in by_dst.get(ep.rank, []):
                msg = yield from ep.recv(source=f.src, tag=f.tag)
                received[0] += 1
                if msg.data != _flow_payload(f):
                    mismatches.append(f.tag)
            yield tx

        self.start_ns = cluster.sim.now
        self.procs = self.world.start(program)

    def state(self) -> dict:
        """Capture root for the checkpoint walker."""
        return {
            "cluster": self.cluster,
            "world": self.world,
            "procs": self.procs,
            "received": self.received,
            "mismatches": self.mismatches,
        }

    def run_to(self, time_ns: int) -> None:
        """Execute every event due at or before ``time_ns``, then pause."""
        self.cluster.sim.run_until_time(time_ns)

    def finish(self) -> TrafficResult:
        cluster = self.cluster
        self.world.wait(self.procs, limit_ms=self.limit_ms)
        elapsed = cluster.sim.now - self.start_ns
        cluster.sim.run()  # drain straggling acks / credits / timers

        drops = sum(sw.dropped_total for sw in cluster.all_switches)
        marked = sum(sw.ce_marked_total for sw in cluster.all_switches)
        retrans = sum(
            conn.stats.retransmitted_frames
            for stack in cluster.stacks
            for conn in stack.protocol.connections.values()
        )
        uplinks: dict = {}
        for fabric in getattr(cluster, "fabrics", []):
            uplinks.update(fabric.uplink_bytes())
        return TrafficResult(
            spec_name=self.spec.name,
            flows=len(self.flows),
            total_bytes=sum(f.size_bytes for f in self.flows),
            elapsed_ns=elapsed,
            data_intact=not self.mismatches,
            messages_received=self.received[0],
            switch_drops=drops,
            ce_marked=marked,
            retransmissions=retrans,
            uplink_bytes=uplinks,
        )


def run_traffic(
    cluster: Cluster,
    spec: TrafficSpec,
    seed: int = 0,
    limit_ms: int = 600_000,
) -> TrafficResult:
    """Execute a traffic matrix over a cluster's message-passing world.

    Flow expansion draws from the dedicated ``fabric-traffic:<seed>``
    stream, so running traffic never perturbs any other subsystem's
    randomness.  Senders run as separate processes from receivers, so
    eager-ring credit stalls cannot deadlock against unposted receives.
    """
    return TrafficRun(cluster, spec, seed=seed, limit_ms=limit_ms).finish()
