"""ECMP-routed fabric switch.

A :class:`EcmpSwitch` replaces MAC learning/flooding with pre-programmed
routes: every reachable destination MAC maps to a *group* of equal-cost
output ports (computed by the topology builder from BFS shortest paths).
Multi-member groups are resolved per flow with a seeded deterministic
hash over ``(src_mac, dst_mac, rail, connection_id)`` — the simulation's
stand-in for the 5-tuple hash real fabrics compute — so one flow always
takes one path (no intra-flow reordering from the fabric itself) while
distinct flows spread across the uplinks.

Failure handling composes with the edge-lifecycle machinery through the
same :class:`~repro.ethernet.link.Link` fault surface: a port whose
transmit link is failed (or that was administratively disabled) is
excluded from its groups at forwarding time, so the hash *re-pins* the
flow onto the surviving uplinks deterministically.  When the uplink
repairs, the flow re-pins back — both transitions are counted.

Flooding is deliberately absent: a multi-path fabric has physical loops,
so an unknown-destination flood would storm forever.  Unroutable frames
are dropped and counted (``dropped_no_route``), and a per-frame hop
budget (``max_hops``) backs the no-forwarding-loop invariant.
"""

from __future__ import annotations

import zlib
from typing import Optional

from ..ethernet.frame import Frame
from ..ethernet.switch import BROADCAST_MAC, Switch, SwitchParams, SwitchPort
from ..sim import Simulator

__all__ = ["EcmpSwitch", "EcmpPort", "ecmp_hash"]


_MASK64 = (1 << 64) - 1


def ecmp_hash(
    salt: str, src_mac: int, dst_mac: int, rail: int, conn_id: int
) -> int:
    """Seeded, process-stable flow hash.

    CRC32 over the flow key, pushed through a splitmix64-style finalizer:
    CRC is linear over GF(2), so its low bits correlate across the
    sequentially allocated connection ids real runs produce — exactly the
    bits ``h % n_uplinks`` consumes.  The multiply/xor-shift finalizer
    avalanches them.  ``salt`` carries the fabric seed and the hashing
    switch's name so different fabrics — and different stages of one
    fabric — decorrelate.
    """
    h = zlib.crc32(f"{salt}|{src_mac}|{dst_mac}|{rail}|{conn_id}".encode())
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    h = (h ^ (h >> 27)) * 0x94D049BB133111EB & _MASK64
    return h ^ (h >> 31)


class EcmpPort(SwitchPort):
    """Fabric port: ingress accounting folded into link delivery.

    Routes are static (no MAC learning), so the intermediate ``on_frame``
    event adds nothing observable; folding keeps multi-hop forwarding at
    one scheduler event per hop.  The fold performs exactly what
    :meth:`EcmpSwitch._ingress` would at arrival time: hop accounting,
    the loop guard, and scheduling the forwarding decision.
    """

    def deliver_fold(self, frame: Frame, arrival: int) -> bool:
        sw = self.switch
        sw.ingress_frames += 1
        frame.hops += 1
        if frame.hops > sw.max_hops:
            sw.dropped_loop += 1
            sw.dropped_total += 1
            sw.loop_violations.append(
                f"{sw.name}: {frame!r} exceeded the {sw.max_hops}-hop "
                f"budget (forwarding loop)"
            )
            return True
        sw.sim.at(
            arrival + sw.params.forwarding_latency_ns,
            sw._forward,
            self.index,
            frame,
        )
        return True


class EcmpSwitch(Switch):
    """A store-and-forward switch with static multi-path routes."""

    def __init__(
        self,
        sim: Simulator,
        params: SwitchParams,
        name: str = "fabric-switch",
        tier: str = "",
        rail: int = 0,
        seed: int = 0,
        max_hops: int = 8,
    ) -> None:
        super().__init__(sim, params, name)
        self.ports = [EcmpPort(self, i) for i in range(params.ports)]
        self.tier = tier
        self.rail = rail
        self.seed = seed
        self.max_hops = max_hops
        self._salt = f"{seed}:{name}"
        # dst MAC -> sorted tuple of candidate output ports.
        self._routes: dict[int, tuple[int, ...]] = {}
        # Administratively drained ports (excluded from ECMP groups
        # without failing the cable — frames already in flight survive).
        self._disabled: set[int] = set()
        # Determinism witness: flow key -> (alive member set, chosen port).
        self._pins: dict[tuple[int, int, int, int], tuple[tuple[int, ...], int]] = {}
        self.ingress_frames = 0
        self.ecmp_routed = 0  # frames resolved through a multi-port group
        self.repins = 0  # flow re-pinned because the member set changed
        self.dropped_loop = 0
        self.dropped_no_route = 0
        self.dropped_hairpin = 0
        self.pin_violations: list[str] = []
        self.loop_violations: list[str] = []

    # -- route programming -------------------------------------------------

    def add_route(self, mac: int, ports: tuple[int, ...]) -> None:
        """Program the ECMP group for a destination MAC."""
        if not ports:
            raise ValueError(f"{self.name}: empty ECMP group for {mac:#x}")
        self._routes[mac] = tuple(sorted(ports))

    def route(self, mac: int) -> Optional[tuple[int, ...]]:
        return self._routes.get(mac)

    def learn(self, mac: int, port_index: int) -> None:
        """Topology builders teach directly attached MACs this way.

        Deliberately does *not* populate the learning MAC table: routes
        are the single source of truth, and the base learning/flooding
        path must never engage on a multi-path fabric.
        """
        self._routes[mac] = (port_index,)

    def set_port_enabled(self, port_index: int, enabled: bool) -> None:
        """Administratively include/exclude a port from its ECMP groups."""
        if enabled:
            self._disabled.discard(port_index)
        else:
            self._disabled.add(port_index)

    # -- ECMP selection ----------------------------------------------------

    def _port_alive(self, index: int) -> bool:
        if index in self._disabled:
            return False
        link = self.ports[index].tx_link
        return link is not None and not link.failed

    def alive_members(self, group: tuple[int, ...]) -> tuple[int, ...]:
        return tuple(p for p in group if self._port_alive(p))

    def preview(
        self, src_mac: int, dst_mac: int, conn_id: int
    ) -> Optional[int]:
        """The port a frame with this flow key would take right now
        (no counters, no pin recording — for tests and planners)."""
        group = self._routes.get(dst_mac)
        if group is None:
            return None
        alive = self.alive_members(group)
        if not alive:
            return None
        if len(alive) == 1:
            return alive[0]
        h = ecmp_hash(self._salt, src_mac, dst_mac, self.rail, conn_id)
        return alive[h % len(alive)]

    def _pick(self, frame: Frame, group: tuple[int, ...]) -> Optional[int]:
        alive = self.alive_members(group)
        if not alive:
            return None
        key = (
            frame.src_mac,
            frame.dst_mac,
            self.rail,
            frame.header.connection_id,
        )
        prev = self._pins.get(key)
        if len(alive) == 1:
            port = alive[0]
        else:
            # Recomputed per frame on purpose: comparing the fresh pick
            # against the recorded pin keeps the ECMP-determinism
            # invariant a live check rather than a cache read.
            h = ecmp_hash(
                self._salt,
                frame.src_mac,
                frame.dst_mac,
                self.rail,
                frame.header.connection_id,
            )
            port = alive[h % len(alive)]
            self.ecmp_routed += 1
        if prev is not None:
            prev_alive, prev_port = prev
            if prev_alive == alive and prev_port != port:
                # Same flow, same member set, different port: the hash is
                # not a pure function of the key — a routing bug.
                self.pin_violations.append(
                    f"{self.name}: flow {key} pinned to port {prev_port} "
                    f"but routed to {port} with members {alive} unchanged"
                )
            elif prev_port != port:
                self.repins += 1
        if prev is None or prev != (alive, port):
            self._pins[key] = (alive, port)
        return port

    # -- forwarding --------------------------------------------------------

    def _ingress(self, port_index: int, frame: Frame) -> None:
        # No MAC learning: routes are pre-programmed and static.
        self.ingress_frames += 1
        frame.hops += 1
        if frame.hops > self.max_hops:
            self.dropped_loop += 1
            self.dropped_total += 1
            self.loop_violations.append(
                f"{self.name}: {frame!r} exceeded the {self.max_hops}-hop "
                f"budget (forwarding loop)"
            )
            return
        self.sim.schedule(
            self.params.forwarding_latency_ns, self._forward, port_index, frame
        )

    def _forward(self, in_port: int, frame: Frame) -> None:
        group = self._routes.get(frame.dst_mac)
        if group is None or frame.dst_mac == BROADCAST_MAC:
            # No flooding in a multi-path fabric (see module docstring).
            self.dropped_no_route += 1
            self.dropped_total += 1
            return
        dst_port = group[0] if len(group) == 1 else self._pick(frame, group)
        if dst_port is None:
            self.dropped_no_route += 1
            self.dropped_total += 1
            return
        if dst_port == in_port:
            # Hairpin, dropped silently exactly as the base switch does.
            self.dropped_hairpin += 1
            return
        self.forwarded += 1
        self.ports[dst_port].enqueue(frame)

    # -- invariants --------------------------------------------------------

    def conservation_violations(self) -> list[str]:
        """Per-switch frame conservation, valid once the run has drained:
        every ingress frame was forwarded or dropped for a counted reason.
        """
        accounted = (
            self.forwarded
            + self.dropped_loop
            + self.dropped_no_route
            + self.dropped_hairpin
        )
        if self.ingress_frames != accounted:
            return [
                f"{self.name}: {self.ingress_frames} ingress frames but "
                f"{accounted} accounted (forwarded {self.forwarded}, loop "
                f"{self.dropped_loop}, no-route {self.dropped_no_route}, "
                f"hairpin {self.dropped_hairpin})"
            ]
        return []
