"""Incast scenario runner: N senders converge on one receiver.

Many-to-one traffic is the pattern that motivates repro.congestion: every
sender's frames meet at the receiver's switch output port, the queue
fills, and — without congestion control — the tail drops trigger timeout
storms that collapse goodput.  :func:`run_incast` is the reusable harness
behind ``benchmarks/bench_congestion.py`` and ``examples/incast.py``: it
stands up an ``senders + 1``-node cluster, streams chunks from every
sender to the last node concurrently, and reports goodput alongside the
congestion counters (queue drops, CE marks, echoes, final congestion
windows, pacing stalls).

Everything is deterministic: same parameters + same seed give the same
:class:`IncastResult`, byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..congestion import CongestionParams
from .cluster import make_cluster

__all__ = ["IncastResult", "run_incast"]


@dataclass
class IncastResult:
    """Everything measured by one :func:`run_incast` run."""

    config: str
    senders: int
    congestion: str
    ecn_threshold_frames: Optional[int]
    chunk_bytes: int
    chunks_per_sender: int
    elapsed_ns: int  # first op issued -> last op completed
    data_intact: bool
    # Congestion outcome.
    dropped_queue_full: int  # switch tail drops
    paused_frames: int  # lossless-mode backpressure events
    peak_queue_depth: int  # worst output queue, in frames
    retransmissions: int
    timeout_retransmits: int
    nack_retransmits: int
    ce_marked: int  # frames the fabric marked CE
    ce_received: int  # marked frames that reached a receiver
    ecn_echoes_sent: int
    ecn_echoes_received: int
    pacing_stall_ns: int
    final_cwnd_frames: list[int] = field(default_factory=list)  # per sender
    # Multi-switch fabric extras (empty/None on classic single-switch runs).
    fabric: Optional[str] = None  # spec name, e.g. "LeafSpineSpec"
    per_switch_drops: dict = field(default_factory=dict)  # name -> tail drops
    routing_violations: list[str] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        return self.senders * self.chunks_per_sender * self.chunk_bytes

    @property
    def goodput_bps(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return self.total_bytes * 8 / (self.elapsed_ns / 1e9)

    @property
    def echo_fraction(self) -> float:
        """Echoes that actually reached a sender per mark the fabric made
        (delayed acks coarsen echoes, so this is well below 1 under load)."""
        return (
            self.ecn_echoes_received / self.ce_marked if self.ce_marked else 0.0
        )


def run_incast(
    config: str = "1L-1G",
    senders: int = 8,
    chunk_bytes: int = 64 * 1024,
    chunks_per_sender: int = 8,
    congestion: str = "static",
    congestion_params: Optional[CongestionParams] = None,
    ecn_threshold_frames: Optional[int] = None,
    seed: int = 0,
    synthetic_payloads: bool = True,
    verify_data: bool = False,
    limit_ns: int = 20_000_000_000,
    fabric=None,
) -> IncastResult:
    """Stream chunks from ``senders`` nodes into node ``senders`` at once.

    Every sender issues ``chunks_per_sender`` sequential ``chunk_bytes``
    RDMA writes to its own buffer on the shared receiver; all senders run
    concurrently, so their frames converge on the receiver's switch
    output port.  ``congestion`` selects the controller for every
    connection; ``ecn_threshold_frames`` arms ECN marking on the fabric.
    ``verify_data=True`` uses real payloads and checks the receiver's
    memory afterwards (slower; benchmarks keep the default synthetic
    frames).  ``fabric`` optionally routes the incast across a
    multi-switch fabric (a :class:`~repro.fabric.LeafSpineSpec` or
    :class:`~repro.fabric.FatTreeSpec`); senders then converge on the
    receiver across trunk hops, and the result carries per-switch drop
    counts plus the fabric's routing-invariant check.
    """
    if senders < 1:
        raise ValueError("need at least one sender")
    if verify_data and synthetic_payloads:
        synthetic_payloads = False
    n_nodes = senders + 1
    receiver = senders
    cluster = make_cluster(
        config,
        nodes=n_nodes,
        seed=seed,
        synthetic_payloads=synthetic_payloads,
        **({"fabric": fabric} if fabric is not None else {}),
    )
    cluster.config.protocol = replace(
        cluster.config.protocol,
        congestion=congestion,
        congestion_params=congestion_params,
    )
    if ecn_threshold_frames is not None:
        cluster.set_ecn_threshold(ecn_threshold_frames)

    handles = {}
    for s in range(senders):
        a, _b = cluster.connect(s, receiver)
        handles[s] = a

    rx_node = cluster.nodes[receiver]
    bufs = {}
    payloads = {}
    for s in range(senders):
        src = cluster.nodes[s].memory.alloc(chunk_bytes)
        dst = rx_node.memory.alloc(chunk_bytes)
        bufs[s] = (src, dst)
        if verify_data:
            payload = bytes((s * 7 + i) % 251 for i in range(chunk_bytes))
            cluster.nodes[s].memory.write(src, payload)
            payloads[s] = payload

    def sender(s: int):
        src, dst = bufs[s]
        handle = handles[s]
        for _ in range(chunks_per_sender):
            oh = yield from handle.rdma_write(src, dst, chunk_bytes)
            yield from oh.wait()

    procs = [cluster.sim.process(sender(s)) for s in range(senders)]
    for proc in procs:
        cluster.sim.run_until_done(proc, limit=limit_ns)
    elapsed = cluster.sim.now
    cluster.sim.run()  # drain straggling acks / timers

    intact = True
    if verify_data:
        for s in range(senders):
            _src, dst = bufs[s]
            if rx_node.memory.read(dst, chunk_bytes) != payloads[s]:
                intact = False

    drops = paused = peak = marked = 0
    per_switch_drops: dict = {}
    for sw in cluster.all_switches:
        sw_drops = 0
        for port in sw.ports:
            sw_drops += port.dropped_queue_full
            paused += port.paused_frames
            peak = max(peak, port.peak_queue_depth)
            marked += port.ce_marked
        drops += sw_drops
        if fabric is not None:
            per_switch_drops[sw.name] = sw_drops
    violations = [
        v for fab in cluster.fabrics for v in fab.routing_invariants()
    ]

    retrans = t_retrans = n_retrans = 0
    ce_rx = echoes_tx = echoes_rx = pacing_stall = 0
    cwnds = []
    for stack in cluster.stacks:
        for conn in stack.protocol.connections.values():
            s = conn.stats
            retrans += s.retransmitted_frames
            t_retrans += s.timeout_retransmits
            n_retrans += s.nack_retransmits
            ce_rx += conn.ce_frames_received
            echoes_tx += conn.ecn_echoes_sent
            echoes_rx += conn.ecn_echoes_received
            if conn.congestion.active and conn.node.node_id != receiver:
                cwnds.append(conn.congestion.cwnd_frames)
    for node in cluster.nodes:
        for nic in node.nics:
            pacing_stall += nic.counters.pacing_stall_ns

    return IncastResult(
        config=config,
        senders=senders,
        congestion=congestion,
        ecn_threshold_frames=ecn_threshold_frames,
        chunk_bytes=chunk_bytes,
        chunks_per_sender=chunks_per_sender,
        elapsed_ns=elapsed,
        data_intact=intact,
        dropped_queue_full=drops,
        paused_frames=paused,
        peak_queue_depth=peak,
        retransmissions=retrans,
        timeout_retransmits=t_retrans,
        nack_retransmits=n_retrans,
        ce_marked=marked,
        ce_received=ce_rx,
        ecn_echoes_sent=echoes_tx,
        ecn_echoes_received=echoes_rx,
        pacing_stall_ns=pacing_stall,
        final_cwnd_frames=cwnds,
        fabric=type(fabric).__name__ if fabric is not None else None,
        per_switch_drops=per_switch_drops,
        routing_violations=violations,
    )
